// pvfs_cli: administration client for a running pvfsd deployment.
//
//   pvfs_cli <mgr_port> <iod_port>[,<iod_port>...] ls [prefix]
//   pvfs_cli <mgr_port> <iod_ports>                put <name> <local-file>
//                                                      [--dist=<layout>]
//   pvfs_cli <mgr_port> <iod_ports>                get <name> <local-file>
//   pvfs_cli <mgr_port> <iod_ports>                rm <name>
//   pvfs_cli <mgr_port> <iod_ports>                stat <name>
//   pvfs_cli <mgr_port> <iod_ports>                stats
//
// Daemon addresses are loopback ports as printed by pvfsd. `stats`
// fetches every daemon's live counters over the wire (kStats message)
// and prints them, together with this client's own counters, as JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/bytes.hpp"
#include "net/socket_transport.hpp"
#include "obs/json.hpp"
#include "pvfs/posixio.hpp"

using namespace pvfs;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: pvfs_cli <mgr_port> <iod_port,iod_port,...> "
               "<ls|put|get|rm|stat|stats> [args]\n"
               "  put <name> <local-file> [--dist=<layout>] where <layout>\n"
               "  is twod:<groups>,<depth> | block:<bytes> | "
               "gcyclic:<depth>\n"
               "  (default: simple round-robin striping; see "
               "docs/distributions.md)\n");
  return 2;
}

/// Parses a put --dist=<layout> value. Validation proper happens at the
/// manager; this only maps the spelling onto a DistributionSpec.
bool ParseDistSpec(const char* text, DistributionSpec* out) {
  if (std::strncmp(text, "twod:", 5) == 0) {
    char* end = nullptr;
    unsigned long groups = std::strtoul(text + 5, &end, 10);
    if (*end != ',') return false;
    unsigned long depth = std::strtoul(end + 1, &end, 10);
    if (*end != '\0') return false;
    *out = DistributionSpec::TwoD(static_cast<std::uint32_t>(groups),
                                  static_cast<std::uint32_t>(depth));
    return true;
  }
  if (std::strncmp(text, "block:", 6) == 0) {
    char* end = nullptr;
    unsigned long long bytes = std::strtoull(text + 6, &end, 10);
    if (*end != '\0') return false;
    *out = DistributionSpec::Block(static_cast<ByteCount>(bytes));
    return true;
  }
  if (std::strncmp(text, "gcyclic:", 8) == 0) {
    char* end = nullptr;
    unsigned long depth = std::strtoul(text + 8, &end, 10);
    if (*end != '\0') return false;
    *out = DistributionSpec::GroupCyclic(static_cast<std::uint32_t>(depth));
    return true;
  }
  return false;
}

std::vector<net::SocketAddress> ParsePorts(const char* list) {
  std::vector<net::SocketAddress> out;
  const char* p = list;
  while (*p != '\0') {
    char* end = nullptr;
    unsigned long port = std::strtoul(p, &end, 10);
    if (end == p) break;
    out.push_back({"127.0.0.1", static_cast<std::uint16_t>(port)});
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

int DoLs(Client& client, int argc, char** argv) {
  std::string prefix = argc > 4 ? argv[4] : "";
  auto names = client.ListFiles(prefix);
  if (!names.ok()) {
    std::fprintf(stderr, "%s\n", names.status().ToString().c_str());
    return 1;
  }
  for (const std::string& name : names.value()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int DoPut(Client& client, int argc, char** argv) {
  if (argc < 6) return Usage();
  std::ifstream in(argv[5], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", argv[5]);
    return 1;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  // Stripe over every configured I/O daemon with the PVFS default unit;
  // --dist selects a non-default layout (manager validates the shape).
  CreateOptions options{Striping{0, client.TransportServerCount(), 16384}};
  if (argc > 6) {
    if (std::strncmp(argv[6], "--dist=", 7) != 0 ||
        !ParseDistSpec(argv[6] + 7, &options.dist)) {
      std::fprintf(stderr, "bad --dist value: %s\n", argv[6]);
      return Usage();
    }
  }
  auto stream = PvfsStream::Create(&client, argv[4], options);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  auto bytes = std::as_bytes(std::span{raw.data(), raw.size()});
  if (Status s = stream->Write(bytes); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  (void)stream->Close();
  std::printf("stored %zu bytes as %s\n", raw.size(), argv[4]);
  return 0;
}

int DoGet(Client& client, int argc, char** argv) {
  if (argc < 6) return Usage();
  auto stream = PvfsStream::Open(&client, argv[4]);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  auto size = stream->Seek(0, PvfsStream::Whence::kEnd);
  if (!size.ok()) return 1;
  (void)stream->Seek(0, PvfsStream::Whence::kSet);
  ByteBuffer data(*size);
  auto n = stream->Read(data);
  if (!n.ok()) {
    std::fprintf(stderr, "%s\n", n.status().ToString().c_str());
    return 1;
  }
  std::ofstream out(argv[5], std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(*n));
  std::printf("fetched %llu bytes to %s\n",
              static_cast<unsigned long long>(*n), argv[5]);
  return 0;
}

int DoRm(Client& client, int argc, char** argv) {
  if (argc < 5) return Usage();
  if (Status s = client.Remove(argv[4]); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

int DoStat(Client& client, int argc, char** argv) {
  if (argc < 5) return Usage();
  auto fd = client.Open(argv[4]);
  if (!fd.ok()) {
    std::fprintf(stderr, "%s\n", fd.status().ToString().c_str());
    return 1;
  }
  auto meta = client.Stat(*fd);
  if (!meta.ok()) return 1;
  std::printf("%s: handle=%llu size=%llu striping={base=%u pcount=%u "
              "ssize=%llu} dist={kind=%s groups=%u depth=%u extent=%llu}\n",
              argv[4], static_cast<unsigned long long>(meta->handle),
              static_cast<unsigned long long>(meta->size),
              meta->striping.base, meta->striping.pcount,
              static_cast<unsigned long long>(meta->striping.ssize),
              DistKindName(meta->dist.kind), meta->dist.groups,
              meta->dist.group_depth,
              static_cast<unsigned long long>(meta->dist.block_extent));
  (void)client.Close(*fd);
  return 0;
}

int DoStats(Client& client) {
  obs::JsonValue dump = obs::JsonValue::Object();
  auto manager = client.FetchServerStats(-1);
  if (!manager.ok()) {
    std::fprintf(stderr, "%s\n", manager.status().ToString().c_str());
    return 1;
  }
  auto parsed = obs::JsonValue::Parse(*manager);
  dump.Set("manager", parsed.ok() ? std::move(*parsed)
                                  : obs::JsonValue(*manager));
  obs::JsonValue iods = obs::JsonValue::Array();
  for (int s = 0; s < static_cast<int>(client.TransportServerCount()); ++s) {
    auto stats = client.FetchServerStats(s);
    if (!stats.ok()) {
      std::fprintf(stderr, "iod %d: %s\n", s,
                   stats.status().ToString().c_str());
      return 1;
    }
    auto iod = obs::JsonValue::Parse(*stats);
    iods.Append(iod.ok() ? std::move(*iod) : obs::JsonValue(*stats));
  }
  dump.Set("iods", std::move(iods));
  dump.Set("client", client.StatsJson());
  std::printf("%s\n", dump.Dump(2).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  net::SocketAddress manager{
      "127.0.0.1", static_cast<std::uint16_t>(std::atoi(argv[1]))};
  net::SocketTransport transport(manager, ParsePorts(argv[2]));
  Client client(&transport);

  if (std::strcmp(argv[3], "ls") == 0) return DoLs(client, argc, argv);
  if (std::strcmp(argv[3], "put") == 0) return DoPut(client, argc, argv);
  if (std::strcmp(argv[3], "get") == 0) return DoGet(client, argc, argv);
  if (std::strcmp(argv[3], "rm") == 0) return DoRm(client, argc, argv);
  if (std::strcmp(argv[3], "stat") == 0) return DoStat(client, argc, argv);
  if (std::strcmp(argv[3], "stats") == 0) return DoStats(client);
  return Usage();
}
