// pvfs_trace: generate, replay and simulate noncontiguous I/O traces.
//
//   pvfs_trace gen cyclic <total_bytes> <clients> <accesses> [R|W]
//   pvfs_trace gen flash <nprocs>
//   pvfs_trace gen tiled
//        Write a trace to stdout.
//
//   pvfs_trace replay <trace-file> [method]
//        Execute the trace against an in-process functional cluster with
//        the given method (multiple | data-sieving | list | hybrid,
//        default list) and print movement statistics.
//
//   pvfs_trace sim <trace-file> <R|W>
//        Run the trace's selected direction through the simulated Chiba
//        City cluster with every method and print virtual seconds.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "runtime/threaded_cluster.hpp"
#include "trace/trace.hpp"

using namespace pvfs;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pvfs_trace gen cyclic <total_bytes> <clients> <accesses> "
               "[R|W]\n"
               "  pvfs_trace gen flash <nprocs>\n"
               "  pvfs_trace gen tiled\n"
               "  pvfs_trace replay <trace-file> [method]\n"
               "  pvfs_trace sim <trace-file> <R|W>\n");
  return 2;
}

Result<trace::Trace> LoadTraceFile(const char* path) {
  std::ifstream in(path);
  if (!in) return NotFound(std::string("cannot open ") + path);
  std::ostringstream text;
  text << in.rdbuf();
  return trace::Parse(text.str());
}

Result<io::MethodType> MethodFromName(std::string_view name) {
  for (io::MethodType m :
       {io::MethodType::kMultiple, io::MethodType::kDataSieving,
        io::MethodType::kList, io::MethodType::kHybrid}) {
    if (io::MethodName(m) == name) return m;
  }
  return InvalidArgument("unknown method '" + std::string(name) + "'");
}

int RunGen(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string_view kind = argv[2];
  trace::Trace trace;
  if (kind == "cyclic") {
    if (argc < 6) return Usage();
    IoOp op = (argc > 6 && std::strcmp(argv[6], "W") == 0) ? IoOp::kWrite
                                                           : IoOp::kRead;
    trace = trace::CyclicTrace(std::strtoull(argv[3], nullptr, 10),
                               static_cast<std::uint32_t>(
                                   std::strtoul(argv[4], nullptr, 10)),
                               std::strtoull(argv[5], nullptr, 10), op);
  } else if (kind == "flash") {
    if (argc < 4) return Usage();
    trace = trace::FlashTrace(
        static_cast<std::uint32_t>(std::strtoul(argv[3], nullptr, 10)));
  } else if (kind == "tiled") {
    trace = trace::TiledVizTrace();
  } else {
    return Usage();
  }
  std::fputs(trace::Serialize(trace).c_str(), stdout);
  return 0;
}

int RunReplay(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto loaded = LoadTraceFile(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  trace::ReplayOptions options;
  if (argc > 3) {
    auto method = MethodFromName(argv[3]);
    if (!method.ok()) {
      std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
      return 1;
    }
    options.method = *method;
  }
  runtime::ThreadedCluster cluster(8);
  auto result = trace::Replay(cluster.transport(), *loaded, options);
  if (!result.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("replayed %zu ops over %u ranks with %s\n",
              loaded->ops.size(), loaded->ranks,
              io::MethodName(options.method).data());
  std::printf("  fs requests:   %llu\n",
              static_cast<unsigned long long>(result->fs_requests));
  std::printf("  messages:      %llu\n",
              static_cast<unsigned long long>(result->messages));
  std::printf("  bytes read:    %llu\n",
              static_cast<unsigned long long>(result->bytes_read));
  std::printf("  bytes written: %llu\n",
              static_cast<unsigned long long>(result->bytes_written));
  return 0;
}

int RunSim(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto loaded = LoadTraceFile(argv[2]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  IoOp op = std::strcmp(argv[3], "W") == 0 ? IoOp::kWrite : IoOp::kRead;
  simcluster::SimWorkload workload = trace::ToSimWorkload(*loaded, op);
  simcluster::SimClusterConfig config =
      simcluster::ChibaCityConfig(loaded->ranks);

  std::printf("%14s %14s %14s\n", "method", "virtual s", "requests");
  for (io::MethodType m :
       {io::MethodType::kMultiple, io::MethodType::kDataSieving,
        io::MethodType::kList, io::MethodType::kHybrid}) {
    if (m == io::MethodType::kDataSieving && op == IoOp::kWrite) {
      // Writes via sieving are serialized RMW; still simulate them.
    }
    auto run = simcluster::RunSimWorkload(config, m, op, workload);
    std::printf("%14s %14.3f %14llu\n", io::MethodName(m).data(),
                run.io_seconds,
                static_cast<unsigned long long>(run.counters.fs_requests));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "gen") == 0) return RunGen(argc, argv);
  if (std::strcmp(argv[1], "replay") == 0) return RunReplay(argc, argv);
  if (std::strcmp(argv[1], "sim") == 0) return RunSim(argc, argv);
  return Usage();
}
