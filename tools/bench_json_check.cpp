// bench_json_check: validate BENCH_<name>.json files written by the
// bench binaries (schema "pvfs-bench-v1"). CI runs the smoke-mode
// benches and feeds every emitted file through this checker, so a bench
// that silently drifts from the schema fails the build instead of
// producing artifacts no tooling can read.
//
//   bench_json_check <file.json> [file.json ...]
//
// Exit 0 when every file validates; 1 otherwise, with one diagnostic
// line per problem.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

using pvfs::obs::JsonValue;

namespace {

int g_errors = 0;

void Fail(const char* path, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", path, message.c_str());
  ++g_errors;
}

bool RequireNumber(const char* path, const JsonValue& obj,
                   const char* key, const std::string& where) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    Fail(path, where + ": missing \"" + key + "\"");
    return false;
  }
  if (!v->is_number()) {
    Fail(path, where + ": \"" + key + "\" is not a number");
    return false;
  }
  return true;
}

/// Latency stats may legitimately be null (no samples recorded).
void RequireNumberOrNull(const char* path, const JsonValue& obj,
                         const char* key, const std::string& where) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    Fail(path, where + ": missing \"" + key + "\"");
  } else if (!v->is_number() && !v->is_null()) {
    Fail(path, where + ": \"" + key + "\" is neither number nor null");
  }
}

void CheckSimCell(const char* path, const JsonValue& cell,
                  const std::string& where) {
  for (const char* key : {"clients", "accesses", "io_seconds",
                          "total_seconds", "fs_requests", "messages",
                          "regions_sent", "bytes_to_servers",
                          "bytes_from_servers", "local_accesses",
                          "events"}) {
    RequireNumber(path, cell, key, where);
  }
  for (const char* key : {"method", "op"}) {
    const JsonValue* v = cell.Find(key);
    if (v == nullptr || !v->is_string() || v->as_string().empty()) {
      Fail(path, where + ": \"" + key + "\" missing or not a string");
    }
  }
  const JsonValue* latency = cell.Find("latency");
  if (latency == nullptr || !latency->is_object()) {
    Fail(path, where + ": missing \"latency\" object");
  } else {
    RequireNumber(path, *latency, "count", where + ".latency");
    for (const char* key : {"mean", "max", "p50", "p95", "p99"}) {
      RequireNumberOrNull(path, *latency, key, where + ".latency");
    }
  }
  const JsonValue* faults = cell.Find("faults");
  if (faults == nullptr || !faults->is_object()) {
    Fail(path, where + ": missing \"faults\" object");
  } else if (!faults->Has("total")) {
    Fail(path, where + ".faults: missing \"total\"");
  }
}

void CheckMetricRows(const char* path, const JsonValue& metrics,
                     const char* section) {
  const JsonValue* rows = metrics.Find(section);
  if (rows == nullptr || !rows->is_array()) {
    Fail(path, std::string("metrics: missing \"") + section + "\" array");
    return;
  }
  for (size_t i = 0; i < rows->size(); ++i) {
    const JsonValue& row = rows->at(i);
    std::string where =
        std::string("metrics.") + section + "[" + std::to_string(i) + "]";
    if (!row.is_object()) {
      Fail(path, where + ": not an object");
      continue;
    }
    const JsonValue* name = row.Find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      Fail(path, where + ": missing \"name\"");
    }
    const JsonValue* labels = row.Find("labels");
    if (labels == nullptr || !labels->is_object()) {
      Fail(path, where + ": missing \"labels\" object");
    }
  }
}

void CheckFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Fail(path, "cannot open");
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  if (!parsed.ok()) {
    Fail(path, "parse error: " + parsed.status().ToString());
    return;
  }
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    Fail(path, "top level is not an object");
    return;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "pvfs-bench-v1") {
    Fail(path, "\"schema\" is not \"pvfs-bench-v1\"");
  }
  for (const char* key : {"name", "description", "scale"}) {
    const JsonValue* v = root.Find(key);
    if (v == nullptr || !v->is_string() || v->as_string().empty()) {
      Fail(path, std::string("\"") + key + "\" missing or not a string");
    }
  }

  const JsonValue* cells = root.Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    Fail(path, "missing \"cells\" array");
  } else {
    if (cells->size() == 0) Fail(path, "\"cells\" is empty");
    for (size_t i = 0; i < cells->size(); ++i) {
      const JsonValue& cell = cells->at(i);
      std::string where = "cells[" + std::to_string(i) + "]";
      if (!cell.is_object()) {
        Fail(path, where + ": not an object");
        continue;
      }
      // Sim-run cells carry io_seconds; closed-form rows (e.g. the
      // request-count analysis) are free-form objects and only need a
      // method tag plus at least one numeric field.
      if (cell.Has("io_seconds")) {
        CheckSimCell(path, cell, where);
      } else {
        if (!cell.Has("method")) Fail(path, where + ": missing \"method\"");
        bool has_number = false;
        for (const auto& [k, v] : cell.members()) {
          (void)k;
          if (v.is_number()) has_number = true;
        }
        if (!has_number) Fail(path, where + ": no numeric field");
      }
    }
  }

  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    Fail(path, "missing \"metrics\" object");
  } else {
    CheckMetricRows(path, *metrics, "counters");
    CheckMetricRows(path, *metrics, "gauges");
    CheckMetricRows(path, *metrics, "histograms");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_json_check <file.json> ...\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    int before = g_errors;
    CheckFile(argv[i]);
    if (g_errors == before) std::printf("%s: ok\n", argv[i]);
  }
  return g_errors == 0 ? 0 : 1;
}
