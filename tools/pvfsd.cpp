// pvfsd: run a PVFS deployment (manager + N I/O daemons) as real TCP
// servers on loopback — the daemon side of the paper's Figure 1.
//
//   pvfsd [servers] [base_port]
//
// With base_port 0 (default) each daemon picks an ephemeral port and the
// bound ports are printed; otherwise the manager listens on base_port and
// iod k on base_port + 1 + k. Runs until stdin reaches EOF (Ctrl-D).
// Typing "stats" on stdin dumps every daemon's counters as JSON.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/socket_transport.hpp"
#include "obs/json.hpp"

using namespace pvfs;

int main(int argc, char** argv) {
  std::uint32_t servers = argc > 1
                              ? static_cast<std::uint32_t>(
                                    std::strtoul(argv[1], nullptr, 10))
                              : 8;
  std::uint16_t base_port =
      argc > 2 ? static_cast<std::uint16_t>(std::strtoul(argv[2], nullptr, 10))
               : 0;

  auto cluster = net::SocketCluster::Start(servers, kMaxListRegions,
                                           base_port);
  if (!cluster.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }

  std::printf("pvfs manager on 127.0.0.1:%u\n",
              (*cluster)->manager_address().port);
  auto iods = (*cluster)->iod_addresses();
  for (size_t i = 0; i < iods.size(); ++i) {
    std::printf("pvfs iod %zu on 127.0.0.1:%u\n", i, iods[i].port);
  }
  std::printf("serving; type 'stats' for counters, Ctrl-D to stop.\n");
  std::fflush(stdout);

  // Block until stdin closes; "stats" dumps live daemon counters.
  std::string line;
  int c;
  while ((c = std::getchar()) != EOF) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (line == "stats") {
      obs::JsonValue dump = obs::JsonValue::Object();
      dump.Set("manager", (*cluster)->manager().StatsJson());
      obs::JsonValue iod_stats = obs::JsonValue::Array();
      for (std::uint32_t s = 0; s < servers; ++s) {
        iod_stats.Append((*cluster)->iod(s).StatsJson());
      }
      dump.Set("iods", std::move(iod_stats));
      std::printf("%s\n", dump.Dump(2).c_str());
      std::fflush(stdout);
    }
    line.clear();
  }
  std::printf("shutting down.\n");
  return 0;
}
