// Mini-ROMIO: MPI-IO-style file access over the PVFS client library.
//
// Paper §2 notes PVFS "supports MPI-IO ... through the use of ROMIO"; the
// noncontiguous methods it compares are exactly what an MPI-IO layer
// drives. This module provides the MPI-IO surface the paper's discussion
// assumes:
//
//   * file views — displacement + filetype (an io::Datatype) tiled over
//     the file; accesses address the view's *data* byte stream;
//   * independent typed reads/writes, executed as native list I/O;
//   * collective reads/writes with two-phase I/O (Thakur, Gropp & Lusk,
//     the paper's reference [11]): ranks exchange pieces so that
//     aggregators touch the file with few large contiguous requests.
//
// Each rank owns its MpiFile (thread-confined, wrapping its own Client);
// collective calls must be entered by every rank of the shared Group.
#pragma once

#include <optional>

#include "io/datatype.hpp"
#include "mpiio/group.hpp"
#include "pvfs/client.hpp"

namespace pvfs::mpiio {

struct CollectiveHints {
  /// Two-phase exchange enabled; when false, collective calls degrade to
  /// independent list I/O (romio_cb_read/write = disable).
  bool cb_enable = true;
  /// Number of aggregator ranks (ROMIO's cb_nodes hint); 0 means every
  /// rank aggregates. Aggregators are ranks 0..cb_nodes-1.
  std::uint32_t cb_nodes = 0;
};

class MpiFile {
 public:
  /// Opens (or creates, if `striping` is provided) `name` on behalf of
  /// one rank of `group`. Collective; every rank must call it.
  static Result<MpiFile> Open(Client* client, Group* group, Rank rank,
                              const std::string& name,
                              std::optional<Striping> striping = {});

  /// Set the file view: the visible byte stream is `filetype`'s data
  /// bytes tiled from byte `disp`. Filetype must describe at least one
  /// data byte and flatten to monotone regions.
  Status SetView(FileOffset disp, io::Datatype filetype);

  /// Independent access at `view_offset` bytes into the view's data
  /// stream, executed as native list I/O.
  Status ReadAt(ByteCount view_offset, std::span<std::byte> out);
  Status WriteAt(ByteCount view_offset, std::span<const std::byte> data);

  /// Collective two-phase access: every rank calls with its own offset
  /// and buffer; aggregators (all ranks) each own an equal share of the
  /// aggregate byte range and touch the file contiguously.
  Status ReadAtAll(ByteCount view_offset, std::span<std::byte> out);
  Status WriteAtAll(ByteCount view_offset, std::span<const std::byte> data);

  /// Collective close (flushes sizes; barriers the group).
  Status Close();

  void set_hints(CollectiveHints hints) { hints_ = hints; }

  /// File extents corresponding to [view_offset, +length) of the view's
  /// data stream (exposed for tests).
  ExtentList ViewSlice(ByteCount view_offset, ByteCount length) const;

  struct Stats {
    std::uint64_t collective_calls = 0;
    std::uint64_t exchange_bytes = 0;   // shipped between ranks
    std::uint64_t aggregator_reads = 0; // contiguous file ops issued
    std::uint64_t aggregator_writes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  MpiFile(Client* client, Group* group, Rank rank, Client::Fd fd)
      : client_(client), group_(group), rank_(rank), fd_(fd) {}

  struct DomainPieces {
    ExtentList extents;
    ByteBuffer data;  // write path only
  };

  /// Aggregate range and per-aggregator domain of the collective access.
  struct DomainMap {
    FileOffset lo = 0;
    FileOffset hi = 0;
    std::uint32_t aggregators = 1;
    /// Domain of rank r; empty for non-aggregator ranks (r >= aggregators).
    Extent DomainOf(Rank r) const;
  };
  Result<DomainMap> AgreeOnDomains(std::span<const Extent> my_extents);
  std::uint32_t AggregatorCount() const {
    return hints_.cb_nodes == 0
               ? group_->size()
               : std::min(hints_.cb_nodes, group_->size());
  }

  Status TwoPhaseWrite(std::span<const Extent> my_extents,
                       std::span<const std::byte> data);
  Status TwoPhaseRead(std::span<const Extent> my_extents,
                      std::span<std::byte> out);

  Client* client_;
  Group* group_;
  Rank rank_;
  Client::Fd fd_;
  FileOffset view_disp_ = 0;
  std::optional<io::Datatype> view_type_;  // nullopt: identity view
  CollectiveHints hints_;
  Stats stats_;
};

}  // namespace pvfs::mpiio
