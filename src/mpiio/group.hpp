// In-process communicator for collective I/O: the subset of MPI a
// two-phase implementation needs — barrier, allgather, all-to-all — over
// rank threads of one process group.
//
// Phases are separated by barriers; each collective call must be entered
// by every rank of the group (standard MPI semantics).
#pragma once

#include <barrier>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace pvfs::mpiio {

class Group {
 public:
  explicit Group(std::uint32_t size)
      : size_(size),
        barrier_(static_cast<std::ptrdiff_t>(size)),
        blob_matrix_(size * size),
        word_board_(size) {}

  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  std::uint32_t size() const { return size_; }

  void Barrier() { barrier_.arrive_and_wait(); }

  /// Each rank contributes one value; everyone receives all of them in
  /// rank order.
  std::vector<std::uint64_t> AllGather(Rank me, std::uint64_t value) {
    word_board_[me] = value;
    Barrier();
    std::vector<std::uint64_t> out = word_board_;
    Barrier();  // board reusable after everyone copied
    return out;
  }

  /// Personalized exchange: `outgoing[d]` goes to rank d; returns the
  /// blobs every rank addressed to `me`, indexed by source rank.
  std::vector<ByteBuffer> AllToAll(Rank me, std::vector<ByteBuffer> outgoing) {
    assert(outgoing.size() == size_);
    for (Rank d = 0; d < size_; ++d) {
      blob_matrix_[me * size_ + d] = std::move(outgoing[d]);
    }
    Barrier();
    std::vector<ByteBuffer> incoming(size_);
    for (Rank s = 0; s < size_; ++s) {
      incoming[s] = std::move(blob_matrix_[s * size_ + me]);
    }
    Barrier();  // matrix reusable after everyone drained their column
    return incoming;
  }

 private:
  std::uint32_t size_;
  std::barrier<> barrier_;
  std::vector<ByteBuffer> blob_matrix_;  // [source][dest]
  std::vector<std::uint64_t> word_board_;
};

}  // namespace pvfs::mpiio
