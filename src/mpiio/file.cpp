#include "mpiio/file.hpp"

#include <algorithm>

#include "common/wire.hpp"

namespace pvfs::mpiio {

namespace {

/// Stream position of file offset `pos` within sorted-disjoint extents
/// (pos must lie inside one of them).
ByteCount StreamPosOf(std::span<const Extent> extents,
                      std::span<const ByteCount> prefix, FileOffset pos) {
  auto it = std::upper_bound(
      extents.begin(), extents.end(), pos,
      [](FileOffset p, const Extent& e) { return p < e.offset; });
  size_t idx = static_cast<size_t>(it - extents.begin()) - 1;
  return prefix[idx] + (pos - extents[idx].offset);
}

std::vector<ByteCount> PrefixSums(std::span<const Extent> extents) {
  std::vector<ByteCount> prefix;
  prefix.reserve(extents.size());
  ByteCount acc = 0;
  for (const Extent& e : extents) {
    prefix.push_back(acc);
    acc += e.length;
  }
  return prefix;
}

void EncodePieces(WireWriter& w, std::span<const Extent> pieces) {
  w.U32(static_cast<std::uint32_t>(pieces.size()));
  for (const Extent& e : pieces) {
    w.U64(e.offset);
    w.U64(e.length);
  }
}

Result<ExtentList> DecodePieces(WireReader& r) {
  PVFS_ASSIGN_OR_RETURN(std::uint32_t count, r.U32());
  ExtentList pieces;
  pieces.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Extent e;
    PVFS_ASSIGN_OR_RETURN(e.offset, r.U64());
    PVFS_ASSIGN_OR_RETURN(e.length, r.U64());
    pieces.push_back(e);
  }
  return pieces;
}

}  // namespace

Result<MpiFile> MpiFile::Open(Client* client, Group* group, Rank rank,
                              const std::string& name,
                              std::optional<Striping> striping) {
  if (striping.has_value()) {
    if (rank == 0) {
      auto fd = client->Create(name, *striping);
      if (fd.ok()) {
        // Created through a throwaway descriptor; the real one is opened
        // below, uniformly across ranks.
        (void)client->Close(*fd);
      } else if (fd.status().code() != ErrorCode::kAlreadyExists) {
        group->Barrier();
        return fd.status();
      }
    }
    group->Barrier();  // create happens-before any open
  }
  PVFS_ASSIGN_OR_RETURN(Client::Fd fd, client->Open(name));
  return MpiFile(client, group, rank, fd);
}

Status MpiFile::SetView(FileOffset disp, io::Datatype filetype) {
  if (filetype.size() == 0) {
    return InvalidArgument("view filetype holds no data bytes");
  }
  if (filetype.lower_bound() < 0) {
    return InvalidArgument("view filetype has negative lower bound");
  }
  // Two-phase and the prefix search both need monotone views.
  ExtentList one_tile = filetype.Flatten(disp, 1);
  if (!IsSortedDisjoint(one_tile)) {
    return Unimplemented("non-monotone filetypes are not supported");
  }
  view_disp_ = disp;
  view_type_ = std::move(filetype);
  return Status::Ok();
}

ExtentList MpiFile::ViewSlice(ByteCount view_offset, ByteCount length) const {
  if (length == 0) return {};
  if (!view_type_.has_value()) {
    return {Extent{view_disp_ + view_offset, length}};
  }
  const io::Datatype& type = *view_type_;
  ByteCount tile = type.size();
  std::uint64_t first_tile = view_offset / tile;
  ByteCount skip = view_offset % tile;
  std::uint64_t tiles = (skip + length + tile - 1) / tile;
  ExtentList flat = type.Flatten(
      view_disp_ + first_tile * type.extent(), tiles);
  return SliceStream(flat, skip, length);
}

Status MpiFile::ReadAt(ByteCount view_offset, std::span<std::byte> out) {
  ExtentList file = ViewSlice(view_offset, out.size());
  const Extent mem[] = {{0, out.size()}};
  return client_->ReadList(fd_, mem, out, file);
}

Status MpiFile::WriteAt(ByteCount view_offset,
                        std::span<const std::byte> data) {
  ExtentList file = ViewSlice(view_offset, data.size());
  const Extent mem[] = {{0, data.size()}};
  return client_->WriteList(fd_, mem, data, file);
}

Extent MpiFile::DomainMap::DomainOf(Rank r) const {
  if (r >= aggregators) return Extent{hi, 0};  // not an aggregator
  ByteCount span = hi - lo;
  ByteCount share = (span + aggregators - 1) / aggregators;
  FileOffset begin = std::min<FileOffset>(hi, lo + r * share);
  FileOffset end = std::min<FileOffset>(hi, begin + share);
  return Extent{begin, end - begin};
}

Result<MpiFile::DomainMap> MpiFile::AgreeOnDomains(
    std::span<const Extent> my_extents) {
  FileOffset my_lo = static_cast<FileOffset>(-1);
  FileOffset my_hi = 0;
  if (auto bound = BoundingExtent(my_extents)) {
    my_lo = bound->offset;
    my_hi = bound->end();
  }
  std::vector<std::uint64_t> lows = group_->AllGather(rank_, my_lo);
  std::vector<std::uint64_t> highs = group_->AllGather(rank_, my_hi);
  DomainMap map;
  map.aggregators = AggregatorCount();
  map.lo = *std::min_element(lows.begin(), lows.end());
  map.hi = *std::max_element(highs.begin(), highs.end());
  if (map.lo == static_cast<FileOffset>(-1)) {
    map.lo = map.hi = 0;  // nobody accesses anything
  }
  // Align domain boundaries to stripe units so aggregator requests map to
  // whole stripes (ROMIO aligns to the file system block for the same
  // reason).
  auto meta = client_->DescribeFd(fd_);
  if (meta.ok() && meta->striping.ssize > 0) {
    map.lo -= map.lo % meta->striping.ssize;
  }
  return map;
}

Status MpiFile::WriteAtAll(ByteCount view_offset,
                           std::span<const std::byte> data) {
  ++stats_.collective_calls;
  ExtentList extents = ViewSlice(view_offset, data.size());
  if (!hints_.cb_enable) {
    const Extent mem[] = {{0, data.size()}};
    Status status = client_->WriteList(fd_, mem, data, extents);
    group_->Barrier();
    return status;
  }
  if (!IsSortedDisjoint(extents)) {
    return Unimplemented("two-phase requires monotone view slices");
  }
  return TwoPhaseWrite(extents, data);
}

Status MpiFile::ReadAtAll(ByteCount view_offset, std::span<std::byte> out) {
  ++stats_.collective_calls;
  ExtentList extents = ViewSlice(view_offset, out.size());
  if (!hints_.cb_enable) {
    const Extent mem[] = {{0, out.size()}};
    Status status = client_->ReadList(fd_, mem, out, extents);
    group_->Barrier();
    return status;
  }
  if (!IsSortedDisjoint(extents)) {
    return Unimplemented("two-phase requires monotone view slices");
  }
  return TwoPhaseRead(extents, out);
}

Status MpiFile::TwoPhaseWrite(std::span<const Extent> my_extents,
                              std::span<const std::byte> data) {
  PVFS_ASSIGN_OR_RETURN(DomainMap map, AgreeOnDomains(my_extents));
  const std::uint32_t ranks = group_->size();
  std::vector<ByteCount> prefix = PrefixSums(my_extents);

  // Phase 1: ship each domain owner its pieces (extents + bytes).
  std::vector<ByteBuffer> outgoing(ranks);
  for (Rank d = 0; d < ranks; ++d) {
    ExtentList pieces = ClipToWindow(my_extents, map.DomainOf(d));
    WireWriter w;
    EncodePieces(w, pieces);
    for (const Extent& piece : pieces) {
      ByteCount at = StreamPosOf(my_extents, prefix, piece.offset);
      w.Raw(data.subspan(at, piece.length));
      stats_.exchange_bytes += piece.length;
    }
    outgoing[d] = w.Take();
  }
  std::vector<ByteBuffer> incoming = group_->AllToAll(rank_, std::move(outgoing));

  // Phase 2: this rank aggregates its own domain.
  struct SourcePieces {
    ExtentList extents;
    std::span<const std::byte> data;
  };
  std::vector<SourcePieces> sources;
  FileOffset lo = static_cast<FileOffset>(-1);
  FileOffset hi = 0;
  ExtentList all_pieces;
  for (const ByteBuffer& blob : incoming) {
    WireReader r(blob);
    PVFS_ASSIGN_OR_RETURN(ExtentList pieces, DecodePieces(r));
    ByteCount bytes = TotalBytes(pieces);
    if (r.remaining() != bytes) {
      return ProtocolError("two-phase piece framing mismatch");
    }
    size_t header = blob.size() - bytes;  // data rides at the blob's tail
    for (const Extent& piece : pieces) {
      if (piece.empty()) continue;
      lo = std::min(lo, piece.offset);
      hi = std::max(hi, piece.end());
      all_pieces.push_back(piece);
    }
    sources.push_back(SourcePieces{
        std::move(pieces),
        std::span<const std::byte>{blob}.subspan(header, bytes)});
  }

  Status status = Status::Ok();
  if (hi > lo) {
    ByteBuffer staging(hi - lo);
    // Read-modify-write only if the received pieces leave holes.
    ExtentList coverage = NormalizeSet(all_pieces);
    bool full = coverage.size() == 1 && coverage[0].offset == lo &&
                coverage[0].end() == hi;
    if (!full) {
      status = client_->Read(fd_, lo, staging);
      ++stats_.aggregator_reads;
    }
    if (status.ok()) {
      for (const SourcePieces& src : sources) {
        ByteCount pos = 0;
        for (const Extent& piece : src.extents) {
          std::copy_n(src.data.begin() + static_cast<std::ptrdiff_t>(pos),
                      piece.length,
                      staging.begin() +
                          static_cast<std::ptrdiff_t>(piece.offset - lo));
          pos += piece.length;
        }
      }
      status = client_->Write(fd_, lo, staging);
      ++stats_.aggregator_writes;
    }
  }
  // Writes must be visible to every rank on return.
  group_->Barrier();
  return status;
}

Status MpiFile::TwoPhaseRead(std::span<const Extent> my_extents,
                             std::span<std::byte> out) {
  PVFS_ASSIGN_OR_RETURN(DomainMap map, AgreeOnDomains(my_extents));
  const std::uint32_t ranks = group_->size();
  std::vector<ByteCount> prefix = PrefixSums(my_extents);

  // Phase 1: tell each domain owner which pieces we need.
  std::vector<ByteBuffer> requests(ranks);
  for (Rank d = 0; d < ranks; ++d) {
    ExtentList pieces = ClipToWindow(my_extents, map.DomainOf(d));
    WireWriter w;
    EncodePieces(w, pieces);
    requests[d] = w.Take();
  }
  std::vector<ByteBuffer> wanted = group_->AllToAll(rank_, std::move(requests));

  // Aggregate: read this domain's covering span once, serve every source.
  std::vector<ExtentList> source_pieces(ranks);
  FileOffset lo = static_cast<FileOffset>(-1);
  FileOffset hi = 0;
  for (Rank s = 0; s < ranks; ++s) {
    WireReader r(wanted[s]);
    PVFS_ASSIGN_OR_RETURN(source_pieces[s], DecodePieces(r));
    for (const Extent& piece : source_pieces[s]) {
      if (piece.empty()) continue;
      lo = std::min(lo, piece.offset);
      hi = std::max(hi, piece.end());
    }
  }

  std::vector<ByteBuffer> replies(ranks);
  if (hi > lo) {
    ByteBuffer staging(hi - lo);
    PVFS_RETURN_IF_ERROR(client_->Read(fd_, lo, staging));
    ++stats_.aggregator_reads;
    for (Rank s = 0; s < ranks; ++s) {
      ByteBuffer reply;
      reply.reserve(TotalBytes(source_pieces[s]));
      for (const Extent& piece : source_pieces[s]) {
        auto begin = staging.begin() +
                     static_cast<std::ptrdiff_t>(piece.offset - lo);
        reply.insert(reply.end(), begin,
                     begin + static_cast<std::ptrdiff_t>(piece.length));
        stats_.exchange_bytes += piece.length;
      }
      replies[s] = std::move(reply);
    }
  }

  // Phase 2: collect our bytes from every aggregator and scatter them.
  std::vector<ByteBuffer> received = group_->AllToAll(rank_, std::move(replies));
  for (Rank d = 0; d < ranks; ++d) {
    ExtentList pieces = ClipToWindow(my_extents, map.DomainOf(d));
    ByteCount pos = 0;
    if (received[d].size() != TotalBytes(pieces)) {
      return Internal("two-phase read reply size mismatch");
    }
    for (const Extent& piece : pieces) {
      ByteCount at = StreamPosOf(my_extents, prefix, piece.offset);
      std::copy_n(received[d].begin() + static_cast<std::ptrdiff_t>(pos),
                  piece.length,
                  out.begin() + static_cast<std::ptrdiff_t>(at));
      pos += piece.length;
    }
  }
  group_->Barrier();
  return Status::Ok();
}

Status MpiFile::Close() {
  Status status = client_->Close(fd_);
  group_->Barrier();
  return status;
}

}  // namespace pvfs::mpiio
