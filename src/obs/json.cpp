#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pvfs::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", precision, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      out += probe;
      return;
    }
  }
  out += buf;
}

void Newline(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent * depth), ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Document() {
    PVFS_ASSIGN_OR_RETURN(JsonValue v, Value());
    SkipWs();
    if (pos_ != text_.size()) {
      return InvalidArgument("json: trailing garbage at offset " +
                             std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> Value() {
    SkipWs();
    if (pos_ >= text_.size()) return InvalidArgument("json: truncated");
    char c = text_[pos_];
    if (c == '{') return ObjectValue();
    if (c == '[') return ArrayValue();
    if (c == '"') {
      PVFS_ASSIGN_OR_RETURN(std::string s, StringToken());
      return JsonValue(std::move(s));
    }
    if (ConsumeWord("null")) return JsonValue::Null();
    if (ConsumeWord("true")) return JsonValue(true);
    if (ConsumeWord("false")) return JsonValue(false);
    return NumberValue();
  }

  Result<JsonValue> NumberValue() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_integer = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_integer = false;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return InvalidArgument("json: bad number at offset " +
                             std::to_string(start));
    }
    if (is_integer) {
      if (token[0] == '-') {
        std::int64_t v = 0;
        auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec == std::errc() && p == token.data() + token.size()) {
          return JsonValue(v);
        }
      } else {
        std::uint64_t v = 0;
        auto [p, ec] =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec == std::errc() && p == token.data() + token.size()) {
          return JsonValue(v);
        }
      }
    }
    double d = 0.0;
    std::string owned(token);
    if (std::sscanf(owned.c_str(), "%lf", &d) != 1) {
      return InvalidArgument("json: bad number '" + owned + "'");
    }
    return JsonValue(d);
  }

  Result<std::string> StringToken() {
    if (!Consume('"')) return InvalidArgument("json: expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return InvalidArgument("json: truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return InvalidArgument("json: bad \\u escape");
            }
            // ASCII + Latin-1 coverage is enough for our schemas.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return InvalidArgument("json: bad escape");
        }
      } else {
        out += c;
      }
    }
    return InvalidArgument("json: unterminated string");
  }

  Result<JsonValue> ArrayValue() {
    (void)Consume('[');
    JsonValue out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return out;
    while (true) {
      PVFS_ASSIGN_OR_RETURN(JsonValue v, Value());
      out.Append(std::move(v));
      SkipWs();
      if (Consume(']')) return out;
      if (!Consume(',')) return InvalidArgument("json: expected , or ]");
    }
  }

  Result<JsonValue> ObjectValue() {
    (void)Consume('{');
    JsonValue out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return out;
    while (true) {
      SkipWs();
      PVFS_ASSIGN_OR_RETURN(std::string key, StringToken());
      SkipWs();
      if (!Consume(':')) return InvalidArgument("json: expected :");
      PVFS_ASSIGN_OR_RETURN(JsonValue v, Value());
      out.Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume('}')) return out;
      if (!Consume(',')) return InvalidArgument("json: expected , or }");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kInt: out += std::to_string(int_); return;
    case Kind::kUint: out += std::to_string(uint_); return;
    case Kind::kDouble: AppendDouble(out, double_); return;
    case Kind::kString: AppendEscaped(out, string_); return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        Newline(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        Newline(out, indent, depth + 1);
        AppendEscaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Document();
}

}  // namespace pvfs::obs
