// Metrics registry: named counters, gauges and latency histograms with
// label sets ({method=list, op=read, server=3}, ...), snapshottable as
// JSON. The unified home for the per-layer attribution the paper's
// evaluation is built on — request counts x per-request overhead vs
// bytes x bandwidth — replacing the ad-hoc counter structs that used to
// be scattered across sim::FaultCounters, Client retry atomics, iod
// stats and SimRunResult (adapters in obs/export.hpp map those onto a
// registry).
//
// Concurrency: instrument handles returned by a Registry are stable for
// the registry's lifetime; Counter/Gauge updates are lock-free atomics,
// Histogram::Observe takes a short per-histogram mutex. Lookup
// (Counter()/Gauge()/Histogram()) takes the registry mutex — call it once
// and keep the handle on hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace pvfs::obs {

/// One metric label. Label sets are canonicalized (sorted by key) so
/// {a=1, b=2} and {b=2, a=1} address the same instrument.
struct Label {
  std::string key;
  std::string value;

  friend bool operator==(const Label&, const Label&) = default;
};
using Labels = std::vector<Label>;

/// Monotonic counter.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Counters are monotonic; Set exists for mirroring an externally
  /// accumulated total (the migration adapters in obs/export.hpp).
  void Set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-boundary histogram with streaming min/max/sum. Bounds are
/// canonicalized at construction: sorted ascending, duplicates and
/// non-finite values dropped — non-increasing input can never misbucket
/// (the sim::Histogram bug this layer regression-tests).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double x);

  /// q in [0,1]: percentile estimated by linear interpolation inside the
  /// owning bucket, clamped to the observed min/max. NaN when empty.
  double Quantile(double q) const;

  std::uint64_t count() const;
  double sum() const;
  double min() const;  // NaN when empty
  double max() const;  // NaN when empty
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> counts() const;

  /// {count, sum, min, max, p50, p95, p99} — min/max/percentiles are null
  /// when the histogram is empty, so empty and zero-latency runs are
  /// distinguishable.
  JsonValue SummaryJson() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-spaced bucket boundaries covering [lo, hi] with `per_decade`
/// buckets per factor of 10 — the default latency bucketing.
std::vector<double> LogBuckets(double lo, double hi, int per_decade = 5);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Returned references live as long as the registry.
  class Counter& Counter(std::string_view name, Labels labels = {});
  class Gauge& Gauge(std::string_view name, Labels labels = {});
  /// `upper_bounds` is used only on first creation of (name, labels).
  class Histogram& Histogram(std::string_view name, Labels labels = {},
                             std::vector<double> upper_bounds = {});

  /// Registry snapshot:
  ///   {"counters":[{"name":..,"labels":{..},"value":..},...],
  ///    "gauges":[...],
  ///    "histograms":[{"name":..,"labels":{..},"count":..,"sum":..,
  ///                   "min":..|null,"max":..|null,
  ///                   "p50":..|null,"p95":..|null,"p99":..|null},...]}
  JsonValue Snapshot() const;
  std::string SnapshotJson(int indent = 2) const;

  /// Drops every instrument (handles become dangling; test helper).
  void Reset();

  /// The process-wide default registry.
  static Registry& Global();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  template <typename T>
  static T* FindOrNull(std::vector<Entry<T>>& entries, std::string_view name,
                       const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<Entry<class Counter>> counters_;
  std::vector<Entry<class Gauge>> gauges_;
  std::vector<Entry<class Histogram>> histograms_;
};

/// Canonical (sorted-by-key) copy of `labels`.
Labels CanonicalLabels(Labels labels);

}  // namespace pvfs::obs
