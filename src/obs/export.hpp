// Adapters migrating the repo's pre-existing counter structs onto the
// metrics registry and into JSON: sim::FaultCounters, sim::Accumulator,
// sim::Histogram. Component-owned counters (ClientStats, retry counters,
// IoDaemon::Stats, Manager::Stats) export themselves via their classes'
// ExportMetrics/StatsJson methods; SimRunResult exports through
// bench::BenchJson (bench/bench_util.hpp), which builds on these.
#pragma once

#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace pvfs::obs {

/// Mirror every fault counter into `reg` as counters named
/// "fault.<field>" with the given base labels.
void ExportFaultCounters(Registry& reg, const sim::FaultCounters& faults,
                         const Labels& base = {});

/// {"frames_dropped":.., ...,"total":..}.
JsonValue FaultCountersJson(const sim::FaultCounters& faults);

/// {count, sum, mean, min, max} — min/max are null when the accumulator
/// is empty (never 0.0: empty and all-zero samples must be
/// distinguishable).
JsonValue AccumulatorJson(const sim::Accumulator& acc);

/// {count, sum, mean, min, max, p50, p95, p99}; quantile fields are null
/// when empty.
JsonValue HistogramJson(const sim::Histogram& hist);

}  // namespace pvfs::obs
