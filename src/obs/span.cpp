#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>

#include "common/request_id.hpp"

namespace pvfs::obs {

namespace {

bool EnvEnabled() {
  const char* v = std::getenv("PVFS_OBS_SPANS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::atomic<bool> g_spans_enabled{EnvEnabled()};
std::atomic<std::uint32_t> g_next_thread_ordinal{0};

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The collector: finished spans from exited threads plus pointers to the
/// live per-thread buffers.
class Collector {
 public:
  static Collector& Instance() {
    static Collector* instance = new Collector();  // outlives all threads
    return *instance;
  }

  void Register(std::vector<SpanRecord>* buffer) {
    std::lock_guard lock(mutex_);
    live_.push_back(buffer);
  }

  void Retire(std::vector<SpanRecord>* buffer) {
    std::lock_guard lock(mutex_);
    retired_.insert(retired_.end(), buffer->begin(), buffer->end());
    std::erase(live_, buffer);
  }

  std::vector<SpanRecord> Drain() {
    std::lock_guard lock(mutex_);
    std::vector<SpanRecord> out = std::move(retired_);
    retired_ = {};
    for (std::vector<SpanRecord>* buffer : live_) {
      out.insert(out.end(), buffer->begin(), buffer->end());
      buffer->clear();
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.start_ns < b.start_ns;
              });
    return out;
  }

 private:
  std::mutex mutex_;
  std::vector<std::vector<SpanRecord>*> live_;
  std::vector<SpanRecord> retired_;
};

/// Per-thread state, registered with the collector for its lifetime.
/// Buffer mutation is single-threaded; Drain() synchronizes through the
/// collector mutex, which Append also takes (spans are off on hot paths
/// by default, so the lock is fine when tracing).
struct ThreadBuffer {
  ThreadBuffer()
      : ordinal(g_next_thread_ordinal.fetch_add(
            1, std::memory_order_relaxed)) {
    Collector::Instance().Register(&spans);
  }
  ~ThreadBuffer() { Collector::Instance().Retire(&spans); }

  std::vector<SpanRecord> spans;
  std::uint32_t ordinal;
  std::uint32_t depth = 0;
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

std::mutex& CollectorMutex() {
  // Shared with Collector::mutex_ conceptually; Append uses the
  // collector's lock via these helpers to stay race-free with Drain().
  static std::mutex* m = new std::mutex();
  return *m;
}

}  // namespace

void SetSpanTracing(bool enabled) {
  g_spans_enabled.store(enabled, std::memory_order_relaxed);
}

bool SpanTracingEnabled() {
  return g_spans_enabled.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> DrainSpans() {
  std::lock_guard lock(CollectorMutex());
  return Collector::Instance().Drain();
}

JsonValue SpansJson(const std::vector<SpanRecord>& spans) {
  JsonValue out = JsonValue::Array();
  for (const SpanRecord& s : spans) {
    JsonValue row = JsonValue::Object();
    row.Set("name", JsonValue(s.name));
    row.Set("request_id", JsonValue(s.request_id));
    row.Set("start_ns", JsonValue(s.start_ns));
    row.Set("duration_ns", JsonValue(s.duration_ns));
    row.Set("thread", JsonValue(s.thread));
    row.Set("depth", JsonValue(s.depth));
    out.Append(std::move(row));
  }
  return out;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!SpanTracingEnabled()) return;
  armed_ = true;
  ++LocalBuffer().depth;
  start_ns_ = NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  const std::uint64_t end_ns = NowNs();
  ThreadBuffer& buffer = LocalBuffer();
  SpanRecord record;
  record.name = name_;
  record.request_id = CurrentRequestId();
  record.start_ns = start_ns_;
  record.duration_ns = end_ns - start_ns_;
  record.thread = buffer.ordinal;
  record.depth = --buffer.depth;
  std::lock_guard lock(CollectorMutex());
  buffer.spans.push_back(record);
}

}  // namespace pvfs::obs
