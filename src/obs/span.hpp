// Lightweight span tracing: PVFS_SPAN("client.exchange")-style scoped
// timers that record into thread-local buffers, stamped with the ambient
// request id (common/request_id.hpp) so client -> manager -> iod causality
// can be stitched per exchange.
//
// Cost discipline: tracing is off by default. A disabled ScopedSpan is two
// relaxed atomic loads and no clock reads, no allocation, no locking —
// the fig09-12 sim results are bit-identical either way (spans never feed
// back into timing; they only observe). Enable with SetSpanTracing(true)
// or PVFS_OBS_SPANS=1 in the environment.
//
// Buffers are thread-local and registered with a process-wide collector;
// DrainSpans() gathers the records of every live and exited thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace pvfs::obs {

/// One finished span. Times come from a monotonic clock, ns since an
/// arbitrary process epoch.
struct SpanRecord {
  const char* name = "";        // static string (macro literal)
  std::uint64_t request_id = 0; // ambient id at entry (0 = none)
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;     // small per-thread ordinal
  std::uint32_t depth = 0;      // nesting depth within the thread
};

/// Globally enable/disable span recording (default: disabled).
void SetSpanTracing(bool enabled);
bool SpanTracingEnabled();

/// Move every recorded span (all threads, finished spans only) out of the
/// collector, ordered by start time.
std::vector<SpanRecord> DrainSpans();

/// Spans as a JSON array [{name, request_id, start_ns, duration_ns,
/// thread, depth}, ...].
JsonValue SpansJson(const std::vector<SpanRecord>& spans);

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

#define PVFS_SPAN_CONCAT2(a, b) a##b
#define PVFS_SPAN_CONCAT(a, b) PVFS_SPAN_CONCAT2(a, b)
/// Scoped span covering the rest of the enclosing block.
#define PVFS_SPAN(name) \
  ::pvfs::obs::ScopedSpan PVFS_SPAN_CONCAT(pvfs_span_, __LINE__)(name)

}  // namespace pvfs::obs
