#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pvfs::obs {

// ---- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::erase_if(bounds_, [](double b) { return !std::isfinite(b); });
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double x) {
  std::lock_guard lock(mutex_);
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard lock(mutex_);
  return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::max() const {
  std::lock_guard lock(mutex_);
  return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::lock_guard lock(mutex_);
  return counts_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard lock(mutex_);
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts_[i];
    if (static_cast<double>(seen) < rank) continue;
    // The target rank lands in bucket i: interpolate linearly between its
    // boundaries, clamped to the observed extremes.
    double lo = i == 0 ? min_ : bounds_[i - 1];
    double hi = i < bounds_.size() ? bounds_[i] : max_;
    lo = std::max(lo, min_);
    hi = std::min(hi, max_);
    if (hi <= lo) return lo;
    const double frac =
        (rank - before) / static_cast<double>(counts_[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max_;
}

JsonValue Histogram::SummaryJson() const {
  JsonValue out = JsonValue::Object();
  {
    std::lock_guard lock(mutex_);
    out.Set("count", JsonValue(count_));
    out.Set("sum", JsonValue(sum_));
    if (count_ == 0) {
      // Empty: min/max/percentiles are null, never 0.0 — a run with no
      // samples must not look like a run of zero-latency samples.
      out.Set("min", JsonValue::Null());
      out.Set("max", JsonValue::Null());
      out.Set("p50", JsonValue::Null());
      out.Set("p95", JsonValue::Null());
      out.Set("p99", JsonValue::Null());
      return out;
    }
    out.Set("min", JsonValue(min_));
    out.Set("max", JsonValue(max_));
  }
  out.Set("p50", JsonValue(Quantile(0.50)));
  out.Set("p95", JsonValue(Quantile(0.95)));
  out.Set("p99", JsonValue(Quantile(0.99)));
  return out;
}

std::vector<double> LogBuckets(double lo, double hi, int per_decade) {
  std::vector<double> bounds;
  if (lo <= 0 || hi <= lo || per_decade <= 0) return bounds;
  const double factor = std::pow(10.0, 1.0 / per_decade);
  for (double b = lo; b < hi * factor; b *= factor) {
    bounds.push_back(b);
    if (bounds.size() > 512) break;  // guard absurd ranges
  }
  return bounds;
}

// ---- Registry ---------------------------------------------------------------

Labels CanonicalLabels(Labels labels) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  return labels;
}

template <typename T>
T* Registry::FindOrNull(std::vector<Entry<T>>& entries, std::string_view name,
                        const Labels& labels) {
  for (Entry<T>& e : entries) {
    if (e.name == name && e.labels == labels) return e.instrument.get();
  }
  return nullptr;
}

Counter& Registry::Counter(std::string_view name, Labels labels) {
  labels = CanonicalLabels(std::move(labels));
  std::lock_guard lock(mutex_);
  if (auto* found = FindOrNull(counters_, name, labels)) return *found;
  counters_.push_back(Entry<class Counter>{
      std::string(name), std::move(labels), std::make_unique<class Counter>()});
  return *counters_.back().instrument;
}

Gauge& Registry::Gauge(std::string_view name, Labels labels) {
  labels = CanonicalLabels(std::move(labels));
  std::lock_guard lock(mutex_);
  if (auto* found = FindOrNull(gauges_, name, labels)) return *found;
  gauges_.push_back(Entry<class Gauge>{
      std::string(name), std::move(labels), std::make_unique<class Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& Registry::Histogram(std::string_view name, Labels labels,
                               std::vector<double> upper_bounds) {
  labels = CanonicalLabels(std::move(labels));
  std::lock_guard lock(mutex_);
  if (auto* found = FindOrNull(histograms_, name, labels)) return *found;
  if (upper_bounds.empty()) {
    upper_bounds = LogBuckets(1e-6, 1e3);  // seconds: 1 us .. ~17 min
  }
  histograms_.push_back(
      Entry<class Histogram>{std::string(name), std::move(labels),
                             std::make_unique<class Histogram>(
                                 std::move(upper_bounds))});
  return *histograms_.back().instrument;
}

namespace {

JsonValue LabelsJson(const Labels& labels) {
  JsonValue out = JsonValue::Object();
  for (const Label& l : labels) out.Set(l.key, JsonValue(l.value));
  return out;
}

}  // namespace

JsonValue Registry::Snapshot() const {
  std::lock_guard lock(mutex_);
  JsonValue out = JsonValue::Object();
  JsonValue counters = JsonValue::Array();
  for (const auto& e : counters_) {
    JsonValue row = JsonValue::Object();
    row.Set("name", JsonValue(e.name));
    row.Set("labels", LabelsJson(e.labels));
    row.Set("value", JsonValue(e.instrument->value()));
    counters.Append(std::move(row));
  }
  out.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Array();
  for (const auto& e : gauges_) {
    JsonValue row = JsonValue::Object();
    row.Set("name", JsonValue(e.name));
    row.Set("labels", LabelsJson(e.labels));
    row.Set("value", JsonValue(e.instrument->value()));
    gauges.Append(std::move(row));
  }
  out.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::Array();
  for (const auto& e : histograms_) {
    JsonValue row = JsonValue::Object();
    row.Set("name", JsonValue(e.name));
    row.Set("labels", LabelsJson(e.labels));
    JsonValue summary = e.instrument->SummaryJson();
    for (const auto& [k, v] : summary.members()) row.Set(k, v);
    histograms.Append(std::move(row));
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

std::string Registry::SnapshotJson(int indent) const {
  return Snapshot().Dump(indent);
}

void Registry::Reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaked: outlive everything
  return *instance;
}

}  // namespace pvfs::obs
