#include "obs/export.hpp"

#include <cmath>
#include <utility>

namespace pvfs::obs {

namespace {

JsonValue FiniteOrNull(double v) {
  return std::isfinite(v) ? JsonValue(v) : JsonValue::Null();
}

void MirrorCounter(Registry& reg, std::string_view name, const Labels& base,
                   std::uint64_t value) {
  reg.Counter(name, base).Set(value);
}

}  // namespace

void ExportFaultCounters(Registry& reg, const sim::FaultCounters& faults,
                         const Labels& base) {
  MirrorCounter(reg, "fault.frames_dropped", base, faults.frames_dropped);
  MirrorCounter(reg, "fault.frames_duplicated", base,
                faults.frames_duplicated);
  MirrorCounter(reg, "fault.frames_delayed", base, faults.frames_delayed);
  MirrorCounter(reg, "fault.delay_us_injected", base,
                faults.delay_us_injected);
  MirrorCounter(reg, "fault.disk_read_errors", base, faults.disk_read_errors);
  MirrorCounter(reg, "fault.disk_write_errors", base,
                faults.disk_write_errors);
  MirrorCounter(reg, "fault.crashes", base, faults.crashes);
  MirrorCounter(reg, "fault.restarts", base, faults.restarts);
  MirrorCounter(reg, "fault.refused_calls", base, faults.refused_calls);
  MirrorCounter(reg, "fault.retransmits", base, faults.retransmits);
  MirrorCounter(reg, "fault.frames_corrupted", base, faults.frames_corrupted);
  MirrorCounter(reg, "fault.frames_truncated", base, faults.frames_truncated);
  MirrorCounter(reg, "fault.chunks_rotted", base, faults.chunks_rotted);
  MirrorCounter(reg, "fault.torn_writes", base, faults.torn_writes);
}

JsonValue FaultCountersJson(const sim::FaultCounters& faults) {
  JsonValue out = JsonValue::Object();
  out.Set("frames_dropped", JsonValue(faults.frames_dropped));
  out.Set("frames_duplicated", JsonValue(faults.frames_duplicated));
  out.Set("frames_delayed", JsonValue(faults.frames_delayed));
  out.Set("delay_us_injected", JsonValue(faults.delay_us_injected));
  out.Set("disk_read_errors", JsonValue(faults.disk_read_errors));
  out.Set("disk_write_errors", JsonValue(faults.disk_write_errors));
  out.Set("crashes", JsonValue(faults.crashes));
  out.Set("restarts", JsonValue(faults.restarts));
  out.Set("refused_calls", JsonValue(faults.refused_calls));
  out.Set("retransmits", JsonValue(faults.retransmits));
  out.Set("frames_corrupted", JsonValue(faults.frames_corrupted));
  out.Set("frames_truncated", JsonValue(faults.frames_truncated));
  out.Set("chunks_rotted", JsonValue(faults.chunks_rotted));
  out.Set("torn_writes", JsonValue(faults.torn_writes));
  out.Set("total", JsonValue(faults.total()));
  return out;
}

JsonValue AccumulatorJson(const sim::Accumulator& acc) {
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue(acc.count()));
  out.Set("sum", JsonValue(acc.sum()));
  if (acc.empty()) {
    // Accumulator::min()/max() report 0.0 when empty; in JSON that would
    // make a no-sample run indistinguishable from a zero-latency run.
    out.Set("mean", JsonValue::Null());
    out.Set("min", JsonValue::Null());
    out.Set("max", JsonValue::Null());
    return out;
  }
  out.Set("mean", JsonValue(acc.mean()));
  out.Set("min", JsonValue(acc.min()));
  out.Set("max", JsonValue(acc.max()));
  return out;
}

JsonValue HistogramJson(const sim::Histogram& hist) {
  JsonValue out = AccumulatorJson(hist.summary());
  if (hist.summary().empty()) {
    out.Set("p50", JsonValue::Null());
    out.Set("p95", JsonValue::Null());
    out.Set("p99", JsonValue::Null());
    return out;
  }
  out.Set("p50", FiniteOrNull(hist.Quantile(0.50)));
  out.Set("p95", FiniteOrNull(hist.Quantile(0.95)));
  out.Set("p99", FiniteOrNull(hist.Quantile(0.99)));
  return out;
}

}  // namespace pvfs::obs
