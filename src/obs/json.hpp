// Minimal JSON document model for the observability layer: registry
// snapshots, bench exports (BENCH_<name>.json) and the daemon stats-dump
// protocol all speak through this. Self-contained on purpose — the
// container bakes no JSON library, and the schema checker in tools/ needs
// a parser too.
//
// Supported: null, bool, signed/unsigned 64-bit integers (printed
// exactly), double, string, array, object (insertion-ordered, so dumps
// are deterministic).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace pvfs::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(unsigned v) : kind_(Kind::kUint), uint_(v) {}
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(std::string_view s) : kind_(Kind::kString), string_(s) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const {
    switch (kind_) {
      case Kind::kInt: return static_cast<double>(int_);
      case Kind::kUint: return static_cast<double>(uint_);
      case Kind::kDouble: return double_;
      default: return 0.0;
    }
  }
  std::int64_t as_int() const {
    switch (kind_) {
      case Kind::kInt: return int_;
      case Kind::kUint: return static_cast<std::int64_t>(uint_);
      case Kind::kDouble: return static_cast<std::int64_t>(double_);
      default: return 0;
    }
  }
  std::uint64_t as_uint() const {
    return static_cast<std::uint64_t>(as_int());
  }
  const std::string& as_string() const { return string_; }

  // ---- Array access ----------------------------------------------------
  size_t size() const {
    return is_array() ? array_.size() : (is_object() ? object_.size() : 0);
  }
  void Append(JsonValue v) { array_.push_back(std::move(v)); }
  const JsonValue& at(size_t i) const { return array_[i]; }
  const std::vector<JsonValue>& items() const { return array_; }

  // ---- Object access ---------------------------------------------------
  /// Sets key (appending; last write wins on lookup of duplicates).
  void Set(std::string key, JsonValue v) {
    for (auto& [k, existing] : object_) {
      if (k == key) {
        existing = std::move(v);
        return;
      }
    }
    object_.emplace_back(std::move(key), std::move(v));
  }
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  /// Pointer to the member value, or nullptr.
  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

  /// Serialize. indent > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Parse one JSON document (trailing whitespace allowed, trailing
  /// garbage rejected).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace pvfs::obs
