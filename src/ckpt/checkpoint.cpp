#include "ckpt/checkpoint.hpp"

#include "common/wire.hpp"

namespace pvfs::ckpt {

std::uint64_t ArraySpec::GlobalElements() const {
  std::uint64_t n = global_dims.empty() ? 0 : 1;
  for (std::uint64_t d : global_dims) n *= d;
  return n;
}

std::uint64_t ArraySpec::LocalElements() const {
  std::uint64_t n = local_dims.empty() ? 0 : 1;
  for (std::uint64_t d : local_dims) n *= d;
  return n;
}

Status ArraySpec::Validate() const {
  if (elem_size == 0) return InvalidArgument("zero element size");
  if (global_dims.empty()) return InvalidArgument("no dimensions");
  if (local_offset.size() != global_dims.size() ||
      local_dims.size() != global_dims.size()) {
    return InvalidArgument("spec dimension counts disagree");
  }
  for (size_t d = 0; d < global_dims.size(); ++d) {
    if (global_dims[d] == 0) return InvalidArgument("zero global dimension");
    if (local_dims[d] == 0) return InvalidArgument("zero local dimension");
    if (local_offset[d] + local_dims[d] > global_dims[d]) {
      return InvalidArgument("local block exceeds global bounds");
    }
  }
  return Status::Ok();
}

io::Datatype BlockFiletype(const ArraySpec& spec) {
  return io::Datatype::Subarray(spec.global_dims, spec.local_dims,
                                spec.local_offset,
                                io::Datatype::Bytes(spec.elem_size));
}

namespace {

ByteBuffer EncodeHeader(const ArraySpec& spec, std::uint64_t user_tag) {
  WireWriter w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.U64(spec.elem_size);
  w.U64(user_tag);
  w.U32(static_cast<std::uint32_t>(spec.global_dims.size()));
  for (std::uint64_t d : spec.global_dims) w.U64(d);
  ByteBuffer header = w.Take();
  header.resize(kHeaderBytes, std::byte{0});
  return header;
}

Result<CheckpointInfo> DecodeHeader(std::span<const std::byte> raw) {
  WireReader r(raw);
  PVFS_ASSIGN_OR_RETURN(std::uint32_t magic, r.U32());
  if (magic != kMagic) {
    return InvalidArgument("not a pvfs checkpoint (bad magic)");
  }
  CheckpointInfo info;
  PVFS_ASSIGN_OR_RETURN(info.version, r.U32());
  if (info.version != kVersion) {
    return Unimplemented("unsupported checkpoint version " +
                         std::to_string(info.version));
  }
  PVFS_ASSIGN_OR_RETURN(info.elem_size, r.U64());
  PVFS_ASSIGN_OR_RETURN(info.user_tag, r.U64());
  PVFS_ASSIGN_OR_RETURN(std::uint32_t ndims, r.U32());
  if (ndims == 0 || ndims > 16) {
    return InvalidArgument("implausible checkpoint dimensionality");
  }
  info.global_dims.resize(ndims);
  for (std::uint32_t d = 0; d < ndims; ++d) {
    PVFS_ASSIGN_OR_RETURN(info.global_dims[d], r.U64());
  }
  return info;
}

}  // namespace

Status WriteCheckpoint(Client* client, mpiio::Group* group, Rank rank,
                       const std::string& name, const ArraySpec& spec,
                       std::span<const std::byte> local_data,
                       std::uint64_t user_tag, Striping striping) {
  PVFS_RETURN_IF_ERROR(spec.Validate());
  if (local_data.size() != spec.LocalBytes()) {
    return InvalidArgument("local data size does not match block shape");
  }

  auto file = mpiio::MpiFile::Open(client, group, rank, name, striping);
  if (!file.ok()) return file.status();

  if (rank == 0) {
    // Header written through the same descriptor's plain byte view.
    ByteBuffer header = EncodeHeader(spec, user_tag);
    PVFS_RETURN_IF_ERROR(file->WriteAt(0, header));
  }
  group->Barrier();  // header visible before data (and size accounting)

  PVFS_RETURN_IF_ERROR(file->SetView(kHeaderBytes, BlockFiletype(spec)));
  PVFS_RETURN_IF_ERROR(file->WriteAtAll(0, local_data));
  return file->Close();
}

Status ReadCheckpoint(Client* client, mpiio::Group* group, Rank rank,
                      const std::string& name, const ArraySpec& spec,
                      std::span<std::byte> out) {
  PVFS_RETURN_IF_ERROR(spec.Validate());
  if (out.size() != spec.LocalBytes()) {
    return InvalidArgument("output buffer does not match block shape");
  }

  auto file = mpiio::MpiFile::Open(client, group, rank, name);
  if (!file.ok()) return file.status();

  // Validate the header against the expected geometry.
  ByteBuffer header(kHeaderBytes);
  PVFS_RETURN_IF_ERROR(file->ReadAt(0, header));
  auto info = DecodeHeader(header);
  if (!info.ok()) return info.status();
  if (info->elem_size != spec.elem_size ||
      info->global_dims != spec.global_dims) {
    return FailedPrecondition(
        "checkpoint geometry does not match the requested array");
  }

  PVFS_RETURN_IF_ERROR(file->SetView(kHeaderBytes, BlockFiletype(spec)));
  PVFS_RETURN_IF_ERROR(file->ReadAtAll(0, out));
  return file->Close();
}

Result<CheckpointInfo> InspectCheckpoint(Client* client,
                                         const std::string& name) {
  PVFS_ASSIGN_OR_RETURN(Client::Fd fd, client->Open(name));
  ByteBuffer header(kHeaderBytes);
  Status status = client->Read(fd, 0, header);
  (void)client->Close(fd);
  PVFS_RETURN_IF_ERROR(status);
  return DecodeHeader(header);
}

}  // namespace pvfs::ckpt
