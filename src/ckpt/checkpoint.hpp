// Distributed-array checkpointing over PVFS — the FLASH use-case (paper
// §4.3) generalized into a reusable library: every rank owns a block of a
// global n-dimensional array; checkpoints are single striped files written
// collectively (subarray datatypes + two-phase I/O underneath), and
// restart works under a *different* rank decomposition because the file
// layout is the canonical row-major global array.
//
// File layout:
//   [0, kHeaderBytes)      header: magic, version, element size, dims
//   [kHeaderBytes, ...)    array data, row-major (C order)
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "mpiio/file.hpp"

namespace pvfs::ckpt {

inline constexpr std::uint32_t kMagic = 0x5056434Bu;  // "PVCK"
inline constexpr std::uint32_t kVersion = 1;
inline constexpr ByteCount kHeaderBytes = 4096;

/// The global array and this rank's block of it (C order, dims outermost
/// first).
struct ArraySpec {
  ByteCount elem_size = 0;
  std::vector<std::uint64_t> global_dims;
  std::vector<std::uint64_t> local_offset;  // block start per dimension
  std::vector<std::uint64_t> local_dims;    // block shape per dimension

  std::uint64_t GlobalElements() const;
  std::uint64_t LocalElements() const;
  ByteCount LocalBytes() const { return LocalElements() * elem_size; }

  /// Structural validation: nonempty dims, block within bounds.
  Status Validate() const;
};

/// Header metadata as stored in the file.
struct CheckpointInfo {
  std::uint32_t version = kVersion;
  ByteCount elem_size = 0;
  std::vector<std::uint64_t> global_dims;
  std::uint64_t user_tag = 0;  // caller-defined (e.g. iteration number)

  friend bool operator==(const CheckpointInfo&,
                         const CheckpointInfo&) = default;
};

/// Collective: every rank of `group` calls with its own spec/data. Rank 0
/// writes the header (tagged with `user_tag`); all ranks write their
/// blocks with collective two-phase I/O. Creates or overwrites `name`.
Status WriteCheckpoint(Client* client, mpiio::Group* group, Rank rank,
                       const std::string& name, const ArraySpec& spec,
                       std::span<const std::byte> local_data,
                       std::uint64_t user_tag = 0,
                       Striping striping = Striping{0, 8, 16384});

/// Collective restart: validates the header against `spec` (element size
/// and global dims must match; the block decomposition may differ from
/// the writer's) and fills `out` with this rank's block.
Status ReadCheckpoint(Client* client, mpiio::Group* group, Rank rank,
                      const std::string& name, const ArraySpec& spec,
                      std::span<std::byte> out);

/// Reads and decodes the header only (any single rank may call).
Result<CheckpointInfo> InspectCheckpoint(Client* client,
                                         const std::string& name);

/// The subarray filetype selecting this rank's block of the global array
/// (exposed for tests).
io::Datatype BlockFiletype(const ArraySpec& spec);

}  // namespace pvfs::ckpt
