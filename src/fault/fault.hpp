// Deterministic fault injection for the functional file system and the
// simulated cluster: frame drop/duplication/delay, transient iod
// crash-and-restart, and disk read/write error injection.
//
// Every decision is a pure function of (seed, decision site, server,
// per-site sequence number) hashed through SplitMix64 — no shared stream —
// so the fault schedule for a given seed does not depend on thread
// interleaving across endpoints, and two runs of the same workload with
// the same seed inject exactly the same faults (see docs/faults.md for the
// precise determinism guarantee). A config with every probability zero
// never consumes randomness and injects nothing: the zero-overhead
// configuration used by the benchmarks.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/stats.hpp"

namespace pvfs::fault {

/// Probabilities and shape parameters for one fault schedule. Defaults are
/// all-zero: injection disabled, no overhead, no randomness consumed.
struct FaultConfig {
  std::uint64_t seed = 1;

  // ---- Network faults (per client<->iod exchange) -----------------------
  double drop_rate = 0.0;       // frame lost; the client sees a timeout
  double duplicate_rate = 0.0;  // frame delivered twice (idempotency test)
  double delay_rate = 0.0;      // frame held back delay_{min,max}_us
  std::uint64_t delay_min_us = 50;
  std::uint64_t delay_max_us = 500;

  // ---- Storage faults ---------------------------------------------------
  double disk_read_error_rate = 0.0;   // transient media error on read
  double disk_write_error_rate = 0.0;  // transient media error on write

  // ---- Daemon crash-and-restart -----------------------------------------
  /// Per-served-call probability that the target iod crashes. While down
  /// it refuses `crash_down_calls` calls, then restarts with its on-disk
  /// state intact (a daemon restart, not a disk loss).
  double crash_rate = 0.0;
  std::uint32_t crash_down_calls = 4;

  // ---- Data corruption (see docs/integrity.md) --------------------------
  /// P(a frame is bit-flipped in flight) per client<->iod exchange; a
  /// second draw picks the request or the response frame. Detected by the
  /// CRC32C framing layer as kCorruption, which the client retries.
  double frame_corrupt_rate = 0.0;
  /// P(a frame is cut short in flight); direction drawn like corruption.
  double frame_truncate_rate = 0.0;
  /// P(one stored bit rots before a read is served) per iod read. The
  /// store's per-chunk checksum catches it; the journal may repair it.
  double chunk_rot_rate = 0.0;
  /// P(the iod crashes mid-write) per served write: the store is left
  /// with a torn intent (journal or data), the daemon refuses
  /// `torn_down_calls` calls, and recovery replays or rolls back.
  double torn_write_rate = 0.0;
  std::uint32_t torn_down_calls = 2;

  bool enabled() const {
    return drop_rate > 0 || duplicate_rate > 0 || delay_rate > 0 ||
           disk_read_error_rate > 0 || disk_write_error_rate > 0 ||
           crash_rate > 0 || frame_corrupt_rate > 0 ||
           frame_truncate_rate > 0 || chunk_rot_rate > 0 ||
           torn_write_rate > 0;
  }
};

enum class FaultKind : std::uint8_t {
  kFrameDrop,
  kFrameDuplicate,
  kFrameDelay,
  kDiskReadError,
  kDiskWriteError,
  kCrash,
  kRestart,
  kRetransmit,     // simulated retransmission after a dropped frame
  kFrameCorrupt,   // bit flip in flight (detail: 0 = request, 1 = response)
  kFrameTruncate,  // frame cut short (detail: 0 = request, 1 = response)
  kChunkRot,       // stored bit rotted at rest (detail: selector)
  kTornWrite,      // crash mid-write (detail: permille of bytes applied)
};

std::string_view FaultKindName(FaultKind kind);

/// One injected fault, in injection order. `detail` is kind-specific:
/// delay microseconds, refused-calls-until-restart, or retransmit count.
struct FaultEvent {
  std::uint64_t seq = 0;
  FaultKind kind = FaultKind::kFrameDrop;
  ServerId server = 0;
  std::uint64_t detail = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Serializes events to the line-oriented trace form used by the
/// determinism tests and `pvfs_trace`:  `fault <seq> <kind> iod=<s> detail=<n>`.
std::string SerializeFaultEvents(const std::vector<FaultEvent>& events);

// ---- Deterministic hashed-seed randomness ---------------------------------
//
// Every random decision in this repo is a pure function of
// (seed, decision site, stream, per-stream sequence number, draw index)
// hashed through SplitMix64 — never a shared mutable RNG stream — so
// schedules are reproducible for a given seed and independent of thread
// interleaving. FaultInjector uses these internally; the client's
// decorrelated retry jitter (pvfs::RetryPolicy) reuses them with its own
// site constants so retry schedules get the same determinism guarantee.

/// Uniform double in [0,1) for draw `draw` of decision `seq` on `stream`
/// at decision site `site`.
double HashedUniform(std::uint64_t seed, std::uint32_t site,
                     std::uint64_t stream, std::uint64_t seq,
                     std::uint32_t draw);

/// Raw 64-bit hash for the same coordinates (selector material).
std::uint64_t HashedBits(std::uint64_t seed, std::uint32_t site,
                         std::uint64_t stream, std::uint64_t seq,
                         std::uint32_t draw);

/// Decision sites reserved for client retry jitter (FaultInjector owns
/// sites 1-8 internally; keep new sites distinct).
inline constexpr std::uint32_t kSiteRetryBackoff = 16;
inline constexpr std::uint32_t kSiteLockBackoff = 17;

/// The network-fault decision for one exchange.
struct NetFault {
  bool drop = false;
  /// When dropping: true = the request frame was lost before reaching the
  /// daemon; false = the daemon served the call but its response was lost.
  bool request_lost = true;
  bool duplicate = false;
  std::uint64_t delay_us = 0;
};

/// The integrity fate of one exchange's frames (decided separately from
/// NetFault so schedules stay comparable when new rates are added).
struct FrameFault {
  bool corrupt_request = false;
  bool corrupt_response = false;
  bool truncate_request = false;
  bool truncate_response = false;
  /// Picks the flipped bit (modulo frame bits) or the truncated length
  /// (modulo frame size).
  std::uint64_t selector = 0;
};

/// Stored-data rot decision for one served read.
struct RotFault {
  bool rot = false;
  std::uint64_t selector = 0;  // forwarded to LocalStore::CorruptStoredBit
};

/// Torn-write decision for one served write.
struct TornWriteFault {
  bool torn = false;
  /// Permille of the intent's bytes that reach storage before the crash.
  std::uint64_t keep_permille = 0;
  /// True: the crash hit the journal append (rollback on recovery);
  /// false: the crash hit the chunk writes (replay on recovery).
  bool torn_journal = false;
  std::uint32_t down_calls = 0;  // refusals before the daemon restarts
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  // ---- Functional-path decision sites -----------------------------------

  /// Network fate of one client<->iod exchange.
  NetFault OnNetExchange(ServerId server);

  /// Integrity fate of one exchange's frames (bit flip / truncation).
  FrameFault OnFrameIntegrity(ServerId server);

  /// Stored-data rot decision for one served read on `server`.
  RotFault OnStoredRead(ServerId server);

  /// Torn-write decision for one served write on `server`. On a torn
  /// write the server is also marked down for config().torn_down_calls
  /// calls — the crash and the torn state are one event.
  TornWriteFault OnStoredWrite(ServerId server);

  /// True if this access hits an injected transient disk error.
  bool OnDiskAccess(ServerId server, bool is_write);

  /// Crash decision for one served call; on true the server is marked
  /// down for config().crash_down_calls subsequent calls.
  bool OnServe(ServerId server);

  /// Consumes one down "tick" if `server` is down: returns true (the call
  /// must be refused) and logs the restart once the countdown reaches
  /// zero. Checked even when probabilities are all zero, so explicitly
  /// scheduled crashes work with an otherwise fault-free config.
  bool ConsumeDownTick(ServerId server);

  /// Explicitly crash `server` for the next `down_calls` calls (chaos
  /// tests schedule crashes precisely with this instead of crash_rate).
  void CrashServer(ServerId server, std::uint32_t down_calls);

  // ---- Simulated-network decision site ----------------------------------

  /// Extra virtual time to charge for one wire leg of `wire_ns`
  /// serialization time: lost frames each pay `retransmit_timeout_ns`, a
  /// duplicated frame pays one extra serialization, a delayed frame pays
  /// the configured jitter. Returns 0 almost always when disabled.
  SimTimeNs OnSimLeg(ServerId server, SimTimeNs wire_ns,
                     SimTimeNs retransmit_timeout_ns);

  // ---- Observability ----------------------------------------------------

  sim::FaultCounters counters() const;
  std::vector<FaultEvent> events() const;
  std::string SerializeEvents() const;

 private:
  /// Uniform double in [0,1) for draw `draw` of decision `seq` at `site`
  /// on `server` — a pure hash, independent of call interleaving.
  double Uniform(std::uint32_t site, ServerId server, std::uint64_t seq,
                 std::uint32_t draw) const;
  std::uint64_t UniformInt(std::uint32_t site, ServerId server,
                           std::uint64_t seq, std::uint32_t draw,
                           std::uint64_t lo, std::uint64_t hi) const;
  /// Raw 64-bit hash for the same coordinates (selector material).
  std::uint64_t HashBits(std::uint32_t site, ServerId server,
                         std::uint64_t seq, std::uint32_t draw) const;

  /// Next per-(site, server) sequence number. Caller holds mutex_.
  std::uint64_t NextSeq(std::uint32_t site, ServerId server);
  void Log(FaultKind kind, ServerId server, std::uint64_t detail);

  FaultConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> seq_;  // (site,server)
  std::unordered_map<ServerId, std::uint32_t> down_;      // refusals left
  sim::FaultCounters counters_;
  std::vector<FaultEvent> events_;
};

}  // namespace pvfs::fault
