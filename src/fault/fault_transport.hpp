// FaultInjectingTransport: a Transport decorator that subjects the data
// path (client <-> iod exchanges) to an injector's fault schedule. Wraps
// any Transport — the in-process cluster, the threaded runtime, or real
// TCP sockets — so the same chaos suite runs against every deployment
// shape.
//
// Fault semantics per call to an I/O daemon:
//   down      — the daemon is crashed: the call is refused with
//               kUnavailable, consuming one restart tick.
//   crash     — this call triggers a crash: refused with kUnavailable and
//               the daemon stays down for crash_down_calls calls.
//   drop      — the request or response frame is lost: the caller sees
//               kDeadlineExceeded (its timeout firing). A lost response
//               means the daemon DID execute the request — retries must be
//               idempotent, which PVFS reads/writes are.
//   duplicate — the request is delivered twice (the daemon executes it
//               twice); the second response is returned.
//   delay     — the exchange is held back briefly before delivery.
//   corrupt   — one bit of the request or response frame is flipped in
//               flight. The CRC32C framing layer at the receiver detects
//               it: a corrupt request is rejected by the daemon with
//               kCorruption (typed, inside a well-formed sealed envelope);
//               a corrupt response fails the client's own verification.
//   truncate  — the frame is cut short in flight; detected the same way.
//
// Manager calls pass through untouched: metadata operations are not
// idempotent (create/remove), and the single-manager failure mode is the
// ROADMAP's replication work, not this layer's.
#pragma once

#include <chrono>
#include <thread>

#include "fault/fault.hpp"
#include "pvfs/transport.hpp"

namespace pvfs::fault {

class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(Transport* inner, FaultInjector* injector)
      : inner_(inner), injector_(injector) {}

  Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) override {
    if (injector_ == nullptr || dest.is_manager) {
      return inner_->Call(dest, request);
    }
    const ServerId server = dest.server;
    if (injector_->ConsumeDownTick(server)) {
      return Unavailable("iod " + std::to_string(server) +
                         " is down (injected crash)");
    }
    if (injector_->OnServe(server)) {
      return Unavailable("iod " + std::to_string(server) +
                         " crashed (injected)");
    }
    NetFault net = injector_->OnNetExchange(server);
    if (net.delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(net.delay_us));
    }
    if (net.drop) {
      if (!net.request_lost) {
        // The daemon serves the request; only the response is lost.
        (void)inner_->Call(dest, request);
      }
      return DeadlineExceeded("request to iod " + std::to_string(server) +
                              " timed out (injected frame drop)");
    }
    FrameFault frame = injector_->OnFrameIntegrity(server);
    std::vector<std::byte> damaged;
    if (frame.corrupt_request || frame.truncate_request) {
      damaged.assign(request.begin(), request.end());
      if (frame.corrupt_request) FlipBit(damaged, frame.selector);
      if (frame.truncate_request) Truncate(damaged, frame.selector);
      request = damaged;
    }
    auto response = inner_->Call(dest, request);
    if (net.duplicate) {
      response = inner_->Call(dest, request);
    }
    if (response.ok()) {
      if (frame.corrupt_response) FlipBit(*response, frame.selector);
      if (frame.truncate_response) Truncate(*response, frame.selector);
    }
    return response;
  }

  std::uint32_t server_count() const override {
    return inner_->server_count();
  }

 private:
  static void FlipBit(std::vector<std::byte>& frame, std::uint64_t selector) {
    if (frame.empty()) return;
    std::uint64_t bit = selector % (frame.size() * 8);
    frame[bit / 8] ^= std::byte{static_cast<std::uint8_t>(1u << (bit % 8))};
  }

  static void Truncate(std::vector<std::byte>& frame, std::uint64_t selector) {
    if (frame.empty()) return;
    frame.resize(selector % frame.size());  // strictly shorter
  }

  Transport* inner_;
  FaultInjector* injector_;
};

}  // namespace pvfs::fault
