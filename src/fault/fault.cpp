#include "fault/fault.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace pvfs::fault {

namespace {

// Decision sites. Distinct constants keep every injection point on its own
// hash stream; the functional transport and the simulator never share one.
constexpr std::uint32_t kSiteNet = 1;
constexpr std::uint32_t kSiteDiskRead = 2;
constexpr std::uint32_t kSiteDiskWrite = 3;
constexpr std::uint32_t kSiteCrash = 4;
constexpr std::uint32_t kSiteSimLeg = 5;
constexpr std::uint32_t kSiteFrame = 6;
constexpr std::uint32_t kSiteRot = 7;
constexpr std::uint32_t kSiteTorn = 8;

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFrameDrop: return "frame-drop";
    case FaultKind::kFrameDuplicate: return "frame-dup";
    case FaultKind::kFrameDelay: return "frame-delay";
    case FaultKind::kDiskReadError: return "disk-read-error";
    case FaultKind::kDiskWriteError: return "disk-write-error";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kRetransmit: return "retransmit";
    case FaultKind::kFrameCorrupt: return "frame-corrupt";
    case FaultKind::kFrameTruncate: return "frame-truncate";
    case FaultKind::kChunkRot: return "chunk-rot";
    case FaultKind::kTornWrite: return "torn-write";
  }
  return "unknown";
}

std::string SerializeFaultEvents(const std::vector<FaultEvent>& events) {
  std::string out;
  for (const FaultEvent& e : events) {
    out += "fault ";
    out += std::to_string(e.seq);
    out += ' ';
    out += FaultKindName(e.kind);
    out += " iod=";
    out += std::to_string(e.server);
    out += " detail=";
    out += std::to_string(e.detail);
    out += '\n';
  }
  return out;
}

double HashedUniform(std::uint64_t seed, std::uint32_t site,
                     std::uint64_t stream, std::uint64_t seq,
                     std::uint32_t draw) {
  // Spread the coordinates across the 64-bit state with odd multipliers,
  // then let SplitMix64's finalizer mix them; one warm-up step decorrelates
  // nearby coordinates.
  SplitMix64 rng(seed ^
                 (static_cast<std::uint64_t>(site) * 0xD1B54A32D192ED03ull) ^
                 ((stream + 1) * 0x8CB92BA72F3D8DD7ull) ^
                 ((seq + 1) * 0x2545F4914F6CDD1Dull) ^
                 (static_cast<std::uint64_t>(draw) * 0x9E3779B97F4A7C15ull));
  (void)rng.Next();
  return rng.UniformDouble();
}

std::uint64_t HashedBits(std::uint64_t seed, std::uint32_t site,
                         std::uint64_t stream, std::uint64_t seq,
                         std::uint32_t draw) {
  SplitMix64 rng(seed ^
                 (static_cast<std::uint64_t>(site) * 0xD1B54A32D192ED03ull) ^
                 ((stream + 1) * 0x8CB92BA72F3D8DD7ull) ^
                 ((seq + 1) * 0x2545F4914F6CDD1Dull) ^
                 (static_cast<std::uint64_t>(draw) * 0x9E3779B97F4A7C15ull));
  (void)rng.Next();
  return rng.Next();
}

double FaultInjector::Uniform(std::uint32_t site, ServerId server,
                              std::uint64_t seq, std::uint32_t draw) const {
  return HashedUniform(config_.seed, site, server, seq, draw);
}

std::uint64_t FaultInjector::UniformInt(std::uint32_t site, ServerId server,
                                        std::uint64_t seq, std::uint32_t draw,
                                        std::uint64_t lo,
                                        std::uint64_t hi) const {
  if (hi <= lo) return lo;
  return lo + static_cast<std::uint64_t>(Uniform(site, server, seq, draw) *
                                         static_cast<double>(hi - lo + 1));
}

std::uint64_t FaultInjector::HashBits(std::uint32_t site, ServerId server,
                                      std::uint64_t seq,
                                      std::uint32_t draw) const {
  return HashedBits(config_.seed, site, server, seq, draw);
}

std::uint64_t FaultInjector::NextSeq(std::uint32_t site, ServerId server) {
  std::uint64_t key =
      (static_cast<std::uint64_t>(site) << 32) | static_cast<std::uint64_t>(server);
  return seq_[key]++;
}

void FaultInjector::Log(FaultKind kind, ServerId server,
                        std::uint64_t detail) {
  events_.push_back(
      FaultEvent{static_cast<std::uint64_t>(events_.size()), kind, server,
                 detail});
}

NetFault FaultInjector::OnNetExchange(ServerId server) {
  NetFault out;
  if (config_.drop_rate <= 0 && config_.duplicate_rate <= 0 &&
      config_.delay_rate <= 0) {
    return out;
  }
  std::lock_guard lock(mutex_);
  std::uint64_t seq = NextSeq(kSiteNet, server);
  if (config_.drop_rate > 0 &&
      Uniform(kSiteNet, server, seq, 0) < config_.drop_rate) {
    out.drop = true;
    out.request_lost = Uniform(kSiteNet, server, seq, 1) < 0.5;
    ++counters_.frames_dropped;
    Log(FaultKind::kFrameDrop, server, out.request_lost ? 0 : 1);
    return out;  // a lost frame can't also be duplicated or delayed
  }
  if (config_.duplicate_rate > 0 &&
      Uniform(kSiteNet, server, seq, 2) < config_.duplicate_rate) {
    out.duplicate = true;
    ++counters_.frames_duplicated;
    Log(FaultKind::kFrameDuplicate, server, 0);
  }
  if (config_.delay_rate > 0 &&
      Uniform(kSiteNet, server, seq, 3) < config_.delay_rate) {
    out.delay_us = UniformInt(kSiteNet, server, seq, 4, config_.delay_min_us,
                              config_.delay_max_us);
    ++counters_.frames_delayed;
    counters_.delay_us_injected += out.delay_us;
    Log(FaultKind::kFrameDelay, server, out.delay_us);
  }
  return out;
}

FrameFault FaultInjector::OnFrameIntegrity(ServerId server) {
  FrameFault out;
  if (config_.frame_corrupt_rate <= 0 && config_.frame_truncate_rate <= 0) {
    return out;  // zero-rate config consumes no randomness
  }
  std::lock_guard lock(mutex_);
  std::uint64_t seq = NextSeq(kSiteFrame, server);
  if (config_.frame_corrupt_rate > 0 &&
      Uniform(kSiteFrame, server, seq, 0) < config_.frame_corrupt_rate) {
    bool request = Uniform(kSiteFrame, server, seq, 1) < 0.5;
    out.corrupt_request = request;
    out.corrupt_response = !request;
    ++counters_.frames_corrupted;
    Log(FaultKind::kFrameCorrupt, server, request ? 0 : 1);
  }
  if (config_.frame_truncate_rate > 0 &&
      Uniform(kSiteFrame, server, seq, 2) < config_.frame_truncate_rate) {
    bool request = Uniform(kSiteFrame, server, seq, 3) < 0.5;
    out.truncate_request = request;
    out.truncate_response = !request;
    ++counters_.frames_truncated;
    Log(FaultKind::kFrameTruncate, server, request ? 0 : 1);
  }
  if (out.corrupt_request || out.corrupt_response || out.truncate_request ||
      out.truncate_response) {
    out.selector = HashBits(kSiteFrame, server, seq, 4);
  }
  return out;
}

RotFault FaultInjector::OnStoredRead(ServerId server) {
  RotFault out;
  if (config_.chunk_rot_rate <= 0) return out;
  std::lock_guard lock(mutex_);
  std::uint64_t seq = NextSeq(kSiteRot, server);
  if (Uniform(kSiteRot, server, seq, 0) >= config_.chunk_rot_rate) {
    return out;
  }
  out.rot = true;
  out.selector = HashBits(kSiteRot, server, seq, 1);
  ++counters_.chunks_rotted;
  Log(FaultKind::kChunkRot, server, out.selector % 4096);
  return out;
}

TornWriteFault FaultInjector::OnStoredWrite(ServerId server) {
  TornWriteFault out;
  if (config_.torn_write_rate <= 0) return out;
  std::lock_guard lock(mutex_);
  std::uint64_t seq = NextSeq(kSiteTorn, server);
  if (Uniform(kSiteTorn, server, seq, 0) >= config_.torn_write_rate) {
    return out;
  }
  out.torn = true;
  out.keep_permille = UniformInt(kSiteTorn, server, seq, 1, 0, 999);
  // Roughly a third of crashes hit the journal append itself (rollback
  // path); the rest interrupt the chunk writes (replay path).
  out.torn_journal = Uniform(kSiteTorn, server, seq, 2) < 0.34;
  out.down_calls = config_.torn_down_calls;
  down_[server] = config_.torn_down_calls;
  ++counters_.torn_writes;
  ++counters_.crashes;  // a torn write IS a crash, mid-write
  Log(FaultKind::kTornWrite, server, out.keep_permille);
  return out;
}

bool FaultInjector::OnDiskAccess(ServerId server, bool is_write) {
  double rate =
      is_write ? config_.disk_write_error_rate : config_.disk_read_error_rate;
  if (rate <= 0) return false;
  std::lock_guard lock(mutex_);
  std::uint32_t site = is_write ? kSiteDiskWrite : kSiteDiskRead;
  std::uint64_t seq = NextSeq(site, server);
  if (Uniform(site, server, seq, 0) >= rate) return false;
  if (is_write) {
    ++counters_.disk_write_errors;
    Log(FaultKind::kDiskWriteError, server, 0);
  } else {
    ++counters_.disk_read_errors;
    Log(FaultKind::kDiskReadError, server, 0);
  }
  return true;
}

bool FaultInjector::OnServe(ServerId server) {
  if (config_.crash_rate <= 0) return false;
  std::lock_guard lock(mutex_);
  std::uint64_t seq = NextSeq(kSiteCrash, server);
  if (Uniform(kSiteCrash, server, seq, 0) >= config_.crash_rate) return false;
  down_[server] = config_.crash_down_calls;
  ++counters_.crashes;
  Log(FaultKind::kCrash, server, config_.crash_down_calls);
  return true;
}

bool FaultInjector::ConsumeDownTick(ServerId server) {
  std::lock_guard lock(mutex_);
  auto it = down_.find(server);
  if (it == down_.end() || it->second == 0) return false;
  ++counters_.refused_calls;
  if (--it->second == 0) {
    ++counters_.restarts;
    Log(FaultKind::kRestart, server, 0);
    down_.erase(it);
  }
  return true;
}

void FaultInjector::CrashServer(ServerId server, std::uint32_t down_calls) {
  std::lock_guard lock(mutex_);
  down_[server] = down_calls;
  ++counters_.crashes;
  Log(FaultKind::kCrash, server, down_calls);
}

SimTimeNs FaultInjector::OnSimLeg(ServerId server, SimTimeNs wire_ns,
                                  SimTimeNs retransmit_timeout_ns) {
  if (config_.drop_rate <= 0 && config_.duplicate_rate <= 0 &&
      config_.delay_rate <= 0 && config_.frame_corrupt_rate <= 0 &&
      config_.frame_truncate_rate <= 0) {
    return 0;
  }
  std::lock_guard lock(mutex_);
  std::uint64_t seq = NextSeq(kSiteSimLeg, server);
  SimTimeNs extra = 0;
  if (config_.drop_rate > 0) {
    // Each lost transmission costs one retransmit timeout plus the resent
    // frame's serialization. Geometric, capped so a hostile drop rate
    // cannot stall the simulation.
    std::uint32_t draw = 0;
    std::uint64_t retransmits = 0;
    while (retransmits < 16 &&
           Uniform(kSiteSimLeg, server, seq, draw++) < config_.drop_rate) {
      ++retransmits;
      extra += retransmit_timeout_ns + wire_ns;
    }
    if (retransmits > 0) {
      counters_.frames_dropped += retransmits;
      counters_.retransmits += retransmits;
      Log(FaultKind::kRetransmit, server, retransmits);
    }
  }
  if (config_.duplicate_rate > 0 &&
      Uniform(kSiteSimLeg, server, seq, 20) < config_.duplicate_rate) {
    extra += wire_ns;  // the duplicate occupies the wire once more
    ++counters_.frames_duplicated;
    Log(FaultKind::kFrameDuplicate, server, 0);
  }
  if (config_.delay_rate > 0 &&
      Uniform(kSiteSimLeg, server, seq, 21) < config_.delay_rate) {
    std::uint64_t us = UniformInt(kSiteSimLeg, server, seq, 22,
                                  config_.delay_min_us, config_.delay_max_us);
    extra += us * kNsPerUs;
    ++counters_.frames_delayed;
    counters_.delay_us_injected += us;
    Log(FaultKind::kFrameDelay, server, us);
  }
  // A frame the receiver's checksum rejects costs the same as a lost one:
  // the sender times out and resends (the sim models detection, not the
  // CRC bytes themselves — the 2002 wire had no checksum to carry).
  if (config_.frame_corrupt_rate > 0 &&
      Uniform(kSiteSimLeg, server, seq, 30) < config_.frame_corrupt_rate) {
    extra += retransmit_timeout_ns + wire_ns;
    ++counters_.frames_corrupted;
    ++counters_.retransmits;
    Log(FaultKind::kFrameCorrupt, server, 1);
  }
  if (config_.frame_truncate_rate > 0 &&
      Uniform(kSiteSimLeg, server, seq, 31) < config_.frame_truncate_rate) {
    extra += retransmit_timeout_ns + wire_ns;
    ++counters_.frames_truncated;
    ++counters_.retransmits;
    Log(FaultKind::kFrameTruncate, server, 1);
  }
  return extra;
}

sim::FaultCounters FaultInjector::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::string FaultInjector::SerializeEvents() const {
  return SerializeFaultEvents(events());
}

}  // namespace pvfs::fault
