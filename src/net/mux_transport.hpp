// Multiplexed client transport: one TCP connection per daemon carrying
// many in-flight logical requests at once.
//
// Every sealed request frame already carries a unique nonzero request id
// in its CRC trailer (src/common/wire, PR 3); the event-driven server
// guarantees each reply frame is sealed under the id of the request that
// caused it. That makes the trailer a correlation key: N client threads
// write frames down one connection (sends serialized, interleaving whole
// frames), a single reader thread per connection peels reply frames off
// the wire and hands each to the waiter registered under its trailer id.
//
// Correlation uses PeekTrailerId — the raw trailer bytes, no CRC check —
// so even a reply whose payload was corrupted in flight still reaches
// the exchange that caused it and fails there with kCorruption (typed,
// retryable) instead of stranding the waiter until its deadline.
//
// Failure model: any connection-level failure (EOF, reset, send error)
// fails every in-flight exchange on that connection with kUnavailable —
// the same retryable code the classic path returns — and the next
// exchange reconnects. Unmatched replies (e.g. a waiter gave up at its
// deadline before the reply landed) are counted and dropped.
//
// Thread safety: fully thread-safe; any number of threads may Call
// concurrently. See docs/event-transport.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket_transport.hpp"
#include "pvfs/transport.hpp"

namespace pvfs::net {

class MuxSocketTransport final : public Transport {
 public:
  /// manager + iods[i] addresses; connections open on first use. Honors
  /// config.call_timeout (per-exchange deadline) and config.max_inflight
  /// (per-connection in-flight cap; issuing threads beyond it wait).
  MuxSocketTransport(SocketAddress manager, std::vector<SocketAddress> iods,
                     ClientConfig config = {});
  ~MuxSocketTransport() override;

  Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) override;

  std::uint32_t server_count() const override {
    return static_cast<std::uint32_t>(iods_.size());
  }

  struct Stats {
    std::uint64_t requests = 0;           // exchanges issued
    std::uint64_t responses_matched = 0;  // replies routed to a waiter
    std::uint64_t responses_dropped = 0;  // replies with no waiter left
    std::uint64_t reconnects = 0;         // connections (re)established
  };
  Stats stats() const;

 private:
  /// One in-flight exchange, owned by the calling thread's stack; the
  /// pending map holds a pointer only while the id is registered.
  struct Waiter {
    std::vector<std::byte> response;
    Status status = Status::Ok();
    bool done = false;
  };

  struct Connection {
    SocketAddress address;
    std::mutex mutex;  // guards everything below + pending lifecycle
    std::condition_variable cv;
    std::mutex write_mutex;  // serializes whole-frame sends
    int fd = -1;
    bool dead = false;  // fd unusable; close deferred to reconnect/dtor
    bool reader_running = false;
    std::thread reader;
    std::unordered_map<std::uint64_t, Waiter*> pending;
  };

  Result<std::vector<std::byte>> Exchange(Connection& conn,
                                          std::span<const std::byte> request);
  Status EnsureConnectedLocked(Connection& conn,
                               std::unique_lock<std::mutex>& lock);
  void ReaderLoop(Connection& conn, int fd);
  static void FailPendingLocked(Connection& conn, const Status& why);
  void ShutdownConnection(Connection& conn);

  Connection manager_;
  std::vector<std::unique_ptr<Connection>> iods_;
  ClientConfig config_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> matched_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> reconnects_{0};
};

}  // namespace pvfs::net
