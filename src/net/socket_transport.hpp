// TCP socket transport: the PVFS daemons as real network servers.
//
// PVFS 1.x ran mgrd and iods as TCP servers; clients kept persistent
// connections to each. This module reproduces that deployment shape:
//
//   SocketServer   — event-driven server: one acceptor/poller thread owns
//                    the listen fd and every accepted connection fd in a
//                    single epoll set (nonblocking, with per-connection
//                    read/write buffers and incremental frame
//                    reassembly), feeding a small fixed worker pool
//                    through the admission controller. Concurrency scales
//                    with connections, not threads — the C10K rework of
//                    the original thread-per-connection server
//                    (docs/event-transport.md).
//   SocketTransport— classic Transport implementation over persistent
//                    per-daemon connections, one request in flight per
//                    connection (lazily established, mutex-serialized).
//   MuxSocketTransport (net/mux_transport.hpp) — the multiplexed client:
//                    N logical requests in flight on one connection per
//                    daemon, replies matched by the sealed request-id
//                    trailer. Selected via ClientConfig::multiplex.
//   SocketCluster  — convenience: manager + N I/O daemons listening on
//                    ephemeral loopback ports inside this process.
//
// Frame format both ways: u32 little-endian payload length, then payload
// (src/net/framing.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/framing.hpp"
#include "obs/metrics.hpp"
#include "pvfs/admission.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "pvfs/repair.hpp"
#include "pvfs/transport.hpp"

namespace pvfs::net {

class SocketServer {
 public:
  using ServiceFn =
      std::function<std::vector<std::byte>(std::span<const std::byte>)>;

  /// Event-loop tuning. The defaults suit the daemons; tests shrink the
  /// buffers to make backpressure observable.
  struct Options {
    /// Service worker threads draining the request queue. With
    /// `serialize_service` (the default), service calls are still
    /// serialized per server (the daemons are externally synchronized),
    /// so extra workers overlap framing/correlation work with service,
    /// not service with itself.
    std::uint32_t worker_threads = 2;
    /// Run at most one service call at a time. Turned off for daemons
    /// whose service is internally synchronized (ServerConfig::flows),
    /// letting the workers run Serve concurrently so in-flight requests
    /// overlap each other's device time.
    bool serialize_service = true;
    /// Per-connection bound on dispatched-but-unanswered requests;
    /// reading from a connection pauses at the bound and resumes as
    /// replies drain (multiplexing backpressure). 0 = unbounded.
    std::uint32_t max_inflight_per_connection = 256;
    /// Per-connection bound on buffered response bytes: a slow reader's
    /// connection stops being read once its write buffer passes this and
    /// resumes below half of it, so total memory stays bounded by
    /// connections x this cap.
    std::size_t max_write_buffer_bytes = 8u << 20;
    /// Guarantee every reply frame's sealed trailer carries the request
    /// id of the frame that caused it (re-sealing when the service had no
    /// ambient id: corrupt request, admission shed). Required by
    /// multiplexed clients; off for raw byte services.
    bool correlate_responses = false;
    /// Registry for the iod.transport.* instruments (default Global()).
    obs::Registry* registry = nullptr;
    /// Labels stamped on this server's instruments (e.g. server=3).
    obs::Labels metric_labels{};
  };

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the event loop.
  /// With an `admission` controller, a request frame that completes while
  /// the controller is at its bound is answered with a sealed kBusy frame
  /// (for `server`) instead of entering the worker queue.
  static Result<std::unique_ptr<SocketServer>> Start(
      std::uint16_t port, ServiceFn service,
      AdmissionController* admission = nullptr, ServerId server = 0);
  static Result<std::unique_ptr<SocketServer>> Start(
      std::uint16_t port, ServiceFn service, AdmissionController* admission,
      ServerId server, Options options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  std::uint16_t port() const { return port_; }
  /// Connections accepted over this server's lifetime.
  std::uint64_t connections_served() const { return connections_.load(); }
  /// Currently open connections (the iod.transport.open_connections gauge).
  std::int64_t open_connections() const {
    return open_connections_g_.value();
  }
  /// High-water mark of any single connection's buffered response bytes —
  /// the backpressure tests assert this stays near the configured cap.
  std::uint64_t max_write_buffered() const {
    return max_write_buffered_.load();
  }

 private:
  /// Per-connection state, owned and touched only by the poller thread.
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    FrameDecoder decoder;
    std::deque<std::vector<std::byte>> out;  // encoded frames to write
    std::size_t out_front_off = 0;           // bytes of out.front() sent
    std::size_t out_bytes = 0;
    std::uint32_t inflight = 0;  // dispatched frames awaiting replies
    bool want_write = false;     // EPOLLOUT armed
    bool paused = false;         // EPOLLIN disarmed (backpressure)
    bool read_closed = false;    // peer EOF; close once drained
  };

  struct Work {
    std::uint64_t conn = 0;
    std::vector<std::byte> frame;
    std::uint64_t corr_id = 0;
    AdmissionController::Slot slot;
  };

  struct Completion {
    std::uint64_t conn = 0;
    std::vector<std::byte> payload;
  };

  SocketServer(int listen_fd, int epoll_fd, int wake_fd, std::uint16_t port,
               ServiceFn service, AdmissionController* admission,
               ServerId server, Options options);

  void PollLoop();
  void WorkerLoop();
  void WakePoller();

  // Poller-thread helpers.
  void AcceptReady();
  void ReadReady(Connection& conn);
  void HandleFrame(Connection& conn, std::vector<std::byte> frame);
  void FlushWrites(Connection& conn);
  void DeliverCompletions();
  void EnqueueResponse(Connection& conn, std::vector<std::byte> payload);
  void UpdateInterest(Connection& conn);
  /// Dispatch decoded frames while the connection's in-flight and
  /// write-buffer budgets allow, then recompute the paused state. Frames
  /// over budget stay parked in the decoder until replies drain.
  void PumpConnection(Connection& conn);
  /// Close once the peer has half-closed and nothing remains to serve or
  /// flush. Returns true when the connection was closed (conn is dead).
  bool MaybeCloseDrained(Connection& conn);
  void CloseConnection(std::uint64_t id);

  int listen_fd_;
  int epoll_fd_;
  int wake_fd_;
  std::uint16_t port_;
  ServiceFn service_;
  AdmissionController* admission_;  // may be null (manager, legacy starts)
  ServerId server_;                 // id stamped into busy responses
  Options options_;

  std::mutex service_mutex_;  // daemon event-loop discipline
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> max_write_buffered_{0};

  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<Work> work_;

  std::mutex done_mutex_;
  std::deque<Completion> done_;

  std::unordered_map<std::uint64_t, Connection> conns_;  // poller-only
  std::uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = wake fd

  obs::Gauge& open_connections_g_;
  obs::Counter& readable_events_c_;
  obs::Counter& partial_frames_c_;
  obs::Gauge& inflight_g_;

  std::vector<std::jthread> workers_;
  std::jthread poller_;
};

/// Address of one daemon endpoint.
struct SocketAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// "host:port", the form every connection-level Status message embeds so a
/// failure names which daemon it was talking to.
inline std::string EndpointLabel(const SocketAddress& address) {
  return address.host + ":" + std::to_string(address.port);
}

/// Open a blocking TCP connection to `address` (TCP_NODELAY set). A
/// non-zero `timeout` arms SO_SNDTIMEO, and SO_RCVTIMEO too when
/// `arm_receive_timeout` — multiplexed connections keep receives
/// unbounded (their reader idles between replies) and bound waits with a
/// condition variable instead.
Result<int> ConnectSocket(const SocketAddress& address,
                          std::chrono::milliseconds timeout,
                          bool arm_receive_timeout);

/// How a client connects to the cluster's daemons.
struct ClientConfig {
  /// > 0 arms per-request timeouts: a call whose daemon does not respond
  /// in time fails with kDeadlineExceeded instead of blocking forever
  /// (the client retry layer's per-request timeout). Required when the
  /// caller expects daemons to crash.
  std::chrono::milliseconds call_timeout{0};
  /// Multiplex: one connection per daemon carrying many in-flight logical
  /// requests, replies matched by the sealed request-id trailer
  /// (MuxSocketTransport). Off = the historical one-request-per-
  /// connection exchange; fig09-17 and every default path use off.
  bool multiplex = false;
  /// Multiplexed mode only: cap on concurrently in-flight requests per
  /// connection; issuing threads beyond it wait (client-side
  /// backpressure). 0 = unbounded.
  std::uint32_t max_inflight = 0;
};

class SocketTransport final : public Transport {
 public:
  /// manager + iods[i] addresses; connections open on first use.
  /// `call_timeout` as ClientConfig::call_timeout.
  SocketTransport(SocketAddress manager, std::vector<SocketAddress> iods,
                  std::chrono::milliseconds call_timeout =
                      std::chrono::milliseconds{0});
  ~SocketTransport() override;

  Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) override;

  std::uint32_t server_count() const override {
    return static_cast<std::uint32_t>(iods_.size());
  }

 private:
  struct Connection {
    SocketAddress address;
    int fd = -1;
    std::mutex mutex;
  };

  Result<std::vector<std::byte>> CallOn(Connection& conn,
                                        std::span<const std::byte> request);

  Connection manager_;
  std::vector<std::unique_ptr<Connection>> iods_;
  std::chrono::milliseconds call_timeout_{0};
};

/// An entire functional PVFS deployment behind real TCP sockets on
/// loopback: manager + `server_count` I/O daemons, each with its own
/// listening port.
class SocketCluster {
 public:
  static Result<std::unique_ptr<SocketCluster>> Start(
      std::uint32_t server_count,
      std::uint32_t max_list_regions = kMaxListRegions,
      std::uint16_t base_port = 0);

  /// Full per-iod service configuration: fragment scheduling, bounded
  /// admission queues (config.max_queue_depth > 0 sheds excess load with
  /// retryable kBusy) and the event-loop worker pool size
  /// (config.transport_workers). Admission and transport instruments
  /// register in `registry` (default: obs::Registry::Global()).
  static Result<std::unique_ptr<SocketCluster>> Start(
      std::uint32_t server_count, const ServerConfig& config,
      std::uint16_t base_port, obs::Registry* registry = nullptr);

  /// Builds a transport connected to this cluster (each caller gets its
  /// own connections; safe to create one per client thread). A non-zero
  /// `call_timeout` arms per-request socket timeouts — required when the
  /// caller expects daemons to crash (see StopIod).
  std::unique_ptr<SocketTransport> Connect(
      std::chrono::milliseconds call_timeout =
          std::chrono::milliseconds{0}) const;

  /// Transport per `config`: the classic exchange path, or the
  /// multiplexed one (config.multiplex) sharing one connection per daemon
  /// among any number of client threads.
  std::unique_ptr<Transport> Connect(const ClientConfig& config) const;

  /// Crash one I/O daemon: its TCP server stops accepting and all its
  /// live connections die. The daemon object (and its store — the "disk")
  /// survives, as a real iod's on-disk data survives a daemon crash.
  Status StopIod(ServerId s);
  /// Restart a stopped daemon on its original port, then re-replicate its
  /// data from the surviving replicas (best effort — the daemon is
  /// available either way; see RepairIod).
  Status RestartIod(ServerId s);
  /// Re-replication scrub for daemon `s` over a fresh client transport:
  /// every replicated file whose replica set includes `s` has its chunks
  /// checksum-compared against the surviving replicas and stale or missing
  /// ones copied back (pvfs/repair.hpp). Files with replicas=1 are
  /// skipped, so this is a cheap no-op on unreplicated clusters.
  Result<RepairReport> RepairIod(ServerId s) const;
  bool IodRunning(ServerId s) const { return iod_servers_[s] != nullptr; }

  SocketAddress manager_address() const {
    return {"127.0.0.1", manager_server_->port()};
  }
  std::vector<SocketAddress> iod_addresses() const;

  Manager& manager() { return manager_; }
  IoDaemon& iod(ServerId s) { return *iods_[s]; }
  AdmissionController& admission(ServerId s) { return *admissions_[s]; }
  SocketServer& iod_server(ServerId s) { return *iod_servers_[s]; }

 private:
  SocketCluster(std::uint32_t server_count, const ServerConfig& config,
                obs::Registry* registry);

  SocketServer::Options IodServerOptions(ServerId s) const;

  ServerConfig config_;
  obs::Registry* registry_;  // never null after construction
  Manager manager_;
  std::vector<std::unique_ptr<IoDaemon>> iods_;
  std::vector<std::unique_ptr<AdmissionController>> admissions_;
  std::unique_ptr<SocketServer> manager_server_;
  std::vector<std::unique_ptr<SocketServer>> iod_servers_;
  std::vector<std::uint16_t> iod_ports_;  // survive StopIod for restart
};

}  // namespace pvfs::net
