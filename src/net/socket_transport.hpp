// TCP socket transport: the PVFS daemons as real network servers.
//
// PVFS 1.x ran mgrd and iods as TCP servers; clients kept persistent
// connections to each. This module reproduces that deployment shape:
//
//   SocketServer   — listens on a TCP port, one service thread per
//                    accepted connection, length-prefixed message frames,
//                    requests serialized into the daemon (its event loop
//                    discipline).
//   SocketTransport— Transport implementation over persistent per-daemon
//                    connections (lazily established, mutex-serialized).
//   SocketCluster  — convenience: manager + N I/O daemons listening on
//                    ephemeral loopback ports inside this process.
//
// Frame format both ways: u32 little-endian payload length, then payload.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pvfs/admission.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "pvfs/transport.hpp"

namespace pvfs::net {

/// Maximum accepted frame (guards against hostile length prefixes).
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

class SocketServer {
 public:
  using ServiceFn =
      std::function<std::vector<std::byte>(std::span<const std::byte>)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting. With an
  /// `admission` controller, a request that arrives while the controller
  /// is at its bound is answered with a sealed kBusy frame (for `server`)
  /// instead of queueing on the service mutex.
  static Result<std::unique_ptr<SocketServer>> Start(
      std::uint16_t port, ServiceFn service,
      AdmissionController* admission = nullptr, ServerId server = 0);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint64_t connections_served() const { return connections_.load(); }

 private:
  SocketServer(int listen_fd, std::uint16_t port, ServiceFn service,
               AdmissionController* admission, ServerId server);

  void AcceptLoop();
  void ServeConnection(int fd);

  int listen_fd_;
  std::uint16_t port_;
  ServiceFn service_;
  AdmissionController* admission_;  // may be null (manager, legacy starts)
  ServerId server_;                 // id stamped into busy responses
  std::mutex service_mutex_;  // daemon event-loop discipline
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::vector<std::jthread> workers_;
  std::vector<int> live_fds_;  // open connections, for teardown shutdown
  std::mutex workers_mutex_;
  std::jthread acceptor_;
};

/// Address of one daemon endpoint.
struct SocketAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class SocketTransport final : public Transport {
 public:
  /// manager + iods[i] addresses; connections open on first use.
  /// `call_timeout` > 0 arms SO_RCVTIMEO/SO_SNDTIMEO per connection: a
  /// call whose daemon does not respond in time fails with
  /// kDeadlineExceeded instead of blocking forever (the client retry
  /// layer's per-request timeout). Zero keeps the historical blocking
  /// behaviour.
  SocketTransport(SocketAddress manager, std::vector<SocketAddress> iods,
                  std::chrono::milliseconds call_timeout =
                      std::chrono::milliseconds{0});
  ~SocketTransport() override;

  Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) override;

  std::uint32_t server_count() const override {
    return static_cast<std::uint32_t>(iods_.size());
  }

 private:
  struct Connection {
    SocketAddress address;
    int fd = -1;
    std::mutex mutex;
  };

  Result<std::vector<std::byte>> CallOn(Connection& conn,
                                        std::span<const std::byte> request);

  Connection manager_;
  std::vector<std::unique_ptr<Connection>> iods_;
  std::chrono::milliseconds call_timeout_{0};
};

/// An entire functional PVFS deployment behind real TCP sockets on
/// loopback: manager + `server_count` I/O daemons, each with its own
/// listening port.
class SocketCluster {
 public:
  static Result<std::unique_ptr<SocketCluster>> Start(
      std::uint32_t server_count,
      std::uint32_t max_list_regions = kMaxListRegions,
      std::uint16_t base_port = 0);

  /// Full per-iod service configuration: fragment scheduling plus bounded
  /// admission queues (config.max_queue_depth > 0 sheds excess load with
  /// retryable kBusy). Admission instruments register in `registry`
  /// (default: obs::Registry::Global()).
  static Result<std::unique_ptr<SocketCluster>> Start(
      std::uint32_t server_count, const ServerConfig& config,
      std::uint16_t base_port, obs::Registry* registry = nullptr);

  /// Builds a transport connected to this cluster (each caller gets its
  /// own connections; safe to create one per client thread). A non-zero
  /// `call_timeout` arms per-request socket timeouts — required when the
  /// caller expects daemons to crash (see StopIod).
  std::unique_ptr<SocketTransport> Connect(
      std::chrono::milliseconds call_timeout =
          std::chrono::milliseconds{0}) const;

  /// Crash one I/O daemon: its TCP server stops accepting and all its
  /// live connections die. The daemon object (and its store — the "disk")
  /// survives, as a real iod's on-disk data survives a daemon crash.
  Status StopIod(ServerId s);
  /// Restart a stopped daemon on its original port.
  Status RestartIod(ServerId s);
  bool IodRunning(ServerId s) const { return iod_servers_[s] != nullptr; }

  SocketAddress manager_address() const {
    return {"127.0.0.1", manager_server_->port()};
  }
  std::vector<SocketAddress> iod_addresses() const;

  Manager& manager() { return manager_; }
  IoDaemon& iod(ServerId s) { return *iods_[s]; }
  AdmissionController& admission(ServerId s) { return *admissions_[s]; }

 private:
  SocketCluster(std::uint32_t server_count, const ServerConfig& config,
                obs::Registry* registry);

  Manager manager_;
  std::vector<std::unique_ptr<IoDaemon>> iods_;
  std::vector<std::unique_ptr<AdmissionController>> admissions_;
  std::unique_ptr<SocketServer> manager_server_;
  std::vector<std::unique_ptr<SocketServer>> iod_servers_;
  std::vector<std::uint16_t> iod_ports_;  // survive StopIod for restart
};

}  // namespace pvfs::net
