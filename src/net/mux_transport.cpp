#include "net/mux_transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

namespace pvfs::net {

MuxSocketTransport::MuxSocketTransport(SocketAddress manager,
                                       std::vector<SocketAddress> iods,
                                       ClientConfig config)
    : config_(config) {
  manager_.address = std::move(manager);
  iods_.reserve(iods.size());
  for (SocketAddress& addr : iods) {
    auto conn = std::make_unique<Connection>();
    conn->address = std::move(addr);
    iods_.push_back(std::move(conn));
  }
}

MuxSocketTransport::~MuxSocketTransport() {
  // Contract (same as every Transport here): no Call may be in flight
  // during destruction. Shut each fd down to unblock its reader, join it,
  // then close.
  ShutdownConnection(manager_);
  for (auto& conn : iods_) ShutdownConnection(*conn);
}

void MuxSocketTransport::ShutdownConnection(Connection& conn) {
  {
    std::lock_guard lock(conn.mutex);
    conn.dead = true;
    if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
  }
  if (conn.reader.joinable()) conn.reader.join();
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
}

void MuxSocketTransport::FailPendingLocked(Connection& conn,
                                           const Status& why) {
  for (auto& [id, waiter] : conn.pending) {
    waiter->status = why;
    waiter->done = true;
  }
  conn.pending.clear();
}

Status MuxSocketTransport::EnsureConnectedLocked(
    Connection& conn, std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (conn.fd >= 0 && !conn.dead) return Status::Ok();
    if (!conn.reader_running) break;
    // A reader from the previous connection generation may still be
    // blocked in recv; shutting the fd down makes its recv fail, after
    // which it marks itself finished under the lock. The wait releases
    // the lock, so re-evaluate from the top afterwards — another thread
    // may have reconnected (and started a fresh reader) meanwhile.
    if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
    conn.cv.wait(lock, [&] {
      return !conn.reader_running || (conn.fd >= 0 && !conn.dead);
    });
  }
  if (conn.reader.joinable()) conn.reader.join();
  if (conn.fd >= 0) {
    // The fd stays open until here — after the reader is gone and while
    // no sender can hold a snapshot of it (senders re-check under this
    // lock) — so the descriptor number cannot be recycled under a
    // concurrent send.
    ::close(conn.fd);
    conn.fd = -1;
  }
  PVFS_ASSIGN_OR_RETURN(
      conn.fd, ConnectSocket(conn.address, config_.call_timeout,
                             /*arm_receive_timeout=*/false));
  conn.dead = false;
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  conn.reader_running = true;
  conn.reader = std::thread(
      [this, &conn, fd = conn.fd] { ReaderLoop(conn, fd); });
  return Status::Ok();
}

void MuxSocketTransport::ReaderLoop(Connection& conn, int fd) {
  for (;;) {
    auto frame = RecvFrame(fd);
    std::lock_guard lock(conn.mutex);
    if (!frame.ok()) {
      // Connection-level failure: every in-flight exchange on this
      // connection fails with the retryable code; the next exchange
      // reconnects.
      FailPendingLocked(
          conn, Unavailable("mux connection to " + EndpointLabel(conn.address) +
                            " lost: " + frame.status().message()));
      conn.dead = true;
      conn.reader_running = false;
      conn.cv.notify_all();
      return;
    }
    auto it = conn.pending.find(PeekTrailerId(*frame));
    if (it == conn.pending.end()) {
      // No waiter: it gave up at its deadline, or the peer replayed a
      // duplicate. Dropping here is what lets a late reply not poison
      // the next exchange.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    it->second->response = std::move(*frame);
    it->second->done = true;
    conn.pending.erase(it);
    matched_.fetch_add(1, std::memory_order_relaxed);
    conn.cv.notify_all();
  }
}

Result<std::vector<std::byte>> MuxSocketTransport::Exchange(
    Connection& conn, std::span<const std::byte> request) {
  // id may be 0 for a frame too short to carry a trailer (e.g. a fault
  // injector truncated it): the server peeks the same raw bytes, so its
  // kCorruption reply also carries id 0 and still correlates. The
  // uniqueness wait below serializes concurrent id-0 exchanges.
  const std::uint64_t id = PeekTrailerId(request);
  Waiter waiter;
  {
    std::unique_lock lock(conn.mutex);
    // In-flight budget, and id uniqueness: a fault injector's duplicated
    // call re-sends the same sealed bytes, so the same id may knock
    // twice — the second waits for the first to settle.
    conn.cv.wait(lock, [&] {
      return (config_.max_inflight == 0 ||
              conn.pending.size() < config_.max_inflight) &&
             conn.pending.find(id) == conn.pending.end();
    });
    PVFS_RETURN_IF_ERROR(EnsureConnectedLocked(conn, lock));
    conn.pending.emplace(id, &waiter);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  Status sent = Status::Ok();
  {
    // Whole frames from concurrent callers interleave on the wire, never
    // their bytes.
    std::lock_guard wlock(conn.write_mutex);
    int fd = -1;
    {
      std::lock_guard lock(conn.mutex);
      fd = conn.dead ? -1 : conn.fd;
    }
    sent = fd >= 0 ? SendFrame(fd, request)
                   : Unavailable("mux connection to " +
                                 EndpointLabel(conn.address) +
                                 " lost before send");
  }

  std::unique_lock lock(conn.mutex);
  if (!sent.ok()) {
    conn.pending.erase(id);
    // Poison the connection: a half-written frame desynchronizes the
    // stream, so concurrent exchanges must fail fast and reconnect.
    if (!conn.dead && conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
    conn.dead = true;
    conn.cv.notify_all();
    return sent;
  }
  if (config_.call_timeout.count() > 0) {
    if (!conn.cv.wait_for(lock, config_.call_timeout,
                          [&] { return waiter.done; })) {
      conn.pending.erase(id);  // a late reply will be counted + dropped
      conn.cv.notify_all();
      return DeadlineExceeded("mux call: response timed out");
    }
  } else {
    conn.cv.wait(lock, [&] { return waiter.done; });
  }
  conn.cv.notify_all();  // an in-flight slot freed; wake blocked issuers
  if (!waiter.status.ok()) return waiter.status;
  return std::move(waiter.response);
}

Result<std::vector<std::byte>> MuxSocketTransport::Call(
    const Endpoint& dest, std::span<const std::byte> request) {
  if (dest.is_manager) return Exchange(manager_, request);
  if (dest.server >= iods_.size()) return NotFound("no such I/O server");
  return Exchange(*iods_[dest.server], request);
}

MuxSocketTransport::Stats MuxSocketTransport::stats() const {
  return Stats{requests_.load(), matched_.load(), dropped_.load(),
               reconnects_.load()};
}

}  // namespace pvfs::net
