#include "net/framing.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/wire.hpp"

namespace pvfs::net {

void EncodeFrameHeader(std::uint32_t payload_len,
                       unsigned char out[kFrameHeaderBytes]) {
  out[0] = static_cast<unsigned char>(payload_len);
  out[1] = static_cast<unsigned char>(payload_len >> 8);
  out[2] = static_cast<unsigned char>(payload_len >> 16);
  out[3] = static_cast<unsigned char>(payload_len >> 24);
}

std::vector<std::byte> EncodeFrame(std::span<const std::byte> payload) {
  std::vector<std::byte> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  unsigned char header[kFrameHeaderBytes];
  EncodeFrameHeader(static_cast<std::uint32_t>(payload.size()), header);
  for (unsigned char b : header) out.push_back(std::byte{b});
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::uint64_t PeekTrailerId(std::span<const std::byte> payload) {
  if (payload.size() < kFrameTrailerBytes) return 0;
  const std::size_t at = payload.size() - kFrameTrailerBytes;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < kFrameIdBytes; ++i) {
    id |= static_cast<std::uint64_t>(
              std::to_integer<std::uint8_t>(payload[at + i]))
          << (8 * i);
  }
  return id;
}

std::vector<std::byte> ResealWithId(std::vector<std::byte> payload,
                                    std::uint64_t request_id) {
  if (payload.size() >= kFrameTrailerBytes) {
    payload.resize(payload.size() - kFrameTrailerBytes);
  }
  return SealFrameWithId(std::move(payload), request_id);
}

Status FrameDecoder::Feed(std::span<const std::byte> data) {
  if (failed_) return ProtocolError("frame decoder already failed");
  std::size_t pos = 0;
  while (pos < data.size()) {
    if (!in_payload_) {
      while (header_filled_ < kFrameHeaderBytes && pos < data.size()) {
        header_[header_filled_++] =
            std::to_integer<unsigned char>(data[pos++]);
      }
      if (header_filled_ < kFrameHeaderBytes) break;
      payload_len_ = static_cast<std::uint32_t>(header_[0]) |
                     (static_cast<std::uint32_t>(header_[1]) << 8) |
                     (static_cast<std::uint32_t>(header_[2]) << 16) |
                     (static_cast<std::uint32_t>(header_[3]) << 24);
      header_filled_ = 0;
      if (payload_len_ > max_frame_bytes_) {
        failed_ = true;
        return ProtocolError("frame exceeds size limit");
      }
      if (payload_len_ == 0) {
        ready_.emplace_back();
        ++frames_decoded_;
        continue;
      }
      // The payload buffer grows as bytes arrive — never pre-reserved
      // from the length prefix, so a hostile-but-in-range length with no
      // data behind it cannot force a large allocation.
      in_payload_ = true;
      partial_.clear();
    }
    std::size_t want = payload_len_ - partial_.size();
    std::size_t take = std::min(want, data.size() - pos);
    partial_.insert(partial_.end(), data.begin() + pos,
                    data.begin() + pos + take);
    pos += take;
    if (partial_.size() == payload_len_) {
      ready_.push_back(std::move(partial_));
      partial_ = {};
      in_payload_ = false;
      ++frames_decoded_;
    }
  }
  return Status::Ok();
}

std::optional<std::vector<std::byte>> FrameDecoder::Next() {
  if (ready_.empty()) return std::nullopt;
  std::vector<std::byte> frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

std::size_t FrameDecoder::buffered_bytes() const {
  std::size_t total = partial_.size() + header_filled_;
  for (const auto& frame : ready_) total += frame.size();
  return total;
}

Status SendAll(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return DeadlineExceeded("send: request timed out");
      }
      return Unavailable(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status SendFrame(int fd, std::span<const std::byte> payload) {
  unsigned char header[kFrameHeaderBytes];
  EncodeFrameHeader(static_cast<std::uint32_t>(payload.size()), header);
  PVFS_RETURN_IF_ERROR(SendAll(fd, header, sizeof header));
  return SendAll(fd, payload.data(), payload.size());
}

namespace {

Status RecvAll(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = ::recv(fd, p, len, 0);
    if (n == 0) return Unavailable("connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return DeadlineExceeded("recv: response timed out");
      }
      return Unavailable(std::string("recv: ") + std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<std::byte>> RecvFrame(int fd) {
  unsigned char header[kFrameHeaderBytes];
  PVFS_RETURN_IF_ERROR(RecvAll(fd, header, sizeof header));
  std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                      (static_cast<std::uint32_t>(header[1]) << 8) |
                      (static_cast<std::uint32_t>(header[2]) << 16) |
                      (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) {
    return ProtocolError("frame exceeds size limit");
  }
  std::vector<std::byte> payload(len);
  if (len > 0) {
    PVFS_RETURN_IF_ERROR(RecvAll(fd, payload.data(), len));
  }
  return payload;
}

}  // namespace pvfs::net
