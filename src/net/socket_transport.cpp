#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/mux_transport.hpp"

namespace pvfs::net {

namespace {

// epoll user-data tags for the two non-connection fds in the set.
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;

obs::Registry& Reg(const SocketServer::Options& options) {
  return options.registry != nullptr ? *options.registry
                                     : obs::Registry::Global();
}

}  // namespace

// ---- SocketServer ----------------------------------------------------------

Result<std::unique_ptr<SocketServer>> SocketServer::Start(
    std::uint16_t port, ServiceFn service, AdmissionController* admission,
    ServerId server) {
  return Start(port, std::move(service), admission, server, Options{});
}

Result<std::unique_ptr<SocketServer>> SocketServer::Start(
    std::uint16_t port, ServiceFn service, AdmissionController* admission,
    ServerId server, Options options) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 1024) != 0) {
    ::close(fd);
    return Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t addrlen = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addrlen) != 0) {
    ::close(fd);
    return Internal("getsockname failed");
  }

  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    ::close(fd);
    return Internal(std::string("epoll_create1: ") + std::strerror(errno));
  }
  int wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd < 0) {
    ::close(epoll_fd);
    ::close(fd);
    return Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(wake_fd);
    ::close(epoll_fd);
    ::close(fd);
    return Internal("epoll_ctl(listen) failed");
  }
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    ::close(wake_fd);
    ::close(epoll_fd);
    ::close(fd);
    return Internal("epoll_ctl(wake) failed");
  }
  return std::unique_ptr<SocketServer>(
      new SocketServer(fd, epoll_fd, wake_fd, ntohs(addr.sin_port),
                       std::move(service), admission, server,
                       std::move(options)));
}

SocketServer::SocketServer(int listen_fd, int epoll_fd, int wake_fd,
                           std::uint16_t port, ServiceFn service,
                           AdmissionController* admission, ServerId server,
                           Options options)
    : listen_fd_(listen_fd),
      epoll_fd_(epoll_fd),
      wake_fd_(wake_fd),
      port_(port),
      service_(std::move(service)),
      admission_(admission),
      server_(server),
      options_(std::move(options)),
      open_connections_g_(Reg(options_).Gauge("iod.transport.open_connections",
                                              options_.metric_labels)),
      readable_events_c_(Reg(options_).Counter("iod.transport.readable_events",
                                               options_.metric_labels)),
      partial_frames_c_(Reg(options_).Counter("iod.transport.partial_frames",
                                              options_.metric_labels)),
      inflight_g_(Reg(options_).Gauge("iod.transport.inflight_requests",
                                      options_.metric_labels)) {
  std::uint32_t workers = std::max<std::uint32_t>(1, options_.worker_threads);
  workers_.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  poller_ = std::jthread([this] { PollLoop(); });
}

SocketServer::~SocketServer() {
  stopping_.store(true);
  WakePoller();
  poller_.join();
  // Workers drain every dispatched request before exiting so admission
  // accounting completes (depth gauge back to zero); their responses are
  // simply never delivered.
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  for (auto& [id, conn] : conns_) {
    ::shutdown(conn.fd, SHUT_RDWR);
    ::close(conn.fd);
    open_connections_g_.Add(-1);
  }
  conns_.clear();
  ::close(listen_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void SocketServer::WakePoller() {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void SocketServer::PollLoop() {
  epoll_event events[128];
  while (!stopping_.load()) {
    int n = ::epoll_wait(epoll_fd_, events, 128, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll set broken; nothing recoverable
    }
    for (int i = 0; i < n && !stopping_.load(); ++i) {
      std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        DeliverCompletions();
        continue;
      }
      // A previous event in this batch may have closed the connection;
      // look it up fresh for each event (and between the two halves).
      if (events[i].events & EPOLLOUT) {
        auto it = conns_.find(tag);
        if (it != conns_.end()) FlushWrites(it->second);
      }
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        auto it = conns_.find(tag);
        if (it != conns_.end()) ReadReady(it->second);
      }
    }
  }
}

void SocketServer::AcceptReady() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept failure
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::uint64_t id = next_conn_id_++;
    Connection& conn = conns_[id];
    conn.id = id;
    conn.fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      conns_.erase(id);
      continue;
    }
    ++connections_;
    open_connections_g_.Add(1);
  }
}

void SocketServer::UpdateInterest(Connection& conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn.paused && !conn.read_closed) ev.events |= EPOLLIN;
  if (conn.want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void SocketServer::PumpConnection(Connection& conn) {
  const std::uint32_t max_inflight = options_.max_inflight_per_connection;
  const std::size_t cap = options_.max_write_buffer_bytes;
  auto over_budget = [&] {
    return (max_inflight > 0 && conn.inflight >= max_inflight) ||
           conn.out_bytes > cap;
  };
  // Dispatch decoded frames only while the budgets hold: a single recv
  // can complete dozens of pipelined requests, and dispatching them all
  // would let one connection buffer unbounded response bytes. Frames over
  // budget stay parked in the decoder and re-enter here as replies drain.
  while (!over_budget()) {
    auto frame = conn.decoder.Next();
    if (!frame) break;
    HandleFrame(conn, std::move(*frame));
    // HandleFrame can shed/enqueue but never closes; conn stays valid.
  }
  if (!conn.paused && over_budget()) {
    conn.paused = true;
    UpdateInterest(conn);
  } else if (conn.paused &&
             (max_inflight == 0 || conn.inflight < max_inflight) &&
             conn.out_bytes <= cap / 2) {
    // Resume below half the buffer cap (hysteresis) once the in-flight
    // budget has headroom again. Any parked frames were dispatched by the
    // loop above before this branch can be taken.
    conn.paused = false;
    UpdateInterest(conn);
  }
}

bool SocketServer::MaybeCloseDrained(Connection& conn) {
  if (conn.read_closed && conn.inflight == 0 && conn.out.empty() &&
      !conn.decoder.has_ready()) {
    CloseConnection(conn.id);
    return true;
  }
  return false;
}

void SocketServer::ReadReady(Connection& conn) {
  readable_events_c_.Increment();
  std::byte buf[65536];
  // One recv per readiness event: level-triggered epoll re-reports the fd
  // until drained, which keeps one floody connection from starving the
  // rest of the set.
  ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
  if (n == 0) {
    // Peer half-closed; frames already decoded still get served and
    // their replies flushed before the connection goes away.
    conn.read_closed = true;
    PumpConnection(conn);
    if (MaybeCloseDrained(conn)) return;
    UpdateInterest(conn);
    return;
  }
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(conn.id);
    return;
  }
  const std::uint64_t id = conn.id;
  if (!conn.decoder.Feed({buf, static_cast<std::size_t>(n)}).ok()) {
    CloseConnection(id);  // hostile length prefix: poisoned stream
    return;
  }
  if (conn.decoder.has_partial()) partial_frames_c_.Increment();
  PumpConnection(conn);
}

void SocketServer::HandleFrame(Connection& conn,
                               std::vector<std::byte> frame) {
  const std::uint64_t corr_id = PeekTrailerId(frame);
  AdmissionController::Slot slot{};
  if (admission_ != nullptr && !admission_->TryAdmit(slot)) {
    // Shed from the poller: the busy reply is stamped with the refused
    // request's id so a multiplexed client's waiter sees it.
    EnqueueResponse(conn, options_.correlate_responses
                              ? SealedBusyResponse(server_, corr_id)
                              : SealedBusyResponse(server_));
    return;
  }
  ++conn.inflight;
  inflight_g_.Add(1);
  {
    std::lock_guard lock(work_mutex_);
    work_.push_back(Work{conn.id, std::move(frame), corr_id, slot});
  }
  work_cv_.notify_one();
}

void SocketServer::WorkerLoop() {
  for (;;) {
    Work w;
    {
      std::unique_lock lock(work_mutex_);
      work_cv_.wait(lock,
                    [&] { return stopping_.load() || !work_.empty(); });
      if (work_.empty()) return;  // stopping and fully drained
      w = std::move(work_.front());
      work_.pop_front();
    }
    std::vector<std::byte> response;
    {
      // By default the daemons are externally synchronized: one service
      // call at a time per server, exactly as the thread-per-connection
      // transport guaranteed. A flows daemon synchronizes internally
      // (ServerConfig::flows), so its options drop the mutex and service
      // calls overlap.
      std::unique_lock lock(service_mutex_, std::defer_lock);
      if (options_.serialize_service) lock.lock();
      if (admission_ != nullptr) admission_->BeginService(w.slot);
      response = service_(w.frame);
    }
    if (admission_ != nullptr) admission_->Finish(w.slot);
    if (options_.correlate_responses && PeekTrailerId(response) != w.corr_id) {
      // The service had no ambient id for this request (corrupt frame that
      // failed its CRC before the id could be adopted): re-seal so the
      // reply still correlates.
      response = ResealWithId(std::move(response), w.corr_id);
    }
    {
      std::lock_guard lock(done_mutex_);
      done_.push_back(Completion{w.conn, std::move(response)});
    }
    inflight_g_.Add(-1);
    WakePoller();
  }
}

void SocketServer::DeliverCompletions() {
  std::deque<Completion> ready;
  {
    std::lock_guard lock(done_mutex_);
    ready.swap(done_);
  }
  for (Completion& done : ready) {
    auto it = conns_.find(done.conn);
    if (it == conns_.end()) continue;  // connection died mid-service
    Connection& conn = it->second;
    if (conn.inflight > 0) --conn.inflight;
    EnqueueResponse(conn, std::move(done.payload));
    PumpConnection(conn);  // in-flight budget freed: dispatch parked frames
  }
}

void SocketServer::EnqueueResponse(Connection& conn,
                                   std::vector<std::byte> payload) {
  std::vector<std::byte> header(kFrameHeaderBytes);
  EncodeFrameHeader(static_cast<std::uint32_t>(payload.size()),
                    reinterpret_cast<unsigned char*>(header.data()));
  conn.out_bytes += header.size() + payload.size();
  conn.out.push_back(std::move(header));
  conn.out.push_back(std::move(payload));
  std::uint64_t hw = max_write_buffered_.load();
  while (conn.out_bytes > hw &&
         !max_write_buffered_.compare_exchange_weak(hw, conn.out_bytes)) {
  }
  if (!conn.want_write) {
    conn.want_write = true;
    UpdateInterest(conn);  // level-triggered: fires as soon as writable
  }
}

void SocketServer::FlushWrites(Connection& conn) {
  const std::uint64_t id = conn.id;
  while (!conn.out.empty()) {
    std::vector<std::byte>& front = conn.out.front();
    if (front.empty()) {
      conn.out.pop_front();
      conn.out_front_off = 0;
      continue;
    }
    ssize_t n = ::send(conn.fd, front.data() + conn.out_front_off,
                       front.size() - conn.out_front_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(id);
      return;
    }
    conn.out_front_off += static_cast<std::size_t>(n);
    conn.out_bytes -= static_cast<std::size_t>(n);
    if (conn.out_front_off == front.size()) {
      conn.out.pop_front();
      conn.out_front_off = 0;
    }
  }
  conn.want_write = false;
  PumpConnection(conn);  // write buffer drained: dispatch parked frames
  if (MaybeCloseDrained(conn)) return;
  UpdateInterest(conn);
}

void SocketServer::CloseConnection(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns_.erase(it);
  open_connections_g_.Add(-1);
}

// ---- SocketTransport --------------------------------------------------------

SocketTransport::SocketTransport(SocketAddress manager,
                                 std::vector<SocketAddress> iods,
                                 std::chrono::milliseconds call_timeout)
    : call_timeout_(call_timeout) {
  manager_.address = std::move(manager);
  iods_.reserve(iods.size());
  for (SocketAddress& addr : iods) {
    auto conn = std::make_unique<Connection>();
    conn->address = std::move(addr);
    iods_.push_back(std::move(conn));
  }
}

SocketTransport::~SocketTransport() {
  if (manager_.fd >= 0) ::close(manager_.fd);
  for (auto& conn : iods_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

Result<std::vector<std::byte>> SocketTransport::CallOn(
    Connection& conn, std::span<const std::byte> request) {
  std::lock_guard lock(conn.mutex);
  if (conn.fd < 0) {
    PVFS_ASSIGN_OR_RETURN(
        conn.fd, ConnectSocket(conn.address, call_timeout_,
                               /*arm_receive_timeout=*/true));
  }
  Status sent = SendFrame(conn.fd, request);
  if (!sent.ok()) {
    ::close(conn.fd);
    conn.fd = -1;
    return Status(sent.code(), sent.message() + " (sending to " +
                                   EndpointLabel(conn.address) + ")");
  }
  auto response = RecvFrame(conn.fd);
  if (!response.ok()) {
    ::close(conn.fd);
    conn.fd = -1;
    return Status(response.status().code(),
                  response.status().message() + " (receiving from " +
                      EndpointLabel(conn.address) + ")");
  }
  return response;
}

Result<std::vector<std::byte>> SocketTransport::Call(
    const Endpoint& dest, std::span<const std::byte> request) {
  if (dest.is_manager) return CallOn(manager_, request);
  if (dest.server >= iods_.size()) return NotFound("no such I/O server");
  return CallOn(*iods_[dest.server], request);
}

Result<int> ConnectSocket(const SocketAddress& address,
                          std::chrono::milliseconds timeout,
                          bool arm_receive_timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(address.port);
  if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad address " + address.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Unavailable("connect to " + EndpointLabel(address) + ": " +
                       std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (timeout.count() > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    // A multiplexed connection's reader must idle indefinitely between
    // replies, so it never arms SO_RCVTIMEO; the classic exchange path
    // does (one request, one bounded wait).
    if (arm_receive_timeout) {
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
  }
  return fd;
}

// ---- SocketCluster ----------------------------------------------------------

SocketCluster::SocketCluster(std::uint32_t server_count,
                             const ServerConfig& config,
                             obs::Registry* registry)
    : config_(config),
      registry_(registry != nullptr ? registry : &obs::Registry::Global()),
      manager_(server_count) {
  iods_.reserve(server_count);
  admissions_.reserve(server_count);
  for (ServerId s = 0; s < server_count; ++s) {
    iods_.push_back(std::make_unique<IoDaemon>(s, config));
    admissions_.push_back(std::make_unique<AdmissionController>(
        s, config.max_queue_depth, registry));
  }
}

SocketServer::Options SocketCluster::IodServerOptions(ServerId s) const {
  SocketServer::Options options;
  options.worker_threads = config_.transport_workers;
  // A flows daemon is internally synchronized (atomic stats, locked
  // store): let the transport run its Serve calls concurrently.
  options.serialize_service = !config_.flows;
  options.correlate_responses = true;
  options.registry = registry_;
  options.metric_labels = {{"server", std::to_string(s)}};
  return options;
}

Result<std::unique_ptr<SocketCluster>> SocketCluster::Start(
    std::uint32_t server_count, std::uint32_t max_list_regions,
    std::uint16_t base_port) {
  return Start(server_count,
               ServerConfig{.max_list_regions = max_list_regions}, base_port);
}

Result<std::unique_ptr<SocketCluster>> SocketCluster::Start(
    std::uint32_t server_count, const ServerConfig& config,
    std::uint16_t base_port, obs::Registry* registry) {
  std::unique_ptr<SocketCluster> cluster(
      new SocketCluster(server_count, config, registry));

  SocketServer::Options manager_options;
  manager_options.worker_threads = config.transport_workers;
  manager_options.correlate_responses = true;
  manager_options.registry = cluster->registry_;
  manager_options.metric_labels = {{"server", "mgr"}};
  PVFS_ASSIGN_OR_RETURN(
      cluster->manager_server_,
      SocketServer::Start(
          base_port,
          [m = &cluster->manager_](std::span<const std::byte> req) {
            return m->HandleSealedMessage(req);
          },
          nullptr, 0, std::move(manager_options)));
  for (ServerId s = 0; s < server_count; ++s) {
    std::uint16_t port =
        base_port == 0 ? 0 : static_cast<std::uint16_t>(base_port + 1 + s);
    PVFS_ASSIGN_OR_RETURN(
        auto server,
        SocketServer::Start(
            port,
            [iod = cluster->iods_[s].get()](std::span<const std::byte> req) {
              return iod->HandleSealedMessage(req);
            },
            cluster->admissions_[s].get(), s, cluster->IodServerOptions(s)));
    cluster->iod_ports_.push_back(server->port());
    cluster->iod_servers_.push_back(std::move(server));
  }
  return cluster;
}

Status SocketCluster::StopIod(ServerId s) {
  if (s >= iod_servers_.size()) return NotFound("no such I/O server");
  if (iod_servers_[s] == nullptr) {
    return FailedPrecondition("iod already stopped");
  }
  iod_servers_[s].reset();  // closes the listener and live connections
  return Status::Ok();
}

Status SocketCluster::RestartIod(ServerId s) {
  if (s >= iod_servers_.size()) return NotFound("no such I/O server");
  if (iod_servers_[s] != nullptr) {
    return FailedPrecondition("iod already running");
  }
  // A restarted daemon replays or rolls back pending write intents before
  // accepting its first request, mirroring a real iod's journal recovery
  // at boot (done before the listener exists so no request can race it).
  iods_[s]->RecoverStore();
  PVFS_ASSIGN_OR_RETURN(
      iod_servers_[s],
      SocketServer::Start(
          iod_ports_[s],
          [iod = iods_[s].get()](std::span<const std::byte> req) {
            return iod->HandleSealedMessage(req);
          },
          admissions_[s].get(), s, IodServerOptions(s)));
  // Restarting restores availability; the scrub restores redundancy.
  // Writes acked by the surviving replica while this daemon was down are
  // copied back before RestartIod returns, so a subsequent failure of that
  // replica cannot lose them. Best effort: the daemon stays up even when a
  // repair source is itself unreachable (chunks are counted unrepaired and
  // a later RepairIod can finish the job).
  (void)RepairIod(s);
  return Status::Ok();
}

Result<RepairReport> SocketCluster::RepairIod(ServerId s) const {
  if (s >= iod_servers_.size()) return NotFound("no such I/O server");
  if (iod_servers_[s] == nullptr) {
    return FailedPrecondition("iod not running");
  }
  // A private transport so repair traffic rides the ordinary sealed wire
  // protocol (and shows up in the same transport metrics as client I/O).
  // The timeout only bounds fetches from replicas that die mid-repair, so
  // it is generous: a sanitized build under full test load must not trip
  // it and abandon the scrub halfway.
  auto transport = Connect(std::chrono::milliseconds{10'000});
  return RepairRestartedIod(*transport, s);
}

std::vector<SocketAddress> SocketCluster::iod_addresses() const {
  std::vector<SocketAddress> out;
  out.reserve(iod_ports_.size());
  for (std::uint16_t port : iod_ports_) {
    out.push_back({"127.0.0.1", port});
  }
  return out;
}

std::unique_ptr<SocketTransport> SocketCluster::Connect(
    std::chrono::milliseconds call_timeout) const {
  return std::make_unique<SocketTransport>(manager_address(),
                                           iod_addresses(), call_timeout);
}

std::unique_ptr<Transport> SocketCluster::Connect(
    const ClientConfig& config) const {
  if (config.multiplex) {
    return std::make_unique<MuxSocketTransport>(manager_address(),
                                                iod_addresses(), config);
  }
  return std::make_unique<SocketTransport>(manager_address(),
                                           iod_addresses(),
                                           config.call_timeout);
}

}  // namespace pvfs::net
