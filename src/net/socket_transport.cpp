#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pvfs::net {

namespace {

// Transmission failures are transient from the caller's perspective — the
// peer daemon may be restarting — so they surface as kUnavailable (and
// armed socket timeouts as kDeadlineExceeded), the codes the client retry
// layer treats as retryable.
Status SendAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return DeadlineExceeded("send: request timed out");
      }
      return Unavailable(std::string("send: ") + std::strerror(errno));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status RecvAll(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = ::recv(fd, p, len, 0);
    if (n == 0) return Unavailable("connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return DeadlineExceeded("recv: response timed out");
      }
      return Unavailable(std::string("recv: ") + std::strerror(errno));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status SendFrame(int fd, std::span<const std::byte> payload) {
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>(len), static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 24)};
  PVFS_RETURN_IF_ERROR(SendAll(fd, header, sizeof header));
  return SendAll(fd, payload.data(), payload.size());
}

Result<std::vector<std::byte>> RecvFrame(int fd) {
  unsigned char header[4];
  PVFS_RETURN_IF_ERROR(RecvAll(fd, header, sizeof header));
  std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                      (static_cast<std::uint32_t>(header[1]) << 8) |
                      (static_cast<std::uint32_t>(header[2]) << 16) |
                      (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) {
    return ProtocolError("frame exceeds size limit");
  }
  std::vector<std::byte> payload(len);
  if (len > 0) {
    PVFS_RETURN_IF_ERROR(RecvAll(fd, payload.data(), len));
  }
  return payload;
}

}  // namespace

// ---- SocketServer ----------------------------------------------------------

Result<std::unique_ptr<SocketServer>> SocketServer::Start(
    std::uint16_t port, ServiceFn service, AdmissionController* admission,
    ServerId server) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t addrlen = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addrlen) != 0) {
    ::close(fd);
    return Internal("getsockname failed");
  }
  return std::unique_ptr<SocketServer>(
      new SocketServer(fd, ntohs(addr.sin_port), std::move(service),
                       admission, server));
}

SocketServer::SocketServer(int listen_fd, std::uint16_t port,
                           ServiceFn service, AdmissionController* admission,
                           ServerId server)
    : listen_fd_(listen_fd),
      port_(port),
      service_(std::move(service)),
      admission_(admission),
      server_(server) {
  acceptor_ = std::jthread([this] { AcceptLoop(); });
}

SocketServer::~SocketServer() {
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  acceptor_.join();
  {
    // Unblock workers waiting in recv on live connections.
    std::lock_guard lock(workers_mutex_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // Join workers before any member destructs: exiting workers touch
  // live_fds_ and workers_mutex_, which are destroyed before `workers_`
  // would join on its own (members destruct in reverse order).
  std::vector<std::jthread> workers;
  {
    std::lock_guard lock(workers_mutex_);
    workers.swap(workers_);
  }
  workers.clear();  // joins
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener broken
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ++connections_;
    std::lock_guard lock(workers_mutex_);
    live_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void SocketServer::ServeConnection(int fd) {
  while (!stopping_.load()) {
    auto request = RecvFrame(fd);
    if (!request.ok()) break;  // peer closed or error: drop connection
    // Admission happens before queueing on the service mutex: a daemon at
    // its bound answers busy immediately, keeping the connection alive so
    // the client's backed-off resend reuses it.
    AdmissionController::Slot slot;
    if (admission_ != nullptr && !admission_->TryAdmit(slot)) {
      if (!SendFrame(fd, SealedBusyResponse(server_)).ok()) break;
      continue;
    }
    std::vector<std::byte> response;
    {
      std::lock_guard lock(service_mutex_);
      if (admission_ != nullptr) admission_->BeginService(slot);
      response = service_(*request);
    }
    if (admission_ != nullptr) admission_->Finish(slot);
    if (!SendFrame(fd, response).ok()) break;
  }
  {
    std::lock_guard lock(workers_mutex_);
    std::erase(live_fds_, fd);
  }
  ::close(fd);
}

// ---- SocketTransport --------------------------------------------------------

SocketTransport::SocketTransport(SocketAddress manager,
                                 std::vector<SocketAddress> iods,
                                 std::chrono::milliseconds call_timeout)
    : call_timeout_(call_timeout) {
  manager_.address = std::move(manager);
  iods_.reserve(iods.size());
  for (SocketAddress& addr : iods) {
    auto conn = std::make_unique<Connection>();
    conn->address = std::move(addr);
    iods_.push_back(std::move(conn));
  }
}

SocketTransport::~SocketTransport() {
  if (manager_.fd >= 0) ::close(manager_.fd);
  for (auto& conn : iods_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

Result<std::vector<std::byte>> SocketTransport::CallOn(
    Connection& conn, std::span<const std::byte> request) {
  std::lock_guard lock(conn.mutex);
  if (conn.fd < 0) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Internal("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(conn.address.port);
    if (::inet_pton(AF_INET, conn.address.host.c_str(), &addr.sin_addr) !=
        1) {
      ::close(fd);
      return InvalidArgument("bad address " + conn.address.host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return Unavailable(std::string("connect: ") + std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (call_timeout_.count() > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(call_timeout_.count() / 1000);
      tv.tv_usec =
          static_cast<suseconds_t>((call_timeout_.count() % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
    conn.fd = fd;
  }
  Status sent = SendFrame(conn.fd, request);
  if (!sent.ok()) {
    ::close(conn.fd);
    conn.fd = -1;
    return sent;
  }
  auto response = RecvFrame(conn.fd);
  if (!response.ok()) {
    ::close(conn.fd);
    conn.fd = -1;
  }
  return response;
}

Result<std::vector<std::byte>> SocketTransport::Call(
    const Endpoint& dest, std::span<const std::byte> request) {
  if (dest.is_manager) return CallOn(manager_, request);
  if (dest.server >= iods_.size()) return NotFound("no such I/O server");
  return CallOn(*iods_[dest.server], request);
}

// ---- SocketCluster ----------------------------------------------------------

SocketCluster::SocketCluster(std::uint32_t server_count,
                             const ServerConfig& config,
                             obs::Registry* registry)
    : manager_(server_count) {
  iods_.reserve(server_count);
  admissions_.reserve(server_count);
  for (ServerId s = 0; s < server_count; ++s) {
    iods_.push_back(std::make_unique<IoDaemon>(s, config));
    admissions_.push_back(std::make_unique<AdmissionController>(
        s, config.max_queue_depth, registry));
  }
}

Result<std::unique_ptr<SocketCluster>> SocketCluster::Start(
    std::uint32_t server_count, std::uint32_t max_list_regions,
    std::uint16_t base_port) {
  return Start(server_count,
               ServerConfig{.max_list_regions = max_list_regions}, base_port);
}

Result<std::unique_ptr<SocketCluster>> SocketCluster::Start(
    std::uint32_t server_count, const ServerConfig& config,
    std::uint16_t base_port, obs::Registry* registry) {
  std::unique_ptr<SocketCluster> cluster(
      new SocketCluster(server_count, config, registry));

  PVFS_ASSIGN_OR_RETURN(
      cluster->manager_server_,
      SocketServer::Start(base_port, [m = &cluster->manager_](
                                         std::span<const std::byte> req) {
        return m->HandleSealedMessage(req);
      }));
  for (ServerId s = 0; s < server_count; ++s) {
    std::uint16_t port =
        base_port == 0 ? 0 : static_cast<std::uint16_t>(base_port + 1 + s);
    PVFS_ASSIGN_OR_RETURN(
        auto server,
        SocketServer::Start(
            port,
            [iod = cluster->iods_[s].get()](std::span<const std::byte> req) {
              return iod->HandleSealedMessage(req);
            },
            cluster->admissions_[s].get(), s));
    cluster->iod_ports_.push_back(server->port());
    cluster->iod_servers_.push_back(std::move(server));
  }
  return cluster;
}

Status SocketCluster::StopIod(ServerId s) {
  if (s >= iod_servers_.size()) return NotFound("no such I/O server");
  if (iod_servers_[s] == nullptr) {
    return FailedPrecondition("iod already stopped");
  }
  iod_servers_[s].reset();  // closes the listener and live connections
  return Status::Ok();
}

Status SocketCluster::RestartIod(ServerId s) {
  if (s >= iod_servers_.size()) return NotFound("no such I/O server");
  if (iod_servers_[s] != nullptr) {
    return FailedPrecondition("iod already running");
  }
  // A restarted daemon replays or rolls back pending write intents before
  // accepting its first request, mirroring a real iod's journal recovery
  // at boot (done before the listener exists so no request can race it).
  iods_[s]->RecoverStore();
  PVFS_ASSIGN_OR_RETURN(
      iod_servers_[s],
      SocketServer::Start(
          iod_ports_[s],
          [iod = iods_[s].get()](std::span<const std::byte> req) {
            return iod->HandleSealedMessage(req);
          },
          admissions_[s].get(), s));
  return Status::Ok();
}

std::vector<SocketAddress> SocketCluster::iod_addresses() const {
  std::vector<SocketAddress> out;
  out.reserve(iod_ports_.size());
  for (std::uint16_t port : iod_ports_) {
    out.push_back({"127.0.0.1", port});
  }
  return out;
}

std::unique_ptr<SocketTransport> SocketCluster::Connect(
    std::chrono::milliseconds call_timeout) const {
  return std::make_unique<SocketTransport>(manager_address(),
                                           iod_addresses(), call_timeout);
}

}  // namespace pvfs::net
