// Wire framing for the TCP transports: the u32 little-endian
// length-prefixed frame format, in two shapes.
//
//   FrameDecoder   — incremental reassembly for the event-driven server
//                    and other nonblocking readers: bytes arrive in
//                    arbitrary splits (a length prefix can straddle two
//                    reads), complete frames pop out. Hostile length
//                    prefixes are rejected when the header completes,
//                    before any payload allocation.
//   SendFrame /    — blocking helpers for the classic one-request-at-a-
//   RecvFrame        time client connection (and anything else holding a
//                    blocking fd).
//
// The payload of every frame on the daemon wire is a CRC32C-sealed
// message (src/common/wire): payload || u64 request id || u32 CRC.
// PeekTrailerId reads the request id straight out of those trailer bytes
// without verifying the seal — the multiplexing correlation key. Both
// ends of a multiplexed connection apply the same rule to the same
// bytes, so even a frame that fails its CRC still correlates to the
// exchange that carried it (the kCorruption reply must reach the right
// waiter, not time out).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace pvfs::net {

/// Maximum accepted frame (guards against hostile length prefixes).
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

/// Byte size of the frame length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// The 4-byte little-endian length prefix for a `payload_len`-byte frame.
void EncodeFrameHeader(std::uint32_t payload_len,
                       unsigned char out[kFrameHeaderBytes]);

/// One wire frame (header + payload) as a single buffer, ready to send.
std::vector<std::byte> EncodeFrame(std::span<const std::byte> payload);

/// The request id sealed into a frame payload's trailer, read without
/// verifying the CRC (see header comment). 0 when the payload is shorter
/// than a trailer (no id can be carried).
std::uint64_t PeekTrailerId(std::span<const std::byte> payload);

/// Replace the sealed trailer of `payload` so it carries `request_id`
/// (re-sealing with a fresh CRC). A payload shorter than a trailer is
/// treated as an unsealed body and sealed whole. Used by the server to
/// guarantee every reply correlates to its request even when the service
/// had no ambient id (corrupt request, admission shed).
std::vector<std::byte> ResealWithId(std::vector<std::byte> payload,
                                    std::uint64_t request_id);

/// Incremental reassembly of length-prefixed frames from a byte stream.
/// Single-owner (one connection's reader); not thread-safe.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Buffer `data`, completing as many frames as it finishes. Returns
  /// kProtocol the moment a length prefix exceeds the frame limit —
  /// before any payload allocation — and the decoder stays failed (the
  /// connection is poisoned; close it).
  Status Feed(std::span<const std::byte> data);

  /// Pop the next complete frame payload, or nullopt when none is ready.
  std::optional<std::vector<std::byte>> Next();

  /// True when at least one complete frame is queued. Lets a reader under
  /// backpressure leave decoded frames parked here and drain them later.
  bool has_ready() const { return !ready_.empty(); }

  /// True when bytes of an incomplete frame (header or payload) are
  /// buffered — the "read pass ended mid-frame" signal the transport
  /// metrics count.
  bool has_partial() const {
    return header_filled_ > 0 || in_payload_;
  }

  /// Complete frames decoded over this decoder's lifetime.
  std::uint64_t frames_decoded() const { return frames_decoded_; }

  /// Bytes currently buffered: queued complete frames plus the partial
  /// frame under assembly.
  std::size_t buffered_bytes() const;

  bool failed() const { return failed_; }

 private:
  std::uint32_t max_frame_bytes_;
  std::deque<std::vector<std::byte>> ready_;
  std::vector<std::byte> partial_;
  unsigned char header_[kFrameHeaderBytes] = {};
  std::size_t header_filled_ = 0;
  bool in_payload_ = false;
  std::uint32_t payload_len_ = 0;
  std::uint64_t frames_decoded_ = 0;
  bool failed_ = false;
};

// ---- Blocking helpers (classic client connections) -------------------------

/// send() until done. Transmission failures surface as kUnavailable (the
/// peer may be restarting) or kDeadlineExceeded (an armed SO_SNDTIMEO
/// fired) — the codes the client retry layer treats as retryable.
Status SendAll(int fd, const void* data, std::size_t len);

/// Write one frame (header + payload) to a blocking fd.
Status SendFrame(int fd, std::span<const std::byte> payload);

/// Read one frame from a blocking fd. kUnavailable on EOF/reset,
/// kDeadlineExceeded when an armed SO_RCVTIMEO fires, kProtocol on a
/// hostile length prefix.
Result<std::vector<std::byte>> RecvFrame(int fd);

}  // namespace pvfs::net
