#include "sim/simulator.hpp"

#include <cassert>

namespace pvfs::sim {

Simulator::~Simulator() {
  // Reclaim frames of detached coroutines that never finished (finished
  // ones unregistered themselves at final suspension).
  for (void* address : detached_) {
    std::coroutine_handle<>::from_address(address).destroy();
  }
}

void Simulator::Schedule(SimTimeNs delay, std::function<void()> fn) {
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTimeNs when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulator::ScheduleResume(SimTimeNs delay, std::coroutine_handle<> h) {
  Schedule(delay, [h] { h.resume(); });
}

void Simulator::PopAndRun() {
  // Move the event out before popping so the function object survives
  // rescheduling from within its own execution.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++events_processed_;
  ev.fn();
}

SimTimeNs Simulator::Run() {
  while (!queue_.empty()) PopAndRun();
  return now_;
}

std::uint64_t Simulator::RunUntil(SimTimeNs deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    PopAndRun();
    ++n;
  }
  if (now_ < deadline && queue_.empty()) now_ = deadline;
  return n;
}

}  // namespace pvfs::sim
