// Discrete-event simulation core: a virtual nanosecond clock and an event
// queue. Processes are modeled as C++20 coroutines (see task.hpp) that
// suspend on awaitables which schedule their resumption here.
//
// Determinism: events at equal timestamps run in schedule order (a
// monotonically increasing sequence number breaks ties), so a given seed
// always produces the same trajectory.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace pvfs::sim {

class Simulator {
 public:
  Simulator() = default;
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTimeNs Now() const { return now_; }

  /// Run `fn` at Now() + delay.
  void Schedule(SimTimeNs delay, std::function<void()> fn);

  /// Run `fn` at absolute virtual time `when` (>= Now()).
  void ScheduleAt(SimTimeNs when, std::function<void()> fn);

  /// Resume a coroutine at Now() + delay. The handle must stay valid until
  /// it runs.
  void ScheduleResume(SimTimeNs delay, std::coroutine_handle<> h);

  /// Process events until the queue drains. Returns the final clock value.
  SimTimeNs Run();

  /// Process events with time <= deadline; clock ends at
  /// min(deadline, last event time). Returns number of events processed.
  std::uint64_t RunUntil(SimTimeNs deadline);

  /// Total events processed so far.
  std::uint64_t EventsProcessed() const { return events_processed_; }

  /// Awaitable: co_await sim.Delay(ns) suspends the calling coroutine for
  /// `ns` of virtual time.
  auto Delay(SimTimeNs ns) {
    struct Awaiter {
      Simulator& sim;
      SimTimeNs delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.ScheduleResume(delay, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, ns};
  }

  // --- Detached-coroutine registry (used by task.hpp's Spawn) ---------

  /// Record a live detached coroutine so its frame is reclaimed at
  /// simulator teardown even if it never finishes (e.g. waiting on a
  /// trigger that never fires). Frames that do finish unregister
  /// themselves and self-destroy (see SimTask::promise_type).
  void RegisterDetached(std::coroutine_handle<> h) {
    detached_.insert(h.address());
  }
  void UnregisterDetached(std::coroutine_handle<> h) {
    detached_.erase(h.address());
  }

 private:
  struct Event {
    SimTimeNs when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void PopAndRun();

  SimTimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_set<void*> detached_;
};

}  // namespace pvfs::sim
