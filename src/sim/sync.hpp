// Awaitable synchronization primitives for simulated processes.
//
//   Trigger        — one-shot event: any number of waiters, fired once.
//   CountdownLatch — fires when N completions have been counted (fan-in).
//   Resource       — FIFO counted resource (servers, disks, CPUs): model
//                    contention by holding a slot for the service duration.
//   SimBarrier     — cyclic barrier across a fixed party count.
//
// Resumptions are scheduled through the simulator at the current time
// rather than resumed inline, so firing a primitive from deep inside a
// coroutine cannot recurse unboundedly and ordering stays deterministic.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/simulator.hpp"

namespace pvfs::sim {

/// One-shot event. Waiting on an already-fired trigger does not suspend.
class Trigger {
 public:
  explicit Trigger(Simulator& sim) : sim_(sim) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  bool fired() const { return fired_; }

  void Fire() {
    assert(!fired_ && "Trigger fired twice");
    fired_ = true;
    for (std::coroutine_handle<> h : waiters_) {
      sim_.ScheduleResume(0, h);
    }
    waiters_.clear();
  }

  auto Wait() {
    struct Awaiter {
      Trigger& trigger;
      bool await_ready() const noexcept { return trigger.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        trigger.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Fan-in: waiters resume once CountDown() has been called `count` times.
class CountdownLatch {
 public:
  CountdownLatch(Simulator& sim, std::uint64_t count)
      : trigger_(sim), remaining_(count) {
    if (remaining_ == 0) trigger_.Fire();
  }

  void CountDown() {
    assert(remaining_ > 0);
    if (--remaining_ == 0) trigger_.Fire();
  }

  auto Wait() { return trigger_.Wait(); }
  std::uint64_t remaining() const { return remaining_; }

 private:
  Trigger trigger_;
  std::uint64_t remaining_;
};

/// FIFO counted resource. Usage:
///   co_await disk.Acquire();
///   co_await sim.Delay(service_time);
///   disk.Release();
/// Waiters are granted strictly in arrival order.
class Resource {
 public:
  Resource(Simulator& sim, std::uint32_t slots = 1)
      : sim_(sim), free_(slots), slots_(slots) {}
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  auto Acquire() {
    struct Awaiter {
      Resource& res;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (res.free_ > 0 && res.waiters_.empty()) {
          --res.free_;
          return false;  // slot granted immediately; do not suspend
        }
        res.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void Release() {
    assert(free_ < slots_);
    ++free_;
    PumpLocked();
  }

  std::uint32_t free_slots() const { return free_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  void PumpLocked() {
    while (free_ > 0 && !waiters_.empty()) {
      --free_;
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      sim_.ScheduleResume(0, h);
    }
  }

  Simulator& sim_;
  std::uint32_t free_;
  std::uint32_t slots_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Cyclic barrier for `parties` simulated processes (used by the
/// data-sieving write serialization, mirroring the paper's MPI_Barrier).
class SimBarrier {
 public:
  SimBarrier(Simulator& sim, std::uint32_t parties)
      : sim_(sim), parties_(parties) {
    assert(parties_ > 0);
  }

  auto ArriveAndWait() {
    struct Awaiter {
      SimBarrier& barrier;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (barrier.waiting_.size() + 1 == barrier.parties_) {
          for (std::coroutine_handle<> w : barrier.waiting_) {
            barrier.sim_.ScheduleResume(0, w);
          }
          barrier.waiting_.clear();
          return false;  // last arriver passes straight through
        }
        barrier.waiting_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  std::uint32_t parties_;
  std::vector<std::coroutine_handle<>> waiting_;
};

}  // namespace pvfs::sim
