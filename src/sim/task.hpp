// SimTask: the coroutine type simulated processes are written in.
//
// A SimTask is lazy: creating one does not run any code. It is either
//   * awaited by a parent coroutine (`co_await Child()`), which starts it
//     and resumes the parent when it finishes, or
//   * spawned detached onto the simulator (`Spawn(sim, ClientLoop())`),
//     which starts it at the current virtual time and lets the simulator
//     reclaim the frame at teardown.
//
// Simulated code must not throw across suspension points; an escaped
// exception terminates (simulation state would be unrecoverable anyway).
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

#include "sim/simulator.hpp"

namespace pvfs::sim {

class [[nodiscard]] SimTask {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation{};
    Simulator* detached_on = nullptr;  // non-null once spawned detached

    SimTask get_return_object() {
      return SimTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // Detached frames self-destroy here (after unregistering from the
        // simulator, which only reclaims frames that never finish).
        // Awaited frames resume their parent and are destroyed by the
        // owning SimTask.
        promise_type& p = h.promise();
        if (p.detached_on != nullptr) {
          p.detached_on->UnregisterDetached(h);
          h.destroy();
          return std::noop_coroutine();
        }
        std::coroutine_handle<> next = p.continuation;
        return next ? next : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  SimTask(SimTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      DestroyIfOwned();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { DestroyIfOwned(); }

  /// Awaiting a task starts it; the awaiting coroutine resumes when the
  /// task runs to completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer: start the child immediately
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  friend void Spawn(Simulator& sim, SimTask task);

  explicit SimTask(std::coroutine_handle<promise_type> h) : handle_(h) {}

  void DestroyIfOwned() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

/// Start `task` as an independent simulated process at the current virtual
/// time. Frame ownership transfers to the simulator.
inline void Spawn(Simulator& sim, SimTask task) {
  auto h = std::exchange(task.handle_, nullptr);
  assert(h && "cannot spawn an empty task");
  h.promise().detached_on = &sim;
  sim.RegisterDetached(h);
  sim.ScheduleResume(0, h);
}

}  // namespace pvfs::sim
