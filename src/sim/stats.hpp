// Lightweight statistics accumulators for simulation output.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pvfs::sim {

/// Streaming min/max/mean/stddev accumulator (Welford's algorithm).
class Accumulator {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const {
    return count_ ? min_ : 0.0;
  }
  double max() const {
    return count_ ? max_ : 0.0;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counters for injected faults and the recoveries they triggered, shared
/// by the functional fault-injection transport (src/fault) and the
/// simulated cluster's lossy-network model. All zeros when injection is
/// disabled.
struct FaultCounters {
  std::uint64_t frames_dropped = 0;     // request/response frames lost
  std::uint64_t frames_duplicated = 0;  // frames delivered twice
  std::uint64_t frames_delayed = 0;     // frames held back
  std::uint64_t delay_us_injected = 0;  // total injected delay
  std::uint64_t disk_read_errors = 0;
  std::uint64_t disk_write_errors = 0;
  std::uint64_t crashes = 0;            // iod crash events
  std::uint64_t restarts = 0;           // iod restart events
  std::uint64_t refused_calls = 0;      // calls rejected while an iod is down
  std::uint64_t retransmits = 0;        // simulated retransmissions charged
  std::uint64_t frames_corrupted = 0;   // frames bit-flipped in flight
  std::uint64_t frames_truncated = 0;   // frames cut short in flight
  std::uint64_t chunks_rotted = 0;      // stored-chunk bits rotted at rest
  std::uint64_t torn_writes = 0;        // iod crashes mid multi-chunk write

  std::uint64_t total() const {
    return frames_dropped + frames_duplicated + frames_delayed +
           disk_read_errors + disk_write_errors + crashes + restarts +
           refused_calls + retransmits + frames_corrupted +
           frames_truncated + chunks_rotted + torn_writes;
  }

  friend bool operator==(const FaultCounters&, const FaultCounters&) =
      default;
};

/// Fixed-boundary histogram for latency distributions.
class Histogram {
 public:
  /// Boundaries must be strictly increasing; values land in the first
  /// bucket whose upper bound exceeds them, overflow in the last bucket.
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

  void Add(double x) {
    auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
    ++counts_[static_cast<size_t>(it - bounds_.begin())];
    acc_.Add(x);
  }

  const std::vector<std::uint64_t>& counts() const { return counts_; }
  const Accumulator& summary() const { return acc_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  Accumulator acc_;
};

}  // namespace pvfs::sim
