// Lightweight statistics accumulators for simulation output.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pvfs::sim {

/// Streaming min/max/mean/stddev accumulator (Welford's algorithm).
class Accumulator {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  // min()/max() return 0.0 for an empty accumulator for numeric callers;
  // JSON exports must use empty() and emit null instead, so an empty run
  // is distinguishable from a zero-latency one (obs::AccumulatorJson).
  double min() const {
    return count_ ? min_ : 0.0;
  }
  double max() const {
    return count_ ? max_ : 0.0;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counters for injected faults and the recoveries they triggered, shared
/// by the functional fault-injection transport (src/fault) and the
/// simulated cluster's lossy-network model. All zeros when injection is
/// disabled.
struct FaultCounters {
  std::uint64_t frames_dropped = 0;     // request/response frames lost
  std::uint64_t frames_duplicated = 0;  // frames delivered twice
  std::uint64_t frames_delayed = 0;     // frames held back
  std::uint64_t delay_us_injected = 0;  // total injected delay
  std::uint64_t disk_read_errors = 0;
  std::uint64_t disk_write_errors = 0;
  std::uint64_t crashes = 0;            // iod crash events
  std::uint64_t restarts = 0;           // iod restart events
  std::uint64_t refused_calls = 0;      // calls rejected while an iod is down
  std::uint64_t retransmits = 0;        // simulated retransmissions charged
  std::uint64_t frames_corrupted = 0;   // frames bit-flipped in flight
  std::uint64_t frames_truncated = 0;   // frames cut short in flight
  std::uint64_t chunks_rotted = 0;      // stored-chunk bits rotted at rest
  std::uint64_t torn_writes = 0;        // iod crashes mid multi-chunk write

  std::uint64_t total() const {
    return frames_dropped + frames_duplicated + frames_delayed +
           disk_read_errors + disk_write_errors + crashes + restarts +
           refused_calls + retransmits + frames_corrupted +
           frames_truncated + chunks_rotted + torn_writes;
  }

  friend bool operator==(const FaultCounters&, const FaultCounters&) =
      default;
};

/// Fixed-boundary histogram for latency distributions. Values land in the
/// first bucket whose upper bound exceeds them, overflow in the last
/// bucket.
class Histogram {
 public:
  /// Boundaries are canonicalized at construction: sorted ascending with
  /// duplicates and non-finite entries dropped. (They used to be trusted
  /// verbatim, so non-increasing input silently misbucketed every Add —
  /// std::upper_bound requires a sorted range.)
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(Canonicalize(std::move(upper_bounds))),
        counts_(bounds_.size() + 1, 0) {}

  void Add(double x) {
    auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
    ++counts_[static_cast<size_t>(it - bounds_.begin())];
    acc_.Add(x);
  }

  /// q in [0,1]: percentile estimated by linear interpolation within the
  /// owning bucket, clamped to the observed min/max. NaN when empty.
  double Quantile(double q) const {
    if (acc_.empty()) return std::numeric_limits<double>::quiet_NaN();
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(acc_.count());
    std::uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      const double before = static_cast<double>(seen);
      seen += counts_[i];
      if (static_cast<double>(seen) < rank) continue;
      double lo = i == 0 ? acc_.min() : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : acc_.max();
      lo = std::max(lo, acc_.min());
      hi = std::min(hi, acc_.max());
      if (hi <= lo) return lo;
      const double frac = std::clamp(
          (rank - before) / static_cast<double>(counts_[i]), 0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
    return acc_.max();
  }

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  const Accumulator& summary() const { return acc_; }

 private:
  static std::vector<double> Canonicalize(std::vector<double> bounds) {
    std::erase_if(bounds, [](double b) { return !std::isfinite(b); });
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    return bounds;
  }

  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  Accumulator acc_;
};

/// Log-spaced bucket boundaries covering [lo, hi] with `per_decade`
/// buckets per factor of 10 (latency bucketing for request histograms).
inline std::vector<double> LogLatencyBuckets(double lo, double hi,
                                             int per_decade = 5) {
  std::vector<double> bounds;
  if (lo <= 0 || hi <= lo || per_decade <= 0) return bounds;
  const double factor = std::pow(10.0, 1.0 / per_decade);
  for (double b = lo; b < hi * factor; b *= factor) {
    bounds.push_back(b);
    if (bounds.size() > 512) break;
  }
  return bounds;
}

}  // namespace pvfs::sim
