// Simulated benchmark executor: runs one noncontiguous method over one
// workload on a SimCluster and reports virtual elapsed time per phase plus
// request counters — the quantities behind every figure in the paper's
// evaluation (§4).
#pragma once

#include <functional>
#include <memory>

#include "io/method.hpp"
#include "simcluster/region_stream.hpp"
#include "simcluster/sim_cluster.hpp"

namespace pvfs::simcluster {

/// Per-rank access description, as stream factories so million-region
/// patterns never materialize.
struct SimWorkload {
  /// File regions at list-I/O granularity (the pattern's file side).
  std::function<std::unique_ptr<RegionStream>(Rank)> file_regions;
  /// Matched-segment granularity for multiple I/O; leave empty when the
  /// memory side is contiguous (segments == file regions).
  std::function<std::unique_ptr<RegionStream>(Rank)> segments;

  std::unique_ptr<RegionStream> SegmentsFor(Rank rank) const {
    return segments ? segments(rank) : file_regions(rank);
  }
};

struct SimRunOptions {
  ByteCount sieve_buffer_bytes = kDefaultSieveBufferBytes;
  ByteCount hybrid_gap_threshold = 4096;
  /// Model an open (manager round trip) before and a close after the I/O
  /// phase, reported separately (tiled-visualization figure).
  bool include_meta = false;
  /// List-I/O request granularity. True models the paper's 2002
  /// implementation (ROMIO-style: at most 64 memory AND 64 file entries
  /// per request, i.e. 64 matched segments — for memory-noncontiguous
  /// patterns like FLASH this is the binding limit). False models this
  /// library's native client, which chunks on file regions only (trailing
  /// data carries no memory descriptions).
  bool list_uses_segments = true;
};

struct SimRunResult {
  double open_seconds = 0.0;
  double io_seconds = 0.0;
  double close_seconds = 0.0;
  double total_seconds = 0.0;
  SimCluster::Counters counters;
  std::uint64_t events = 0;
  /// Client-observed request latency distribution (seconds).
  double mean_request_latency_s = 0.0;
  double max_request_latency_s = 0.0;
  /// Percentiles from the cluster's latency histogram; NaN when the run
  /// issued no requests (JSON export turns NaN into null).
  double p50_request_latency_s = 0.0;
  double p95_request_latency_s = 0.0;
  double p99_request_latency_s = 0.0;
  std::uint64_t request_latency_samples = 0;
  /// Per-server busy time (index = global server id).
  std::vector<SimCluster::ServerLoad> server_load;
  /// Injected-fault tally (all zero when config.fault is disabled).
  sim::FaultCounters faults;
};

SimRunResult RunSimWorkload(const SimClusterConfig& config,
                            io::MethodType method, pvfs::IoOp op,
                            const SimWorkload& workload,
                            SimRunOptions options = {});

}  // namespace pvfs::simcluster
