#include "simcluster/sim_collective.hpp"

#include <algorithm>
#include <vector>

namespace pvfs::simcluster {

namespace {

/// Host-side pre-pass over the streams: aggregate range, per-rank bytes
/// per domain, coverage and the span aggregators actually touch.
struct CollectivePlan {
  FileOffset lo = 0;
  FileOffset hi = 0;
  std::vector<Extent> domains;                   // [rank]
  std::vector<std::vector<ByteCount>> bytes;     // [src rank][domain]
  std::vector<ByteCount> covered;                // [domain] data bytes
  std::vector<Extent> touched;                   // [domain] piece span
};

CollectivePlan BuildPlan(const SimClusterConfig& config,
                         const SimWorkload& workload) {
  CollectivePlan plan;
  const std::uint32_t ranks = config.clients;

  FileOffset lo = static_cast<FileOffset>(-1);
  FileOffset hi = 0;
  for (Rank r = 0; r < ranks; ++r) {
    auto stream = workload.file_regions(r);
    if (auto bound = stream->Bound()) {
      lo = std::min(lo, bound->offset);
      hi = std::max(hi, bound->end());
    }
  }
  if (hi <= lo) return plan;  // empty access
  lo -= lo % config.striping.ssize;  // stripe-align (as the mpiio layer)
  plan.lo = lo;
  plan.hi = hi;

  ByteCount share = (hi - lo + ranks - 1) / ranks;
  plan.domains.resize(ranks);
  for (Rank d = 0; d < ranks; ++d) {
    FileOffset begin = std::min<FileOffset>(hi, lo + d * share);
    FileOffset end = std::min<FileOffset>(hi, begin + share);
    plan.domains[d] = Extent{begin, end - begin};
  }

  plan.bytes.assign(ranks, std::vector<ByteCount>(ranks, 0));
  plan.covered.assign(ranks, 0);
  plan.touched.assign(ranks, Extent{0, 0});
  std::vector<bool> touched_any(ranks, false);
  for (Rank r = 0; r < ranks; ++r) {
    auto stream = workload.file_regions(r);
    while (auto region = stream->Next()) {
      // A region can straddle domain boundaries.
      FileOffset pos = region->offset;
      ByteCount remaining = region->length;
      while (remaining > 0) {
        Rank d = static_cast<Rank>(
            std::min<std::uint64_t>((pos - lo) / share, ranks - 1));
        FileOffset dom_end = plan.domains[d].end();
        ByteCount take = std::min<ByteCount>(dom_end - pos, remaining);
        plan.bytes[r][d] += take;
        plan.covered[d] += take;
        if (!touched_any[d]) {
          plan.touched[d] = Extent{pos, take};
          touched_any[d] = true;
        } else {
          FileOffset tlo = std::min(plan.touched[d].offset, pos);
          FileOffset thi = std::max(plan.touched[d].end(), pos + take);
          plan.touched[d] = Extent{tlo, thi - tlo};
        }
        pos += take;
        remaining -= take;
      }
    }
  }
  return plan;
}

sim::SimTask CollectiveClient(SimCluster& cluster, Rank rank,
                              pvfs::IoOp op, const CollectivePlan* plan,
                              sim::CountdownLatch* exchange_done,
                              sim::CountdownLatch* reply_done,
                              std::vector<SimTimeNs>* io_done) {
  sim::Simulator& sim = cluster.simulator();
  const std::uint32_t ranks =
      static_cast<std::uint32_t>(plan->domains.size());

  const bool is_write = op == pvfs::IoOp::kWrite;

  if (is_write) {
    // Phase 1: ship pieces to their domain aggregators.
    for (Rank d = 0; d < ranks; ++d) {
      ByteCount bytes = plan->bytes[rank][d];
      if (bytes > 0) {
        Spawn(sim, cluster.ClientExchange(rank, d, bytes, exchange_done));
      } else {
        exchange_done->CountDown();
      }
    }
    co_await exchange_done->Wait();

    // Phase 2: aggregate own domain with one contiguous RMW.
    const Extent& span = plan->touched[rank];
    if (!span.empty()) {
      bool full = plan->covered[rank] == span.length;
      if (!full) {
        ExtentList window(1, span);
        co_await cluster.IoOp(rank, pvfs::IoOp::kRead, std::move(window));
      }
      ExtentList window(1, span);
      co_await cluster.IoOp(rank, pvfs::IoOp::kWrite, std::move(window));
    }
    // Reuse the reply latch as the closing barrier.
    reply_done->CountDown();
    co_await reply_done->Wait();
  } else {
    // Phase 1: aggregator contiguous read of its domain span.
    const Extent& span = plan->touched[rank];
    if (!span.empty()) {
      ExtentList window(1, span);
      co_await cluster.IoOp(rank, pvfs::IoOp::kRead, std::move(window));
    }
    exchange_done->CountDown();
    co_await exchange_done->Wait();

    // Phase 2: distribute pieces back to their requesting ranks.
    for (Rank dst = 0; dst < ranks; ++dst) {
      ByteCount bytes = plan->bytes[dst][rank];
      if (bytes > 0) {
        Spawn(sim, cluster.ClientExchange(rank, dst, bytes, reply_done));
      } else {
        reply_done->CountDown();
      }
    }
    co_await reply_done->Wait();
  }

  (*io_done)[rank] = sim.Now();
}

}  // namespace

SimRunResult RunSimCollective(const SimClusterConfig& config, pvfs::IoOp op,
                              const SimWorkload& workload,
                              SimRunOptions /*options*/) {
  SimCluster cluster(config);
  CollectivePlan plan = BuildPlan(config, workload);
  SimRunResult result;
  if (plan.domains.empty()) return result;

  const std::uint64_t pairs =
      static_cast<std::uint64_t>(config.clients) * config.clients;
  sim::CountdownLatch exchange_done(cluster.simulator(),
                                    op == pvfs::IoOp::kWrite
                                        ? pairs
                                        : config.clients);
  sim::CountdownLatch reply_done(cluster.simulator(),
                                 op == pvfs::IoOp::kWrite ? config.clients
                                                          : pairs);
  std::vector<SimTimeNs> io_done(config.clients, 0);

  for (Rank rank = 0; rank < config.clients; ++rank) {
    Spawn(cluster.simulator(),
          CollectiveClient(cluster, rank, op, &plan, &exchange_done,
                           &reply_done, &io_done));
  }
  cluster.simulator().Run();

  SimTimeNs end = 0;
  for (SimTimeNs t : io_done) end = std::max(end, t);
  result.io_seconds = NsToSeconds(end);
  result.total_seconds = result.io_seconds;
  result.counters = cluster.counters();
  result.events = cluster.simulator().EventsProcessed();
  const sim::Histogram& latency = cluster.request_latency();
  result.mean_request_latency_s = latency.summary().mean();
  result.max_request_latency_s = latency.summary().max();
  result.p50_request_latency_s = latency.Quantile(0.50);
  result.p95_request_latency_s = latency.Quantile(0.95);
  result.p99_request_latency_s = latency.Quantile(0.99);
  result.request_latency_samples = latency.summary().count();
  result.server_load = cluster.server_load();
  return result;
}

}  // namespace pvfs::simcluster
