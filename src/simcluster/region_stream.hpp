// Pull-based region generators for simulated clients.
//
// Benchmark sweeps reach a million accesses per client; materializing
// extent vectors for every rank would cost gigabytes, so simulated
// workloads enumerate their file regions through this interface instead.
// Streams also report their bounding extent (for sieving-window planning)
// without enumeration where a closed form exists.
#pragma once

#include <memory>
#include <optional>

#include "common/extent.hpp"
#include "common/types.hpp"

namespace pvfs::simcluster {

class RegionStream {
 public:
  virtual ~RegionStream() = default;

  /// Next file region in traversal order, or nullopt at end.
  virtual std::optional<Extent> Next() = 0;

  /// Restart from the first region.
  virtual void Reset() = 0;

  /// Smallest extent covering all regions (nullopt for an empty stream).
  virtual std::optional<Extent> Bound() const = 0;

  /// Total data bytes across all regions.
  virtual ByteCount TotalBytes() const = 0;
};

/// Stream over a materialized extent list (small patterns, tests).
class VectorStream final : public RegionStream {
 public:
  explicit VectorStream(ExtentList regions) : regions_(std::move(regions)) {}

  std::optional<Extent> Next() override {
    if (pos_ >= regions_.size()) return std::nullopt;
    return regions_[pos_++];
  }
  void Reset() override { pos_ = 0; }
  std::optional<Extent> Bound() const override {
    return BoundingExtent(regions_);
  }
  ByteCount TotalBytes() const override {
    return ::pvfs::TotalBytes(regions_);
  }

 private:
  ExtentList regions_;
  size_t pos_ = 0;
};

/// Splits every region of an inner stream into `piece_bytes` pieces — the
/// matched-segment stream of a pattern whose memory side is uniformly
/// fragmented (e.g. FLASH: every memory region is one 8-byte variable).
class UniformSplitStream final : public RegionStream {
 public:
  UniformSplitStream(std::unique_ptr<RegionStream> inner,
                     ByteCount piece_bytes)
      : inner_(std::move(inner)), piece_(piece_bytes) {}

  std::optional<Extent> Next() override {
    if (!current_) {
      current_ = inner_->Next();
      used_ = 0;
      if (!current_) return std::nullopt;
    }
    ByteCount take = std::min<ByteCount>(piece_, current_->length - used_);
    Extent out{current_->offset + used_, take};
    used_ += take;
    if (used_ == current_->length) current_.reset();
    return out;
  }
  void Reset() override {
    inner_->Reset();
    current_.reset();
    used_ = 0;
  }
  std::optional<Extent> Bound() const override { return inner_->Bound(); }
  ByteCount TotalBytes() const override { return inner_->TotalBytes(); }

 private:
  std::unique_ptr<RegionStream> inner_;
  ByteCount piece_;
  std::optional<Extent> current_;
  ByteCount used_ = 0;
};

/// Coalesces an inner stream's consecutive regions whose gap is at most
/// `gap_threshold` bytes (the hybrid method's sieved super-regions).
class CoalesceStream final : public RegionStream {
 public:
  CoalesceStream(std::unique_ptr<RegionStream> inner,
                 ByteCount gap_threshold)
      : inner_(std::move(inner)), gap_(gap_threshold) {}

  std::optional<Extent> Next() override {
    if (!pending_) pending_ = inner_->Next();
    if (!pending_) return std::nullopt;
    Extent out = *pending_;
    while (true) {
      std::optional<Extent> next = inner_->Next();
      if (!next) {
        pending_.reset();
        return out;
      }
      if (next->offset >= out.end() && next->offset - out.end() <= gap_) {
        out.length = next->end() - out.offset;
        continue;
      }
      pending_ = next;
      return out;
    }
  }
  void Reset() override {
    inner_->Reset();
    pending_.reset();
  }
  std::optional<Extent> Bound() const override { return inner_->Bound(); }
  ByteCount TotalBytes() const override { return inner_->TotalBytes(); }

 private:
  std::unique_ptr<RegionStream> inner_;
  ByteCount gap_;
  std::optional<Extent> pending_;
};

}  // namespace pvfs::simcluster
