// SimCluster: a Chiba-City-like PVFS deployment inside the discrete-event
// simulator — N client nodes, M I/O servers (one co-hosting the manager),
// a switched 100 Mbps Ethernet, and per-server disk + page-cache models.
//
// Simulated clients issue the same chunked request streams the functional
// client library produces (same Distribution / chunking math), but time is
// charged by the hardware models instead of moving bytes. A request fans
// out to every involved server in parallel and completes when the last
// response arrives, matching the blocking PVFS client library.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/extent.hpp"
#include "fault/fault.hpp"
#include "models/disk.hpp"
#include "models/ethernet.hpp"
#include "models/page_cache.hpp"
#include "pvfs/config.hpp"
#include "pvfs/distribution.hpp"
#include "pvfs/protocol.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace pvfs::simcluster {

struct SimClusterConfig {
  std::uint32_t clients = 8;
  std::uint32_t servers = 8;  // paper §4.1: 8 I/O nodes
  Striping striping{0, 8, 16384};
  /// Byte→server layout over the striping (default: the paper's simple
  /// stripe; see docs/distributions.md for the alternatives).
  DistributionSpec dist{};
  std::uint32_t max_list_regions = kMaxListRegions;

  models::EthernetParams net{};
  models::DiskParams disk{};
  models::CacheParams cache{};
  models::ServerCpuParams cpu{};

  /// Client-side cost to build and post one server message.
  SimTimeNs client_per_message_ns = 30 * kNsPerUs;
  /// Per-write-message stall on the client's TCP connection: the 2002-era
  /// Nagle / delayed-ACK interaction that made request-per-region writes
  /// pathologically slow (the paper's multiple-I/O write curves sit near
  /// accesses x ~40 ms regardless of cluster size). Amortized by list I/O,
  /// irrelevant for large sieving transfers.
  SimTimeNs write_request_stall_ns = 40 * kNsPerMs;
  /// Manager service time for a metadata operation (open/stat/set-size).
  SimTimeNs manager_op_ns = 500 * kNsPerUs;
  /// Size of a write acknowledgement on the wire.
  ByteCount write_ack_bytes = 32;
  /// Datatype-request mode (paper §5 proposal): when non-zero, requests
  /// carry a constant-size datatype description of this many bytes instead
  /// of 16 bytes per trailing region — the wire cost stops growing with
  /// the region count. Servers still do per-fragment work.
  ByteCount request_description_bytes = 0;
  /// When true, the I/O daemon coalesces locally-adjacent trailing-data
  /// entries into single accesses before touching storage (a smarter iod
  /// than 2002 PVFS, which processed one entry at a time). Ablation knob:
  /// turning this on removes the block-block list-I/O upturn of Fig. 11.
  bool server_coalesces_entries = false;
  /// Fault schedule for the lossy-network / flaky-disk variants. The
  /// default (all rates zero) builds no injector and leaves every timing
  /// path untouched — benchmark results are bit-identical to a build
  /// without this field.
  fault::FaultConfig fault{};
  /// TCP-like retransmission timeout charged per lost frame (2002-era
  /// Linux RTO floor).
  SimTimeNs fault_retransmit_ns = 200 * kNsPerMs;
};

/// The paper's testbed configuration: write-through server storage (2.4-era
/// small synchronous writes dominated by positioning) and defaults above.
SimClusterConfig ChibaCityConfig(std::uint32_t clients);

class SimCluster {
 public:
  explicit SimCluster(const SimClusterConfig& config);

  sim::Simulator& simulator() { return sim_; }
  const SimClusterConfig& config() const { return config_; }

  /// One chunked I/O request (<= max_list_regions regions, logical
  /// coordinates): fans out to involved servers, awaits all responses.
  sim::SimTask IoOp(Rank client, pvfs::IoOp op, ExtentList regions);

  /// One metadata round trip to the manager (open/close/stat).
  sim::SimTask MetaOp(Rank client);

  /// One compute-node-to-compute-node transfer (two-phase collective
  /// exchange traffic); counts down `latch` on delivery.
  sim::SimTask ClientExchange(Rank src, Rank dst, ByteCount bytes,
                              sim::CountdownLatch* latch);

  /// Global mutual-exclusion token used to serialize read-modify-write
  /// windows across clients (the paper's MPI_Barrier loop).
  sim::Resource& rmw_token() { return rmw_token_; }

  struct Counters {
    std::uint64_t fs_requests = 0;
    std::uint64_t messages = 0;
    std::uint64_t manager_ops = 0;
    std::uint64_t regions_sent = 0;
    std::uint64_t bytes_to_servers = 0;
    std::uint64_t bytes_from_servers = 0;
    std::uint64_t disk_runs = 0;
    std::uint64_t exchange_bytes = 0;  // client<->client (two-phase)
  };
  const Counters& counters() const { return counters_; }

  const models::PageCache::Stats& cache_stats(ServerId global) const {
    return servers_[global]->cache.stats();
  }

  /// Injected-fault counters (all zero when config().fault is disabled).
  sim::FaultCounters fault_counters() const {
    return fault_ ? fault_->counters() : sim::FaultCounters{};
  }
  /// The injector, or nullptr when fault injection is disabled.
  const fault::FaultInjector* fault_injector() const { return fault_.get(); }

  /// Distribution of client-observed request latencies (seconds), with
  /// log-spaced buckets for percentile estimates. Recording is purely
  /// observational — it never feeds back into simulated timing.
  const sim::Histogram& request_latency() const {
    return request_latency_;
  }

  /// Per-server utilization: busy seconds by component.
  struct ServerLoad {
    double cpu_busy_s = 0;
    double storage_busy_s = 0;
    std::uint64_t messages = 0;
  };
  const std::vector<ServerLoad>& server_load() const { return server_load_; }

 private:
  struct ServerNode {
    ServerNode(sim::Simulator& sim, const SimClusterConfig& config)
        : cpu(sim),
          disk_queue(sim),
          nic_in(sim),
          nic_out(sim),
          disk(config.disk),
          cache(config.cache, &disk) {}

    sim::Resource cpu;
    sim::Resource disk_queue;
    sim::Resource nic_in;
    sim::Resource nic_out;
    models::DiskModel disk;
    models::PageCache cache;
  };

  struct ClientNode {
    explicit ClientNode(sim::Simulator& sim) : nic_in(sim), nic_out(sim) {}
    sim::Resource nic_in;
    sim::Resource nic_out;
  };

  /// Full request/response exchange with one server; counts down `latch`
  /// when the response has fully arrived at the client.
  sim::SimTask ServerExchange(Rank client, ServerId relative, pvfs::IoOp op,
                              const ExtentList* regions,
                              sim::CountdownLatch* latch);

  /// One pipelined response unit: server NIC -> switch -> client NIC.
  sim::SimTask SendResponseUnit(ServerNode* server, ServerId global,
                                ClientNode* node, ByteCount bytes,
                                sim::CountdownLatch* sends);

  /// Granularity at which an iod overlaps storage with the network (a real
  /// server reads and sends in buffer-sized units, not whole requests).
  static constexpr ByteCount kServiceChunkBytes = 256 * 1024;

  ServerId GlobalServer(ServerId relative) const {
    return (config_.striping.base + relative) % config_.servers;
  }

  /// Injected extra latency for one wire leg (0 when faults are off).
  SimTimeNs FaultLegDelay(ServerId global, ByteCount bytes);

  SimClusterConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<fault::FaultInjector> fault_;
  models::EthernetModel net_;
  models::ServerCpuModel cpu_model_;
  Distribution dist_;
  std::vector<std::unique_ptr<ServerNode>> servers_;
  std::vector<std::unique_ptr<ClientNode>> clients_;
  sim::Resource rmw_token_;
  Counters counters_;
  sim::Histogram request_latency_{
      sim::LogLatencyBuckets(1e-6, 1e3)};  // 1 us .. ~17 min
  std::vector<ServerLoad> server_load_;
};

}  // namespace pvfs::simcluster
