#include "simcluster/sim_run.hpp"

#include <algorithm>
#include <vector>

namespace pvfs::simcluster {

namespace {

/// Phase timestamps each simulated client records as it progresses.
struct PhaseLog {
  std::vector<SimTimeNs> open_done;
  std::vector<SimTimeNs> io_done;
  std::vector<SimTimeNs> close_done;
};

sim::SimTask RunMultiple(SimCluster& cluster, Rank rank, pvfs::IoOp op,
                         std::unique_ptr<RegionStream> stream) {
  // One contiguous request per matched segment (paper §3.1).
  while (std::optional<Extent> region = stream->Next()) {
    ExtentList one(1, *region);
    co_await cluster.IoOp(rank, op, std::move(one));
  }
}

sim::SimTask RunList(SimCluster& cluster, Rank rank, pvfs::IoOp op,
                     std::unique_ptr<RegionStream> stream) {
  // Batches of <= max_list_regions regions per request (paper §3.3).
  const std::uint32_t limit = cluster.config().max_list_regions;
  ExtentList batch;
  batch.reserve(std::min<std::uint32_t>(limit, 1024));
  while (true) {
    std::optional<Extent> region = stream->Next();
    if (region) batch.push_back(*region);
    if ((!region && !batch.empty()) || batch.size() == limit) {
      co_await cluster.IoOp(rank, op, std::move(batch));
      batch = {};
      batch.reserve(std::min<std::uint32_t>(limit, 1024));
    }
    if (!region) break;
  }
}

sim::SimTask RunSieving(SimCluster& cluster, Rank rank, pvfs::IoOp op,
                        std::unique_ptr<RegionStream> stream,
                        ByteCount buffer_bytes) {
  // 32 MB windows tiling the bounding extent (paper §3.2). Writes are
  // read-modify-write and hold the global serialization token for the
  // whole operation, as the paper's MPI_Barrier loop did.
  std::optional<Extent> bound = stream->Bound();
  if (!bound) co_return;
  const bool is_write = op == pvfs::IoOp::kWrite;
  if (is_write) co_await cluster.rmw_token().Acquire();
  for (FileOffset ws = bound->offset; ws < bound->end();) {
    Extent window{ws, std::min<ByteCount>(buffer_bytes, bound->end() - ws)};
    ws += window.length;
    ExtentList read_window(1, window);
    co_await cluster.IoOp(rank, pvfs::IoOp::kRead, std::move(read_window));
    if (is_write) {
      ExtentList write_window(1, window);
      co_await cluster.IoOp(rank, pvfs::IoOp::kWrite,
                            std::move(write_window));
    }
  }
  if (is_write) cluster.rmw_token().Release();
}

sim::SimTask RunHybrid(SimCluster& cluster, Rank rank, pvfs::IoOp op,
                       std::unique_ptr<RegionStream> stream,
                       ByteCount gap_threshold) {
  // List I/O over gap-coalesced super-regions (paper §5 future work).
  auto coalesced =
      std::make_unique<CoalesceStream>(std::move(stream), gap_threshold);
  const std::uint32_t limit = cluster.config().max_list_regions;
  const bool is_write = op == pvfs::IoOp::kWrite;
  if (is_write) co_await cluster.rmw_token().Acquire();
  ExtentList batch;
  batch.reserve(std::min<std::uint32_t>(limit, 1024));
  while (true) {
    std::optional<Extent> region = coalesced->Next();
    if (region) batch.push_back(*region);
    if ((!region && !batch.empty()) || batch.size() == limit) {
      if (is_write) {
        // Read-modify-write on exactly the super-regions.
        co_await cluster.IoOp(rank, pvfs::IoOp::kRead, batch);
        co_await cluster.IoOp(rank, pvfs::IoOp::kWrite, std::move(batch));
      } else {
        co_await cluster.IoOp(rank, pvfs::IoOp::kRead, std::move(batch));
      }
      batch = {};
      batch.reserve(std::min<std::uint32_t>(limit, 1024));
    }
    if (!region) break;
  }
  if (is_write) cluster.rmw_token().Release();
}

sim::SimTask ClientProcess(SimCluster& cluster, Rank rank,
                           io::MethodType method, pvfs::IoOp op,
                           const SimWorkload* workload,
                           SimRunOptions options, PhaseLog* log) {
  sim::Simulator& sim = cluster.simulator();
  if (options.include_meta) {
    co_await cluster.MetaOp(rank);  // open: manager lookup
  }
  log->open_done[rank] = sim.Now();

  switch (method) {
    case io::MethodType::kMultiple:
      co_await RunMultiple(cluster, rank, op, workload->SegmentsFor(rank));
      break;
    case io::MethodType::kList: {
      // Named local + move: passing a ?:-materialized temporary straight
      // into a coroutine parameter double-frees under GCC 12.
      std::unique_ptr<RegionStream> stream =
          options.list_uses_segments ? workload->SegmentsFor(rank)
                                     : workload->file_regions(rank);
      co_await RunList(cluster, rank, op, std::move(stream));
      break;
    }
    case io::MethodType::kDataSieving:
      co_await RunSieving(cluster, rank, op, workload->file_regions(rank),
                          options.sieve_buffer_bytes);
      break;
    case io::MethodType::kHybrid:
      co_await RunHybrid(cluster, rank, op, workload->file_regions(rank),
                         options.hybrid_gap_threshold);
      break;
  }
  log->io_done[rank] = sim.Now();

  if (options.include_meta) {
    co_await cluster.MetaOp(rank);  // close: size flush
  }
  log->close_done[rank] = sim.Now();
}

SimTimeNs MaxOf(const std::vector<SimTimeNs>& v) {
  SimTimeNs best = 0;
  for (SimTimeNs t : v) best = std::max(best, t);
  return best;
}

}  // namespace

SimRunResult RunSimWorkload(const SimClusterConfig& config,
                            io::MethodType method, pvfs::IoOp op,
                            const SimWorkload& workload,
                            SimRunOptions options) {
  SimCluster cluster(config);
  PhaseLog log;
  log.open_done.assign(config.clients, 0);
  log.io_done.assign(config.clients, 0);
  log.close_done.assign(config.clients, 0);

  for (Rank rank = 0; rank < config.clients; ++rank) {
    Spawn(cluster.simulator(),
          ClientProcess(cluster, rank, method, op, &workload, options, &log));
  }
  cluster.simulator().Run();

  SimRunResult result;
  SimTimeNs open_end = MaxOf(log.open_done);
  SimTimeNs io_end = MaxOf(log.io_done);
  SimTimeNs close_end = MaxOf(log.close_done);
  result.open_seconds = NsToSeconds(open_end);
  result.io_seconds = NsToSeconds(io_end - open_end);
  result.close_seconds = NsToSeconds(close_end - io_end);
  result.total_seconds = NsToSeconds(close_end);
  result.counters = cluster.counters();
  result.events = cluster.simulator().EventsProcessed();
  const sim::Histogram& latency = cluster.request_latency();
  result.mean_request_latency_s = latency.summary().mean();
  result.max_request_latency_s = latency.summary().max();
  result.p50_request_latency_s = latency.Quantile(0.50);
  result.p95_request_latency_s = latency.Quantile(0.95);
  result.p99_request_latency_s = latency.Quantile(0.99);
  result.request_latency_samples = latency.summary().count();
  result.server_load = cluster.server_load();
  result.faults = cluster.fault_counters();
  return result;
}

}  // namespace pvfs::simcluster
