#include "simcluster/workload_streams.hpp"

#include <algorithm>
#include <cassert>

namespace pvfs::simcluster {

namespace {
struct Range {
  std::uint64_t begin;
  std::uint64_t end;
};
// Must match the balanced partition in workloads/blockblock.cpp.
Range PartitionRange(std::uint64_t n, std::uint32_t parts, std::uint32_t i) {
  std::uint64_t base = n / parts;
  std::uint64_t extra = n % parts;
  std::uint64_t begin = i * base + std::min<std::uint64_t>(i, extra);
  std::uint64_t len = base + (i < extra ? 1 : 0);
  return {begin, begin + len};
}
}  // namespace

BlockBlockStream::BlockBlockStream(const workloads::BlockBlockConfig& config,
                                   Rank rank) {
  assert(rank < config.clients);
  side_ = config.Side();
  const std::uint32_t q = config.GridDim();
  Range rows = PartitionRange(side_, q, rank / q);
  Range cols = PartitionRange(side_, q, rank % q);
  row_begin_ = rows.begin;
  rows_ = rows.end - rows.begin;
  col_begin_ = cols.begin;
  row_bytes_ = cols.end - cols.begin;

  ByteCount tile_bytes = rows_ * row_bytes_;
  frag_ = tile_bytes / config.accesses_per_client;
  if (frag_ == 0) frag_ = 1;
  if (frag_ > row_bytes_) frag_ = row_bytes_;
}

std::optional<Extent> BlockBlockStream::Next() {
  if (row_ >= rows_) return std::nullopt;
  FileOffset row_start = (row_begin_ + row_) * side_ + col_begin_;
  ByteCount take = std::min<ByteCount>(frag_, row_bytes_ - row_done_);
  Extent out{row_start + row_done_, take};
  row_done_ += take;
  if (row_done_ == row_bytes_) {
    row_done_ = 0;
    ++row_;
  }
  return out;
}

std::optional<Extent> BlockBlockStream::Bound() const {
  if (rows_ == 0 || row_bytes_ == 0) return std::nullopt;
  FileOffset first = row_begin_ * side_ + col_begin_;
  FileOffset last_end =
      (row_begin_ + rows_ - 1) * side_ + col_begin_ + row_bytes_;
  return Extent{first, last_end - first};
}

TiledVizStream::TiledVizStream(const workloads::TiledVizConfig& config,
                               Rank rank) {
  assert(rank < config.clients());
  const std::uint32_t tile_row = rank / config.tiles_x;
  const std::uint32_t tile_col = rank % config.tiles_x;
  const std::uint64_t origin_x =
      static_cast<std::uint64_t>(tile_col) *
      (config.tile_w - config.overlap_x);
  const std::uint64_t origin_y =
      static_cast<std::uint64_t>(tile_row) *
      (config.tile_h - config.overlap_y);
  first_ = (origin_y * config.WallWidth() + origin_x) * config.bytes_per_pixel;
  stride_ = static_cast<ByteCount>(config.WallWidth()) * config.bytes_per_pixel;
  row_bytes_ = static_cast<ByteCount>(config.tile_w) * config.bytes_per_pixel;
  rows_ = config.tile_h;
}

}  // namespace pvfs::simcluster
