#include "simcluster/sim_cluster.hpp"

namespace pvfs::simcluster {

SimClusterConfig ChibaCityConfig(std::uint32_t clients) {
  SimClusterConfig config;
  config.clients = clients;
  config.servers = 8;
  config.striping = Striping{0, 8, 16384};
  // PVFS iods issued small synchronous-behaving writes on ext2/2.4; model
  // them write-through so scattered small writes pay positioning costs —
  // the regime behind the paper's write figures.
  config.cache.write_through = true;
  return config;
}

SimCluster::SimCluster(const SimClusterConfig& config)
    : config_(config),
      net_(config.net),
      cpu_model_(config.cpu),
      dist_({config.striping, config.dist}),
      rmw_token_(sim_, 1) {
  if (config_.fault.enabled()) {
    fault_ = std::make_unique<fault::FaultInjector>(config_.fault);
  }
  servers_.reserve(config_.servers);
  for (std::uint32_t s = 0; s < config_.servers; ++s) {
    servers_.push_back(std::make_unique<ServerNode>(sim_, config_));
    if (fault_) {
      servers_.back()->disk.set_fault_injector(fault_.get(), s);
    }
  }
  clients_.reserve(config_.clients);
  for (std::uint32_t c = 0; c < config_.clients; ++c) {
    clients_.push_back(std::make_unique<ClientNode>(sim_));
  }
  server_load_.resize(config_.servers);
}

SimTimeNs SimCluster::FaultLegDelay(ServerId global, ByteCount bytes) {
  if (!fault_) return 0;
  return fault_->OnSimLeg(global, net_.WireTime(bytes),
                          config_.fault_retransmit_ns);
}

sim::SimTask SimCluster::ServerExchange(Rank client, ServerId relative,
                                        pvfs::IoOp op,
                                        const ExtentList* regions,
                                        sim::CountdownLatch* latch) {
  const ServerId global = GlobalServer(relative);
  ServerNode& server = *servers_[global];
  ClientNode& node = *clients_[client];
  ServerLoad& load = server_load_[global];
  ++load.messages;

  const ByteCount data_bytes = dist_.BytesOnServer(relative, *regions);
  const ByteCount description_bytes =
      config_.request_description_bytes > 0
          ? IoRequest::HeaderWireBytes() + config_.request_description_bytes
          : IoRequest::WireBytes(static_cast<std::uint32_t>(regions->size()));
  const ByteCount request_bytes =
      description_bytes + (op == IoOp::kWrite ? data_bytes : 0);
  const ByteCount response_bytes =
      op == IoOp::kRead ? data_bytes + 16 : config_.write_ack_bytes;

  ++counters_.messages;
  counters_.regions_sent += regions->size();
  counters_.bytes_to_servers += request_bytes;
  counters_.bytes_from_servers += response_bytes;

  // This server's share, computed up front. A 2002 PVFS iod performs one
  // local access per trailing-data entry it owns; with
  // server_coalesces_entries the daemon first merges locally-adjacent
  // entries (the ablation variant). CPU and storage charge per resulting
  // access.
  std::vector<Fragment> runs =
      config_.server_coalesces_entries
          ? dist_.ServerLocalRuns(relative, *regions)
          : dist_.ServerFragments(relative, *regions);

  // --- Request travels client -> switch -> server -------------------
  if (op == pvfs::IoOp::kWrite && config_.write_request_stall_ns > 0) {
    co_await sim_.Delay(config_.write_request_stall_ns);
  }
  co_await node.nic_out.Acquire();
  co_await sim_.Delay(net_.WireTime(request_bytes));
  node.nic_out.Release();
  if (fault_) {
    SimTimeNs extra = FaultLegDelay(global, request_bytes);
    if (extra > 0) co_await sim_.Delay(extra);
  }
  co_await sim_.Delay(net_.MessageLatency());
  co_await server.nic_in.Acquire();
  co_await sim_.Delay(net_.WireTime(request_bytes));
  server.nic_in.Release();

  // --- Server CPU: decode request + per-owned-region processing -----
  co_await server.cpu.Acquire();
  SimTimeNs cpu_time = cpu_model_.RequestCost(runs.size(), data_bytes);
  load.cpu_busy_s += NsToSeconds(cpu_time);
  co_await sim_.Delay(cpu_time);
  server.cpu.Release();

  counters_.disk_runs += runs.size();

  if (op == IoOp::kRead && data_bytes > kServiceChunkBytes) {
    // Pipelined read service: the iod reads buffer-sized units and sends
    // each while fetching the next, so storage and wire overlap for large
    // transfers (sieving windows, contiguous reads).
    std::vector<std::pair<SimTimeNs, ByteCount>> units;
    {
      // Compute per-unit storage costs while queued FIFO on the disk; the
      // cache state advances in arrival order.
      co_await server.disk_queue.Acquire();
      for (const Fragment& run : runs) {
        FileOffset at = run.local_offset;
        ByteCount remaining = run.length;
        while (remaining > 0) {
          ByteCount take = std::min<ByteCount>(kServiceChunkBytes, remaining);
          units.emplace_back(server.cache.Read(at, take), take);
          at += take;
          remaining -= take;
        }
      }
      server.disk_queue.Release();
    }
    sim::CountdownLatch sends(sim_, units.size() + 1);
    ByteCount header = 16;  // response framing rides the first unit
    for (auto [storage_ns, bytes] : units) {
      co_await server.disk_queue.Acquire();
      load.storage_busy_s += NsToSeconds(storage_ns);
      if (storage_ns > 0) co_await sim_.Delay(storage_ns);
      server.disk_queue.Release();
      Spawn(sim_,
            SendResponseUnit(&server, global, &node, bytes + header, &sends));
      header = 0;
    }
    sends.CountDown();  // our own slot: all units dispatched
    co_await sends.Wait();
    latch->CountDown();
    co_return;
  }

  // --- Storage: owned fragments through the page cache --------------
  co_await server.disk_queue.Acquire();
  SimTimeNs storage_time = 0;
  for (const Fragment& run : runs) {
    storage_time += op == IoOp::kRead
                        ? server.cache.Read(run.local_offset, run.length)
                        : server.cache.Write(run.local_offset, run.length);
  }
  load.storage_busy_s += NsToSeconds(storage_time);
  if (storage_time > 0) co_await sim_.Delay(storage_time);
  server.disk_queue.Release();

  // --- Response travels server -> switch -> client ------------------
  co_await server.nic_out.Acquire();
  co_await sim_.Delay(net_.WireTime(response_bytes));
  server.nic_out.Release();
  if (fault_) {
    SimTimeNs extra = FaultLegDelay(global, response_bytes);
    if (extra > 0) co_await sim_.Delay(extra);
  }
  co_await sim_.Delay(net_.MessageLatency());
  co_await node.nic_in.Acquire();
  co_await sim_.Delay(net_.WireTime(response_bytes));
  node.nic_in.Release();

  latch->CountDown();
}

sim::SimTask SimCluster::SendResponseUnit(ServerNode* server, ServerId global,
                                          ClientNode* node, ByteCount bytes,
                                          sim::CountdownLatch* sends) {
  co_await server->nic_out.Acquire();
  co_await sim_.Delay(net_.WireTime(bytes));
  server->nic_out.Release();
  if (fault_) {
    SimTimeNs extra = FaultLegDelay(global, bytes);
    if (extra > 0) co_await sim_.Delay(extra);
  }
  co_await sim_.Delay(net_.MessageLatency());
  co_await node->nic_in.Acquire();
  co_await sim_.Delay(net_.WireTime(bytes));
  node->nic_in.Release();
  sends->CountDown();
}

sim::SimTask SimCluster::IoOp(Rank client, pvfs::IoOp op,
                              ExtentList regions) {
  ++counters_.fs_requests;
  std::vector<ServerId> involved = dist_.InvolvedServers(regions);
  if (involved.empty()) co_return;

  const SimTimeNs started = sim_.Now();

  // Client-side request construction (gathers payload, encodes trailing
  // data) before the fan-out.
  co_await sim_.Delay(config_.client_per_message_ns *
                      static_cast<SimTimeNs>(involved.size()));

  sim::CountdownLatch latch(sim_, involved.size());
  for (ServerId relative : involved) {
    Spawn(sim_, ServerExchange(client, relative, op, &regions, &latch));
  }
  co_await latch.Wait();
  request_latency_.Add(NsToSeconds(sim_.Now() - started));
}

sim::SimTask SimCluster::ClientExchange(Rank src, Rank dst, ByteCount bytes,
                                        sim::CountdownLatch* latch) {
  counters_.exchange_bytes += bytes;
  if (src == dst) {
    // Local copy at memory speed.
    co_await sim_.Delay(SecondsToNs(static_cast<double>(bytes) /
                                    (config_.cache.mem_copy_mbps * 1.0e6)));
    latch->CountDown();
    co_return;
  }
  ClientNode& from = *clients_[src];
  ClientNode& to = *clients_[dst];
  co_await from.nic_out.Acquire();
  co_await sim_.Delay(net_.WireTime(bytes));
  from.nic_out.Release();
  co_await sim_.Delay(net_.MessageLatency());
  co_await to.nic_in.Acquire();
  co_await sim_.Delay(net_.WireTime(bytes));
  to.nic_in.Release();
  latch->CountDown();
}

sim::SimTask SimCluster::MetaOp(Rank client) {
  ++counters_.manager_ops;
  ClientNode& node = *clients_[client];
  // The manager daemon shares node 0 with an I/O daemon (paper §4.1: "one
  // of the I/O nodes doubled as both a manager and an I/O server"), so
  // metadata service contends with that server's CPU.
  ServerNode& host = *servers_[0];
  const ByteCount msg = 64;  // request and reply are both small
  co_await node.nic_out.Acquire();
  co_await sim_.Delay(net_.WireTime(msg));
  node.nic_out.Release();
  co_await sim_.Delay(net_.MessageLatency());
  co_await host.cpu.Acquire();
  co_await sim_.Delay(config_.manager_op_ns);
  host.cpu.Release();
  co_await sim_.Delay(net_.MessageLatency());
  co_await node.nic_in.Acquire();
  co_await sim_.Delay(net_.WireTime(msg));
  node.nic_in.Release();
}

}  // namespace pvfs::simcluster
