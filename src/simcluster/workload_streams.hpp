// Closed-form streaming versions of the paper's workload patterns, for
// simulation at full (million-access) scale. Tests assert these enumerate
// exactly the same regions the materializing generators in src/workloads
// produce.
#pragma once

#include <memory>

#include "simcluster/region_stream.hpp"
#include "workloads/blockblock.hpp"
#include "workloads/cyclic.hpp"
#include "workloads/flash.hpp"
#include "workloads/tiledviz.hpp"

namespace pvfs::simcluster {

/// 1-D cyclic (paper Fig. 7): accesses_per_client regions of BlockBytes(),
/// strided by clients * BlockBytes().
class CyclicStream final : public RegionStream {
 public:
  CyclicStream(const workloads::CyclicConfig& config, Rank rank)
      : block_(config.BlockBytes()),
        stride_(config.BlockBytes() * config.clients),
        count_(config.accesses_per_client),
        base_(config.BlockBytes() * rank) {}

  std::optional<Extent> Next() override {
    if (i_ >= count_) return std::nullopt;
    return Extent{base_ + (i_++) * stride_, block_};
  }
  void Reset() override { i_ = 0; }
  std::optional<Extent> Bound() const override {
    if (count_ == 0 || block_ == 0) return std::nullopt;
    return Extent{base_, (count_ - 1) * stride_ + block_};
  }
  ByteCount TotalBytes() const override { return block_ * count_; }

 private:
  ByteCount block_;
  ByteCount stride_;
  std::uint64_t count_;
  FileOffset base_;
  std::uint64_t i_ = 0;
};

/// 2-D block-block (paper Fig. 8): a tile's rows, each split into
/// fragments sized by the access count. Mirrors BlockBlockPattern exactly.
class BlockBlockStream final : public RegionStream {
 public:
  BlockBlockStream(const workloads::BlockBlockConfig& config, Rank rank);

  std::optional<Extent> Next() override;
  void Reset() override {
    row_ = 0;
    row_done_ = 0;
  }
  std::optional<Extent> Bound() const override;
  ByteCount TotalBytes() const override { return rows_ * row_bytes_; }

 private:
  ByteCount side_ = 0;
  std::uint64_t row_begin_ = 0;
  std::uint64_t rows_ = 0;
  FileOffset col_begin_ = 0;
  ByteCount row_bytes_ = 0;
  ByteCount frag_ = 0;

  std::uint64_t row_ = 0;       // rows emitted so far
  ByteCount row_done_ = 0;      // bytes emitted within current row
};

/// FLASH checkpoint file regions (paper Figs. 13-14): (variable, block)
/// chunks of FileChunkBytes() at variable-major offsets.
class FlashFileStream final : public RegionStream {
 public:
  FlashFileStream(const workloads::FlashConfig& config, Rank rank)
      : chunk_(config.FileChunkBytes()),
        blocks_(config.blocks_per_proc),
        nvars_(config.nvars),
        nprocs_(config.nprocs),
        rank_(rank) {}

  std::optional<Extent> Next() override {
    if (i_ >= static_cast<std::uint64_t>(blocks_) * nvars_) {
      return std::nullopt;
    }
    std::uint64_t v = i_ / blocks_;
    std::uint64_t b = i_ % blocks_;
    ++i_;
    return Extent{((v * blocks_ + b) * nprocs_ + rank_) * chunk_, chunk_};
  }
  void Reset() override { i_ = 0; }
  std::optional<Extent> Bound() const override {
    if (blocks_ == 0 || nvars_ == 0) return std::nullopt;
    FileOffset first = static_cast<FileOffset>(rank_) * chunk_;
    FileOffset last_start =
        ((static_cast<std::uint64_t>(nvars_ - 1) * blocks_ + (blocks_ - 1)) *
             nprocs_ +
         rank_) *
        chunk_;
    return Extent{first, last_start + chunk_ - first};
  }
  ByteCount TotalBytes() const override {
    return static_cast<ByteCount>(blocks_) * nvars_ * chunk_;
  }

 private:
  ByteCount chunk_;
  std::uint64_t blocks_;
  std::uint64_t nvars_;
  std::uint64_t nprocs_;
  Rank rank_;
  std::uint64_t i_ = 0;
};

/// Tiled visualization rows (paper Fig. 16).
class TiledVizStream final : public RegionStream {
 public:
  TiledVizStream(const workloads::TiledVizConfig& config, Rank rank);

  std::optional<Extent> Next() override {
    if (row_ >= rows_) return std::nullopt;
    FileOffset at = first_ + (row_++) * stride_;
    return Extent{at, row_bytes_};
  }
  void Reset() override { row_ = 0; }
  std::optional<Extent> Bound() const override {
    if (rows_ == 0) return std::nullopt;
    return Extent{first_, (rows_ - 1) * stride_ + row_bytes_};
  }
  ByteCount TotalBytes() const override { return rows_ * row_bytes_; }

 private:
  FileOffset first_ = 0;
  ByteCount stride_ = 0;
  ByteCount row_bytes_ = 0;
  std::uint64_t rows_ = 0;
  std::uint64_t row_ = 0;
};

}  // namespace pvfs::simcluster
