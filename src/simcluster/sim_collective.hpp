// Simulated two-phase collective I/O (Thakur/Gropp/Lusk — the paper's
// reference [11], implemented functionally in src/mpiio): ranks exchange
// pieces over the compute-side network so that each rank, acting as the
// aggregator of an equal share of the aggregate byte range, touches the
// file with a handful of large contiguous requests.
//
// Modeled phases (write): all-to-all piece exchange -> barrier ->
// aggregator read-modify-write (read skipped when its domain is fully
// covered). Read: aggregator contiguous reads -> all-to-all distribution.
#pragma once

#include "simcluster/sim_run.hpp"

namespace pvfs::simcluster {

/// Runs the workload through simulated two-phase collective I/O and
/// reports the same result structure as RunSimWorkload.
SimRunResult RunSimCollective(const SimClusterConfig& config, pvfs::IoOp op,
                              const SimWorkload& workload,
                              SimRunOptions options = {});

}  // namespace pvfs::simcluster
