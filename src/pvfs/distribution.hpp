// Striping distribution math: mapping logical file bytes to (server,
// local offset) pairs and back.
//
// Layout invariant (matching PVFS): stripe unit g (bytes
// [g*ssize, (g+1)*ssize) of the logical file) is stored on file-relative
// server r = g % pcount at local offset (g / pcount) * ssize. Stripe
// units of one server are therefore packed densely in its local file, so a
// logically contiguous range maps to exactly one contiguous local range
// per server — the property that makes large contiguous PVFS accesses need
// only one request per server.
//
// Server ids here are FILE-RELATIVE indices in [0, pcount). The striping
// `base` chooses which global I/O nodes those indices map to
// (global = (base + r) % server_count); that mapping happens at the
// transport layer, keeping daemons topology-agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/extent.hpp"
#include "common/types.hpp"
#include "pvfs/config.hpp"

namespace pvfs {

/// One stripe-granular piece of a logical extent on a specific server.
struct Fragment {
  ServerId server = 0;
  FileOffset local_offset = 0;  // offset in the server's local file
  ByteCount length = 0;
  ByteCount logical_pos = 0;    // position within the walked byte stream

  friend bool operator==(const Fragment&, const Fragment&) = default;
};

class Distribution {
 public:
  explicit Distribution(Striping striping) : striping_(striping) {}

  const Striping& striping() const { return striping_; }

  /// File-relative server index holding the logical byte at `offset`.
  ServerId ServerOf(FileOffset offset) const {
    std::uint64_t stripe = offset / striping_.ssize;
    return static_cast<ServerId>(stripe % striping_.pcount);
  }

  /// Local offset of the logical byte at `offset` within its server.
  FileOffset LocalOffsetOf(FileOffset offset) const {
    std::uint64_t stripe = offset / striping_.ssize;
    return (stripe / striping_.pcount) * striping_.ssize +
           offset % striping_.ssize;
  }

  /// Inverse map: the logical offset of local byte `local` on `server`.
  FileOffset LogicalOffsetOf(ServerId server, FileOffset local) const;

  /// Visit the stripe-granular fragments of a logical extent in logical
  /// order. `logical_pos` runs from `stream_base` (useful when walking a
  /// list of extents as one stream).
  void ForEachFragment(const Extent& logical, ByteCount stream_base,
                       const std::function<void(const Fragment&)>& fn) const;

  /// All fragments of an extent list, walked as one byte stream.
  std::vector<Fragment> Fragments(std::span<const Extent> logical) const;

  /// The subset of `Fragments(logical)` on one server, uncoalesced — the
  /// per-entry work a PVFS iod performs (one local access per trailing
  /// data entry it owns).
  std::vector<Fragment> ServerFragments(ServerId server,
                                        std::span<const Extent> logical) const;

  /// The subset of `Fragments(logical)` on one server, sorted by local
  /// offset with adjacent/overlapping runs merged: the minimal disk access
  /// sequence (the same plan the iod scheduler executes — see
  /// pvfs/scheduler.hpp). `logical_pos` of a coalesced run is the stream
  /// position of its first byte; callers that reassemble payloads should
  /// use per-fragment granularity instead.
  std::vector<Fragment> ServerLocalRuns(ServerId server,
                                        std::span<const Extent> logical) const;

  /// Servers touched by any byte of the extent list, in ascending id order.
  std::vector<ServerId> InvolvedServers(std::span<const Extent> logical) const;

  /// Bytes of the extent list stored on `server`.
  ByteCount BytesOnServer(ServerId server,
                          std::span<const Extent> logical) const;

 private:
  Striping striping_;
};

}  // namespace pvfs
