// File-layout math: mapping logical file bytes to (server, local offset)
// pairs and back, for a family of pluggable distributions.
//
// The paper's layout (simple stripe) maps stripe unit g (bytes
// [g*ssize, (g+1)*ssize) of the logical file) to file-relative server
// r = g % pcount at local offset (g / pcount) * ssize. This file
// generalizes that to a `DistributionSpec` chosen at create time and
// carried in the file's metadata (docs/distributions.md):
//
//   kSimpleStripe  r = g % p                        (the paper's layout)
//   kTwoDStripe    groups-of-servers outer dimension: `group_depth`
//                  stripe units go to each server of a group before the
//                  walk advances to the next group (cf. OrangeFS
//                  twod_stripe)
//   kBlock         the file is split into pcount large extents of
//                  `block_extent` bytes; extent i lives wholly on server
//                  i (wrapping for files larger than p * block_extent)
//   kGroupCyclic   block-cyclic: `group_depth` consecutive stripe units
//                  per server before moving to the next server
//
// Every layout is a *dense-rank bijection at unit granularity*: logical
// unit g lands on server r as that server's l-th unit, where l counts the
// server's units in logical order with no holes. Dense packing means a
// logically contiguous range still maps to at most one contiguous local
// range per server within a placement cycle — the coalescing property
// that makes large contiguous PVFS accesses need only one request per
// server (see docs/distributions.md for the per-layout statement).
//
// Dispatch is a switch on the kind, resolved per unit step of an extent
// walk — no virtual call per byte.
//
// Server ids here are FILE-RELATIVE indices in [0, pcount). The striping
// `base` chooses which global I/O nodes those indices map to
// (global = (base + r) % server_count); that mapping happens at the
// transport layer, keeping daemons topology-agnostic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/extent.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "pvfs/config.hpp"

namespace pvfs {

/// Which unit→server mapping a file uses. Values are wire-stable
/// (EncodeDistributionSpec); add new kinds at the end.
enum class DistKind : std::uint8_t {
  kSimpleStripe = 0,
  kTwoDStripe = 1,
  kBlock = 2,
  kGroupCyclic = 3,
};

/// Per-file layout policy, chosen at create time, validated by the
/// manager on kCreate, and recorded in metadata. The default (simple
/// stripe) encodes and behaves exactly as the pre-DistributionSpec
/// system: parameters beyond `kind` are meaningful only for some kinds
/// and must stay at their defaults elsewhere (the manager rejects
/// non-canonical specs).
struct DistributionSpec {
  DistKind kind = DistKind::kSimpleStripe;
  /// kTwoDStripe: number of server groups; must divide striping.pcount.
  std::uint32_t groups = 1;
  /// kTwoDStripe / kGroupCyclic: consecutive stripe units placed on one
  /// server (kTwoDStripe: per server within the active group) before the
  /// walk advances.
  std::uint32_t group_depth = 1;
  /// kBlock: declared per-server extent in bytes (the layout's unit).
  /// Files may grow past pcount * block_extent; the placement then wraps
  /// to a second extent per server (the documented trade: one extra
  /// local range per server per wrap).
  ByteCount block_extent = 0;

  bool IsSimple() const { return kind == DistKind::kSimpleStripe; }

  static DistributionSpec Simple() { return {}; }
  static DistributionSpec TwoD(std::uint32_t groups, std::uint32_t depth) {
    DistributionSpec d;
    d.kind = DistKind::kTwoDStripe;
    d.groups = groups;
    d.group_depth = depth;
    return d;
  }
  static DistributionSpec Block(ByteCount extent) {
    DistributionSpec d;
    d.kind = DistKind::kBlock;
    d.block_extent = extent;
    return d;
  }
  static DistributionSpec GroupCyclic(std::uint32_t depth) {
    DistributionSpec d;
    d.kind = DistKind::kGroupCyclic;
    d.group_depth = depth;
    return d;
  }

  friend bool operator==(const DistributionSpec&,
                         const DistributionSpec&) = default;
};

/// Human-readable kind name ("simple", "twod", "block", "gcyclic") for
/// logs, benches, and CLI parsing.
const char* DistKindName(DistKind kind);

/// Canonical shape check for a spec against its striping: the manager
/// applies this on kCreate (typed InvalidArgument), the wire decoder on
/// tagged frames (ProtocolError). Rules per kind:
///   simple   groups == 1, group_depth == 1, block_extent == 0
///   twod     1 <= groups <= pcount, pcount % groups == 0,
///            group_depth >= 1, block_extent == 0
///   block    block_extent > 0, groups == 1, group_depth == 1
///   gcyclic  group_depth >= 1, groups == 1, block_extent == 0
Status ValidateDistributionSpec(const Striping& striping,
                                const DistributionSpec& spec);

/// How replicas of a stripe are placed across the file's iods.
enum class ReplicaPlacement : std::uint8_t {
  /// Replica ordinal k of file-relative primary p lives on file-relative
  /// server (p + k) % pcount. Every server is primary for 1/pcount of the
  /// stripes and secondary for (replicas-1)/pcount of them, so replica
  /// load stays balanced without any placement table.
  kRotation = 0,
};

/// Per-file replication parameters, chosen at create time and recorded in
/// the manager's metadata. replicas=1 (the default) is plain striping —
/// every code path and wire message is unchanged from the unreplicated
/// system. Placement is layout-independent: it rotates file-relative
/// server indices, whatever distribution assigned them.
struct ReplicationConfig {
  std::uint32_t replicas = 1;
  ReplicaPlacement placement = ReplicaPlacement::kRotation;

  friend bool operator==(const ReplicationConfig&,
                         const ReplicationConfig&) = default;
};

/// Everything that shapes a file at create time, as one aggregate: the
/// striping geometry, the distribution policy mapping bytes onto it, and
/// the replication policy. `Client::Create`, `Manager::Create`, and
/// `Distribution` all take this one value. Implicitly constructible from
/// a bare `Striping` so the paper-faithful call sites
/// (`Create(name, striping)`, `Distribution(striping)`) read unchanged.
struct CreateOptions {
  Striping striping;
  DistributionSpec dist;
  ReplicationConfig replication;

  CreateOptions() = default;
  CreateOptions(Striping s, DistributionSpec d = {},
                ReplicationConfig r = {})
      : striping(s), dist(d), replication(r) {}
  CreateOptions(Striping s, ReplicationConfig r)
      : striping(s), replication(r) {}

  friend bool operator==(const CreateOptions&, const CreateOptions&) = default;
};

/// The local handle under which replica ordinal `ordinal` of file `handle`
/// is stored on its iod. Ordinal 0 (the primary copy) keeps the file's own
/// handle, so replicas=1 files are laid out exactly as before. Manager
/// handles are small sequential integers, so tagging the top byte cannot
/// collide with another file's primary handle.
inline FileHandle ReplicaHandle(FileHandle handle, std::uint32_t ordinal) {
  return handle ^ (static_cast<FileHandle>(ordinal) << 56);
}

/// One unit-granular piece of a logical extent on a specific server
/// (unit = stripe unit, or the declared extent for block layouts).
struct Fragment {
  ServerId server = 0;
  FileOffset local_offset = 0;  // offset in the server's local file
  ByteCount length = 0;
  ByteCount logical_pos = 0;    // position within the walked byte stream

  friend bool operator==(const Fragment&, const Fragment&) = default;
};

class Distribution {
 public:
  /// The one constructor: a layout aggregate. Implicit so existing
  /// `Distribution(striping)` call sites convert through CreateOptions.
  /// The spec must be valid for the striping (callers get validated
  /// specs from the manager/wire; asserts in debug builds otherwise).
  Distribution(const CreateOptions& layout)
      : striping_(layout.striping),
        spec_(layout.dist),
        replication_(layout.replication),
        unit_(layout.dist.kind == DistKind::kBlock ? layout.dist.block_extent
                                                   : layout.striping.ssize),
        group_size_(layout.dist.kind == DistKind::kTwoDStripe
                        ? layout.striping.pcount /
                              std::max<std::uint32_t>(1, layout.dist.groups)
                        : layout.striping.pcount),
        depth_(std::max<std::uint32_t>(1, layout.dist.group_depth)) {}

  const Striping& striping() const { return striping_; }
  const DistributionSpec& spec() const { return spec_; }
  const ReplicationConfig& replication() const { return replication_; }

  /// The placement granule in bytes: striping.ssize for stripe-family
  /// layouts, block_extent for kBlock.
  ByteCount unit() const { return unit_; }

  /// Replica count actually achievable: a file striped over pcount iods
  /// cannot hold more than pcount distinct copies of a stripe.
  std::uint32_t EffectiveReplicas() const {
    return std::min(replication_.replicas, striping_.pcount);
  }

  /// File-relative server holding replica `ordinal` of stripes whose
  /// primary is file-relative server `primary`.
  ServerId ReplicaOf(ServerId primary, std::uint32_t ordinal) const {
    return (primary + ordinal) % striping_.pcount;
  }

  /// Inverse of ReplicaOf: the primary whose ordinal-`ordinal` replica
  /// lives on file-relative server `server`. Unique per (server, ordinal).
  ServerId PrimaryFor(ServerId server, std::uint32_t ordinal) const {
    std::uint32_t k = ordinal % striping_.pcount;
    return (server + striping_.pcount - k) % striping_.pcount;
  }

  /// The distinct file-relative servers holding copies of stripes whose
  /// primary is `primary`: [primary, primary+1, ...] mod pcount, ordinal
  /// order, EffectiveReplicas() entries.
  std::vector<ServerId> ReplicaSet(ServerId primary) const;

  // ---- Unit-rank maps (the layout kernel) -------------------------------
  // Logical unit g = offset / unit(). Every kind maps g to a server and a
  // dense local rank l (that server's l-th unit in logical order), and
  // back. All O(1), switch-dispatched.

  /// File-relative server holding logical unit `g`.
  ServerId ServerOfUnit(std::uint64_t g) const {
    const std::uint32_t p = striping_.pcount;
    switch (spec_.kind) {
      case DistKind::kSimpleStripe:
      case DistKind::kBlock:
        return static_cast<ServerId>(g % p);
      case DistKind::kTwoDStripe: {
        // Cycle of p * depth units: group gi receives group_size * depth
        // consecutive units, dealt round-robin across the group's servers
        // in rounds of `group_size`.
        const std::uint64_t span = static_cast<std::uint64_t>(group_size_) *
                                   depth_;
        const std::uint64_t c = g % (static_cast<std::uint64_t>(p) * depth_);
        const std::uint64_t gi = c / span;
        const std::uint64_t w = c % span;
        return static_cast<ServerId>(gi * group_size_ + w % group_size_);
      }
      case DistKind::kGroupCyclic:
        return static_cast<ServerId>((g / depth_) % p);
    }
    return static_cast<ServerId>(g % p);  // unreachable
  }

  /// Dense local rank of logical unit `g` on its server.
  std::uint64_t LocalUnitOf(std::uint64_t g) const {
    const std::uint32_t p = striping_.pcount;
    switch (spec_.kind) {
      case DistKind::kSimpleStripe:
      case DistKind::kBlock:
        return g / p;
      case DistKind::kTwoDStripe: {
        const std::uint64_t span = static_cast<std::uint64_t>(group_size_) *
                                   depth_;
        const std::uint64_t cycle = static_cast<std::uint64_t>(p) * depth_;
        const std::uint64_t w = (g % cycle) % span;
        return (g / cycle) * depth_ + w / group_size_;
      }
      case DistKind::kGroupCyclic: {
        const std::uint64_t cycle = static_cast<std::uint64_t>(p) * depth_;
        return (g / cycle) * depth_ + g % depth_;
      }
    }
    return g / p;  // unreachable
  }

  /// Inverse map: the logical unit that is `server`'s rank-`local_unit`
  /// unit. UnitOf(ServerOfUnit(g), LocalUnitOf(g)) == g for all g.
  std::uint64_t UnitOf(ServerId server, std::uint64_t local_unit) const {
    const std::uint32_t p = striping_.pcount;
    switch (spec_.kind) {
      case DistKind::kSimpleStripe:
      case DistKind::kBlock:
        return local_unit * p + server;
      case DistKind::kTwoDStripe: {
        const std::uint64_t span = static_cast<std::uint64_t>(group_size_) *
                                   depth_;
        const std::uint64_t cycle = static_cast<std::uint64_t>(p) * depth_;
        const std::uint64_t gi = server / group_size_;
        const std::uint64_t sv = server % group_size_;
        return (local_unit / depth_) * cycle + gi * span +
               (local_unit % depth_) * group_size_ + sv;
      }
      case DistKind::kGroupCyclic: {
        const std::uint64_t cycle = static_cast<std::uint64_t>(p) * depth_;
        return (local_unit / depth_) * cycle +
               static_cast<std::uint64_t>(server) * depth_ +
               local_unit % depth_;
      }
    }
    return local_unit * p + server;  // unreachable
  }

  /// Units after which the server sequence repeats: a window of this many
  /// consecutive units touches every server (InvolvedServers fast path).
  std::uint64_t CycleUnits() const {
    switch (spec_.kind) {
      case DistKind::kTwoDStripe:
      case DistKind::kGroupCyclic:
        return static_cast<std::uint64_t>(striping_.pcount) * depth_;
      default:
        return striping_.pcount;
    }
  }

  // ---- Byte-level entry points ------------------------------------------

  /// File-relative server index holding the logical byte at `offset`.
  ServerId ServerOf(FileOffset offset) const {
    return ServerOfUnit(offset / unit_);
  }

  /// Local offset of the logical byte at `offset` within its server.
  FileOffset LocalOffsetOf(FileOffset offset) const {
    return LocalUnitOf(offset / unit_) * unit_ + offset % unit_;
  }

  /// Inverse map: the logical offset of local byte `local` on `server`.
  FileOffset LogicalOffsetOf(ServerId server, FileOffset local) const {
    return UnitOf(server, local / unit_) * unit_ + local % unit_;
  }

  /// Visit the unit-granular fragments of a logical extent in logical
  /// order. `logical_pos` runs from `stream_base` (useful when walking a
  /// list of extents as one stream).
  void ForEachFragment(const Extent& logical, ByteCount stream_base,
                       const std::function<void(const Fragment&)>& fn) const;

  /// All fragments of an extent list, walked as one byte stream.
  std::vector<Fragment> Fragments(std::span<const Extent> logical) const;

  /// The subset of `Fragments(logical)` on one server, uncoalesced — the
  /// per-entry work a PVFS iod performs (one local access per trailing
  /// data entry it owns).
  std::vector<Fragment> ServerFragments(ServerId server,
                                        std::span<const Extent> logical) const;

  /// The subset of `Fragments(logical)` on one server, sorted by local
  /// offset with adjacent/overlapping runs merged: the minimal disk access
  /// sequence (the same plan the iod scheduler executes — see
  /// pvfs/scheduler.hpp). `logical_pos` of a coalesced run is the stream
  /// position of its first byte; callers that reassemble payloads should
  /// use per-fragment granularity instead.
  std::vector<Fragment> ServerLocalRuns(ServerId server,
                                        std::span<const Extent> logical) const;

  /// Servers touched by any byte of the extent list, in ascending id order.
  std::vector<ServerId> InvolvedServers(std::span<const Extent> logical) const;

  /// Bytes of the extent list stored on `server`.
  ByteCount BytesOnServer(ServerId server,
                          std::span<const Extent> logical) const;

 private:
  Striping striping_;
  DistributionSpec spec_;
  ReplicationConfig replication_;
  // Derived, fixed at construction (hot-path: no per-call recomputation).
  ByteCount unit_ = 0;
  std::uint32_t group_size_ = 1;  // servers per group (twod), else pcount
  std::uint32_t depth_ = 1;       // consecutive units per server placement
};

}  // namespace pvfs
