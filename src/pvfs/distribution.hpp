// Striping distribution math: mapping logical file bytes to (server,
// local offset) pairs and back.
//
// Layout invariant (matching PVFS): stripe unit g (bytes
// [g*ssize, (g+1)*ssize) of the logical file) is stored on file-relative
// server r = g % pcount at local offset (g / pcount) * ssize. Stripe
// units of one server are therefore packed densely in its local file, so a
// logically contiguous range maps to exactly one contiguous local range
// per server — the property that makes large contiguous PVFS accesses need
// only one request per server.
//
// Server ids here are FILE-RELATIVE indices in [0, pcount). The striping
// `base` chooses which global I/O nodes those indices map to
// (global = (base + r) % server_count); that mapping happens at the
// transport layer, keeping daemons topology-agnostic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/extent.hpp"
#include "common/types.hpp"
#include "pvfs/config.hpp"

namespace pvfs {

/// How replicas of a stripe are placed across the file's iods.
enum class ReplicaPlacement : std::uint8_t {
  /// Replica ordinal k of file-relative primary p lives on file-relative
  /// server (p + k) % pcount. Every server is primary for 1/pcount of the
  /// stripes and secondary for (replicas-1)/pcount of them, so replica
  /// load stays balanced without any placement table.
  kRotation = 0,
};

/// Per-file replication parameters, chosen at create time and recorded in
/// the manager's metadata. replicas=1 (the default) is plain striping —
/// every code path and wire message is unchanged from the unreplicated
/// system.
struct ReplicationConfig {
  std::uint32_t replicas = 1;
  ReplicaPlacement placement = ReplicaPlacement::kRotation;

  friend bool operator==(const ReplicationConfig&,
                         const ReplicationConfig&) = default;
};

/// The local handle under which replica ordinal `ordinal` of file `handle`
/// is stored on its iod. Ordinal 0 (the primary copy) keeps the file's own
/// handle, so replicas=1 files are laid out exactly as before. Manager
/// handles are small sequential integers, so tagging the top byte cannot
/// collide with another file's primary handle.
inline FileHandle ReplicaHandle(FileHandle handle, std::uint32_t ordinal) {
  return handle ^ (static_cast<FileHandle>(ordinal) << 56);
}

/// One stripe-granular piece of a logical extent on a specific server.
struct Fragment {
  ServerId server = 0;
  FileOffset local_offset = 0;  // offset in the server's local file
  ByteCount length = 0;
  ByteCount logical_pos = 0;    // position within the walked byte stream

  friend bool operator==(const Fragment&, const Fragment&) = default;
};

class Distribution {
 public:
  explicit Distribution(Striping striping) : striping_(striping) {}

  Distribution(Striping striping, ReplicationConfig replication)
      : striping_(striping), replication_(replication) {}

  const Striping& striping() const { return striping_; }
  const ReplicationConfig& replication() const { return replication_; }

  /// Replica count actually achievable: a file striped over pcount iods
  /// cannot hold more than pcount distinct copies of a stripe.
  std::uint32_t EffectiveReplicas() const {
    return std::min(replication_.replicas, striping_.pcount);
  }

  /// File-relative server holding replica `ordinal` of stripes whose
  /// primary is file-relative server `primary`.
  ServerId ReplicaOf(ServerId primary, std::uint32_t ordinal) const {
    return (primary + ordinal) % striping_.pcount;
  }

  /// Inverse of ReplicaOf: the primary whose ordinal-`ordinal` replica
  /// lives on file-relative server `server`. Unique per (server, ordinal).
  ServerId PrimaryFor(ServerId server, std::uint32_t ordinal) const {
    std::uint32_t k = ordinal % striping_.pcount;
    return (server + striping_.pcount - k) % striping_.pcount;
  }

  /// The distinct file-relative servers holding copies of stripes whose
  /// primary is `primary`: [primary, primary+1, ...] mod pcount, ordinal
  /// order, EffectiveReplicas() entries.
  std::vector<ServerId> ReplicaSet(ServerId primary) const;

  /// File-relative server index holding the logical byte at `offset`.
  ServerId ServerOf(FileOffset offset) const {
    std::uint64_t stripe = offset / striping_.ssize;
    return static_cast<ServerId>(stripe % striping_.pcount);
  }

  /// Local offset of the logical byte at `offset` within its server.
  FileOffset LocalOffsetOf(FileOffset offset) const {
    std::uint64_t stripe = offset / striping_.ssize;
    return (stripe / striping_.pcount) * striping_.ssize +
           offset % striping_.ssize;
  }

  /// Inverse map: the logical offset of local byte `local` on `server`.
  FileOffset LogicalOffsetOf(ServerId server, FileOffset local) const;

  /// Visit the stripe-granular fragments of a logical extent in logical
  /// order. `logical_pos` runs from `stream_base` (useful when walking a
  /// list of extents as one stream).
  void ForEachFragment(const Extent& logical, ByteCount stream_base,
                       const std::function<void(const Fragment&)>& fn) const;

  /// All fragments of an extent list, walked as one byte stream.
  std::vector<Fragment> Fragments(std::span<const Extent> logical) const;

  /// The subset of `Fragments(logical)` on one server, uncoalesced — the
  /// per-entry work a PVFS iod performs (one local access per trailing
  /// data entry it owns).
  std::vector<Fragment> ServerFragments(ServerId server,
                                        std::span<const Extent> logical) const;

  /// The subset of `Fragments(logical)` on one server, sorted by local
  /// offset with adjacent/overlapping runs merged: the minimal disk access
  /// sequence (the same plan the iod scheduler executes — see
  /// pvfs/scheduler.hpp). `logical_pos` of a coalesced run is the stream
  /// position of its first byte; callers that reassemble payloads should
  /// use per-fragment granularity instead.
  std::vector<Fragment> ServerLocalRuns(ServerId server,
                                        std::span<const Extent> logical) const;

  /// Servers touched by any byte of the extent list, in ascending id order.
  std::vector<ServerId> InvolvedServers(std::span<const Extent> logical) const;

  /// Bytes of the extent list stored on `server`.
  ByteCount BytesOnServer(ServerId server,
                          std::span<const Extent> logical) const;

 private:
  Striping striping_;
  ReplicationConfig replication_;
};

}  // namespace pvfs
