// LocalStore: an I/O daemon's backing storage — one sparse byte file per
// PVFS handle (real PVFS iods kept /pvfs-data/fXXXX files on ext2; we keep
// chunked in-memory files so the functional system moves real bytes).
//
// Reads of never-written ranges return zeros, matching the behaviour of a
// sparse Unix file. Size is the high-water mark of written bytes.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace pvfs {

class LocalStore {
 public:
  /// Chunk granularity for sparse allocation.
  static constexpr ByteCount kChunkBytes = 256 * 1024;

  /// Read `out.size()` bytes at `offset` from the handle's local file.
  /// Holes and ranges past the high-water mark read as zeros.
  void Read(FileHandle handle, FileOffset offset, std::span<std::byte> out);

  /// Write bytes at `offset`, allocating chunks as needed.
  void Write(FileHandle handle, FileOffset offset,
             std::span<const std::byte> data);

  /// Drop all data for a handle. Removing an unknown handle is a no-op
  /// (idempotent, as iod remove was).
  void Remove(FileHandle handle);

  /// High-water mark of written bytes for the handle (0 if unknown).
  ByteCount SizeOf(FileHandle handle) const;

  /// Bytes of chunk storage currently allocated (for tests / accounting).
  ByteCount AllocatedBytes() const { return allocated_; }

  bool Contains(FileHandle handle) const { return files_.contains(handle); }

 private:
  struct SparseFile {
    std::map<std::uint64_t, std::vector<std::byte>> chunks;
    ByteCount size = 0;
  };

  std::unordered_map<FileHandle, SparseFile> files_;
  ByteCount allocated_ = 0;
};

}  // namespace pvfs
