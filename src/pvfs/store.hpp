// LocalStore: an I/O daemon's backing storage — one sparse byte file per
// PVFS handle (real PVFS iods kept /pvfs-data/fXXXX files on ext2; we keep
// chunked in-memory files so the functional system moves real bytes).
//
// Reads of never-written ranges return zeros, matching the behaviour of a
// sparse Unix file. Size is the high-water mark of written bytes.
//
// Integrity layer (see docs/integrity.md):
//   * Every allocated chunk carries a CRC32C; reads verify it and return
//     kCorruption on mismatch (after attempting a journal-based repair).
//   * Multi-piece writes go through a write-ahead intent journal: the
//     record (with its own CRC) is appended first, the chunks are mutated
//     second, the commit mark is set last. A crash between those steps
//     leaves either a complete uncommitted record (replayed on recovery)
//     or a torn record (rolled back — its chunks were never touched).
//   * Scrub() walks every chunk, verifies checksums and repairs from the
//     retained journal history where possible.
//
// Thread safety: fully thread-safe. Every public entry point takes an
// internal mutex, so concurrent flow segments (src/pvfs/flow) and
// overlapping Serve calls can share one store; an individual Read/WriteV
// remains atomic with respect to every other call. Callers that need
// multi-call atomicity (none today — one WriteV covers a whole list-I/O
// intent) must layer their own ordering on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace pvfs {

class LocalStore {
 public:
  /// Chunk granularity for sparse allocation (and checksum granularity).
  static constexpr ByteCount kChunkBytes = 256 * 1024;

  /// Journal retention: committed records are kept until the retained data
  /// bytes exceed this, giving scrub a repair window without unbounded
  /// memory growth.
  static constexpr ByteCount kJournalRetainBytes = 4 * 1024 * 1024;

  /// One contiguous piece of a (possibly multi-region) write intent.
  struct WritePiece {
    FileOffset offset = 0;
    std::span<const std::byte> data;
  };

  /// Read `out.size()` bytes at `offset` from the handle's local file.
  /// Holes and ranges past the high-water mark read as zeros. Returns
  /// kCorruption if a touched chunk fails its checksum and cannot be
  /// repaired from the retained journal history.
  Status Read(FileHandle handle, FileOffset offset, std::span<std::byte> out);

  /// Write bytes at `offset`, allocating chunks as needed. Journaled as a
  /// single-piece intent.
  void Write(FileHandle handle, FileOffset offset,
             std::span<const std::byte> data);

  /// Atomically-intended multi-piece write: one journal record covers all
  /// pieces, so a crash mid-apply replays the whole intent on recovery.
  /// This is how an iod applies the fragments of one list-I/O request.
  void WriteV(FileHandle handle, std::span<const WritePiece> pieces);

  /// Fault hook: perform WriteV as if the daemon crashed partway through.
  /// With `torn_journal` false, the journal record is durable but only the
  /// first `keep_bytes` of the concatenated pieces reach the chunks and no
  /// commit mark is written — recovery must replay. With `torn_journal`
  /// true, the crash hit the journal append itself: the record is left
  /// truncated (its CRC cannot verify) and no chunk is touched — recovery
  /// must roll it back.
  void WriteVTorn(FileHandle handle, std::span<const WritePiece> pieces,
                  ByteCount keep_bytes, bool torn_journal);

  /// True if the journal holds uncommitted intents (i.e. the previous
  /// incarnation of this daemon crashed mid-write).
  bool NeedsRecovery() const;

  struct RecoveryStats {
    std::uint64_t replayed = 0;     // complete intents re-applied
    std::uint64_t rolled_back = 0;  // torn intents discarded
  };
  /// Replay-or-rollback every pending intent: a record whose own CRC
  /// verifies is re-applied in full (redo); a torn record is discarded
  /// (its chunks were never touched, so discarding restores the
  /// consistent pre-write state).
  RecoveryStats Recover();

  struct ScrubStats {
    std::uint64_t chunks_scanned = 0;
    std::uint64_t corrupt_chunks = 0;
    std::uint64_t repaired_chunks = 0;  // rebuilt from journal history
  };
  /// Verify every allocated chunk's checksum; rebuild corrupt chunks whose
  /// entire write history is still retained in the journal.
  ScrubStats Scrub();

  /// Fault hook: flip one deterministic bit of stored data without
  /// updating the chunk checksum (media rot). `selector` picks the victim
  /// file/chunk/bit by modular arithmetic over a sorted walk, so equal
  /// selectors on equal store states rot the same bit. No-op on an empty
  /// store; returns true if a bit was flipped.
  bool CorruptStoredBit(std::uint64_t selector);

  /// Drop all data for a handle. Removing an unknown handle is a no-op
  /// (idempotent, as iod remove was). Also drops the handle's journal
  /// records — pending intents for removed files are not recovered.
  void Remove(FileHandle handle);

  /// Checksum state of one allocated chunk, for cross-replica comparison.
  struct ChunkSum {
    std::uint64_t chunk_index = 0;
    std::uint32_t crc = 0;   // recorded CRC32C
    bool valid = false;      // stored bytes still match the recorded CRC
  };
  /// Per-chunk checksum manifest for a handle, in ascending chunk order.
  /// Non-mutating: chunks that fail verification are reported invalid, not
  /// repaired (re-replication copies over them from a healthy replica).
  /// An unknown handle yields an empty manifest.
  std::vector<ChunkSum> ChunkSums(FileHandle handle) const;

  /// High-water mark of written bytes for the handle (0 if unknown).
  ByteCount SizeOf(FileHandle handle) const;

  /// Bytes of chunk storage currently allocated (for tests / accounting).
  ByteCount AllocatedBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return allocated_;
  }

  bool Contains(FileHandle handle) const {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.contains(handle);
  }

  /// Cumulative integrity counters (reads that hit corruption, journal
  /// recoveries, scrub results). Exposed through iod stats.
  struct IntegrityCounters {
    std::uint64_t read_corruptions = 0;  // chunk CRC mismatches seen by reads
    std::uint64_t read_repairs = 0;      // of those, healed from the journal
    std::uint64_t journal_replays = 0;
    std::uint64_t journal_rollbacks = 0;
    std::uint64_t scrub_chunks_scanned = 0;
    std::uint64_t scrub_corruptions = 0;
    std::uint64_t scrub_repairs = 0;
  };
  /// Snapshot (by value: reads mutate the counters concurrently).
  IntegrityCounters integrity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return integrity_;
  }

 private:
  struct Chunk {
    std::vector<std::byte> data;
    std::uint32_t crc = 0;
    /// Journal seq of the record that allocated this chunk. The chunk is
    /// reconstructible iff every record since then is still retained.
    std::uint64_t first_write_seq = 0;
  };

  struct SparseFile {
    std::map<std::uint64_t, Chunk> chunks;
    ByteCount size = 0;
  };

  /// One journaled write intent. `data` is the concatenation of the
  /// pieces' bytes; `crc` covers handle, piece geometry and data, so a
  /// torn append is detectable.
  struct JournalRecord {
    std::uint64_t seq = 0;
    FileHandle handle = 0;
    std::vector<std::pair<FileOffset, ByteCount>> pieces;
    std::vector<std::byte> data;
    std::uint32_t crc = 0;
    bool committed = false;
  };

  JournalRecord MakeRecord(FileHandle handle,
                           std::span<const WritePiece> pieces);
  static std::uint32_t RecordCrc(const JournalRecord& rec);
  static bool RecordIntact(const JournalRecord& rec);

  /// Raw chunk mutation: no journaling, updates checksums and size.
  /// `seq` stamps first_write_seq on chunks this call allocates.
  void ApplyBytes(FileHandle handle, FileOffset offset,
                  std::span<const std::byte> data, std::uint64_t seq);
  void ApplyRecord(const JournalRecord& rec);
  /// Drop committed records from the front while over the retention cap.
  void TrimJournal();
  /// Rebuild a corrupt chunk by replaying its retained write history.
  bool RepairChunk(FileHandle handle, std::uint64_t chunk_index);

  /// Guards every member below. Public methods lock it; private helpers
  /// assume it is held.
  mutable std::mutex mu_;
  std::unordered_map<FileHandle, SparseFile> files_;
  std::deque<JournalRecord> journal_;
  std::uint64_t next_seq_ = 1;
  ByteCount journal_data_bytes_ = 0;
  /// Records with seq below this have been trimmed; chunks whose
  /// first_write_seq is older are beyond repair.
  std::uint64_t retained_min_seq_ = 1;
  ByteCount allocated_ = 0;
  IntegrityCounters integrity_;
};

}  // namespace pvfs
