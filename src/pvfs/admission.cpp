#include "pvfs/admission.hpp"

#include <string>

#include "common/wire.hpp"
#include "pvfs/protocol.hpp"

namespace pvfs {

namespace {

obs::Labels ServerLabels(ServerId server) {
  return {{"server", std::to_string(server)}};
}

}  // namespace

AdmissionController::AdmissionController(ServerId server,
                                         std::uint32_t max_depth,
                                         obs::Registry* registry)
    : max_depth_(max_depth),
      depth_gauge_((registry ? *registry : obs::Registry::Global())
                       .Gauge("iod.admission.queue_depth",
                              ServerLabels(server))),
      admitted_((registry ? *registry : obs::Registry::Global())
                    .Counter("iod.admission.admitted", ServerLabels(server))),
      rejected_((registry ? *registry : obs::Registry::Global())
                    .Counter("iod.admission.rejected", ServerLabels(server))),
      wait_us_((registry ? *registry : obs::Registry::Global())
                   .Histogram("iod.admission.queue_wait_us",
                              ServerLabels(server),
                              obs::LogBuckets(1.0, 1e7))),
      service_us_((registry ? *registry : obs::Registry::Global())
                      .Histogram("iod.admission.service_us",
                                 ServerLabels(server),
                                 obs::LogBuckets(1.0, 1e7))) {}

bool AdmissionController::TryAdmit(Slot& slot) {
  // Optimistic claim, undone on overflow: Add returns no old value, so
  // read-check-undo keeps the depth gauge exact without a mutex. A rare
  // race can shed one request early at the boundary — admission is a
  // shedding heuristic, and kBusy is retryable, so that is benign.
  depth_gauge_.Add(1);
  if (max_depth_ != 0 &&
      depth_gauge_.value() > static_cast<std::int64_t>(max_depth_)) {
    depth_gauge_.Add(-1);
    rejected_.Increment();
    return false;
  }
  admitted_.Increment();
  slot.admitted = std::chrono::steady_clock::now();
  return true;
}

void AdmissionController::BeginService(Slot& slot) {
  slot.started = std::chrono::steady_clock::now();
  wait_us_.Observe(
      std::chrono::duration<double, std::micro>(slot.started - slot.admitted)
          .count());
}

void AdmissionController::Finish(const Slot& slot) {
  service_us_.Observe(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - slot.started)
                          .count());
  depth_gauge_.Add(-1);
}

std::vector<std::byte> SealedBusyResponse(ServerId server) {
  return SealFrame(EncodeResponse(
      Busy("iod " + std::to_string(server) +
           " admission queue full; retry after backoff"),
      {}));
}

std::vector<std::byte> SealedBusyResponse(ServerId server,
                                          std::uint64_t request_id) {
  return SealFrameWithId(
      EncodeResponse(Busy("iod " + std::to_string(server) +
                          " admission queue full; retry after backoff"),
                     {}),
      request_id);
}

}  // namespace pvfs
