// AsyncStore: a nonblocking submission/completion interface over a
// LocalStore, modeled on the aio-method bstream of OrangeFS trove-dbpf
// (dbpf-bstream-aio.c): callers enqueue reads and writes tagged with a
// token, a small pool of store-worker threads executes them against the
// (thread-safe) LocalStore, and finished operations surface on the
// caller's CompletionQueue, drained with Wait()/Poll(). Every write
// still rides the journaled, checksummed LocalStore path — this layer
// adds only scheduling, never a second data path.
//
// Completions route to the CompletionQueue named at submission, so any
// number of independent pipelines (one flow per in-flight request; see
// src/pvfs/flow) can share one daemon's store-worker pool without seeing
// each other's completions.
//
// Modeled device time: real iods paid a seek plus a transfer time per
// contiguous disk access; our in-memory store pays neither. The optional
// `seek_us`/`us_per_mib` knobs restore that cost (one sleep per
// operation, outside the store mutex) so pipelining experiments measure
// genuine overlap: with N workers, N device intervals proceed
// concurrently — the flow pipeline's win — while the synchronous serve
// path pays them strictly in series (IoDaemon applies the same knobs
// there).
//
// Lifetime contract: the buffers behind a submitted operation (the read
// target span, the write pieces' data spans) and its CompletionQueue
// must stay alive until that operation's completion has been returned by
// Wait()/Poll(). The destructor executes every pending operation before
// returning, so completions are never lost.
//
// Thread safety: fully thread-safe; any number of threads may submit and
// (separately or together) drain their own queues.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "pvfs/store.hpp"

namespace pvfs {

class AsyncStore {
 public:
  struct Options {
    /// Store-worker threads draining the submission queue. More workers =
    /// more device intervals in flight at once (an NCQ depth, loosely).
    std::uint32_t workers = 2;
    /// Modeled per-operation positioning latency, microseconds.
    std::uint64_t seek_us = 0;
    /// Modeled transfer time, microseconds per MiB moved.
    std::uint64_t us_per_mib = 0;
  };

  /// Caller-chosen operation tag, returned with the completion.
  using Token = std::uint64_t;

  struct Completion {
    Token token = 0;
    Status status = Status::Ok();
    ByteCount bytes = 0;  // bytes moved by the operation
  };

  /// One caller's completion mailbox. Submissions name the queue their
  /// completion lands on; pipelines sharing an AsyncStore each bring
  /// their own.
  class CompletionQueue {
   public:
    /// Block until a completion is available and return it.
    Completion Wait();
    /// Return a completion if one is ready, without blocking.
    std::optional<Completion> Poll();
    /// Operations submitted against this queue whose completions have not
    /// been consumed yet.
    std::size_t outstanding() const;

   private:
    friend class AsyncStore;
    void Push(Completion done);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Completion> done_;
    std::size_t outstanding_ = 0;
  };

  AsyncStore(LocalStore& store, Options options);
  /// Drains: blocks until every submitted operation has executed.
  ~AsyncStore();

  AsyncStore(const AsyncStore&) = delete;
  AsyncStore& operator=(const AsyncStore&) = delete;

  /// Enqueue a read of `out.size()` bytes at `offset` into `out`.
  void SubmitRead(CompletionQueue& cq, Token token, FileHandle handle,
                  FileOffset offset, std::span<std::byte> out);

  /// Enqueue a journaled multi-piece write (one intent per submission,
  /// exactly as the synchronous WriteV journals one intent per call).
  void SubmitWrite(CompletionQueue& cq, Token token, FileHandle handle,
                   std::vector<LocalStore::WritePiece> pieces);

  const Options& options() const { return options_; }

  /// Sleep the modeled device interval for one access of `bytes` bytes
  /// (no-op when both knobs are zero). Exposed so the synchronous serve
  /// path can charge the identical cost per store access.
  static void ModelDeviceTime(const Options& options, ByteCount bytes);

 private:
  struct Op {
    CompletionQueue* cq = nullptr;
    Token token = 0;
    FileHandle handle = 0;
    FileOffset offset = 0;           // reads
    std::span<std::byte> out;        // reads
    std::vector<LocalStore::WritePiece> pieces;  // writes
    bool is_write = false;
  };

  void WorkerLoop();

  LocalStore& store_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable submit_cv_;  // workers wait for work / stop
  std::deque<Op> queue_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace pvfs
