// Server-side fragment scheduling: turn the fragments one I/O request
// assigns to a daemon into the minimal sequence of contiguous local store
// accesses (paper §5: "more intelligent scheduling of the data movement at
// the server").
//
// A RunPlan sorts the fragments by local offset and merges adjacent or
// overlapping ones into *runs*; the daemon then issues one store
// read/write per run and scatters/gathers bytes between the run buffers
// and the request payload through the ORIGINAL fragment order, so the
// payload layout on the wire is exactly what an unscheduled daemon
// produces. The run count is also the paper's coalesced-disk-access
// accounting unit (`local_accesses` in iod stats), whether or not the
// scheduler actually executes — counting on the sorted view is what keeps
// cyclic patterns, whose logical walk revisits lower local offsets, from
// over-counting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "pvfs/distribution.hpp"

namespace pvfs {

/// One contiguous local store access covering one or more fragments.
struct ScheduledRun {
  FileOffset offset = 0;   // local offset of the run's first byte
  ByteCount length = 0;    // merged extent length
  ByteCount buf_offset = 0;  // run's position in the plan's scratch buffer
};

/// The offset-sorted, merged access plan for one request's fragments.
struct RunPlan {
  std::vector<ScheduledRun> runs;
  /// fragment index (in the original, logical-order fragment list) ->
  /// index into `runs` of the run containing it.
  std::vector<std::uint32_t> run_of;
  /// Total scratch bytes needed to stage every run (sum of run lengths).
  ByteCount total_bytes = 0;
};

/// Build the access plan for `fragments` (a daemon's share of one request,
/// in logical order). Sorting is stable on local offset, so equal-offset
/// fragments keep their logical order; runs merge fragments that touch or
/// overlap in local-offset space.
RunPlan BuildRunPlan(std::span<const Fragment> fragments);

}  // namespace pvfs
