#include "pvfs/client.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/request_id.hpp"
#include "fault/fault.hpp"
#include "obs/span.hpp"

namespace pvfs {

std::vector<ExtentList> ChunkRegions(std::span<const Extent> regions,
                                     std::uint32_t max_regions) {
  std::vector<ExtentList> chunks;
  ExtentList current;
  current.reserve(std::min<size_t>(regions.size(), max_regions));
  for (const Extent& e : regions) {
    if (e.empty()) continue;
    current.push_back(e);
    if (current.size() == max_regions) {
      chunks.push_back(std::move(current));
      current = {};
      current.reserve(max_regions);
    }
  }
  if (!current.empty()) chunks.push_back(std::move(current));
  return chunks;
}

namespace {

/// Walks a memory extent list over a caller buffer as one byte stream,
/// moving bytes to/from packed chunk streams.
class StreamCursor {
 public:
  explicit StreamCursor(std::span<const Extent> regions) : regions_(regions) {}

  /// Copy the next out.size() stream bytes from `buffer` into `out`.
  void Gather(std::span<const std::byte> buffer, std::span<std::byte> out) {
    Walk(out.size(), [&](const Extent& piece, ByteCount done) {
      std::memcpy(out.data() + done, buffer.data() + piece.offset,
                  piece.length);
    });
  }

  /// Copy `in` into the next in.size() stream bytes of `buffer`.
  void Scatter(std::span<const std::byte> in, std::span<std::byte> buffer) {
    Walk(in.size(), [&](const Extent& piece, ByteCount done) {
      std::memcpy(buffer.data() + piece.offset, in.data() + done,
                  piece.length);
    });
  }

 private:
  template <typename Fn>
  void Walk(ByteCount want, const Fn& fn) {
    ByteCount done = 0;
    while (done < want) {
      const Extent& region = regions_[idx_];
      ByteCount avail = region.length - used_;
      ByteCount take = std::min(avail, want - done);
      fn(Extent{region.offset + used_, take}, done);
      done += take;
      used_ += take;
      if (used_ == region.length) {
        ++idx_;
        used_ = 0;
      }
    }
  }

  std::span<const Extent> regions_;
  size_t idx_ = 0;
  ByteCount used_ = 0;
};

}  // namespace

// ---- Namespace & lifecycle ------------------------------------------------

Result<DecodedResponse> Client::SealedCall(
    const Endpoint& dest, std::vector<std::byte> request) const {
  // Every round trip gets a fresh request id; SealFrame stamps it into the
  // frame trailer so server-side spans can be stitched to this call.
  obs::RequestIdScope id_scope(obs::NextRequestId());
  PVFS_SPAN("client.call");
  PVFS_ASSIGN_OR_RETURN(
      std::vector<std::byte> raw,
      transport_->Call(dest, SealFrame(std::move(request))));
  auto payload = OpenFrame(raw);
  if (!payload.ok()) {
    ++corruptions_;
    return payload.status();
  }
  PVFS_ASSIGN_OR_RETURN(DecodedResponse resp, DecodeResponse(*payload));
  if (resp.status.code() == ErrorCode::kCorruption) ++corruptions_;
  if (resp.status.code() == ErrorCode::kBusy) ++busy_rejections_;
  return resp;
}

Result<Metadata> Client::CallManagerMeta(std::vector<std::byte> request) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.manager_messages;
  }
  PVFS_ASSIGN_OR_RETURN(
      DecodedResponse resp,
      SealedCall(Endpoint::ManagerNode(), std::move(request)));
  if (!resp.status.ok()) return resp.status;
  PVFS_ASSIGN_OR_RETURN(MetadataResponse meta,
                        MetadataResponse::Decode(resp.body));
  return meta.meta;
}

Status Client::CallManagerVoid(std::vector<std::byte> request) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.manager_messages;
  }
  auto resp = SealedCall(Endpoint::ManagerNode(), std::move(request));
  if (!resp.ok()) return resp.status();
  return resp->status;
}

Result<Client::Fd> Client::Create(const std::string& name,
                                  const CreateOptions& options) {
  PVFS_ASSIGN_OR_RETURN(
      Metadata meta,
      CallManagerMeta(CreateRequest{name, options}.Encode()));
  if (options_.acache.enabled || options_.bcache.enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    // Insert displaces any entry the name previously mapped to (the
    // explicit Create invalidation); the fresh handle has no pages yet,
    // so recording its epoch is all the bcache needs.
    if (options_.acache.enabled) {
      acache_.Insert(name, meta, cache::AttributeCache::Clock::now());
    }
    if (options_.bcache.enabled) bcache_.NoteEpoch(meta.handle, meta.epoch);
  }
  std::lock_guard<std::mutex> lock(files_mu_);
  Fd fd = next_fd_++;
  open_files_.emplace(fd, OpenFile{meta, 0, name});
  return fd;
}

Result<Client::Fd> Client::Open(const std::string& name) {
  Metadata meta;
  bool cached = false;
  if (options_.acache.enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (auto hit =
            acache_.LookupName(name, cache::AttributeCache::Clock::now())) {
      meta = *hit;
      cached = true;
    }
  }
  if (!cached) {
    PVFS_ASSIGN_OR_RETURN(meta,
                          CallManagerMeta(LookupRequest{name}.Encode()));
  }
  if (options_.acache.enabled || options_.bcache.enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (!cached && options_.acache.enabled) {
      acache_.Insert(name, meta, cache::AttributeCache::Clock::now());
    }
    // Open-time epoch check (close-to-open): a lookup that observed a new
    // generation drops the clean pages cached under the old one. A cache
    // hit re-presents the recorded epoch, which is a no-op.
    if (options_.bcache.enabled) bcache_.NoteEpoch(meta.handle, meta.epoch);
  }
  std::lock_guard<std::mutex> lock(files_mu_);
  Fd fd = next_fd_++;
  open_files_.emplace(fd, OpenFile{meta, 0, name});
  return fd;
}

Status Client::Close(Fd fd) {
  OpenFile file;
  {
    std::lock_guard<std::mutex> lock(files_mu_);
    auto it = open_files_.find(fd);
    if (it == open_files_.end()) return FailedPrecondition("bad descriptor");
    file = it->second;
    open_files_.erase(it);
  }
  bool flushed_dirty = false;
  if (options_.bcache.enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (bcache_.HasDirty(file.meta.handle)) {
      Status flushed = bcache_.FlushHandle(file.meta.handle, PageFlusher(file));
      if (!flushed.ok()) {
        // The descriptor is gone and nothing will retry these pages: drop
        // them (bounded memory) and surface the error — publishing a size
        // that covers unflushed bytes would manufacture holes.
        bcache_.DropHandle(file.meta.handle);
        return flushed;
      }
      flushed_dirty = true;
    }
  }
  Status status = Status::Ok();
  // Publish through the manager when the size grew — or when write-back
  // flushed dirty pages at all: a same-size rewrite still needs the epoch
  // bump, or other clients' epoch checks would keep serving stale pages.
  if (file.high_water > file.meta.size || flushed_dirty) {
    status = CallManagerVoid(
        SetSizeRequest{file.meta.handle, file.high_water}.Encode());
    if (status.code() == ErrorCode::kNotFound) {
      // The file was Removed while we held it open. Its metadata — and the
      // data our writes would have sized — is gone by request, so there is
      // nothing left to publish: close-after-remove succeeds.
      status = Status::Ok();
    } else if (status.ok() &&
               (options_.acache.enabled || options_.bcache.enabled)) {
      // The manager's size and epoch both moved: the cached entry is
      // stale (explicit SetSize invalidation), and the next Open's epoch
      // check will drop the pages this fd populated.
      std::lock_guard<std::mutex> lock(cache_mu_);
      acache_.InvalidateHandle(file.meta.handle);
    }
  }
  return status;
}

Status Client::Remove(const std::string& name) {
  // Resolve through the manager, never the acache: a stale cached entry
  // must not aim the data drops at the wrong handle.
  auto meta = CallManagerMeta(LookupRequest{name}.Encode());
  if (!meta.ok()) return meta.status();
  // Drop chunk data BEFORE the manager name, visiting EVERY (daemon,
  // replica) leg even after a failure. The old order — name first, abort
  // on the first failed leg — orphaned chunks permanently: with the name
  // gone, a rerun died at Lookup and nothing could ever address the
  // surviving data. Now a partial failure keeps the name, the error
  // reports how many legs failed, and a rerun re-resolves the handle and
  // re-drops; the daemons' store treats removal of an unknown handle as an
  // idempotent no-op, so re-dropped legs are free.
  const Distribution dist(meta->layout());
  const std::uint32_t replicas = dist.EffectiveReplicas();
  Status first_error = Status::Ok();
  std::uint32_t failed_legs = 0;
  for (std::uint32_t k = 0; k < replicas; ++k) {
    // Every daemon holds replica ordinal k for exactly one primary, so one
    // RemoveData per (daemon, derived handle) drops the whole copy.
    RemoveDataRequest drop{ReplicaHandle(meta->handle, k)};
    std::vector<std::byte> encoded = drop.Encode();
    for (std::uint32_t s = 0; s < meta->striping.pcount; ++s) {
      ServerId server = (meta->striping.base + s) %
                        transport_->server_count();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.messages;
      }
      auto resp = SealedCall(Endpoint::Iod(server), encoded);
      Status leg = resp.ok() ? resp->status : resp.status();
      if (!leg.ok() && leg.code() != ErrorCode::kNotFound) {
        ++failed_legs;
        if (first_error.ok()) first_error = std::move(leg);
      }
    }
  }
  if (!first_error.ok()) {
    return Status(first_error.code(),
                  "Remove(" + name + "): " + std::to_string(failed_legs) +
                      " data-drop leg(s) failed, name kept for rerun; "
                      "first error: " + first_error.ToString());
  }
  Status removed = CallManagerVoid(RemoveRequest{name}.Encode());
  // kNotFound here means a concurrent Remove won the race after our
  // lookup; the end state (no name, no data) is what we wanted.
  if (!removed.ok() && removed.code() != ErrorCode::kNotFound) return removed;
  if (options_.acache.enabled || options_.bcache.enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    acache_.InvalidateName(name);
    acache_.InvalidateHandle(meta->handle);
    // Dirty pages included: their backing file is gone by request.
    bcache_.DropHandle(meta->handle);
  }
  return Status::Ok();
}

Result<std::vector<std::string>> Client::ListFiles(const std::string& prefix) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.manager_messages;
  }
  PVFS_ASSIGN_OR_RETURN(
      DecodedResponse resp,
      SealedCall(Endpoint::ManagerNode(), ListNamesRequest{prefix}.Encode()));
  if (!resp.status.ok()) return resp.status;
  PVFS_ASSIGN_OR_RETURN(NamesResponse names, NamesResponse::Decode(resp.body));
  return names.names;
}

std::uint64_t Client::NextLockOwner() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1);
}

Status Client::TryLockRange(Fd fd, Extent range, bool exclusive) {
  PVFS_ASSIGN_OR_RETURN(OpenFile file, SnapshotFd(fd));
  PVFS_RETURN_IF_ERROR(CallManagerVoid(
      LockRequest{file.meta.handle, range, lock_owner_, exclusive}.Encode()));
  // Flush-on-lock: entering a locked section publishes this client's
  // buffered writes and discards its clean pages, so every read under the
  // lock observes server state at least as fresh as the grant. A flush
  // failure surfaces with the lock still held — the caller owns the
  // unlock either way.
  Status flushed = FlushAndDropClean(file);
  MergeHighWater(fd, file.high_water);
  return flushed;
}

Status Client::LockRange(Fd fd, Extent range, bool exclusive) {
  PVFS_SPAN("client.lock_range");
  std::chrono::microseconds backoff = options_.lock_initial_backoff;
  for (std::uint32_t attempt = 1;; ++attempt) {
    Status status = TryLockRange(fd, range, exclusive);
    if (status.code() != ErrorCode::kResourceExhausted) return status;
    if (attempt >= options_.lock_max_attempts) {
      return DeadlineExceeded("LockRange: lock still contended after " +
                              std::to_string(attempt) + " attempts");
    }
    std::this_thread::sleep_for(backoff);
    backoff_us_ += static_cast<std::uint64_t>(backoff.count());
    backoff = NextBackoff(backoff, options_.lock_initial_backoff,
                          options_.lock_max_backoff,
                          fault::kSiteLockBackoff, lock_owner_, attempt);
  }
}

Status Client::UnlockRange(Fd fd, Extent range) {
  PVFS_ASSIGN_OR_RETURN(OpenFile file, SnapshotFd(fd));
  // Writes made under the lock must be visible before the lock is
  // released; a failed flush keeps the lock held (the caller may retry
  // the unlock) rather than publishing the range with buffered bytes
  // missing.
  PVFS_RETURN_IF_ERROR(FlushAndDropClean(file));
  MergeHighWater(fd, file.high_water);
  return CallManagerVoid(
      UnlockRequest{file.meta.handle, range, lock_owner_}.Encode());
}

Status Client::FlushAndDropClean(OpenFile& file) {
  if (!options_.bcache.enabled) return Status::Ok();
  std::lock_guard<std::mutex> lock(cache_mu_);
  PVFS_RETURN_IF_ERROR(bcache_.FlushHandle(file.meta.handle,
                                           PageFlusher(file)));
  bcache_.DropCleanPages(file.meta.handle);
  return Status::Ok();
}

Result<Metadata> Client::Stat(Fd fd) {
  PVFS_ASSIGN_OR_RETURN(OpenFile file, SnapshotFd(fd));
  Metadata meta;
  bool cached = false;
  if (options_.acache.enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (auto hit = acache_.LookupHandle(file.meta.handle,
                                        cache::AttributeCache::Clock::now())) {
      meta = *hit;
      cached = true;
    }
  }
  if (!cached) {
    PVFS_ASSIGN_OR_RETURN(
        meta, CallManagerMeta(StatRequest{file.meta.handle}.Encode()));
    if (options_.acache.enabled || options_.bcache.enabled) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      if (options_.acache.enabled) {
        acache_.Insert(file.name, meta, cache::AttributeCache::Clock::now());
      }
      // A refreshed Stat revalidates (or invalidates) cached pages exactly
      // like an Open would.
      if (options_.bcache.enabled) bcache_.NoteEpoch(meta.handle, meta.epoch);
    }
  }
  std::lock_guard<std::mutex> lock(files_mu_);
  auto it = open_files_.find(fd);
  if (it != open_files_.end()) {
    // Refreshing the stored metadata must not clobber the descriptor's
    // high-water mark: the manager only learns the size at Close, so until
    // then the local mark can exceed meta.size.
    it->second.meta = meta;
    meta.size = std::max(meta.size, it->second.high_water);
  } else {
    meta.size = std::max(meta.size, file.high_water);
  }
  return meta;
}

Result<Metadata> Client::DescribeFd(Fd fd) const {
  PVFS_ASSIGN_OR_RETURN(OpenFile file, SnapshotFd(fd));
  return file.meta;
}

void Client::InvalidateCache(const std::string& name) {
  if (!options_.acache.enabled && !options_.bcache.enabled) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (auto handle = acache_.CachedHandle(name)) {
    // Dirty pages survive: they are this client's own unpublished writes,
    // and the next flush still owns them. Only cached server state drops.
    bcache_.DropCleanPages(*handle);
    acache_.InvalidateHandle(*handle);
  }
  acache_.InvalidateName(name);
}

Result<Client::OpenFile> Client::SnapshotFd(Fd fd) const {
  std::lock_guard<std::mutex> lock(files_mu_);
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return FailedPrecondition("bad descriptor");
  return it->second;
}

void Client::MergeHighWater(Fd fd, ByteCount high_water) {
  std::lock_guard<std::mutex> lock(files_mu_);
  auto it = open_files_.find(fd);
  if (it == open_files_.end()) return;  // closed while the op was in flight
  it->second.high_water = std::max(it->second.high_water, high_water);
}

// ---- I/O -------------------------------------------------------------------

Status Client::ValidateListArgs(std::span<const Extent> mem_regions,
                                size_t buffer_size,
                                std::span<const Extent> file_regions) {
  if (TotalBytes(mem_regions) != TotalBytes(file_regions)) {
    return InvalidArgument("memory and file region lists describe different "
                           "byte totals");
  }
  for (const Extent& m : mem_regions) {
    // Check for offset+length wraparound BEFORE the bounds check: a
    // wrapping extent has a small m.end() that passes the bounds check and
    // then indexes the caller's buffer out of range.
    if (m.offset + m.length < m.offset) {
      return InvalidArgument("memory region overflows offset space");
    }
    if (m.end() > buffer_size) {
      return InvalidArgument("memory region outside caller buffer");
    }
  }
  for (const Extent& f : file_regions) {
    if (f.offset + f.length < f.offset) {
      return InvalidArgument("file region overflows offset space");
    }
  }
  return Status::Ok();
}

Result<std::vector<std::byte>> Client::ExchangeOnce(
    const OpenFile& file, ServerId relative, const IoRequest& request) const {
  ServerId global = (file.meta.striping.base + relative) %
                    transport_->server_count();
  PVFS_ASSIGN_OR_RETURN(
      DecodedResponse resp,
      SealedCall(Endpoint::Iod(global), request.Encode()));
  if (!resp.status.ok()) return resp.status;
  return std::move(resp.body);
}

std::chrono::microseconds Client::NextBackoff(
    std::chrono::microseconds prev, std::chrono::microseconds initial,
    std::chrono::microseconds cap, std::uint32_t site, std::uint64_t stream,
    std::uint64_t seq) const {
  if (!options_.retry.jitter) return std::min(prev * 2, cap);
  // Decorrelated jitter: uniform in [initial, 3*prev]. Grows about as fast
  // as doubling in expectation, but concurrent clients that failed
  // together spread out instead of re-colliding in lockstep. The draw is
  // a pure hash of (seed, site, stream, attempt), so a client's schedule
  // is reproducible and independent of thread interleaving.
  const double u = fault::HashedUniform(options_.retry.jitter_seed, site,
                                        stream, seq, 0);
  const double lo = static_cast<double>(initial.count());
  const double hi = static_cast<double>(prev.count()) * 3.0;
  const double next = lo + u * std::max(0.0, hi - lo);
  return std::min(
      std::chrono::microseconds(static_cast<std::int64_t>(next)), cap);
}

void Client::CountRetryCode(ErrorCode code) const {
  switch (code) {
    case ErrorCode::kUnavailable: ++retries_unavailable_; break;
    case ErrorCode::kBusy: ++retries_busy_; break;
    case ErrorCode::kCorruption: ++retries_corruption_; break;
    case ErrorCode::kDeadlineExceeded: ++retries_deadline_; break;
    case ErrorCode::kProtocol: ++retries_protocol_; break;
    default: break;
  }
}

bool Client::SkipReplica(ServerId global) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  auto it = health_.find(global);
  if (it == health_.end() || !it->second.ejected) return false;
  const auto now = std::chrono::steady_clock::now();
  if (now < it->second.probe_at) return true;
  // Claim the probe: push the deadline out so only this op pays the
  // potential timeout; a success resets the entry entirely.
  it->second.probe_at = now + options_.failover.probe_backoff;
  return false;
}

void Client::RecordReplicaSuccess(ServerId global) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  auto it = health_.find(global);
  if (it != health_.end()) health_.erase(it);
}

void Client::RecordReplicaFailure(ServerId global) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  ReplicaHealth& h = health_[global];
  ++h.consecutive_failures;
  if (!h.ejected && h.consecutive_failures >= options_.failover.eject_after) {
    h.ejected = true;
    h.probe_at =
        std::chrono::steady_clock::now() + options_.failover.probe_backoff;
    ++ejected_replicas_;
  }
}

Result<std::vector<std::byte>> Client::ExchangeWithServer(
    const OpenFile& file, ServerId relative, const IoRequest& request,
    bool failover_fast) const {
  PVFS_SPAN("client.exchange");
  const RetryPolicy& policy = options_.retry;
  // Distinct jitter stream per (client, server): mix the client's unique
  // lock-owner token with the server id.
  const std::uint64_t stream =
      lock_owner_ * 0x9E3779B97F4A7C15ull ^ static_cast<std::uint64_t>(relative);
  std::chrono::microseconds backoff = policy.initial_backoff;
  // The op-deadline budget runs from the FIRST attempt: a retry loop that
  // restarted its budget per attempt could sleep unboundedly under a
  // flapping server, which is the bug RetryPolicy::op_deadline fixes.
  const bool budgeted = policy.op_deadline.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + policy.op_deadline;
  std::uint32_t attempt = 1;
  while (true) {
    auto result = ExchangeOnce(file, relative, request);
    if (result.ok() || !IsRetryable(result.status().code())) {
      return result;
    }
    if (failover_fast && IsFailoverEligible(result.status().code())) {
      // The replicated caller owns recovery for dead-endpoint errors:
      // surface immediately (no backoff, no exhausted accounting) so it
      // can retarget a surviving replica.
      return result;
    }
    if (policy.max_attempts <= 1) {
      // Fail-fast still exhausts its (single-attempt) budget: count it, or
      // the "exchanges that ran out of attempts" counter under-reports
      // exactly when retries are disabled. The original error is
      // surfaced unchanged.
      ++retry_exhausted_;
      return result;
    }
    if (attempt >= policy.max_attempts) {
      ++retry_exhausted_;
      return DeadlineExceeded(
          "exchange with server " + std::to_string(relative) + " failed " +
          std::to_string(attempt) + " attempts; last error: " +
          result.status().ToString());
    }
    std::chrono::microseconds sleep = backoff;
    if (budgeted) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::microseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining <= std::chrono::microseconds::zero()) {
        ++retry_exhausted_;
        return DeadlineExceeded(
            "exchange with server " + std::to_string(relative) +
            ": op_deadline spent after " + std::to_string(attempt) +
            " attempts; last error: " + result.status().ToString());
      }
      // Clamp the final sleep to the remaining budget so the loop wakes
      // with time for exactly one more attempt instead of oversleeping
      // past the deadline.
      sleep = std::min(sleep, remaining);
    }
    ++attempt;
    ++retries_;
    CountRetryCode(result.status().code());
    std::this_thread::sleep_for(sleep);
    backoff_us_ += static_cast<std::uint64_t>(sleep.count());
    backoff = NextBackoff(backoff, policy.initial_backoff, policy.max_backoff,
                          fault::kSiteRetryBackoff, stream, attempt);
  }
}

Result<std::vector<std::byte>> Client::ReadReplicated(
    const OpenFile& file, ServerId primary, const IoRequest& request) const {
  PVFS_SPAN("client.read_replicated");
  const Distribution dist(file.meta.layout());
  const std::uint32_t replicas = dist.EffectiveReplicas();
  const RetryPolicy& policy = options_.retry;
  const std::uint32_t max_rounds = std::max<std::uint32_t>(policy.max_attempts, 1);
  const std::uint64_t stream = lock_owner_ * 0x9E3779B97F4A7C15ull ^
                               static_cast<std::uint64_t>(primary) ^
                               0xA5A5A5A5ull;
  std::chrono::microseconds backoff = policy.initial_backoff;
  const bool budgeted = policy.op_deadline.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + policy.op_deadline;
  Status last = Unavailable("no replica reachable");
  for (std::uint32_t round = 1;; ++round) {
    // Pass 0 honours ejections; pass 1 runs only if every candidate was
    // benched, so a fully-ejected replica set still gets probed instead of
    // sleeping the round away.
    bool attempted = false;
    for (int pass = 0; pass < 2 && !attempted; ++pass) {
      for (std::uint32_t k = 0; k < replicas; ++k) {
        const ServerId route = dist.ReplicaOf(primary, k);
        const ServerId global = GlobalOf(file, route);
        if (pass == 0 && SkipReplica(global)) continue;
        attempted = true;
        IoRequest leg = request;
        leg.handle = ReplicaHandle(request.handle, k);
        auto body = ExchangeWithServer(file, route, leg, /*failover_fast=*/true);
        if (body.ok()) {
          RecordReplicaSuccess(global);
          if (k > 0) ++retargets_;  // served degraded, off the primary
          return body;
        }
        if (!IsFailoverEligible(body.status().code())) return body;
        RecordReplicaFailure(global);
        last = body.status();
      }
    }
    if (round >= max_rounds) {
      ++retry_exhausted_;
      return last;
    }
    std::chrono::microseconds sleep = backoff;
    if (budgeted) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::microseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining <= std::chrono::microseconds::zero()) {
        ++retry_exhausted_;
        return DeadlineExceeded(
            "replicated read: op_deadline spent after " +
            std::to_string(round) + " rounds; last error: " +
            last.ToString());
      }
      sleep = std::min(sleep, remaining);
    }
    ++retries_;
    CountRetryCode(last.code());
    std::this_thread::sleep_for(sleep);
    backoff_us_ += static_cast<std::uint64_t>(sleep.count());
    backoff = NextBackoff(backoff, policy.initial_backoff, policy.max_backoff,
                          fault::kSiteRetryBackoff, stream, round);
  }
}

Status Client::WriteReplicated(const OpenFile& file, ServerId primary,
                               const IoRequest& request) const {
  PVFS_SPAN("client.write_replicated");
  const Distribution dist(file.meta.layout());
  const std::uint32_t replicas = dist.EffectiveReplicas();
  const RetryPolicy& policy = options_.retry;
  const std::uint32_t max_rounds = std::max<std::uint32_t>(policy.max_attempts, 1);
  const std::uint64_t stream = lock_owner_ * 0x9E3779B97F4A7C15ull ^
                               static_cast<std::uint64_t>(primary) ^
                               0x5A5A5A5Aull;
  std::chrono::microseconds backoff = policy.initial_backoff;
  const bool budgeted = policy.op_deadline.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + policy.op_deadline;
  Status last = Unavailable("no replica reachable");
  for (std::uint32_t round = 1;; ++round) {
    std::uint32_t acks = 0;
    bool attempted = false;
    for (int pass = 0; pass < 2 && !attempted; ++pass) {
      for (std::uint32_t k = 0; k < replicas; ++k) {
        const ServerId route = dist.ReplicaOf(primary, k);
        const ServerId global = GlobalOf(file, route);
        if (pass == 0 && SkipReplica(global)) continue;
        attempted = true;
        IoRequest leg = request;
        leg.handle = ReplicaHandle(request.handle, k);
        auto body = ExchangeWithServer(file, route, leg, /*failover_fast=*/true);
        if (body.ok()) {
          RecordReplicaSuccess(global);
          ++acks;
          continue;
        }
        if (!IsFailoverEligible(body.status().code())) return body.status();
        RecordReplicaFailure(global);
        last = body.status();
      }
    }
    if (acks > 0) {
      // Degraded ack: the op succeeds; every copy it proceeded without is
      // a retarget, restored later by re-replication (docs/replication.md).
      retargets_ += replicas - acks;
      return Status::Ok();
    }
    if (round >= max_rounds) {
      ++retry_exhausted_;
      return last;
    }
    std::chrono::microseconds sleep = backoff;
    if (budgeted) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::microseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining <= std::chrono::microseconds::zero()) {
        ++retry_exhausted_;
        return DeadlineExceeded(
            "replicated write: op_deadline spent after " +
            std::to_string(round) + " rounds; last error: " +
            last.ToString());
      }
      sleep = std::min(sleep, remaining);
    }
    ++retries_;
    CountRetryCode(last.code());
    std::this_thread::sleep_for(sleep);
    backoff_us_ += static_cast<std::uint64_t>(sleep.count());
    backoff = NextBackoff(backoff, policy.initial_backoff, policy.max_backoff,
                          fault::kSiteRetryBackoff, stream, round);
  }
}

namespace {

/// Runs one callable per element, either inline or on one thread each
/// (the client library's per-iod fan-out). BOTH modes contact every
/// server and return the first (index-order) error: stopping the serial
/// walk at the first failure would leave a different partial-write
/// footprint than the parallel path, making recovery behaviour depend on
/// `parallel_fanout`.
template <typename Item, typename Fn>
Status ForEachServer(bool parallel, std::vector<Item>& items, const Fn& fn) {
  std::vector<Status> results(items.size());
  if (!parallel || items.size() <= 1) {
    for (size_t i = 0; i < items.size(); ++i) {
      results[i] = fn(i);
    }
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      threads.emplace_back([&, i] { results[i] = fn(i); });
    }
  }
  for (const Status& status : results) {
    PVFS_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

}  // namespace

Status Client::WriteChunk(OpenFile& file, std::span<const Extent> chunk,
                          std::span<const std::byte> stream) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.fs_requests;
  }
  Distribution dist(file.meta.layout());
  const std::uint32_t replicas = dist.EffectiveReplicas();
  std::vector<Fragment> frags = dist.Fragments(chunk);

  // Build each involved server's payload in logical-walk order.
  std::unordered_map<ServerId, std::vector<std::byte>> payload_map;
  for (const Fragment& f : frags) {
    auto& p = payload_map[f.server];
    p.insert(p.end(), stream.begin() + static_cast<std::ptrdiff_t>(f.logical_pos),
             stream.begin() + static_cast<std::ptrdiff_t>(f.logical_pos + f.length));
  }
  std::vector<std::pair<ServerId, std::vector<std::byte>>> payloads(
      std::make_move_iterator(payload_map.begin()),
      std::make_move_iterator(payload_map.end()));
  // unordered_map iteration order is implementation-defined: sort by
  // server id so contact order — and with it the per-(client,server)
  // jitter streams and serial-mode failure footprint — is deterministic
  // across platforms and runs (and matches ReadChunk's InvolvedServers
  // order).
  std::sort(payloads.begin(), payloads.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.messages += payloads.size() * replicas;
    stats_.regions_sent += payloads.size() * replicas * chunk.size();
  }
  PVFS_RETURN_IF_ERROR(ForEachServer(
      options_.parallel_fanout, payloads, [&](size_t i) -> Status {
        IoRequest req;
        req.handle = file.meta.handle;
        req.striping = file.meta.striping;
        req.dist = file.meta.dist;
        req.server_index = payloads[i].first;
        req.op = IoOp::kWrite;
        req.regions.assign(chunk.begin(), chunk.end());
        req.payload = std::move(payloads[i].second);
        if (replicas > 1) {
          // Fan the identical request out to every replica of this
          // primary: a secondary serves the same fragment set (selected by
          // server_index, not its own id) under a derived handle, giving
          // each copy the primary's exact local layout.
          return WriteReplicated(file, payloads[i].first, req);
        }
        auto body = ExchangeWithServer(file, payloads[i].first, req);
        return body.status();
      }));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_written += stream.size();
  }
  for (const Extent& e : chunk) {
    file.high_water = std::max<ByteCount>(file.high_water, e.end());
  }
  return Status::Ok();
}

Status Client::ReadChunk(OpenFile& file, std::span<const Extent> chunk,
                         std::span<std::byte> stream) {
  Distribution dist(file.meta.layout());
  const std::uint32_t replicas = dist.EffectiveReplicas();
  std::vector<ServerId> involved = dist.InvolvedServers(chunk);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.fs_requests;
    stats_.messages += involved.size();
    stats_.regions_sent += involved.size() * chunk.size();
  }
  std::vector<IoResponse> collected(involved.size());
  PVFS_RETURN_IF_ERROR(ForEachServer(
      options_.parallel_fanout, involved, [&](size_t i) -> Status {
        IoRequest req;
        req.handle = file.meta.handle;
        req.striping = file.meta.striping;
        req.dist = file.meta.dist;
        req.server_index = involved[i];
        req.op = IoOp::kRead;
        req.regions.assign(chunk.begin(), chunk.end());
        auto body = replicas > 1
                        ? ReadReplicated(file, involved[i], req)
                        : ExchangeWithServer(file, involved[i], req);
        if (!body.ok()) return body.status();
        auto io = IoResponse::Decode(*body);
        if (!io.ok()) return io.status();
        collected[i] = std::move(*io);
        return Status::Ok();
      }));
  std::unordered_map<ServerId, IoResponse> responses;
  for (size_t i = 0; i < involved.size(); ++i) {
    responses.emplace(involved[i], std::move(collected[i]));
  }

  // Reassemble the logical stream: fragments arrive per server in walk
  // order, so a cursor per server suffices.
  std::unordered_map<ServerId, ByteCount> cursors;
  std::vector<Fragment> frags = dist.Fragments(chunk);
  for (const Fragment& f : frags) {
    const IoResponse& io = responses.at(f.server);
    ByteCount& cur = cursors[f.server];
    if (cur + f.length > io.payload.size()) {
      return ProtocolError("server returned short payload");
    }
    std::memcpy(stream.data() + f.logical_pos, io.payload.data() + cur,
                f.length);
    cur += f.length;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_read += stream.size();
  }
  return Status::Ok();
}

Result<ExtentList> Client::ChunkableRegions(
    std::span<const Extent> mem_regions,
    std::span<const Extent> file_regions) const {
  if (options_.chunking == ListChunking::kFileRegions) {
    return ExtentList(file_regions.begin(), file_regions.end());
  }
  // 2002/ROMIO mode: the request cap applies to memory entries too, so
  // chunk at matched-segment granularity (file regions split wherever the
  // memory side breaks).
  PVFS_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                        MatchSegments(mem_regions, file_regions));
  ExtentList out;
  out.reserve(segments.size());
  for (const Segment& seg : segments) {
    out.push_back(Extent{seg.file_offset, seg.length});
  }
  return out;
}

Status Client::DoReadList(OpenFile& file, std::span<const Extent> mem_regions,
                          std::span<std::byte> buffer,
                          std::span<const Extent> file_regions) {
  PVFS_RETURN_IF_ERROR(
      ValidateListArgs(mem_regions, buffer.size(), file_regions));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.operations;
  }
  if (options_.bcache.enabled) {
    return CachedReadList(file, mem_regions, buffer, file_regions);
  }

  PVFS_ASSIGN_OR_RETURN(ExtentList chunkable,
                        ChunkableRegions(mem_regions, file_regions));
  StreamCursor cursor(mem_regions);
  std::vector<std::byte> stream;
  for (const ExtentList& chunk : ChunkRegions(chunkable,
                                              options_.max_list_regions)) {
    stream.resize(TotalBytes(chunk));
    PVFS_RETURN_IF_ERROR(ReadChunk(file, chunk, stream));
    cursor.Scatter(stream, buffer);
  }
  return Status::Ok();
}

Status Client::DoWriteList(OpenFile& file, std::span<const Extent> mem_regions,
                           std::span<const std::byte> buffer,
                           std::span<const Extent> file_regions) {
  PVFS_RETURN_IF_ERROR(
      ValidateListArgs(mem_regions, buffer.size(), file_regions));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.operations;
  }
  if (options_.bcache.enabled) {
    return CachedWriteList(file, mem_regions, buffer, file_regions);
  }

  PVFS_ASSIGN_OR_RETURN(ExtentList chunkable,
                        ChunkableRegions(mem_regions, file_regions));
  StreamCursor cursor(mem_regions);
  std::vector<std::byte> stream;
  for (const ExtentList& chunk : ChunkRegions(chunkable,
                                              options_.max_list_regions)) {
    stream.resize(TotalBytes(chunk));
    cursor.Gather(buffer, stream);
    PVFS_RETURN_IF_ERROR(WriteChunk(file, chunk, stream));
  }
  return Status::Ok();
}

// ---- Buffer-cache path ------------------------------------------------------

cache::BufferCache::FetchFn Client::PageFetcher(OpenFile& file) {
  return [this, &file](FileOffset offset, std::span<std::byte> out) -> Status {
    const Extent chunk[] = {Extent{offset, out.size()}};
    return ReadChunk(file, chunk, out);
  };
}

cache::BufferCache::FlushFn Client::PageFlusher(OpenFile& file) {
  return [this, &file](FileOffset offset,
                       std::span<const std::byte> data) -> Status {
    const Extent chunk[] = {Extent{offset, data.size()}};
    return WriteChunk(file, chunk, data);
  };
}

Status Client::CachedReadList(OpenFile& file,
                              std::span<const Extent> mem_regions,
                              std::span<std::byte> buffer,
                              std::span<const Extent> file_regions) {
  PVFS_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                        MatchSegments(mem_regions, file_regions));
  const auto fetch = PageFetcher(file);
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (const Segment& seg : segments) {
    PVFS_RETURN_IF_ERROR(
        bcache_.Read(file.meta.handle, seg.file_offset,
                     buffer.subspan(seg.mem_offset, seg.length), fetch));
  }
  if (options_.readahead.enabled) {
    // The file-region list IS the access pattern: extrapolate it and pull
    // the predicted continuation in. Best-effort — a prefetch failure
    // never fails the read that triggered it. Predictions past the known
    // size bound are dropped: those pages could only hold zeros.
    const ByteCount known_end = std::max(file.meta.size, file.high_water);
    for (const Extent& predicted :
         cache::PlanReadahead(file_regions, options_.readahead)) {
      if (predicted.offset >= known_end) break;
      if (!bcache_.Prefetch(file.meta.handle, predicted, fetch).ok()) break;
    }
  }
  return Status::Ok();
}

Status Client::CachedWriteList(OpenFile& file,
                               std::span<const Extent> mem_regions,
                               std::span<const std::byte> buffer,
                               std::span<const Extent> file_regions) {
  PVFS_ASSIGN_OR_RETURN(std::vector<Segment> segments,
                        MatchSegments(mem_regions, file_regions));
  const auto fetch = PageFetcher(file);
  const auto flush = PageFlusher(file);
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (const Segment& seg : segments) {
    PVFS_RETURN_IF_ERROR(
        bcache_.Write(file.meta.handle, seg.file_offset,
                      buffer.subspan(seg.mem_offset, seg.length), fetch,
                      flush));
    // The descriptor's high-water mark tracks what the application wrote,
    // not what has flushed: Stat and Close must see the buffered size.
    file.high_water =
        std::max<ByteCount>(file.high_water, seg.file_offset + seg.length);
  }
  return Status::Ok();
}

Status Client::ReadList(Fd fd, std::span<const Extent> mem_regions,
                        std::span<std::byte> buffer,
                        std::span<const Extent> file_regions) {
  PVFS_ASSIGN_OR_RETURN(OpenFile file, SnapshotFd(fd));
  return DoReadList(file, mem_regions, buffer, file_regions);
}

Status Client::WriteList(Fd fd, std::span<const Extent> mem_regions,
                         std::span<const std::byte> buffer,
                         std::span<const Extent> file_regions) {
  PVFS_ASSIGN_OR_RETURN(OpenFile file, SnapshotFd(fd));
  // Merge the high-water mark even on a partial failure: completed chunks
  // extended the file exactly as before this path snapshotted descriptors.
  const Status status = DoWriteList(file, mem_regions, buffer, file_regions);
  MergeHighWater(fd, file.high_water);
  return status;
}

Status Client::Read(Fd fd, FileOffset offset, std::span<std::byte> out) {
  const Extent mem[] = {{0, out.size()}};
  const Extent file[] = {{offset, out.size()}};
  return ReadList(fd, mem, out, file);
}

Status Client::Write(Fd fd, FileOffset offset,
                     std::span<const std::byte> data) {
  const Extent mem[] = {{0, data.size()}};
  const Extent file[] = {{offset, data.size()}};
  return WriteList(fd, mem, data, file);
}

// ---- Nonblocking list I/O ---------------------------------------------------

/// Shared completion state behind an Operation handle. Phase only moves
/// forward (queued -> running -> done, or queued -> canceled); `cv` fires
/// on every terminal transition.
struct Client::Operation::State {
  enum class Phase { kQueued, kRunning, kDone, kCanceled };

  std::mutex mu;
  std::condition_variable cv;
  Phase phase = Phase::kQueued;
  Status result = Status::Ok();

  // The deferred call, captured at submission. Extent lists are copied
  // (cheap, bounded); data buffers stay caller-owned per the API contract.
  bool is_write = false;
  Fd fd = -1;
  OpenFile file;  // descriptor snapshot taken at submit time
  std::vector<Extent> mem_regions;
  std::vector<Extent> file_regions;
  std::span<std::byte> out;       // read destination
  std::span<const std::byte> in;  // write source
};

bool Client::Operation::Test() const {
  if (!state_) return true;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->phase == State::Phase::kDone ||
         state_->phase == State::Phase::kCanceled;
}

Status Client::Operation::Wait() {
  if (!state_) return FailedPrecondition("empty operation handle");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] {
    return state_->phase == State::Phase::kDone ||
           state_->phase == State::Phase::kCanceled;
  });
  return state_->result;
}

bool Client::Operation::Cancel() {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->phase != State::Phase::kQueued) return false;
  state_->phase = State::Phase::kCanceled;
  state_->result = FailedPrecondition("operation canceled before dispatch");
  state_->cv.notify_all();
  return true;
}

Client::~Client() {
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    async_stopping_ = true;
  }
  async_cv_.notify_all();
  for (std::thread& worker : async_workers_) worker.join();
}

void Client::EnsureAsyncWorkers() {
  std::lock_guard<std::mutex> lock(async_mu_);
  if (!async_workers_.empty()) return;
  const std::uint32_t n = std::max<std::uint32_t>(1, options_.async_workers);
  async_workers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    async_workers_.emplace_back([this] { AsyncWorkerLoop(); });
  }
}

void Client::AsyncWorkerLoop() {
  for (;;) {
    std::shared_ptr<Operation::State> op;
    {
      std::unique_lock<std::mutex> lock(async_mu_);
      async_cv_.wait(lock,
                     [&] { return async_stopping_ || !async_queue_.empty(); });
      // Stopping drains: submitted operations reference caller buffers,
      // so ~Client completes them rather than abandoning them.
      if (async_queue_.empty()) return;
      op = std::move(async_queue_.front());
      async_queue_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(op->mu);
      if (op->phase == Operation::State::Phase::kCanceled) continue;
      op->phase = Operation::State::Phase::kRunning;
    }
    Status result =
        op->is_write
            ? DoWriteList(op->file, op->mem_regions, op->in, op->file_regions)
            : DoReadList(op->file, op->mem_regions, op->out, op->file_regions);
    if (op->is_write) MergeHighWater(op->fd, op->file.high_water);
    {
      std::lock_guard<std::mutex> lock(op->mu);
      op->phase = Operation::State::Phase::kDone;
      op->result = std::move(result);
    }
    op->cv.notify_all();
  }
}

Client::Operation Client::SubmitAsync(bool is_write, Fd fd,
                                      std::span<const Extent> mem_regions,
                                      std::span<std::byte> out,
                                      std::span<const std::byte> in,
                                      std::span<const Extent> file_regions) {
  auto state = std::make_shared<Operation::State>();
  state->is_write = is_write;
  state->fd = fd;
  state->mem_regions.assign(mem_regions.begin(), mem_regions.end());
  state->file_regions.assign(file_regions.begin(), file_regions.end());
  state->out = out;
  state->in = in;
  auto snapshot = SnapshotFd(fd);
  if (!snapshot.ok()) {
    // Submission errors resolve the handle immediately; Wait() reports
    // them typed, so the async path has exactly one error channel.
    state->phase = Operation::State::Phase::kDone;
    state->result = snapshot.status();
    return Operation(std::move(state));
  }
  state->file = std::move(*snapshot);
  EnsureAsyncWorkers();
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    async_queue_.push_back(state);
  }
  async_cv_.notify_one();
  return Operation(std::move(state));
}

Client::Operation Client::ReadListAsync(Fd fd,
                                        std::span<const Extent> mem_regions,
                                        std::span<std::byte> buffer,
                                        std::span<const Extent> file_regions) {
  return SubmitAsync(/*is_write=*/false, fd, mem_regions, buffer, {},
                     file_regions);
}

Client::Operation Client::WriteListAsync(
    Fd fd, std::span<const Extent> mem_regions,
    std::span<const std::byte> buffer,
    std::span<const Extent> file_regions) {
  return SubmitAsync(/*is_write=*/true, fd, mem_regions, {}, buffer,
                     file_regions);
}

// ---- Observability ----------------------------------------------------------

void Client::ExportMetrics(obs::Registry& reg, const obs::Labels& base) const {
  const ClientStats snapshot = stats();
  reg.Counter("client.operations", base).Set(snapshot.operations);
  reg.Counter("client.fs_requests", base).Set(snapshot.fs_requests);
  reg.Counter("client.messages", base).Set(snapshot.messages);
  reg.Counter("client.regions_sent", base).Set(snapshot.regions_sent);
  reg.Counter("client.bytes_read", base).Set(snapshot.bytes_read);
  reg.Counter("client.bytes_written", base).Set(snapshot.bytes_written);
  reg.Counter("client.manager_messages", base).Set(snapshot.manager_messages);
  const RetryCounters retry = retry_counters();
  reg.Counter("client.retries", base).Set(retry.retries);
  reg.Counter("client.retry_exhausted", base).Set(retry.exhausted);
  reg.Counter("client.backoff_us", base).Set(retry.backoff_us);
  reg.Counter("client.corruptions", base).Set(retry.corruptions);
  reg.Counter("client.busy_rejections", base).Set(retry.busy_rejections);
  // client.retries split by triggering error code, so failover vs.
  // backpressure vs. integrity retries are distinguishable in BENCH JSON.
  const auto coded = [&](const char* code) {
    obs::Labels labels = base;
    labels.push_back({"code", code});
    return labels;
  };
  reg.Counter("client.retries", coded("unavailable"))
      .Set(retry.retries_unavailable);
  reg.Counter("client.retries", coded("busy")).Set(retry.retries_busy);
  reg.Counter("client.retries", coded("corruption"))
      .Set(retry.retries_corruption);
  reg.Counter("client.retries", coded("deadline_exceeded"))
      .Set(retry.retries_deadline);
  reg.Counter("client.retries", coded("protocol"))
      .Set(retry.retries_protocol);
  const FailoverCounters failover = failover_counters();
  reg.Counter("client.failover.retargets", base).Set(failover.retargets);
  reg.Counter("client.failover.ejected_replicas", base)
      .Set(failover.ejected_replicas);
  // Cache tiers, split by a "tier" label so acache (metadata) and bcache
  // (data pages) hit rates stay separable in BENCH JSON.
  const CacheCounters cache = cache_counters();
  const auto tier = [&](const char* name) {
    obs::Labels labels = base;
    labels.push_back({"tier", name});
    return labels;
  };
  reg.Counter("client.cache.hits", tier("acache")).Set(cache.acache.hits);
  reg.Counter("client.cache.misses", tier("acache")).Set(cache.acache.misses);
  reg.Counter("client.cache.evictions", tier("acache"))
      .Set(cache.acache.evictions);
  reg.Counter("client.cache.revalidations", tier("acache"))
      .Set(cache.acache.revalidations);
  reg.Counter("client.cache.hits", tier("bcache")).Set(cache.bcache.hits);
  reg.Counter("client.cache.misses", tier("bcache")).Set(cache.bcache.misses);
  reg.Counter("client.cache.evictions", tier("bcache"))
      .Set(cache.bcache.evictions);
  reg.Counter("client.cache.writeback_bytes", tier("bcache"))
      .Set(cache.bcache.writeback_bytes);
  reg.Counter("client.cache.readahead_hits", tier("bcache"))
      .Set(cache.bcache.readahead_hits);
  reg.Counter("client.cache.prefetched_pages", tier("bcache"))
      .Set(cache.bcache.prefetched_pages);
}

obs::JsonValue Client::StatsJson() const {
  const ClientStats snapshot = stats();
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("operations", obs::JsonValue(snapshot.operations));
  out.Set("fs_requests", obs::JsonValue(snapshot.fs_requests));
  out.Set("messages", obs::JsonValue(snapshot.messages));
  out.Set("regions_sent", obs::JsonValue(snapshot.regions_sent));
  out.Set("bytes_read", obs::JsonValue(snapshot.bytes_read));
  out.Set("bytes_written", obs::JsonValue(snapshot.bytes_written));
  out.Set("manager_messages", obs::JsonValue(snapshot.manager_messages));
  const RetryCounters retry = retry_counters();
  out.Set("retries", obs::JsonValue(retry.retries));
  out.Set("retry_exhausted", obs::JsonValue(retry.exhausted));
  out.Set("backoff_us", obs::JsonValue(retry.backoff_us));
  out.Set("corruptions", obs::JsonValue(retry.corruptions));
  out.Set("busy_rejections", obs::JsonValue(retry.busy_rejections));
  obs::JsonValue by_code = obs::JsonValue::Object();
  by_code.Set("unavailable", obs::JsonValue(retry.retries_unavailable));
  by_code.Set("busy", obs::JsonValue(retry.retries_busy));
  by_code.Set("corruption", obs::JsonValue(retry.retries_corruption));
  by_code.Set("deadline_exceeded", obs::JsonValue(retry.retries_deadline));
  by_code.Set("protocol", obs::JsonValue(retry.retries_protocol));
  out.Set("retries_by_code", std::move(by_code));
  const FailoverCounters failover = failover_counters();
  out.Set("failover_retargets", obs::JsonValue(failover.retargets));
  out.Set("failover_ejected_replicas",
          obs::JsonValue(failover.ejected_replicas));
  const CacheCounters cache = cache_counters();
  obs::JsonValue acache = obs::JsonValue::Object();
  acache.Set("hits", obs::JsonValue(cache.acache.hits));
  acache.Set("misses", obs::JsonValue(cache.acache.misses));
  acache.Set("evictions", obs::JsonValue(cache.acache.evictions));
  acache.Set("revalidations", obs::JsonValue(cache.acache.revalidations));
  obs::JsonValue bcache = obs::JsonValue::Object();
  bcache.Set("hits", obs::JsonValue(cache.bcache.hits));
  bcache.Set("misses", obs::JsonValue(cache.bcache.misses));
  bcache.Set("evictions", obs::JsonValue(cache.bcache.evictions));
  bcache.Set("writeback_bytes", obs::JsonValue(cache.bcache.writeback_bytes));
  bcache.Set("readahead_hits", obs::JsonValue(cache.bcache.readahead_hits));
  bcache.Set("prefetched_pages",
             obs::JsonValue(cache.bcache.prefetched_pages));
  obs::JsonValue cache_json = obs::JsonValue::Object();
  cache_json.Set("acache", std::move(acache));
  cache_json.Set("bcache", std::move(bcache));
  out.Set("cache", std::move(cache_json));
  return out;
}

Result<std::string> Client::FetchServerStats(int server) {
  Endpoint dest = server < 0
                      ? Endpoint::ManagerNode()
                      : Endpoint::Iod(static_cast<ServerId>(server));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (server < 0) {
      ++stats_.manager_messages;
    } else {
      ++stats_.messages;
    }
  }
  PVFS_ASSIGN_OR_RETURN(DecodedResponse resp,
                        SealedCall(dest, StatsRequest{}.Encode()));
  if (!resp.status.ok()) return resp.status;
  PVFS_ASSIGN_OR_RETURN(StatsResponse stats, StatsResponse::Decode(resp.body));
  return stats.json;
}

}  // namespace pvfs
