#include "pvfs/protocol.hpp"

namespace pvfs {

void EncodeStriping(WireWriter& w, const Striping& s) {
  w.U32(s.base);
  w.U32(s.pcount);
  w.U64(s.ssize);
}

Result<Striping> DecodeStriping(WireReader& r) {
  Striping s;
  PVFS_ASSIGN_OR_RETURN(s.base, r.U32());
  PVFS_ASSIGN_OR_RETURN(s.pcount, r.U32());
  PVFS_ASSIGN_OR_RETURN(s.ssize, r.U64());
  if (s.pcount == 0 || s.ssize == 0) {
    return ProtocolError("striping with zero pcount or ssize");
  }
  return s;
}

void EncodeDistributionSpec(WireWriter& w, const Striping& s,
                            const DistributionSpec& d) {
  if (d.IsSimple()) {
    // Canonical simple layout: exactly the legacy striping bytes.
    EncodeStriping(w, s);
    return;
  }
  w.U32(s.base);
  w.U32(0);  // sentinel pcount: legacy decoders reject, new ones read on
  w.U8(kDistWireVersion);
  w.U8(static_cast<std::uint8_t>(d.kind));
  w.U32(d.groups);
  w.U32(d.group_depth);
  w.U64(d.block_extent);
  w.U32(s.pcount);
  w.U64(s.ssize);
}

Result<DecodedLayout> DecodeDistributionSpec(WireReader& r) {
  DecodedLayout out;
  PVFS_ASSIGN_OR_RETURN(out.striping.base, r.U32());
  PVFS_ASSIGN_OR_RETURN(std::uint32_t pcount, r.U32());
  if (pcount != 0) {
    // Legacy frame: plain striping, simple-stripe layout.
    out.striping.pcount = pcount;
    PVFS_ASSIGN_OR_RETURN(out.striping.ssize, r.U64());
    if (out.striping.ssize == 0) {
      return ProtocolError("striping with zero pcount or ssize");
    }
    return out;
  }
  PVFS_ASSIGN_OR_RETURN(std::uint8_t version, r.U8());
  if (version != kDistWireVersion) {
    return ProtocolError("unknown distribution encoding version");
  }
  PVFS_ASSIGN_OR_RETURN(std::uint8_t kind, r.U8());
  if (kind == 0 || kind > static_cast<std::uint8_t>(DistKind::kGroupCyclic)) {
    // kind 0 (simple) must use the legacy form — one wire form per layout.
    return ProtocolError("unknown or non-canonical distribution kind");
  }
  out.dist.kind = static_cast<DistKind>(kind);
  PVFS_ASSIGN_OR_RETURN(out.dist.groups, r.U32());
  PVFS_ASSIGN_OR_RETURN(out.dist.group_depth, r.U32());
  PVFS_ASSIGN_OR_RETURN(out.dist.block_extent, r.U64());
  PVFS_ASSIGN_OR_RETURN(out.striping.pcount, r.U32());
  PVFS_ASSIGN_OR_RETURN(out.striping.ssize, r.U64());
  if (out.striping.pcount == 0 || out.striping.ssize == 0) {
    return ProtocolError("striping with zero pcount or ssize");
  }
  if (Status s = ValidateDistributionSpec(out.striping, out.dist); !s.ok()) {
    return ProtocolError(std::string(s.message()));
  }
  return out;
}

void EncodeReplication(WireWriter& w, const ReplicationConfig& c) {
  w.U32(c.replicas);
  w.U8(static_cast<std::uint8_t>(c.placement));
}

Result<ReplicationConfig> DecodeReplication(WireReader& r) {
  ReplicationConfig c;
  PVFS_ASSIGN_OR_RETURN(c.replicas, r.U32());
  PVFS_ASSIGN_OR_RETURN(std::uint8_t placement, r.U8());
  if (c.replicas == 0) return ProtocolError("replication with zero replicas");
  if (placement != 0) return ProtocolError("unknown replica placement");
  c.placement = static_cast<ReplicaPlacement>(placement);
  return c;
}

namespace {
void EncodeMetadata(WireWriter& w, const Metadata& m) {
  w.U64(m.handle);
  EncodeDistributionSpec(w, m.striping, m.dist);
  w.U64(m.size);
  EncodeReplication(w, m.replication);
  w.U64(m.epoch);
}

Result<Metadata> DecodeMetadata(WireReader& r) {
  Metadata m;
  PVFS_ASSIGN_OR_RETURN(m.handle, r.U64());
  PVFS_ASSIGN_OR_RETURN(DecodedLayout layout, DecodeDistributionSpec(r));
  m.striping = layout.striping;
  m.dist = layout.dist;
  PVFS_ASSIGN_OR_RETURN(m.size, r.U64());
  PVFS_ASSIGN_OR_RETURN(m.replication, DecodeReplication(r));
  PVFS_ASSIGN_OR_RETURN(m.epoch, r.U64());
  return m;
}
}  // namespace

// ---- Manager messages ---------------------------------------------------

std::vector<std::byte> CreateRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kCreate));
  w.String(name);
  EncodeDistributionSpec(w, options.striping, options.dist);
  EncodeReplication(w, options.replication);
  return w.Take();
}

Result<CreateRequest> CreateRequest::Decode(WireReader& r) {
  CreateRequest req;
  PVFS_ASSIGN_OR_RETURN(req.name, r.String());
  PVFS_ASSIGN_OR_RETURN(DecodedLayout layout, DecodeDistributionSpec(r));
  req.options.striping = layout.striping;
  req.options.dist = layout.dist;
  PVFS_ASSIGN_OR_RETURN(req.options.replication, DecodeReplication(r));
  return req;
}

std::vector<std::byte> LookupRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kLookup));
  w.String(name);
  return w.Take();
}

Result<LookupRequest> LookupRequest::Decode(WireReader& r) {
  LookupRequest req;
  PVFS_ASSIGN_OR_RETURN(req.name, r.String());
  return req;
}

std::vector<std::byte> RemoveRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kRemove));
  w.String(name);
  return w.Take();
}

Result<RemoveRequest> RemoveRequest::Decode(WireReader& r) {
  RemoveRequest req;
  PVFS_ASSIGN_OR_RETURN(req.name, r.String());
  return req;
}

std::vector<std::byte> StatRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kStat));
  w.U64(handle);
  return w.Take();
}

Result<StatRequest> StatRequest::Decode(WireReader& r) {
  StatRequest req;
  PVFS_ASSIGN_OR_RETURN(req.handle, r.U64());
  return req;
}

std::vector<std::byte> SetSizeRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kSetSize));
  w.U64(handle);
  w.U64(size);
  return w.Take();
}

Result<SetSizeRequest> SetSizeRequest::Decode(WireReader& r) {
  SetSizeRequest req;
  PVFS_ASSIGN_OR_RETURN(req.handle, r.U64());
  PVFS_ASSIGN_OR_RETURN(req.size, r.U64());
  return req;
}

std::vector<std::byte> MetadataResponse::Encode() const {
  WireWriter w;
  EncodeMetadata(w, meta);
  return w.Take();
}

Result<MetadataResponse> MetadataResponse::Decode(
    std::span<const std::byte> raw) {
  WireReader r(raw);
  MetadataResponse resp;
  PVFS_ASSIGN_OR_RETURN(resp.meta, DecodeMetadata(r));
  return resp;
}

std::vector<std::byte> ListNamesRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kListNames));
  w.String(prefix);
  return w.Take();
}

Result<ListNamesRequest> ListNamesRequest::Decode(WireReader& r) {
  ListNamesRequest req;
  PVFS_ASSIGN_OR_RETURN(req.prefix, r.String());
  return req;
}

std::vector<std::byte> NamesResponse::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) w.String(name);
  return w.Take();
}

Result<NamesResponse> NamesResponse::Decode(std::span<const std::byte> raw) {
  WireReader r(raw);
  PVFS_ASSIGN_OR_RETURN(std::uint32_t count, r.U32());
  NamesResponse resp;
  // Each name costs at least its 4-byte length prefix; bound the count by
  // the bytes present before reserving (hostile-frame allocation guard).
  if (static_cast<std::uint64_t>(count) * 4 > r.remaining()) {
    return ProtocolError("name count exceeds remaining bytes");
  }
  resp.names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PVFS_ASSIGN_OR_RETURN(std::string name, r.String());
    resp.names.push_back(std::move(name));
  }
  return resp;
}

std::vector<std::byte> LockRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kLock));
  w.U64(handle);
  w.U64(range.offset);
  w.U64(range.length);
  w.U64(owner);
  w.U8(exclusive ? 1 : 0);
  return w.Take();
}

Result<LockRequest> LockRequest::Decode(WireReader& r) {
  LockRequest req;
  PVFS_ASSIGN_OR_RETURN(req.handle, r.U64());
  PVFS_ASSIGN_OR_RETURN(req.range.offset, r.U64());
  PVFS_ASSIGN_OR_RETURN(req.range.length, r.U64());
  PVFS_ASSIGN_OR_RETURN(req.owner, r.U64());
  PVFS_ASSIGN_OR_RETURN(std::uint8_t flag, r.U8());
  req.exclusive = flag != 0;
  return req;
}

std::vector<std::byte> UnlockRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kUnlock));
  w.U64(handle);
  w.U64(range.offset);
  w.U64(range.length);
  w.U64(owner);
  return w.Take();
}

Result<UnlockRequest> UnlockRequest::Decode(WireReader& r) {
  UnlockRequest req;
  PVFS_ASSIGN_OR_RETURN(req.handle, r.U64());
  PVFS_ASSIGN_OR_RETURN(req.range.offset, r.U64());
  PVFS_ASSIGN_OR_RETURN(req.range.length, r.U64());
  PVFS_ASSIGN_OR_RETURN(req.owner, r.U64());
  return req;
}

// ---- I/O daemon messages ------------------------------------------------

std::vector<std::byte> IoRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kIo));
  w.U64(handle);
  EncodeDistributionSpec(w, striping, dist);
  w.U32(server_index);
  w.U8(static_cast<std::uint8_t>(op));
  w.U32(static_cast<std::uint32_t>(regions.size()));
  for (const Extent& e : regions) {  // trailing data block
    w.U64(e.offset);
    w.U64(e.length);
  }
  w.Bytes(payload);
  return w.Take();
}

Result<IoRequest> IoRequest::Decode(WireReader& r) {
  IoRequest req;
  PVFS_ASSIGN_OR_RETURN(req.handle, r.U64());
  PVFS_ASSIGN_OR_RETURN(DecodedLayout layout, DecodeDistributionSpec(r));
  req.striping = layout.striping;
  req.dist = layout.dist;
  PVFS_ASSIGN_OR_RETURN(req.server_index, r.U32());
  if (req.server_index >= req.striping.pcount) {
    return ProtocolError("server_index beyond striping pcount");
  }
  PVFS_ASSIGN_OR_RETURN(std::uint8_t op_raw, r.U8());
  if (op_raw > 1) return ProtocolError("bad IoOp");
  req.op = static_cast<IoOp>(op_raw);
  PVFS_ASSIGN_OR_RETURN(std::uint32_t count, r.U32());
  // 16 wire bytes per region; bound the count by the bytes present before
  // reserving so a corrupt count cannot trigger a huge allocation.
  if (static_cast<std::uint64_t>(count) * 16 > r.remaining()) {
    return ProtocolError("region count exceeds remaining bytes");
  }
  req.regions.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Extent e;
    PVFS_ASSIGN_OR_RETURN(e.offset, r.U64());
    PVFS_ASSIGN_OR_RETURN(e.length, r.U64());
    req.regions.push_back(e);
  }
  PVFS_ASSIGN_OR_RETURN(req.payload, r.Bytes());
  return req;
}

ByteCount IoRequest::HeaderWireBytes() {
  // type(4) + handle(8) + striping(4+4+8) + server_index(4) + op(1)
  // + region count(4) + payload length prefix(4)
  return 4 + 8 + 16 + 4 + 1 + 4 + 4;
}

ByteCount IoRequest::WireBytes(std::uint32_t region_count) {
  return HeaderWireBytes() + static_cast<ByteCount>(region_count) * 16;
}

std::vector<std::byte> IoResponse::Encode() const {
  WireWriter w;
  w.U64(bytes);
  w.Bytes(payload);
  return w.Take();
}

Result<IoResponse> IoResponse::Decode(std::span<const std::byte> raw) {
  WireReader r(raw);
  IoResponse resp;
  PVFS_ASSIGN_OR_RETURN(resp.bytes, r.U64());
  PVFS_ASSIGN_OR_RETURN(resp.payload, r.Bytes());
  return resp;
}

std::vector<std::byte> RemoveDataRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kRemoveData));
  w.U64(handle);
  return w.Take();
}

Result<RemoveDataRequest> RemoveDataRequest::Decode(WireReader& r) {
  RemoveDataRequest req;
  PVFS_ASSIGN_OR_RETURN(req.handle, r.U64());
  return req;
}

std::vector<std::byte> ReplicaSumsRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kReplicaSums));
  w.U64(handle);
  return w.Take();
}

Result<ReplicaSumsRequest> ReplicaSumsRequest::Decode(WireReader& r) {
  ReplicaSumsRequest req;
  PVFS_ASSIGN_OR_RETURN(req.handle, r.U64());
  return req;
}

std::vector<std::byte> ReplicaSumsResponse::Encode() const {
  WireWriter w;
  w.U64(size);
  w.U32(static_cast<std::uint32_t>(chunks.size()));
  for (const ChunkSumEntry& c : chunks) {
    w.U64(c.chunk_index);
    w.U32(c.crc);
    w.U8(c.valid ? 1 : 0);
  }
  return w.Take();
}

Result<ReplicaSumsResponse> ReplicaSumsResponse::Decode(
    std::span<const std::byte> raw) {
  WireReader r(raw);
  ReplicaSumsResponse resp;
  PVFS_ASSIGN_OR_RETURN(resp.size, r.U64());
  PVFS_ASSIGN_OR_RETURN(std::uint32_t count, r.U32());
  // 13 wire bytes per entry; bound before reserving (hostile-frame guard).
  if (static_cast<std::uint64_t>(count) * 13 > r.remaining()) {
    return ProtocolError("chunk sum count exceeds remaining bytes");
  }
  resp.chunks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ChunkSumEntry c;
    PVFS_ASSIGN_OR_RETURN(c.chunk_index, r.U64());
    PVFS_ASSIGN_OR_RETURN(c.crc, r.U32());
    PVFS_ASSIGN_OR_RETURN(std::uint8_t valid, r.U8());
    c.valid = valid != 0;
    resp.chunks.push_back(c);
  }
  return resp;
}

std::vector<std::byte> RepairRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kRepair));
  w.U64(handle);
  w.U8(static_cast<std::uint8_t>(op));
  w.U64(offset);
  w.U64(length);
  w.Bytes(payload);
  return w.Take();
}

Result<RepairRequest> RepairRequest::Decode(WireReader& r) {
  RepairRequest req;
  PVFS_ASSIGN_OR_RETURN(req.handle, r.U64());
  PVFS_ASSIGN_OR_RETURN(std::uint8_t op_raw, r.U8());
  if (op_raw > 1) return ProtocolError("bad RepairOp");
  req.op = static_cast<RepairOp>(op_raw);
  PVFS_ASSIGN_OR_RETURN(req.offset, r.U64());
  PVFS_ASSIGN_OR_RETURN(req.length, r.U64());
  PVFS_ASSIGN_OR_RETURN(req.payload, r.Bytes());
  return req;
}

std::vector<std::byte> RepairResponse::Encode() const {
  WireWriter w;
  w.Bytes(payload);
  return w.Take();
}

Result<RepairResponse> RepairResponse::Decode(std::span<const std::byte> raw) {
  WireReader r(raw);
  RepairResponse resp;
  PVFS_ASSIGN_OR_RETURN(resp.payload, r.Bytes());
  return resp;
}

std::vector<std::byte> StatsRequest::Encode() const {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(MsgType::kStats));
  return w.Take();
}

Result<StatsRequest> StatsRequest::Decode(WireReader&) {
  return StatsRequest{};
}

std::vector<std::byte> StatsResponse::Encode() const {
  WireWriter w;
  w.String(json);
  return w.Take();
}

Result<StatsResponse> StatsResponse::Decode(std::span<const std::byte> raw) {
  WireReader r(raw);
  StatsResponse resp;
  PVFS_ASSIGN_OR_RETURN(resp.json, r.String());
  return resp;
}

// ---- Envelope helpers ---------------------------------------------------

Result<MsgType> PeekType(std::span<const std::byte> raw) {
  WireReader r(raw);
  PVFS_ASSIGN_OR_RETURN(std::uint32_t t, r.U32());
  if (t < 1 || t > 13) return ProtocolError("unknown message type");
  return static_cast<MsgType>(t);
}

std::vector<std::byte> EncodeResponse(const Status& status,
                                      std::span<const std::byte> body) {
  WireWriter w;
  w.U32(static_cast<std::uint32_t>(status.code()));
  w.String(status.message());
  w.Raw(body);
  return w.Take();
}

Result<DecodedResponse> DecodeResponse(std::span<const std::byte> raw) {
  WireReader r(raw);
  PVFS_ASSIGN_OR_RETURN(std::uint32_t code, r.U32());
  PVFS_ASSIGN_OR_RETURN(std::string message, r.String());
  PVFS_ASSIGN_OR_RETURN(std::vector<std::byte> body, r.Raw(r.remaining()));
  DecodedResponse out;
  out.status = Status(static_cast<ErrorCode>(code), std::move(message));
  out.body = std::move(body);
  return out;
}

}  // namespace pvfs
