#include "pvfs/posixio.hpp"

#include <algorithm>
#include <utility>

namespace pvfs {

Result<PvfsStream> PvfsStream::Open(Client* client, const std::string& name) {
  PVFS_ASSIGN_OR_RETURN(Client::Fd fd, client->Open(name));
  auto meta = client->DescribeFd(fd);
  if (!meta.ok()) return meta.status();
  return PvfsStream(client, fd, meta->size);
}

Result<PvfsStream> PvfsStream::Create(Client* client, const std::string& name,
                                      const CreateOptions& options) {
  PVFS_ASSIGN_OR_RETURN(Client::Fd fd, client->Create(name, options));
  return PvfsStream(client, fd, 0);
}

PvfsStream::PvfsStream(PvfsStream&& other) noexcept
    : client_(std::exchange(other.client_, nullptr)),
      fd_(std::exchange(other.fd_, -1)),
      position_(other.position_),
      size_(other.size_),
      partition_(other.partition_) {}

PvfsStream& PvfsStream::operator=(PvfsStream&& other) noexcept {
  if (this != &other) {
    if (client_ != nullptr) (void)client_->Close(fd_);
    client_ = std::exchange(other.client_, nullptr);
    fd_ = std::exchange(other.fd_, -1);
    position_ = other.position_;
    size_ = other.size_;
    partition_ = other.partition_;
  }
  return *this;
}

PvfsStream::~PvfsStream() {
  if (client_ != nullptr) (void)client_->Close(fd_);
}

Status PvfsStream::SetPartition(const Partition& partition) {
  if (client_ == nullptr) return FailedPrecondition("stream closed");
  if (partition.gsize == 0 || partition.stride < partition.gsize) {
    return InvalidArgument("partition requires 0 < gsize <= stride");
  }
  partition_ = partition;
  position_ = 0;
  return Status::Ok();
}

void PvfsStream::ClearPartition() {
  partition_.reset();
  position_ = 0;
}

ExtentList PvfsStream::MapPartition(ByteCount n) const {
  const Partition& p = *partition_;
  ExtentList regions;
  ByteCount pos = position_;
  while (n > 0) {
    ByteCount group = pos / p.gsize;
    ByteCount within = pos % p.gsize;
    ByteCount take = std::min<ByteCount>(p.gsize - within, n);
    regions.push_back(Extent{p.offset + group * p.stride + within, take});
    pos += take;
    n -= take;
  }
  return CoalesceAdjacent(regions);
}

ByteCount PvfsStream::PartitionVisibleSize() const {
  const Partition& p = *partition_;
  if (size_ <= p.offset) return 0;
  ByteCount span = size_ - p.offset;
  ByteCount full_groups = span / p.stride;
  ByteCount tail = std::min<ByteCount>(span % p.stride, p.gsize);
  return full_groups * p.gsize + tail;
}

Result<ByteCount> PvfsStream::Read(std::span<std::byte> out) {
  if (client_ == nullptr) return FailedPrecondition("stream closed");
  ByteCount visible = partition_ ? PartitionVisibleSize() : size_;
  if (position_ >= visible) return ByteCount{0};  // at or past EOF
  ByteCount take = std::min<ByteCount>(out.size(), visible - position_);
  if (partition_) {
    ExtentList file = MapPartition(take);
    const Extent mem[] = {{0, take}};
    PVFS_RETURN_IF_ERROR(
        client_->ReadList(fd_, mem, out.subspan(0, take), file));
  } else {
    PVFS_RETURN_IF_ERROR(
        client_->Read(fd_, position_, out.subspan(0, take)));
  }
  position_ += take;
  return take;
}

Status PvfsStream::Write(std::span<const std::byte> data) {
  if (client_ == nullptr) return FailedPrecondition("stream closed");
  if (partition_) {
    ExtentList file = MapPartition(data.size());
    const Extent mem[] = {{0, data.size()}};
    PVFS_RETURN_IF_ERROR(client_->WriteList(fd_, mem, data, file));
    position_ += data.size();
    if (!file.empty()) {
      size_ = std::max<ByteCount>(size_, file.back().end());
    }
    return Status::Ok();
  }
  PVFS_RETURN_IF_ERROR(client_->Write(fd_, position_, data));
  position_ += data.size();
  size_ = std::max<ByteCount>(size_, position_);
  return Status::Ok();
}

Result<FileOffset> PvfsStream::Seek(std::int64_t offset, Whence whence) {
  if (client_ == nullptr) return FailedPrecondition("stream closed");
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet: base = 0; break;
    case Whence::kCurrent: base = static_cast<std::int64_t>(position_); break;
    case Whence::kEnd:
      base = static_cast<std::int64_t>(
          partition_ ? PartitionVisibleSize() : size_);
      break;
  }
  std::int64_t target = base + offset;
  if (target < 0) return InvalidArgument("seek before start of file");
  position_ = static_cast<FileOffset>(target);
  return position_;
}

Status PvfsStream::Close() {
  if (client_ == nullptr) return FailedPrecondition("stream closed");
  Status status = client_->Close(fd_);
  client_ = nullptr;
  return status;
}

}  // namespace pvfs
