// PVFS client library: the public file API, including the paper's list-I/O
// interface (§3.3):
//
//   pvfs_read_list(mem_list_count, mem_offsets[], mem_lengths[],
//                  file_list_count, file_offsets[], file_lengths[])
//
// expressed here as extent lists over a caller buffer. A list access whose
// file side exceeds the trailing-data limit is transparently broken into
// several list-I/O operations of at most `max_list_regions` file regions
// each, exactly as the paper describes.
//
// The client owns a descriptor table; Open/Create return small integer
// descriptors and Close flushes the observed file size to the manager.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/extent.hpp"
#include "common/status.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "pvfs/cache/acache.hpp"
#include "pvfs/cache/bcache.hpp"
#include "pvfs/cache/readahead.hpp"
#include "pvfs/config.hpp"
#include "pvfs/distribution.hpp"
#include "pvfs/protocol.hpp"
#include "pvfs/transport.hpp"

namespace pvfs {

/// Counters a client accumulates; the unit "fs request" matches the
/// paper's accounting (one list-I/O operation of <= 64 regions is one
/// request, regardless of how many servers it fans out to).
struct ClientStats {
  std::uint64_t operations = 0;   // API-level read/write calls
  std::uint64_t fs_requests = 0;  // chunked I/O requests (paper's metric)
  std::uint64_t messages = 0;     // per-server messages actually sent
  std::uint64_t regions_sent = 0; // trailing-data entries across messages
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t manager_messages = 0;
};

/// How the client decomposes a list access into requests.
enum class ListChunking {
  /// Native: trailing data carries only file regions, so only the file
  /// side is capped at max_list_regions (FLASH: 1,920/64 = 30 requests —
  /// the paper's §4.3.1 arithmetic).
  kFileRegions,
  /// 2002/ROMIO-compatible: at most max_list_regions memory AND file
  /// entries per request, i.e. the cap applies to matched segments
  /// (FLASH: 983,040/64 = 15,360 requests — the behaviour behind the
  /// paper's measured Fig. 15).
  kMatchedSegments,
};

class Client {
 public:
  using Fd = int;

  /// Retry discipline for one per-server data exchange. PVFS list /
  /// multiple / sieving requests are idempotent (regions + payload fully
  /// describe the effect), so a request whose response was lost can be
  /// resent safely. Retryable errors are kUnavailable, kDeadlineExceeded,
  /// kProtocol, kCorruption and kBusy — the admission controller's shed
  /// signal (see IsRetryable); everything else surfaces immediately.
  struct RetryPolicy {
    /// Total attempts per exchange; 1 = fail fast (the historical
    /// behaviour, and the default).
    std::uint32_t max_attempts = 1;
    /// Backoff grows from `initial_backoff` up to the `max_backoff` cap
    /// between attempts: decorrelated jitter by default (next drawn
    /// uniformly from [initial, 3*previous], capped), plain doubling when
    /// `jitter` is off. Pure exponential backoff synchronizes concurrent
    /// clients that fail together — they all retry together, collide
    /// again, and re-dilate in lockstep; the jitter draws are hashed from
    /// (jitter_seed, site, lock owner, server, attempt) via
    /// fault::HashedUniform, so schedules stay deterministic per client
    /// and independent of thread interleaving while distinct clients
    /// decorrelate.
    std::chrono::microseconds initial_backoff{100};
    std::chrono::microseconds max_backoff{10'000};
    bool jitter = true;
    std::uint64_t jitter_seed = 1;
    /// Overall wall-clock budget for one exchange (or one replicated op),
    /// measured from its first attempt: backoff sleeps are clamped to the
    /// remaining budget, and once it is spent the op fails with
    /// kDeadlineExceeded carrying the last underlying error instead of
    /// sleeping through attempts the caller can no longer use. 0 (the
    /// default) disables the budget, preserving the attempt-cap-only
    /// behaviour.
    std::chrono::microseconds op_deadline{0};
  };

  /// Client-side recovery counters (atomic: exchanges retry concurrently
  /// under parallel_fanout). `retries` is also split by the error code
  /// that triggered each resend, so failover (unavailable/deadline) is
  /// distinguishable from backpressure (busy) and integrity (corruption)
  /// retries in exported metrics.
  struct RetryCounters {
    std::uint64_t retries = 0;        // exchanges resent
    std::uint64_t exhausted = 0;      // exchanges that ran out of attempts
    std::uint64_t backoff_us = 0;     // total time spent backing off
    std::uint64_t corruptions = 0;    // kCorruption responses observed
    std::uint64_t busy_rejections = 0; // kBusy admission sheds observed
    std::uint64_t retries_unavailable = 0;
    std::uint64_t retries_busy = 0;
    std::uint64_t retries_corruption = 0;
    std::uint64_t retries_deadline = 0;
    std::uint64_t retries_protocol = 0;
  };

  /// Replica failover counters (replicated files only; see
  /// docs/replication.md).
  struct FailoverCounters {
    /// Exchange legs redirected away from an unhealthy replica: reads
    /// served by a non-primary ordinal, plus write legs the op completed
    /// without (failed or ejection-skipped replicas on a degraded ack).
    std::uint64_t retargets = 0;
    /// Ejection events: a replica endpoint crossing the consecutive
    /// failure threshold and being benched until its probe deadline.
    std::uint64_t ejected_replicas = 0;
  };

  /// Per-replica endpoint health policy. A kUnavailable/kDeadlineExceeded
  /// on a replicated exchange immediately retargets the next replica
  /// instead of burning the retry budget against a dead endpoint; an
  /// endpoint that fails `eject_after` consecutive times is skipped
  /// entirely until `probe_backoff` elapses, after which one op probes it
  /// (flapping iods thus cost one timeout per probe window, not one per
  /// op).
  struct FailoverPolicy {
    std::uint32_t eject_after = 3;
    std::chrono::microseconds probe_backoff{5'000};
  };

  struct Options {
    std::uint32_t max_list_regions = kMaxListRegions;
    ListChunking chunking = ListChunking::kFileRegions;
    /// Issue the per-server messages of one request concurrently (one
    /// thread per involved server), as the real client library's
    /// socket-per-iod fan-out did. Requires a thread-safe transport (all
    /// transports in this repository are).
    bool parallel_fanout = false;
    RetryPolicy retry{};
    FailoverPolicy failover{};
    /// Blocking LockRange bounds: backoff doubles from
    /// `lock_initial_backoff` to the `lock_max_backoff` cap; after
    /// `lock_max_attempts` conflicted tries the call gives up with
    /// kDeadlineExceeded instead of spinning forever.
    std::uint32_t lock_max_attempts = 200;
    std::chrono::microseconds lock_initial_backoff{50};
    std::chrono::microseconds lock_max_backoff{5000};
    /// Worker threads executing ReadListAsync/WriteListAsync operations.
    /// Spawned lazily on the first async submission; a blocking-only
    /// client never starts them.
    std::uint32_t async_workers = 2;

    // ---- Client caching tier (docs/client-caching.md) -------------------
    //
    // All three knobs default OFF: with the defaults every operation is
    // bit-identical to the uncached client (fig09-17 BENCH JSON included).
    //
    /// Attribute cache: Open/Stat served from cached manager metadata
    /// within `acache.ttl`; explicit invalidation on Create/Remove/
    /// SetSize keeps this client's own operations coherent.
    cache::AcacheConfig acache{};
    /// Buffer cache: list I/O routed through block-aligned pages with
    /// bounded write-back; flush-on-close and flush-on-lock give
    /// close-to-open consistency.
    cache::BcacheConfig bcache{};
    /// List-structure-informed read-ahead (requires bcache.enabled):
    /// constant-stride region lists prefetch their predicted
    /// continuation.
    cache::ReadaheadConfig readahead{};
  };

  /// Snapshot of both cache tiers' counters (exported as client.cache.*).
  struct CacheCounters {
    cache::AttributeCache::Counters acache;
    cache::BufferCache::Counters bcache;
  };

  explicit Client(Transport* transport,
                  std::uint32_t max_list_regions = kMaxListRegions,
                  ListChunking chunking = ListChunking::kFileRegions)
      : transport_(transport),
        options_{max_list_regions, chunking, false} {}

  Client(Transport* transport, Options options)
      : transport_(transport), options_(options) {}

  /// Drains the async queue: every submitted operation completes (or is
  /// observed canceled) before the workers exit, because submitted
  /// operations reference caller buffers.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // ---- Namespace & lifecycle ------------------------------------------

  /// Create a file with the full layout aggregate: striping geometry,
  /// distribution policy, replication (docs/distributions.md).
  Result<Fd> Create(const std::string& name, const CreateOptions& options);
  /// Thin forwarding shim for the historical positional signature; a bare
  /// `Create(name, striping)` also lands here.
  Result<Fd> Create(const std::string& name, Striping striping,
                    ReplicationConfig replication) {
    return Create(name, CreateOptions{striping, replication});
  }
  Result<Fd> Open(const std::string& name);
  Status Close(Fd fd);
  Status Remove(const std::string& name);
  Result<Metadata> Stat(Fd fd);
  /// Names in the cluster namespace starting with `prefix`, sorted.
  Result<std::vector<std::string>> ListFiles(const std::string& prefix = "");

  // ---- Advisory byte-range locks (extension; see protocol.hpp) --------

  /// Non-blocking try-acquire on the manager; kResourceExhausted on
  /// conflict. A zero-length range locks the whole file.
  Status TryLockRange(Fd fd, Extent range, bool exclusive = true);
  /// Blocking acquire: retries with capped exponential backoff until
  /// granted, a non-conflict error occurs, or the attempt budget
  /// (Options::lock_max_attempts) runs out — then kDeadlineExceeded.
  Status LockRange(Fd fd, Extent range, bool exclusive = true);
  Status UnlockRange(Fd fd, Extent range);
  /// This client's lock-owner token (unique per Client instance).
  std::uint64_t lock_owner() const { return lock_owner_; }

  /// Metadata snapshot held for an open descriptor.
  Result<Metadata> DescribeFd(Fd fd) const;

  /// Drop this client's cached attributes for `name` (and, if the handle
  /// was cached, that handle's clean data pages). The next Open
  /// revalidates against the manager — the application-driven equivalent
  /// of a TTL expiry, for callers that know the file changed externally.
  void InvalidateCache(const std::string& name);

  // ---- Contiguous I/O ---------------------------------------------------

  Status Read(Fd fd, FileOffset offset, std::span<std::byte> out);
  Status Write(Fd fd, FileOffset offset, std::span<const std::byte> data);

  // ---- List I/O (the paper's contribution) ------------------------------

  /// Noncontiguous read: memory regions are offsets into `buffer`; file
  /// regions are logical file extents. Region lists are walked in order
  /// and must describe equal byte totals.
  Status ReadList(Fd fd, std::span<const Extent> mem_regions,
                  std::span<std::byte> buffer,
                  std::span<const Extent> file_regions);

  Status WriteList(Fd fd, std::span<const Extent> mem_regions,
                   std::span<const std::byte> buffer,
                   std::span<const Extent> file_regions);

  // ---- Nonblocking list I/O ---------------------------------------------

  /// Handle to one in-flight async list operation. Handles are cheap
  /// shared references: copies observe the same operation. MPI-style
  /// error reporting — submission never fails loudly; every error
  /// (including bad-descriptor/validation failures detected at submit)
  /// surfaces as the typed Status returned by Wait().
  class Operation {
   public:
    /// Default-constructed handles are empty: Test() is true and Wait()
    /// reports kFailedPrecondition.
    Operation() = default;

    bool valid() const { return state_ != nullptr; }
    /// True once the operation has finished (or was canceled) —
    /// nonblocking.
    bool Test() const;
    /// Block until completion; returns the operation's final status.
    /// kDeadlineExceeded/kUnavailable/... pass through typed from the
    /// underlying exchanges; a canceled operation reports
    /// kFailedPrecondition. Idempotent.
    Status Wait();
    /// Best-effort cancel: succeeds (returns true) only while the
    /// operation is still queued, i.e. before a worker dispatched it. A
    /// running operation is never interrupted mid-write.
    bool Cancel();

   private:
    friend class Client;
    struct State;
    explicit Operation(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  /// Nonblocking ReadList: snapshots the descriptor at submission, queues
  /// the transfer on the client's async workers (Options::async_workers)
  /// and returns immediately. The caller buffer and extent storage must
  /// outlive Wait(). Concurrent operations on distinct buffers are safe;
  /// ordering between in-flight operations is unspecified.
  Operation ReadListAsync(Fd fd, std::span<const Extent> mem_regions,
                          std::span<std::byte> buffer,
                          std::span<const Extent> file_regions);

  /// Nonblocking WriteList; the descriptor's high-water mark is merged
  /// back when the operation completes (Close after Wait still flushes
  /// the observed size).
  Operation WriteListAsync(Fd fd, std::span<const Extent> mem_regions,
                           std::span<const std::byte> buffer,
                           std::span<const Extent> file_regions);

  /// Snapshot of the I/O counters (by value: async operations mutate them
  /// concurrently under an internal mutex).
  ClientStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = {};
  }
  /// Snapshot of the retry/backoff counters.
  RetryCounters retry_counters() const {
    return {retries_.load(), retry_exhausted_.load(), backoff_us_.load(),
            corruptions_.load(), busy_rejections_.load(),
            retries_unavailable_.load(), retries_busy_.load(),
            retries_corruption_.load(), retries_deadline_.load(),
            retries_protocol_.load()};
  }
  /// Snapshot of the replica failover counters.
  FailoverCounters failover_counters() const {
    return {retargets_.load(), ejected_replicas_.load()};
  }
  /// Snapshot of the cache-tier counters (zeros when caching is off).
  CacheCounters cache_counters() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return {acache_.counters(), bcache_.counters()};
  }
  /// Mirror this client's counters (ClientStats + RetryCounters) into a
  /// metrics registry as "client.*" counters with the given base labels.
  void ExportMetrics(obs::Registry& reg, const obs::Labels& base = {}) const;
  /// The same counters as one JSON object.
  obs::JsonValue StatsJson() const;

  /// Fetch the manager's (server < 0) or an iod's stats snapshot as a
  /// JSON text via the kStats protocol message.
  Result<std::string> FetchServerStats(int server = -1);
  std::uint32_t max_list_regions() const { return options_.max_list_regions; }
  ListChunking chunking() const { return options_.chunking; }
  /// Number of I/O daemons reachable through the underlying transport.
  std::uint32_t TransportServerCount() const {
    return transport_->server_count();
  }

 private:
  struct OpenFile {
    Metadata meta;
    ByteCount high_water = 0;  // max end offset written through this fd
    std::string name;          // acache key for Stat refreshes
  };

  /// Copy of the descriptor's state under files_mu_ (async operations run
  /// against the snapshot; high-water merges back on completion).
  Result<OpenFile> SnapshotFd(Fd fd) const;
  /// Raise the descriptor's high-water mark to at least `high_water`
  /// (no-op if the fd was closed while the operation ran).
  void MergeHighWater(Fd fd, ByteCount high_water);

  /// List-I/O bodies shared by the blocking and async paths; `file` is
  /// the caller's snapshot.
  Status DoReadList(OpenFile& file, std::span<const Extent> mem_regions,
                    std::span<std::byte> buffer,
                    std::span<const Extent> file_regions);
  Status DoWriteList(OpenFile& file, std::span<const Extent> mem_regions,
                     std::span<const std::byte> buffer,
                     std::span<const Extent> file_regions);

  // ---- Buffer-cache path ------------------------------------------------
  //
  // With bcache enabled, list I/O walks matched (memory, file) segments
  // through page-aligned cache entries under cache_mu_; the page fetch /
  // write-back callbacks reuse ReadChunk/WriteChunk, so replication,
  // retries and the fs_requests/messages/bytes counters keep describing
  // the traffic that actually reaches the servers.
  Status CachedReadList(OpenFile& file, std::span<const Extent> mem_regions,
                        std::span<std::byte> buffer,
                        std::span<const Extent> file_regions);
  Status CachedWriteList(OpenFile& file, std::span<const Extent> mem_regions,
                         std::span<const std::byte> buffer,
                         std::span<const Extent> file_regions);
  /// Page-granular fetch/flush callbacks bound to `file` (which must
  /// outlive the returned callable).
  cache::BufferCache::FetchFn PageFetcher(OpenFile& file);
  cache::BufferCache::FlushFn PageFlusher(OpenFile& file);
  /// Flush `file`'s dirty pages and drop its clean ones (flush-on-lock;
  /// no-op with bcache off). Holds cache_mu_.
  Status FlushAndDropClean(OpenFile& file);

  Operation SubmitAsync(bool is_write, Fd fd,
                        std::span<const Extent> mem_regions,
                        std::span<std::byte> out,
                        std::span<const std::byte> in,
                        std::span<const Extent> file_regions);
  void EnsureAsyncWorkers();
  void AsyncWorkerLoop();

  /// One sealed round trip: CRC32C-seal the encoded request, call, verify
  /// the response frame's trailer, decode the envelope. A failed response
  /// check surfaces as kCorruption (retryable) and is counted.
  Result<DecodedResponse> SealedCall(const Endpoint& dest,
                                     std::vector<std::byte> request) const;

  Result<Metadata> CallManagerMeta(std::vector<std::byte> request);
  Status CallManagerVoid(std::vector<std::byte> request);

  /// One chunked list-I/O operation (<= max_list_regions file regions).
  /// For writes, `stream` holds the chunk's logical byte stream; for
  /// reads, it is filled from server responses.
  Status WriteChunk(OpenFile& file, std::span<const Extent> chunk,
                    std::span<const std::byte> stream);
  Status ReadChunk(OpenFile& file, std::span<const Extent> chunk,
                   std::span<std::byte> stream);

  static Status ValidateListArgs(std::span<const Extent> mem_regions,
                                 size_t buffer_size,
                                 std::span<const Extent> file_regions);

  /// The file-region list to chunk, per the configured chunking policy.
  Result<ExtentList> ChunkableRegions(std::span<const Extent> mem_regions,
                                      std::span<const Extent> file_regions)
      const;

  /// One per-server exchange of a chunk: encode, call, decode envelope,
  /// retrying per Options::retry. Thread-safe (only atomic retry counters
  /// are touched). With `failover_fast`, a kUnavailable/kDeadlineExceeded
  /// surfaces immediately — the replicated caller retargets another
  /// replica instead of retrying a dead endpoint in place; every other
  /// retryable code still retries here.
  Result<std::vector<std::byte>> ExchangeWithServer(
      const OpenFile& file, ServerId relative, const IoRequest& request,
      bool failover_fast = false) const;

  /// Replicated read: try replica ordinals in placement order, skipping
  /// ejected endpoints, failing over on kUnavailable/kDeadlineExceeded;
  /// whole-round failures retry with backoff per Options::retry.
  Result<std::vector<std::byte>> ReadReplicated(const OpenFile& file,
                                                ServerId primary,
                                                const IoRequest& request) const;

  /// Replicated write fan-out: one leg per replica ordinal (the payload
  /// addresses the primary's fragment set on every leg — replicas are
  /// whole copies under derived handles). Succeeds once any replica acks;
  /// unacked replicas count as retargets and rely on re-replication.
  Status WriteReplicated(const OpenFile& file, ServerId primary,
                         const IoRequest& request) const;

  /// Global server id of a file-relative index, per the striping base.
  ServerId GlobalOf(const OpenFile& file, ServerId relative) const {
    return (file.meta.striping.base + relative) % transport_->server_count();
  }

  static bool IsFailoverEligible(ErrorCode code) {
    return code == ErrorCode::kUnavailable ||
           code == ErrorCode::kDeadlineExceeded;
  }

  /// True if the endpoint is ejected and its probe window hasn't opened;
  /// an op that finds the window open claims the probe (resetting the
  /// deadline) so concurrent ops don't all pay the probe timeout at once.
  bool SkipReplica(ServerId global) const;
  void RecordReplicaSuccess(ServerId global) const;
  void RecordReplicaFailure(ServerId global) const;
  /// Bump the per-error-code retry counter for a resend caused by `code`.
  void CountRetryCode(ErrorCode code) const;

  /// The exchange body without the retry loop.
  Result<std::vector<std::byte>> ExchangeOnce(const OpenFile& file,
                                              ServerId relative,
                                              const IoRequest& request) const;

  static std::uint64_t NextLockOwner();

  /// Next backoff after sleeping `prev`: decorrelated jitter (uniform in
  /// [initial, 3*prev], capped) when the policy enables it, else plain
  /// doubling. `site`/`seq` address the deterministic hash draw.
  std::chrono::microseconds NextBackoff(std::chrono::microseconds prev,
                                        std::chrono::microseconds initial,
                                        std::chrono::microseconds cap,
                                        std::uint32_t site,
                                        std::uint64_t stream,
                                        std::uint64_t seq) const;

  Transport* transport_;
  Options options_;
  /// Guards next_fd_ and open_files_ (async completions merge high-water
  /// marks concurrently with Open/Close). Never acquired after stats_mu_.
  mutable std::mutex files_mu_;
  Fd next_fd_ = 3;  // leave stdin/stdout/stderr-looking values free
  std::unordered_map<Fd, OpenFile> open_files_;
  /// Guards stats_ (plain counters mutated by concurrent async workers).
  mutable std::mutex stats_mu_;
  ClientStats stats_;
  /// Async submission queue + lazily-started worker pool.
  mutable std::mutex async_mu_;
  std::condition_variable async_cv_;
  std::deque<std::shared_ptr<Operation::State>> async_queue_;
  std::vector<std::thread> async_workers_;
  bool async_stopping_ = false;
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> retry_exhausted_{0};
  mutable std::atomic<std::uint64_t> backoff_us_{0};
  mutable std::atomic<std::uint64_t> corruptions_{0};
  mutable std::atomic<std::uint64_t> busy_rejections_{0};
  mutable std::atomic<std::uint64_t> retries_unavailable_{0};
  mutable std::atomic<std::uint64_t> retries_busy_{0};
  mutable std::atomic<std::uint64_t> retries_corruption_{0};
  mutable std::atomic<std::uint64_t> retries_deadline_{0};
  mutable std::atomic<std::uint64_t> retries_protocol_{0};
  mutable std::atomic<std::uint64_t> retargets_{0};
  mutable std::atomic<std::uint64_t> ejected_replicas_{0};

  /// Per-endpoint replica health, keyed by global server id and shared by
  /// every replicated file this client touches.
  struct ReplicaHealth {
    std::uint32_t consecutive_failures = 0;
    bool ejected = false;
    std::chrono::steady_clock::time_point probe_at{};
  };
  mutable std::mutex health_mu_;
  mutable std::unordered_map<ServerId, ReplicaHealth> health_;

  /// Guards both cache tiers. Held across page fetch/flush round trips,
  /// which serializes cached I/O per client — the deliberate trade-off
  /// documented in docs/client-caching.md (concurrent async workers on
  /// uncached clients are unaffected; caching defaults off). Never
  /// acquired while holding files_mu_ or stats_mu_.
  mutable std::mutex cache_mu_;
  mutable cache::AttributeCache acache_{options_.acache};
  mutable cache::BufferCache bcache_{options_.bcache};
  std::uint64_t lock_owner_ = NextLockOwner();
};

/// Split a file region list into consecutive chunks of at most
/// `max_regions` regions (the client-side request decomposition of §3.3).
std::vector<ExtentList> ChunkRegions(std::span<const Extent> regions,
                                     std::uint32_t max_regions);

}  // namespace pvfs
