// PVFS wire protocol: the messages clients exchange with the manager and
// the I/O daemons, and their byte-level encoding.
//
// The I/O request mirrors the paper's design (§3.3): a fixed request
// structure plus an optional *trailing data* block holding up to
// kMaxListRegions <file offset, length> pairs. Regions are expressed in
// logical file coordinates together with the striping parameters; each I/O
// daemon intersects the region list with its own stripe units (PVFS sent
// striping metadata with requests for the same reason).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/extent.hpp"
#include "common/status.hpp"
#include "common/wire.hpp"
#include "pvfs/config.hpp"
#include "pvfs/distribution.hpp"

namespace pvfs {

enum class MsgType : std::uint32_t {
  kCreate = 1,   // manager: create file with striping
  kLookup = 2,   // manager: name -> metadata
  kRemove = 3,   // manager: drop metadata
  kStat = 4,     // manager: handle -> metadata
  kSetSize = 5,  // manager: extend recorded file size (max-merge)
  kIo = 6,       // iod: read/write a region list
  kRemoveData = 7,  // iod: drop local data for a handle
  kListNames = 8,   // manager: enumerate names under a prefix
  kLock = 9,        // manager: try-acquire an advisory byte-range lock
  kUnlock = 10,     // manager: release a byte-range lock
  kStats = 11,      // manager/iod: stats snapshot as JSON text
  kReplicaSums = 12,  // iod: per-chunk checksum manifest for a local handle
  kRepair = 13,       // iod: re-replication chunk fetch/apply
};

enum class IoOp : std::uint8_t { kRead = 0, kWrite = 1 };

/// File metadata kept by the manager and returned to clients at open.
///
/// `epoch` is the manager's generation counter for the entry: 1 at create,
/// bumped on every accepted SetSize. Clients with an attribute cache
/// compare epochs to decide whether locally cached pages for the handle
/// are still current (close-to-open consistency, docs/client-caching.md);
/// everything else ignores it.
struct Metadata {
  FileHandle handle = 0;
  Striping striping;
  DistributionSpec dist;
  ByteCount size = 0;
  ReplicationConfig replication;
  std::uint64_t epoch = 0;

  /// The file's layout aggregate, ready to hand to `Distribution`.
  CreateOptions layout() const { return {striping, dist, replication}; }

  friend bool operator==(const Metadata&, const Metadata&) = default;
};

// ---- Manager messages -------------------------------------------------

struct CreateRequest {
  std::string name;
  CreateOptions options;  // striping + distribution + replication

  std::vector<std::byte> Encode() const;
  static Result<CreateRequest> Decode(WireReader& r);
};

struct LookupRequest {
  std::string name;

  std::vector<std::byte> Encode() const;
  static Result<LookupRequest> Decode(WireReader& r);
};

struct RemoveRequest {
  std::string name;

  std::vector<std::byte> Encode() const;
  static Result<RemoveRequest> Decode(WireReader& r);
};

struct StatRequest {
  FileHandle handle = 0;

  std::vector<std::byte> Encode() const;
  static Result<StatRequest> Decode(WireReader& r);
};

struct SetSizeRequest {
  FileHandle handle = 0;
  ByteCount size = 0;

  std::vector<std::byte> Encode() const;
  static Result<SetSizeRequest> Decode(WireReader& r);
};

struct MetadataResponse {
  Metadata meta;

  std::vector<std::byte> Encode() const;
  static Result<MetadataResponse> Decode(std::span<const std::byte> raw);
};

struct ListNamesRequest {
  std::string prefix;  // empty = everything

  std::vector<std::byte> Encode() const;
  static Result<ListNamesRequest> Decode(WireReader& r);
};

struct NamesResponse {
  std::vector<std::string> names;  // sorted

  std::vector<std::byte> Encode() const;
  static Result<NamesResponse> Decode(std::span<const std::byte> raw);
};

/// Advisory byte-range lock (extension: the paper notes "there is no file
/// locking mechanism in PVFS", forcing barrier-serialized sieving writes;
/// this manager-side try-lock service is the natural remedy). Non-blocking:
/// a conflicting request returns kResourceExhausted and the client retries.
struct LockRequest {
  FileHandle handle = 0;
  Extent range;           // empty length = whole file
  std::uint64_t owner = 0;  // client-chosen lock owner token
  bool exclusive = true;

  std::vector<std::byte> Encode() const;
  static Result<LockRequest> Decode(WireReader& r);
};

struct UnlockRequest {
  FileHandle handle = 0;
  Extent range;
  std::uint64_t owner = 0;

  std::vector<std::byte> Encode() const;
  static Result<UnlockRequest> Decode(WireReader& r);
};

// ---- I/O daemon messages ----------------------------------------------

struct IoRequest {
  FileHandle handle = 0;
  Striping striping;
  DistributionSpec dist;          // byte→server layout (default: simple)
  ServerId server_index = 0;      // file-relative index of the target iod
  IoOp op = IoOp::kRead;
  ExtentList regions;             // logical coordinates; trailing data
  std::vector<std::byte> payload; // write only: this server's bytes, in
                                  // logical walk order

  /// The layout aggregate the iod should intersect regions with
  /// (replication is irrelevant on the data path — replicas are whole
  /// local-file copies under derived handles).
  CreateOptions layout() const { return {striping, dist}; }

  std::vector<std::byte> Encode() const;
  static Result<IoRequest> Decode(WireReader& r);

  /// Wire bytes of the request structure itself (type + handle + striping
  /// + op + region count), excluding trailing data and payload. Assumes
  /// the default simple-stripe layout (the tagged non-simple encoding adds
  /// 24 bytes; the Ethernet-frame accounting below is the paper's, which
  /// only ever shipped the simple stripe).
  static ByteCount HeaderWireBytes();
  /// Wire bytes of a request carrying `regions` trailing entries and no
  /// payload — what must fit in one Ethernet frame for the 64 limit.
  static ByteCount WireBytes(std::uint32_t regions);
};

struct IoResponse {
  ByteCount bytes = 0;            // bytes read or written on this server
  std::vector<std::byte> payload; // read only: this server's bytes

  std::vector<std::byte> Encode() const;
  static Result<IoResponse> Decode(std::span<const std::byte> raw);
};

struct RemoveDataRequest {
  FileHandle handle = 0;

  std::vector<std::byte> Encode() const;
  static Result<RemoveDataRequest> Decode(WireReader& r);
};

// ---- Re-replication (repair) messages -----------------------------------

/// Checksum state of one allocated store chunk (store.hpp granularity).
struct ChunkSumEntry {
  std::uint64_t chunk_index = 0;
  std::uint32_t crc = 0;  // CRC32C recorded for the chunk
  bool valid = false;     // stored bytes still match the recorded CRC

  friend bool operator==(const ChunkSumEntry&, const ChunkSumEntry&) = default;
};

/// Ask an iod for the per-chunk checksum manifest of one local handle.
/// Replicas share identical local layouts (a replica is a whole copy of
/// the primary's local file under a derived handle), so manifests from two
/// replicas are directly comparable chunk index by chunk index.
struct ReplicaSumsRequest {
  FileHandle handle = 0;

  std::vector<std::byte> Encode() const;
  static Result<ReplicaSumsRequest> Decode(WireReader& r);
};

struct ReplicaSumsResponse {
  ByteCount size = 0;  // local high-water mark for the handle
  std::vector<ChunkSumEntry> chunks;

  std::vector<std::byte> Encode() const;
  static Result<ReplicaSumsResponse> Decode(std::span<const std::byte> raw);
};

enum class RepairOp : std::uint8_t {
  kFetch = 0,  // read `length` authoritative bytes at `offset`
  kApply = 1,  // write `payload` at `offset` (journaled like any write)
};

/// One leg of a chunk copy during re-replication: fetch from a healthy
/// replica, apply to the restarted one. Bounded to one store chunk per
/// message so repair traffic interleaves with regular I/O.
struct RepairRequest {
  FileHandle handle = 0;
  RepairOp op = RepairOp::kFetch;
  FileOffset offset = 0;
  ByteCount length = 0;            // fetch only
  std::vector<std::byte> payload;  // apply only

  std::vector<std::byte> Encode() const;
  static Result<RepairRequest> Decode(WireReader& r);
};

struct RepairResponse {
  std::vector<std::byte> payload;  // fetch only

  std::vector<std::byte> Encode() const;
  static Result<RepairResponse> Decode(std::span<const std::byte> raw);
};

// ---- Stats (manager and iod) --------------------------------------------

/// Ask a daemon for its counters. Served by both the manager and the I/O
/// daemons; the body is empty.
struct StatsRequest {
  std::vector<std::byte> Encode() const;
  static Result<StatsRequest> Decode(WireReader& r);
};

/// The daemon's stats snapshot, as JSON text (schema owned by the daemon;
/// see docs/observability.md). JSON rather than fixed fields so servers
/// can grow counters without a protocol rev.
struct StatsResponse {
  std::string json;

  std::vector<std::byte> Encode() const;
  static Result<StatsResponse> Decode(std::span<const std::byte> raw);
};

// ---- Envelope helpers ---------------------------------------------------

/// Peek the message type of an encoded request.
Result<MsgType> PeekType(std::span<const std::byte> raw);

/// Responses travel as: u32 status code, string message, raw body.
std::vector<std::byte> EncodeResponse(const Status& status,
                                      std::span<const std::byte> body);
struct DecodedResponse {
  Status status;
  std::vector<std::byte> body;
};
Result<DecodedResponse> DecodeResponse(std::span<const std::byte> raw);

void EncodeStriping(WireWriter& w, const Striping& s);
Result<Striping> DecodeStriping(WireReader& r);

// ---- Layout wire format -------------------------------------------------
//
// Striping and DistributionSpec travel together wherever striping used to
// travel alone. The encoding is versioned *through* the legacy striping
// field so all three compatibility goals hold at once:
//
//   simple stripe   emits exactly the legacy `EncodeStriping` bytes
//                   (u32 base, u32 pcount, u64 ssize) — frames at default
//                   options are bit-identical to the pre-spec protocol
//   non-simple      emits u32 base, u32 0 (a pcount no legacy frame can
//                   carry), then u8 version, u8 kind, u32 groups,
//                   u32 group_depth, u64 block_extent, u32 pcount,
//                   u64 ssize. Old decoders read the sentinel pcount and
//                   reject cleanly ("striping with zero pcount or ssize")
//                   instead of silently misplacing bytes
//   legacy frames   decode as simple stripe (pcount != 0 path)
//
// A tagged frame claiming kSimpleStripe is rejected: the simple encoding
// is canonical, so every layout has exactly one wire form.

/// Version byte of the tagged (non-simple) layout encoding.
inline constexpr std::uint8_t kDistWireVersion = 1;

struct DecodedLayout {
  Striping striping;
  DistributionSpec dist;
};

void EncodeDistributionSpec(WireWriter& w, const Striping& s,
                            const DistributionSpec& d);
Result<DecodedLayout> DecodeDistributionSpec(WireReader& r);

void EncodeReplication(WireWriter& w, const ReplicationConfig& c);
Result<ReplicationConfig> DecodeReplication(WireReader& r);

}  // namespace pvfs
