#include "pvfs/manager.hpp"

#include <algorithm>

#include "common/request_id.hpp"
#include "obs/span.hpp"

namespace pvfs {

Result<Metadata> Manager::Create(const std::string& name,
                                 const CreateOptions& options) {
  ++stats_.creates;
  const Striping& striping = options.striping;
  if (name.empty()) return InvalidArgument("empty file name");
  if (striping.pcount == 0 || striping.pcount > server_count_) {
    return InvalidArgument("striping pcount outside [1, server_count]");
  }
  if (striping.base >= server_count_) {
    return InvalidArgument("striping base beyond server table");
  }
  if (striping.ssize == 0) return InvalidArgument("zero stripe size");
  // Reject malformed layout shapes here, at file birth — a bad spec that
  // reached the data path would silently misplace bytes.
  if (Status s = ValidateDistributionSpec(striping, options.dist); !s.ok()) {
    return s;
  }
  if (options.replication.replicas == 0 ||
      options.replication.replicas > striping.pcount) {
    return InvalidArgument("replicas outside [1, pcount]");
  }
  if (by_name_.contains(name)) return AlreadyExists("file exists: " + name);

  Metadata meta;
  meta.handle = next_handle_++;
  meta.striping = striping;
  meta.dist = options.dist;
  meta.size = 0;
  meta.replication = options.replication;
  meta.epoch = 1;
  by_name_.emplace(name, meta);
  by_handle_.emplace(meta.handle, name);
  return meta;
}

Result<Metadata> Manager::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return NotFound("no such file: " + name);
  return it->second;
}

Status Manager::Remove(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return NotFound("no such file: " + name);
  locks_.erase(it->second.handle);
  by_handle_.erase(it->second.handle);
  by_name_.erase(it);
  return Status::Ok();
}

Result<Metadata> Manager::Stat(FileHandle handle) const {
  auto it = by_handle_.find(handle);
  if (it == by_handle_.end()) return NotFound("no such handle");
  return by_name_.at(it->second);
}

Status Manager::SetSize(FileHandle handle, ByteCount size) {
  auto it = by_handle_.find(handle);
  if (it == by_handle_.end()) return NotFound("no such handle");
  Metadata& meta = by_name_.at(it->second);
  meta.size = std::max(meta.size, size);
  // Every accepted SetSize bumps the generation, even a no-op max-merge: a
  // writer that overwrote data in place without growing the file still
  // flushed a size at close, and cached readers must notice that close
  // (epoch mismatch drops their stale pages; docs/client-caching.md).
  ++meta.epoch;
  return Status::Ok();
}

std::vector<std::string> Manager::ListNames(const std::string& prefix) const {
  std::vector<std::string> names;
  for (const auto& [name, meta] : by_name_) {
    if (name.size() >= prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Extent Manager::NormalizeLockRange(Extent range) {
  if (range.length == 0) {
    return Extent{0, static_cast<ByteCount>(-1)};  // whole file
  }
  return range;
}

Status Manager::TryLock(FileHandle handle, Extent range, std::uint64_t owner,
                        bool exclusive) {
  if (!by_handle_.contains(handle)) return NotFound("no such handle");
  range = NormalizeLockRange(range);
  std::vector<RangeLock>& held = locks_[handle];
  for (const RangeLock& lock : held) {
    if (lock.owner == owner) {
      if (lock.range == range) return Status::Ok();  // idempotent re-lock
      continue;  // an owner never conflicts with itself
    }
    if (lock.range.overlaps(range) && (lock.exclusive || exclusive)) {
      return ResourceExhausted("range locked by another owner");
    }
  }
  held.push_back(RangeLock{range, owner, exclusive});
  return Status::Ok();
}

Status Manager::Unlock(FileHandle handle, Extent range, std::uint64_t owner) {
  auto it = locks_.find(handle);
  if (it == locks_.end()) return NotFound("no locks on handle");
  range = NormalizeLockRange(range);
  auto& held = it->second;
  for (size_t i = 0; i < held.size(); ++i) {
    if (held[i].owner == owner && held[i].range == range) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      if (held.empty()) locks_.erase(it);
      return Status::Ok();
    }
  }
  return NotFound("no matching lock");
}

std::size_t Manager::LockCount(FileHandle handle) const {
  auto it = locks_.find(handle);
  return it == locks_.end() ? 0 : it->second.size();
}

std::vector<std::byte> Manager::HandleSealedMessage(
    std::span<const std::byte> raw) {
  auto opened = OpenFrameWithId(raw);
  if (!opened.ok()) {
    ++stats_.corruptions_detected;
    return SealFrame(EncodeResponse(opened.status(), {}));
  }
  // Adopt the caller's request id for the scope of this request so
  // manager-side spans (and the sealed response) stitch to the client
  // call that caused them.
  obs::RequestIdScope id_scope(opened->request_id);
  PVFS_SPAN("manager.handle");
  return SealFrame(HandleMessage(opened->payload));
}

std::vector<std::byte> Manager::HandleMessage(std::span<const std::byte> raw) {
  ++stats_.requests;
  auto type = PeekType(raw);
  if (!type.ok()) return EncodeResponse(type.status(), {});

  WireReader r(raw);
  (void)r.U32();  // consume the type word PeekType validated

  auto respond_meta = [](const Result<Metadata>& meta) {
    if (!meta.ok()) return EncodeResponse(meta.status(), {});
    MetadataResponse resp{meta.value()};
    return EncodeResponse(Status::Ok(), resp.Encode());
  };

  switch (type.value()) {
    case MsgType::kCreate: {
      auto req = CreateRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      return respond_meta(Create(req->name, req->options));
    }
    case MsgType::kLookup: {
      ++stats_.lookups;
      auto req = LookupRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      return respond_meta(Lookup(req->name));
    }
    case MsgType::kRemove: {
      auto req = RemoveRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      return EncodeResponse(Remove(req->name), {});
    }
    case MsgType::kStat: {
      auto req = StatRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      return respond_meta(Stat(req->handle));
    }
    case MsgType::kSetSize: {
      auto req = SetSizeRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      return EncodeResponse(SetSize(req->handle, req->size), {});
    }
    case MsgType::kListNames: {
      auto req = ListNamesRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      NamesResponse resp{ListNames(req->prefix)};
      return EncodeResponse(Status::Ok(), resp.Encode());
    }
    case MsgType::kLock: {
      auto req = LockRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      return EncodeResponse(
          TryLock(req->handle, req->range, req->owner, req->exclusive), {});
    }
    case MsgType::kUnlock: {
      auto req = UnlockRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      return EncodeResponse(Unlock(req->handle, req->range, req->owner), {});
    }
    case MsgType::kStats: {
      StatsResponse resp{StatsJson().Dump()};
      return EncodeResponse(Status::Ok(), resp.Encode());
    }
    default:
      return EncodeResponse(
          InvalidArgument("message type not handled by manager"), {});
  }
}

obs::JsonValue Manager::StatsJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("role", obs::JsonValue("manager"));
  out.Set("requests", obs::JsonValue(stats_.requests));
  out.Set("creates", obs::JsonValue(stats_.creates));
  out.Set("lookups", obs::JsonValue(stats_.lookups));
  out.Set("corruptions_detected",
          obs::JsonValue(stats_.corruptions_detected));
  out.Set("files", obs::JsonValue(static_cast<std::uint64_t>(file_count())));
  return out;
}

void Manager::ExportMetrics(obs::Registry& reg,
                            const obs::Labels& base) const {
  reg.Counter("manager.requests", base).Set(stats_.requests);
  reg.Counter("manager.creates", base).Set(stats_.creates);
  reg.Counter("manager.lookups", base).Set(stats_.lookups);
  reg.Counter("manager.corruptions_detected", base)
      .Set(stats_.corruptions_detected);
  reg.Gauge("manager.files", base)
      .Set(static_cast<std::int64_t>(file_count()));
}

}  // namespace pvfs
