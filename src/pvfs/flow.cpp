#include "pvfs/flow.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

namespace pvfs {

namespace {

/// One segment: a contiguous slice of one run.
struct FlowSegment {
  FileOffset offset = 0;     // local store offset
  ByteCount buf_offset = 0;  // position in the run-ordered scratch buffer
  ByteCount length = 0;
};

std::vector<FlowSegment> CutSegments(std::span<const ScheduledRun> runs,
                                 ByteCount segment_bytes) {
  const ByteCount cut = std::max<ByteCount>(1, segment_bytes);
  std::vector<FlowSegment> segments;
  for (const ScheduledRun& run : runs) {
    ByteCount done = 0;
    while (done < run.length) {
      const ByteCount take = std::min<ByteCount>(cut, run.length - done);
      segments.push_back(
          {run.offset + done, run.buf_offset + done, take});
      done += take;
    }
  }
  return segments;
}

/// The shared pipeline skeleton: submit segments through `submit`, never
/// letting more than `max_inflight` ride at once, and account the window
/// metrics. Always drains; returns the first (lowest-token) error.
template <typename SubmitFn>
Status RunPipeline(AsyncStore::CompletionQueue& cq, std::size_t segments,
                   std::uint32_t max_inflight, FlowStats& stats,
                   const SubmitFn& submit) {
  const std::uint32_t window = std::max<std::uint32_t>(1, max_inflight);
  using Clock = std::chrono::steady_clock;
  AsyncStore::Token first_error_token = 0;
  Status first_error = Status::Ok();
  const auto absorb = [&](AsyncStore::Completion done) {
    if (!done.status.ok() &&
        (first_error.ok() || done.token < first_error_token)) {
      first_error_token = done.token;
      first_error = std::move(done.status);
    }
  };
  std::uint32_t inflight = 0;
  for (std::size_t i = 0; i < segments; ++i) {
    if (inflight >= window) {
      // Window full: the pipeline is storage-bound right now. The time
      // spent here is the flow's stall accounting.
      const auto t0 = Clock::now();
      absorb(cq.Wait());
      --inflight;
      stats.stall_us += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - t0)
              .count());
    }
    submit(i);
    ++inflight;
    stats.peak_inflight = std::max<std::uint64_t>(stats.peak_inflight,
                                                  inflight);
  }
  while (inflight > 0) {
    absorb(cq.Wait());
    --inflight;
  }
  return first_error;
}

}  // namespace

Status FlowRead(AsyncStore& store, FileHandle handle,
                std::span<const ScheduledRun> runs,
                std::span<std::byte> scratch, const FlowConfig& config,
                FlowStats& stats) {
  const std::vector<FlowSegment> segments =
      CutSegments(runs, config.segment_bytes);
  stats.segments += segments.size();
  AsyncStore::CompletionQueue cq;
  return RunPipeline(
      cq, segments.size(), config.max_inflight, stats, [&](std::size_t i) {
        const FlowSegment& seg = segments[i];
        store.SubmitRead(cq, i, handle, seg.offset,
                         scratch.subspan(seg.buf_offset, seg.length));
      });
}

Status FlowWrite(AsyncStore& store, FileHandle handle,
                 std::span<const ScheduledRun> runs,
                 std::span<const std::byte> scratch, const FlowConfig& config,
                 FlowStats& stats) {
  const std::vector<FlowSegment> segments =
      CutSegments(runs, config.segment_bytes);
  stats.segments += segments.size();
  AsyncStore::CompletionQueue cq;
  return RunPipeline(
      cq, segments.size(), config.max_inflight, stats, [&](std::size_t i) {
        const FlowSegment& seg = segments[i];
        std::vector<LocalStore::WritePiece> pieces;
        pieces.push_back(
            {seg.offset, scratch.subspan(seg.buf_offset, seg.length)});
        store.SubmitWrite(cq, i, handle, std::move(pieces));
      });
}

}  // namespace pvfs
