// Admission control for the real (threaded / TCP) transports: a bounded
// per-iod request queue. A request arriving while `max_queue_depth`
// requests are already queued or in service is shed with a typed,
// retryable kBusy response instead of growing the queue without bound;
// the client's existing decorrelated-jitter backoff spreads the resends
// (docs/server-scheduling.md).
//
// The controller also owns the queue's observability: a depth gauge,
// admitted/rejected counters, and wait/service latency histograms, all
// registered in an obs::Registry under "iod.admission.*" with a
// server=<id> label.
//
// Thread safety: fully thread-safe; TryAdmit/BeginService/Finish are
// called from transport worker threads.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace pvfs {

class AdmissionController {
 public:
  /// Per-request admission state, carried from arrival to completion by
  /// the transport (it is POD; the controller does not retain pointers).
  struct Slot {
    std::chrono::steady_clock::time_point admitted;
    std::chrono::steady_clock::time_point started;
  };

  /// `max_depth` == 0 means unbounded (admission always succeeds; the
  /// instruments still record). `registry` defaults to the process-wide
  /// obs::Registry::Global().
  AdmissionController(ServerId server, std::uint32_t max_depth,
                      obs::Registry* registry = nullptr);

  /// Take a queue slot at request arrival. False means the queue is full:
  /// the caller must respond with a sealed kBusy frame (SealedBusyResponse)
  /// and MUST NOT call BeginService/Finish for this request.
  bool TryAdmit(Slot& slot);

  /// The request left the queue and service is starting; records queue
  /// wait time.
  void BeginService(Slot& slot);

  /// Service finished (successfully or not); records service time and
  /// releases the queue slot.
  void Finish(const Slot& slot);

  std::uint32_t max_depth() const { return max_depth_; }
  std::int64_t depth() const { return depth_gauge_.value(); }
  std::uint64_t admitted() const { return admitted_.value(); }
  std::uint64_t rejected() const { return rejected_.value(); }

 private:
  std::uint32_t max_depth_;
  obs::Gauge& depth_gauge_;
  obs::Counter& admitted_;
  obs::Counter& rejected_;
  obs::Histogram& wait_us_;
  obs::Histogram& service_us_;
};

/// The sealed wire frame a transport sends when admission fails: a kBusy
/// response envelope with an empty body, CRC-sealed like every other
/// protocol message. Sealed under the ambient request id (0 outside a
/// client call).
std::vector<std::byte> SealedBusyResponse(ServerId server);

/// Same, sealed under an explicit `request_id` — the event-driven server
/// sheds load from the poller thread, outside any ambient id scope, and
/// must still stamp the busy reply with the id of the request it refuses
/// so multiplexed clients can correlate it.
std::vector<std::byte> SealedBusyResponse(ServerId server,
                                          std::uint64_t request_id);

}  // namespace pvfs
