// File-system-wide constants and striping configuration.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pvfs {

/// How a file's bytes are laid out across I/O daemons (paper Fig. 2):
/// stripe unit `ssize` bytes; global stripe g lives on server
/// (base + g) % pcount, packed densely in that server's local file.
struct Striping {
  ServerId base = 0;        // first I/O node used by the file
  std::uint32_t pcount = 8; // number of I/O nodes the file spans
  ByteCount ssize = 16384;  // stripe unit (paper's default, §4.1)

  friend bool operator==(const Striping&, const Striping&) = default;
};

/// Maximum contiguous file regions described in one I/O request's trailing
/// data. 64 keeps request + trailing data within a single 1500-byte
/// Ethernet frame (paper §3.3); tests assert the arithmetic.
inline constexpr std::uint32_t kMaxListRegions = 64;

/// Client-side data sieving buffer (paper §3.2: "We chose to set the data
/// sieving buffer at 32 MB for our testing purposes").
inline constexpr ByteCount kDefaultSieveBufferBytes = 32 * kMiB;

/// Client buffer-cache page (cache/bcache.hpp). 64 KiB amortizes the
/// per-request cost that dominates small noncontiguous accesses (paper
/// Fig. 9-11) while staying well under a stripe unit times pcount, so one
/// page fetch does not fan out across the whole cluster.
inline constexpr ByteCount kDefaultCachePageBytes = 64 * 1024;

/// Per-I/O-daemon service configuration (docs/server-scheduling.md).
///
/// `schedule_fragments` is the executed-path twin of the simulator's
/// `SimClusterConfig::server_coalesces_entries` knob: both default to the
/// 2002 behaviour (one store access per owned trailing-data entry, walked
/// in logical order) and both, when enabled, sort the owned fragments by
/// local offset and merge adjacent/overlapping ones into single accesses —
/// the paper's §5 "more intelligent scheduling of the data movement at the
/// server".
///
/// `max_queue_depth` bounds the daemon's admission queue on the threaded
/// and TCP transports: a request arriving while `max_queue_depth` requests
/// are already queued or in service is refused with the retryable kBusy
/// status instead of growing the queue without bound. 0 keeps the
/// historical unbounded queue.
struct ServerConfig {
  std::uint32_t max_list_regions = kMaxListRegions;
  bool schedule_fragments = false;
  std::uint32_t max_queue_depth = 0;
  /// Worker threads draining the TCP event loop's request queue
  /// (net::SocketServer::Options::worker_threads). With `flows` off,
  /// service stays serialized per daemon and workers only overlap framing
  /// with service; with `flows` on, the workers run Serve concurrently.
  std::uint32_t transport_workers = 2;

  // ---- Async I/O pipeline (docs/async-flows.md) ----
  //
  // `flows` turns on bounded-segment pipelining: each request's coalesced
  // runs stream through the daemon's AsyncStore in segments of at most
  // `flow_segment_bytes`, at most `flow_inflight` in flight per request,
  // and the TCP transport stops serializing service so in-flight requests
  // overlap each other's network and device time. Default off — fig09-17
  // and every 2002-faithful path are bit-identical with flows off.
  bool flows = false;
  ByteCount flow_segment_bytes = 256 * 1024;
  std::uint32_t flow_inflight = 4;
  /// Store-worker threads executing submitted segments (the device queue
  /// depth the pipeline can exploit).
  std::uint32_t store_workers = 2;

  // Modeled device time, charged per contiguous store access on BOTH the
  // synchronous and the flow path (pvfs/store_async.hpp): `store_seek_us`
  // positioning cost plus `store_us_per_mib` transfer cost. Defaults 0 =
  // no modeling, preserving historical timing exactly.
  std::uint64_t store_seek_us = 0;
  std::uint64_t store_us_per_mib = 0;
};

}  // namespace pvfs
