// File-system-wide constants and striping configuration.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pvfs {

/// How a file's bytes are laid out across I/O daemons (paper Fig. 2):
/// stripe unit `ssize` bytes; global stripe g lives on server
/// (base + g) % pcount, packed densely in that server's local file.
struct Striping {
  ServerId base = 0;        // first I/O node used by the file
  std::uint32_t pcount = 8; // number of I/O nodes the file spans
  ByteCount ssize = 16384;  // stripe unit (paper's default, §4.1)

  friend bool operator==(const Striping&, const Striping&) = default;
};

/// Maximum contiguous file regions described in one I/O request's trailing
/// data. 64 keeps request + trailing data within a single 1500-byte
/// Ethernet frame (paper §3.3); tests assert the arithmetic.
inline constexpr std::uint32_t kMaxListRegions = 64;

/// Client-side data sieving buffer (paper §3.2: "We chose to set the data
/// sieving buffer at 32 MB for our testing purposes").
inline constexpr ByteCount kDefaultSieveBufferBytes = 32 * kMiB;

}  // namespace pvfs
