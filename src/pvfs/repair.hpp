// Re-replication coordinator: after an iod crash-restart, walk every
// replicated file whose replica set includes the restarted daemon, compare
// per-chunk checksums against the surviving replicas, and copy the
// authoritative (checksum-valid, journal-committed) chunks back — so
// redundancy is restored, not just tolerated.
//
// Replicas are whole copies of a primary's local file under derived
// handles (pvfs/distribution.hpp ReplicaHandle), so two replicas' chunk
// manifests are directly comparable index by index. The restarted daemon
// is always treated as the suspect: any chunk whose checksum differs from
// a healthy replica's — or that is missing outright — is overwritten from
// that replica (see docs/replication.md for the consistency caveats).
//
// The coordinator speaks the ordinary sealed wire protocol through any
// Transport, so it runs identically over in-process, threaded and TCP
// clusters.
#pragma once

#include <span>
#include <vector>

#include "common/status.hpp"
#include "pvfs/protocol.hpp"
#include "pvfs/transport.hpp"

namespace pvfs {

struct RepairReport {
  std::uint64_t files_checked = 0;      // replicated files examined
  std::uint64_t chunks_examined = 0;    // source-manifest chunks compared
  std::uint64_t chunks_copied = 0;      // chunks rewritten on the suspect
  std::uint64_t chunks_unrepaired = 0;  // no healthy source held a valid copy
};

/// Every file the manager knows about (ListNames + Lookup over the wire).
Result<std::vector<Metadata>> FetchAllFileMetadata(Transport& transport);

/// Re-replicate data for the restarted daemon (a GLOBAL server id) across
/// `files`. Files with replicas=1 are skipped — there is nothing to copy
/// from. A source replica that is itself unreachable is skipped; chunks no
/// healthy source can vouch for are counted unrepaired, not failed.
Result<RepairReport> RepairRestartedIod(Transport& transport,
                                        std::span<const Metadata> files,
                                        ServerId restarted_global);

/// Convenience: fetch the file list from the manager, then repair.
Result<RepairReport> RepairRestartedIod(Transport& transport,
                                        ServerId restarted_global);

}  // namespace pvfs
