#include "pvfs/iod.hpp"

#include <cstring>

namespace pvfs {

Result<IoResponse> IoDaemon::Serve(const IoRequest& req) {
  ++stats_.requests;
  stats_.regions += req.regions.size();

  if (req.regions.size() > max_list_regions_) {
    return ResourceExhausted("trailing data exceeds region limit");
  }
  for (const Extent& e : req.regions) {
    if (e.offset + e.length < e.offset) {
      return InvalidArgument("region overflows 64-bit offset space");
    }
  }
  Distribution dist(req.striping);

  // Collect the fragments assigned to the file-relative server index this
  // request addresses, in logical order; their total is the payload size
  // (read) or expected payload size (write).
  const ServerId self = req.server_index;
  std::vector<Fragment> mine;
  ByteCount stream = 0;
  for (const Extent& e : req.regions) {
    dist.ForEachFragment(e, stream, [&](const Fragment& f) {
      if (f.server == self) mine.push_back(f);
    });
    stream += e.length;
  }
  ByteCount my_bytes = 0;
  for (const Fragment& f : mine) my_bytes += f.length;

  // Count coalesced local runs — the disk accesses a real iod would make.
  ByteCount runs = 0;
  FileOffset prev_end = static_cast<FileOffset>(-1);
  for (const Fragment& f : mine) {
    if (f.local_offset != prev_end) ++runs;
    prev_end = f.local_offset + f.length;
  }
  stats_.local_accesses += runs;

  // Transient disk error injection: fail before touching the store so the
  // stripe is never half-written by a request that reported failure.
  if (fault_ != nullptr &&
      fault_->OnDiskAccess(id_, req.op == IoOp::kWrite)) {
    ++stats_.injected_errors;
    return Unavailable(std::string("injected transient disk ") +
                       (req.op == IoOp::kWrite ? "write" : "read") +
                       " error on iod " + std::to_string(id_));
  }

  IoResponse resp;
  if (req.op == IoOp::kRead) {
    resp.payload.resize(my_bytes);
    ByteCount cursor = 0;
    for (const Fragment& f : mine) {
      store_.Read(req.handle, f.local_offset,
                  std::span{resp.payload}.subspan(cursor, f.length));
      cursor += f.length;
    }
    resp.bytes = my_bytes;
    stats_.bytes_read += my_bytes;
    return resp;
  }

  // Write: payload must hold exactly this server's bytes.
  if (req.payload.size() != my_bytes) {
    return InvalidArgument("write payload size mismatch: expected " +
                           std::to_string(my_bytes) + ", got " +
                           std::to_string(req.payload.size()));
  }
  ByteCount cursor = 0;
  for (const Fragment& f : mine) {
    store_.Write(req.handle, f.local_offset,
                 std::span{req.payload}.subspan(cursor, f.length));
    cursor += f.length;
  }
  resp.bytes = my_bytes;
  stats_.bytes_written += my_bytes;
  return resp;
}

std::vector<std::byte> IoDaemon::HandleMessage(
    std::span<const std::byte> raw) {
  auto type = PeekType(raw);
  if (!type.ok()) return EncodeResponse(type.status(), {});

  WireReader r(raw);
  (void)r.U32();

  switch (type.value()) {
    case MsgType::kIo: {
      auto req = IoRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      auto resp = Serve(req.value());
      if (!resp.ok()) return EncodeResponse(resp.status(), {});
      return EncodeResponse(Status::Ok(), resp->Encode());
    }
    case MsgType::kRemoveData: {
      auto req = RemoveDataRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      store_.Remove(req->handle);
      return EncodeResponse(Status::Ok(), {});
    }
    default:
      return EncodeResponse(
          InvalidArgument("message type not handled by iod"), {});
  }
}

}  // namespace pvfs
