#include "pvfs/iod.hpp"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/request_id.hpp"
#include "obs/span.hpp"
#include "pvfs/flow.hpp"

namespace pvfs {

namespace {

/// Raise an atomic high-water mark to `seen` if it is the new maximum.
void RaiseMax(std::atomic<std::uint64_t>& mark, std::uint64_t seen) {
  std::uint64_t prev = mark.load();
  while (seen > prev && !mark.compare_exchange_weak(prev, seen)) {
  }
}

}  // namespace

void IoDaemon::ChargeDeviceTime(std::uint64_t accesses,
                                ByteCount bytes) const {
  const std::uint64_t us = config_.store_seek_us * accesses +
                           config_.store_us_per_mib * bytes / kMiB;
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void IoDaemon::RecoverStore() {
  // Concurrent callers are safe: NeedsRecovery/Recover lock the store, and
  // a second Recover after the first finds nothing uncommitted (benign).
  if (!store_.NeedsRecovery()) return;
  LocalStore::RecoveryStats rec = store_.Recover();
  stats_.journal_replays += rec.replayed;
  stats_.journal_rollbacks += rec.rolled_back;
}

LocalStore::ScrubStats IoDaemon::Scrub() {
  RecoverStore();  // never scrub across pending intents
  LocalStore::ScrubStats scrub = store_.Scrub();
  stats_.scrub_chunks_scanned += scrub.chunks_scanned;
  stats_.scrub_corruptions += scrub.corrupt_chunks;
  stats_.scrub_repairs += scrub.repaired_chunks;
  return scrub;
}

Result<IoResponse> IoDaemon::Serve(const IoRequest& req) {
  PVFS_SPAN("iod.serve");
  // A restarted daemon recovers its store before serving anything, so the
  // first post-crash request sees replayed-or-rolled-back (consistent)
  // state, never a torn write.
  RecoverStore();
  ++stats_.requests;
  stats_.regions += req.regions.size();

  if (req.regions.size() > config_.max_list_regions) {
    return ResourceExhausted("trailing data exceeds region limit");
  }
  for (const Extent& e : req.regions) {
    if (e.offset + e.length < e.offset) {
      return InvalidArgument("region overflows 64-bit offset space");
    }
  }
  Distribution dist(req.layout());

  // Collect the fragments assigned to the file-relative server index this
  // request addresses, in logical order; their total is the payload size
  // (read) or expected payload size (write).
  const ServerId self = req.server_index;
  std::vector<Fragment> mine;
  ByteCount stream = 0;
  for (const Extent& e : req.regions) {
    dist.ForEachFragment(e, stream, [&](const Fragment& f) {
      if (f.server == self) mine.push_back(f);
    });
    stream += e.length;
  }
  ByteCount my_bytes = 0;
  for (const Fragment& f : mine) my_bytes += f.length;

  // Plan the coalesced local runs — the disk accesses a scheduling iod
  // makes. The plan is built on an offset-SORTED view of the fragments, so
  // `local_accesses` matches the paper's coalesced-disk-access model even
  // for cyclic patterns whose logical walk revisits lower local offsets
  // (counting in logical order over-counted those). With
  // `schedule_fragments` off the daemon still executes one store access
  // per fragment, 2002-style; the plan is then accounting only.
  const RunPlan plan = BuildRunPlan(mine);
  stats_.local_accesses += plan.runs.size();
  const bool scheduled = config_.schedule_fragments;

  // Transient disk error injection: fail before touching the store so the
  // stripe is never half-written by a request that reported failure.
  if (fault_ != nullptr &&
      fault_->OnDiskAccess(id_, req.op == IoOp::kWrite)) {
    ++stats_.injected_errors;
    return Unavailable(std::string("injected transient disk ") +
                       (req.op == IoOp::kWrite ? "write" : "read") +
                       " error on iod " + std::to_string(id_));
  }

  // Flow pipelining (docs/async-flows.md): execute through the run plan in
  // bounded segments on the shared store-worker pool. The scatter/gather
  // between scratch and the wire payload is the scheduled path's, so the
  // wire layout is identical either way.
  const bool flow_path = config_.flows && async_store_ != nullptr;
  const FlowConfig flow_config{config_.flow_segment_bytes,
                               config_.flow_inflight};

  IoResponse resp;
  if (req.op == IoOp::kRead) {
    // Stored-data rot injection: flip one bit at rest before serving, so
    // the read path exercises checksum detection and journal repair.
    if (fault_ != nullptr) {
      fault::RotFault rot = fault_->OnStoredRead(id_);
      if (rot.rot) (void)store_.CorruptStoredBit(rot.selector);
    }
    resp.payload.resize(my_bytes);
    if (scheduled || flow_path) {
      // One store read per merged run (flow: per bounded segment of a
      // run), then scatter run bytes back into the payload through the
      // original fragment order so the wire layout is identical to the
      // unscheduled path.
      std::vector<std::byte> scratch(plan.total_bytes);
      if (flow_path) {
        FlowStats fstats;
        Status read = FlowRead(*async_store_, req.handle, plan.runs,
                               scratch, flow_config, fstats);
        stats_.flow_segments += fstats.segments;
        RaiseMax(stats_.flow_inflight_peak, fstats.peak_inflight);
        stats_.flow_stall_us += fstats.stall_us;
        stats_.store_ops += fstats.segments;
        if (!read.ok()) {
          ++stats_.corruptions_detected;
          return read;
        }
      } else {
        ChargeDeviceTime(plan.runs.size(), plan.total_bytes);
        for (const ScheduledRun& run : plan.runs) {
          Status read = store_.Read(
              req.handle, run.offset,
              std::span{scratch}.subspan(run.buf_offset, run.length));
          if (!read.ok()) {
            ++stats_.corruptions_detected;
            return read;
          }
        }
        stats_.store_ops += plan.runs.size();
      }
      ByteCount cursor = 0;
      for (std::size_t i = 0; i < mine.size(); ++i) {
        const Fragment& f = mine[i];
        const ScheduledRun& run = plan.runs[plan.run_of[i]];
        std::memcpy(resp.payload.data() + cursor,
                    scratch.data() + run.buf_offset +
                        (f.local_offset - run.offset),
                    f.length);
        cursor += f.length;
      }
    } else {
      ChargeDeviceTime(mine.size(), my_bytes);
      ByteCount cursor = 0;
      for (const Fragment& f : mine) {
        Status read = store_.Read(
            req.handle, f.local_offset,
            std::span{resp.payload}.subspan(cursor, f.length));
        if (!read.ok()) {
          ++stats_.corruptions_detected;
          return read;
        }
        cursor += f.length;
      }
      stats_.store_ops += mine.size();
    }
    resp.bytes = my_bytes;
    stats_.bytes_read += my_bytes;
    return resp;
  }

  // Write: payload must hold exactly this server's bytes.
  if (req.payload.size() != my_bytes) {
    return InvalidArgument("write payload size mismatch: expected " +
                           std::to_string(my_bytes) + ", got " +
                           std::to_string(req.payload.size()));
  }
  std::vector<LocalStore::WritePiece> pieces;
  std::vector<std::byte> scratch;
  ByteCount intent_bytes = my_bytes;
  if (scheduled || flow_path) {
    // Gather payload bytes into per-run scratch in the original fragment
    // order (so overlapping fragments keep last-writer-wins semantics,
    // exactly as sequential per-fragment pieces would), then write one
    // journaled piece per merged run.
    scratch.resize(plan.total_bytes);
    ByteCount cursor = 0;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const Fragment& f = mine[i];
      const ScheduledRun& run = plan.runs[plan.run_of[i]];
      std::memcpy(scratch.data() + run.buf_offset +
                      (f.local_offset - run.offset),
                  req.payload.data() + cursor, f.length);
      cursor += f.length;
    }
    pieces.reserve(plan.runs.size());
    for (const ScheduledRun& run : plan.runs) {
      pieces.push_back(
          {run.offset, std::span{scratch}.subspan(run.buf_offset,
                                                  run.length)});
    }
    intent_bytes = plan.total_bytes;
  } else {
    pieces.reserve(mine.size());
    ByteCount cursor = 0;
    for (const Fragment& f : mine) {
      pieces.push_back({f.local_offset,
                        std::span{req.payload}.subspan(cursor, f.length)});
      cursor += f.length;
    }
  }
  // Torn-write injection: the daemon "crashes" partway through applying
  // this intent and refuses calls until its scheduled restart, when
  // Serve's recovery pass replays or rolls the intent back.
  if (fault_ != nullptr) {
    fault::TornWriteFault torn = fault_->OnStoredWrite(id_);
    if (torn.torn) {
      ++stats_.torn_writes;
      store_.WriteVTorn(req.handle, pieces,
                        intent_bytes * torn.keep_permille / 1000,
                        torn.torn_journal);
      return Unavailable("iod " + std::to_string(id_) +
                         " crashed mid-write (injected torn write)");
    }
  }
  if (flow_path) {
    // Pipeline the runs out of scratch in bounded segments, one journaled
    // intent per segment (docs/async-flows.md discusses the atomicity
    // granularity trade).
    FlowStats fstats;
    Status wrote = FlowWrite(*async_store_, req.handle, plan.runs, scratch,
                             flow_config, fstats);
    stats_.flow_segments += fstats.segments;
    RaiseMax(stats_.flow_inflight_peak, fstats.peak_inflight);
    stats_.flow_stall_us += fstats.stall_us;
    stats_.store_ops += fstats.segments;
    if (!wrote.ok()) return wrote;
  } else {
    // One journaled intent covers every fragment of this request.
    ChargeDeviceTime(pieces.size(), intent_bytes);
    store_.WriteV(req.handle, pieces);
    stats_.store_ops += pieces.size();
  }
  resp.bytes = my_bytes;
  stats_.bytes_written += my_bytes;
  return resp;
}

std::vector<std::byte> IoDaemon::HandleMessage(
    std::span<const std::byte> raw) {
  auto type = PeekType(raw);
  if (!type.ok()) return EncodeResponse(type.status(), {});

  WireReader r(raw);
  (void)r.U32();

  switch (type.value()) {
    case MsgType::kIo: {
      auto req = IoRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      auto resp = Serve(req.value());
      if (!resp.ok()) return EncodeResponse(resp.status(), {});
      return EncodeResponse(Status::Ok(), resp->Encode());
    }
    case MsgType::kRemoveData: {
      auto req = RemoveDataRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      RecoverStore();  // pending intents for the handle die with it
      store_.Remove(req->handle);
      return EncodeResponse(Status::Ok(), {});
    }
    case MsgType::kReplicaSums: {
      auto req = ReplicaSumsRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      RecoverStore();  // manifest must reflect replayed-or-rolled-back state
      ReplicaSumsResponse resp;
      resp.size = store_.SizeOf(req->handle);
      for (const LocalStore::ChunkSum& c : store_.ChunkSums(req->handle)) {
        resp.chunks.push_back({c.chunk_index, c.crc, c.valid});
      }
      stats_.repair_chunks_scanned += resp.chunks.size();
      return EncodeResponse(Status::Ok(), resp.Encode());
    }
    case MsgType::kRepair: {
      auto req = RepairRequest::Decode(r);
      if (!req.ok()) return EncodeResponse(req.status(), {});
      RecoverStore();
      if (req->op == RepairOp::kFetch) {
        if (req->length > LocalStore::kChunkBytes) {
          return EncodeResponse(
              InvalidArgument("repair fetch exceeds chunk size"), {});
        }
        RepairResponse resp;
        resp.payload.resize(req->length);
        Status read = store_.Read(req->handle, req->offset, resp.payload);
        if (!read.ok()) {
          ++stats_.corruptions_detected;
          return EncodeResponse(read, {});
        }
        return EncodeResponse(Status::Ok(), resp.Encode());
      }
      if (req->payload.size() > LocalStore::kChunkBytes) {
        return EncodeResponse(
            InvalidArgument("repair apply exceeds chunk size"), {});
      }
      store_.Write(req->handle, req->offset, req->payload);
      ++stats_.repair_chunks_copied;
      return EncodeResponse(Status::Ok(), {});
    }
    case MsgType::kStats: {
      StatsResponse resp{StatsJson().Dump()};
      return EncodeResponse(Status::Ok(), resp.Encode());
    }
    default:
      return EncodeResponse(
          InvalidArgument("message type not handled by iod"), {});
  }
}

std::vector<std::byte> IoDaemon::HandleSealedMessage(
    std::span<const std::byte> raw) {
  auto opened = OpenFrameWithId(raw);
  if (!opened.ok()) {
    ++stats_.corruptions_detected;
    return SealFrame(EncodeResponse(opened.status(), {}));
  }
  // Adopt the caller's request id so iod-side spans and the sealed
  // response stitch to the client call that caused them.
  obs::RequestIdScope id_scope(opened->request_id);
  PVFS_SPAN("iod.handle");
  return SealFrame(HandleMessage(opened->payload));
}

obs::JsonValue IoDaemon::StatsJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("role", obs::JsonValue("iod"));
  out.Set("server", obs::JsonValue(static_cast<std::uint64_t>(id_)));
  out.Set("requests", obs::JsonValue(stats_.requests.load()));
  out.Set("regions", obs::JsonValue(stats_.regions.load()));
  out.Set("local_accesses", obs::JsonValue(stats_.local_accesses.load()));
  out.Set("store_ops", obs::JsonValue(stats_.store_ops.load()));
  out.Set("bytes_read", obs::JsonValue(stats_.bytes_read.load()));
  out.Set("bytes_written", obs::JsonValue(stats_.bytes_written.load()));
  out.Set("injected_errors", obs::JsonValue(stats_.injected_errors.load()));
  out.Set("corruptions_detected",
          obs::JsonValue(stats_.corruptions_detected.load()));
  out.Set("journal_replays", obs::JsonValue(stats_.journal_replays.load()));
  out.Set("journal_rollbacks", obs::JsonValue(stats_.journal_rollbacks.load()));
  out.Set("torn_writes", obs::JsonValue(stats_.torn_writes.load()));
  out.Set("scrub_chunks_scanned",
          obs::JsonValue(stats_.scrub_chunks_scanned.load()));
  out.Set("scrub_corruptions", obs::JsonValue(stats_.scrub_corruptions.load()));
  out.Set("scrub_repairs", obs::JsonValue(stats_.scrub_repairs.load()));
  out.Set("repair_chunks_scanned",
          obs::JsonValue(stats_.repair_chunks_scanned.load()));
  out.Set("repair_chunks_copied",
          obs::JsonValue(stats_.repair_chunks_copied.load()));
  out.Set("flow_segments", obs::JsonValue(stats_.flow_segments.load()));
  out.Set("flow_inflight_peak",
          obs::JsonValue(stats_.flow_inflight_peak.load()));
  out.Set("flow_stall_us", obs::JsonValue(stats_.flow_stall_us.load()));
  return out;
}

void IoDaemon::ExportMetrics(obs::Registry& reg,
                             const obs::Labels& base) const {
  obs::Labels labels = base;
  labels.push_back({"server", std::to_string(id_)});
  reg.Counter("iod.requests", labels).Set(stats_.requests.load());
  reg.Counter("iod.regions", labels).Set(stats_.regions.load());
  reg.Counter("iod.local_accesses", labels).Set(stats_.local_accesses.load());
  reg.Counter("iod.store_ops", labels).Set(stats_.store_ops.load());
  reg.Counter("iod.bytes_read", labels).Set(stats_.bytes_read.load());
  reg.Counter("iod.bytes_written", labels).Set(stats_.bytes_written.load());
  reg.Counter("iod.injected_errors", labels).Set(stats_.injected_errors.load());
  reg.Counter("iod.corruptions_detected", labels)
      .Set(stats_.corruptions_detected.load());
  reg.Counter("iod.journal_replays", labels).Set(stats_.journal_replays.load());
  reg.Counter("iod.journal_rollbacks", labels)
      .Set(stats_.journal_rollbacks.load());
  reg.Counter("iod.torn_writes", labels).Set(stats_.torn_writes.load());
  reg.Counter("iod.scrub_chunks_scanned", labels)
      .Set(stats_.scrub_chunks_scanned.load());
  reg.Counter("iod.scrub_corruptions", labels)
      .Set(stats_.scrub_corruptions.load());
  reg.Counter("iod.scrub_repairs", labels).Set(stats_.scrub_repairs.load());
  reg.Counter("iod.repair.chunks_scanned", labels)
      .Set(stats_.repair_chunks_scanned.load());
  reg.Counter("iod.repair.chunks_copied", labels)
      .Set(stats_.repair_chunks_copied.load());
  reg.Counter("iod.flow.segments", labels).Set(stats_.flow_segments.load());
  reg.Gauge("iod.flow.inflight", labels)
      .Set(static_cast<std::int64_t>(stats_.flow_inflight_peak.load()));
  reg.Counter("iod.flow.stall_us", labels).Set(stats_.flow_stall_us.load());
}

}  // namespace pvfs
