#include "pvfs/store_async.hpp"

#include <algorithm>
#include <chrono>

namespace pvfs {

// ---- CompletionQueue -------------------------------------------------------

void AsyncStore::CompletionQueue::Push(Completion done) {
  // Notify while holding the lock: the moment a waiter consumes the final
  // completion the caller may destroy this queue (the lifetime contract),
  // so the condition variable must not be touched after mu_ is released.
  std::lock_guard<std::mutex> lock(mu_);
  done_.push_back(std::move(done));
  cv_.notify_all();
}

AsyncStore::Completion AsyncStore::CompletionQueue::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !done_.empty(); });
  Completion done = std::move(done_.front());
  done_.pop_front();
  --outstanding_;
  return done;
}

std::optional<AsyncStore::Completion> AsyncStore::CompletionQueue::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_.empty()) return std::nullopt;
  Completion done = std::move(done_.front());
  done_.pop_front();
  --outstanding_;
  return done;
}

std::size_t AsyncStore::CompletionQueue::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

// ---- AsyncStore ------------------------------------------------------------

AsyncStore::AsyncStore(LocalStore& store, Options options)
    : store_(store), options_(options) {
  const std::uint32_t workers = std::max<std::uint32_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncStore::~AsyncStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  submit_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void AsyncStore::ModelDeviceTime(const Options& options, ByteCount bytes) {
  const std::uint64_t us =
      options.seek_us + options.us_per_mib * bytes / kMiB;
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void AsyncStore::SubmitRead(CompletionQueue& cq, Token token,
                            FileHandle handle, FileOffset offset,
                            std::span<std::byte> out) {
  {
    std::lock_guard<std::mutex> cq_lock(cq.mu_);
    ++cq.outstanding_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    Op op;
    op.cq = &cq;
    op.token = token;
    op.handle = handle;
    op.offset = offset;
    op.out = out;
    queue_.push_back(std::move(op));
  }
  submit_cv_.notify_one();
}

void AsyncStore::SubmitWrite(CompletionQueue& cq, Token token,
                             FileHandle handle,
                             std::vector<LocalStore::WritePiece> pieces) {
  {
    std::lock_guard<std::mutex> cq_lock(cq.mu_);
    ++cq.outstanding_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    Op op;
    op.cq = &cq;
    op.token = token;
    op.handle = handle;
    op.pieces = std::move(pieces);
    op.is_write = true;
    queue_.push_back(std::move(op));
  }
  submit_cv_.notify_one();
}

void AsyncStore::WorkerLoop() {
  for (;;) {
    Op op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      submit_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      op = std::move(queue_.front());
      queue_.pop_front();
    }
    Completion done;
    done.token = op.token;
    if (op.is_write) {
      for (const LocalStore::WritePiece& p : op.pieces) {
        done.bytes += p.data.size();
      }
      // Device interval first (outside the store mutex, so intervals on
      // different workers overlap), then the journaled apply.
      ModelDeviceTime(options_, done.bytes);
      store_.WriteV(op.handle, op.pieces);
    } else {
      done.bytes = op.out.size();
      ModelDeviceTime(options_, done.bytes);
      done.status = store_.Read(op.handle, op.offset, op.out);
    }
    op.cq->Push(std::move(done));
  }
}

}  // namespace pvfs
