#include "pvfs/distribution.hpp"

#include <algorithm>
#include <cassert>

#include "pvfs/scheduler.hpp"

namespace pvfs {

const char* DistKindName(DistKind kind) {
  switch (kind) {
    case DistKind::kSimpleStripe: return "simple";
    case DistKind::kTwoDStripe: return "twod";
    case DistKind::kBlock: return "block";
    case DistKind::kGroupCyclic: return "gcyclic";
  }
  return "unknown";
}

Status ValidateDistributionSpec(const Striping& striping,
                                const DistributionSpec& spec) {
  switch (spec.kind) {
    case DistKind::kSimpleStripe:
      if (spec.groups != 1 || spec.group_depth != 1 || spec.block_extent != 0) {
        return InvalidArgument(
            "simple stripe takes no distribution parameters");
      }
      return Status();
    case DistKind::kTwoDStripe:
      if (spec.block_extent != 0) {
        return InvalidArgument("2-D stripe does not take a block extent");
      }
      if (spec.groups == 0 || spec.groups > striping.pcount) {
        return InvalidArgument("2-D stripe groups must be in [1, pcount]");
      }
      if (striping.pcount % spec.groups != 0) {
        return InvalidArgument("2-D stripe groups must divide pcount");
      }
      if (spec.group_depth == 0) {
        return InvalidArgument("2-D stripe group_depth must be >= 1");
      }
      return Status();
    case DistKind::kBlock:
      if (spec.groups != 1 || spec.group_depth != 1) {
        return InvalidArgument("block layout takes only a block extent");
      }
      if (spec.block_extent == 0) {
        return InvalidArgument(
            "block layout requires a declared per-server extent");
      }
      return Status();
    case DistKind::kGroupCyclic:
      if (spec.groups != 1 || spec.block_extent != 0) {
        return InvalidArgument("group-cyclic takes only a group_depth");
      }
      if (spec.group_depth == 0) {
        return InvalidArgument("group-cyclic group_depth must be >= 1");
      }
      return Status();
  }
  return InvalidArgument("unknown distribution kind");
}

std::vector<ServerId> Distribution::ReplicaSet(ServerId primary) const {
  std::vector<ServerId> out;
  const std::uint32_t replicas = EffectiveReplicas();
  out.reserve(replicas);
  for (std::uint32_t k = 0; k < replicas; ++k) {
    out.push_back(ReplicaOf(primary, k));
  }
  return out;
}

void Distribution::ForEachFragment(
    const Extent& logical, ByteCount stream_base,
    const std::function<void(const Fragment&)>& fn) const {
  FileOffset pos = logical.offset;
  ByteCount remaining = logical.length;
  ByteCount stream_pos = stream_base;
  while (remaining > 0) {
    ByteCount within_unit = pos % unit_;
    ByteCount take = std::min<ByteCount>(unit_ - within_unit, remaining);
    fn(Fragment{ServerOf(pos), LocalOffsetOf(pos), take, stream_pos});
    pos += take;
    stream_pos += take;
    remaining -= take;
  }
}

std::vector<Fragment> Distribution::Fragments(
    std::span<const Extent> logical) const {
  std::vector<Fragment> out;
  ByteCount stream = 0;
  for (const Extent& e : logical) {
    ForEachFragment(e, stream, [&](const Fragment& f) { out.push_back(f); });
    stream += e.length;
  }
  return out;
}

std::vector<Fragment> Distribution::ServerFragments(
    ServerId server, std::span<const Extent> logical) const {
  std::vector<Fragment> out;
  ByteCount stream = 0;
  for (const Extent& e : logical) {
    ForEachFragment(e, stream, [&](const Fragment& f) {
      if (f.server == server) out.push_back(f);
    });
    stream += e.length;
  }
  return out;
}

std::vector<Fragment> Distribution::ServerLocalRuns(
    ServerId server, std::span<const Extent> logical) const {
  // Same sorted-merge plan the iod scheduler executes
  // (pvfs::BuildRunPlan), so simulated disk-run counts agree with the
  // executed path even for cyclic patterns whose logical walk revisits
  // lower local offsets.
  std::vector<Fragment> frags = ServerFragments(server, logical);
  RunPlan plan = BuildRunPlan(frags);
  std::vector<Fragment> runs;
  runs.reserve(plan.runs.size());
  for (std::size_t i = 0; i < plan.runs.size(); ++i) {
    runs.push_back(Fragment{server, plan.runs[i].offset,
                            plan.runs[i].length, 0});
  }
  // A run's logical_pos is the stream position of its first byte: the
  // (stable-sort earliest) fragment whose local offset starts the run.
  std::vector<bool> seeded(plan.runs.size(), false);
  for (std::size_t i = 0; i < frags.size(); ++i) {
    std::uint32_t r = plan.run_of[i];
    if (!seeded[r] && frags[i].local_offset == plan.runs[r].offset) {
      seeded[r] = true;
      runs[r].logical_pos = frags[i].logical_pos;
    }
  }
  return runs;
}

std::vector<ServerId> Distribution::InvolvedServers(
    std::span<const Extent> logical) const {
  std::vector<bool> seen(striping_.pcount, false);
  std::uint32_t found = 0;
  // A range covering one full placement cycle touches every server; avoid
  // walking huge extents fragment by fragment. The cycle is pcount units
  // for simple/block layouts and pcount * group_depth for the grouped
  // layouts (a pcount-unit window there can sit inside one or two groups).
  const std::uint64_t cycle_units = CycleUnits();
  for (const Extent& e : logical) {
    if (e.empty()) continue;
    std::uint64_t units =
        (e.offset + e.length - 1) / unit_ - e.offset / unit_ + 1;
    if (units >= cycle_units) {
      for (std::uint32_t s = 0; s < striping_.pcount; ++s) seen[s] = true;
      found = striping_.pcount;
      break;
    }
    FileOffset pos = e.offset;
    ByteCount remaining = e.length;
    while (remaining > 0) {
      ServerId s = ServerOf(pos);
      if (!seen[s]) {
        seen[s] = true;
        ++found;
      }
      ByteCount within = pos % unit_;
      ByteCount take = std::min<ByteCount>(unit_ - within, remaining);
      pos += take;
      remaining -= take;
    }
    if (found == striping_.pcount) break;
  }
  std::vector<ServerId> out;
  for (std::uint32_t s = 0; s < striping_.pcount; ++s) {
    if (seen[s]) out.push_back(s);
  }
  return out;
}

ByteCount Distribution::BytesOnServer(ServerId server,
                                      std::span<const Extent> logical) const {
  ByteCount total = 0;
  for (const Extent& e : logical) {
    ForEachFragment(e, 0, [&](const Fragment& f) {
      if (f.server == server) total += f.length;
    });
  }
  return total;
}

}  // namespace pvfs
