// Flow: bounded-segment pipelining of one request's store traffic — the
// PVFS2 flows concept (SNIPPETS.md Snippet 1, `concepts.tex`): "a
// datapath is divided into segments that are individually moved in a
// pipelined fashion so that network and storage stay concurrently busy".
//
// A flow takes the coalesced run plan of one list-I/O request (see
// src/pvfs/scheduler) and cuts the runs into segments of at most
// `segment_bytes`, keeping at most `max_inflight` segments submitted to
// the daemon's AsyncStore at any moment. For writes, the request payload
// has already been staged run-ordered in scratch; segments stream from
// scratch into journaled store intents. For reads, segments stream store
// bytes into scratch, which the daemon then scatters into the wire
// payload. Because every in-flight request runs its own flow against a
// shared store-worker pool (and the epoll transport overlaps request
// receive/response transmit with service when ServerConfig::flows is
// on), network and device intervals of different segments — and of
// different requests — proceed concurrently instead of strictly in
// series.
//
// Error handling: a flow always drains every submitted segment before
// returning (buffers are borrowed from the caller's stack), then reports
// the first segment error in run order.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.hpp"
#include "common/types.hpp"
#include "pvfs/scheduler.hpp"
#include "pvfs/store_async.hpp"

namespace pvfs {

/// Per-flow tuning (ServerConfig carries the daemon-wide defaults).
struct FlowConfig {
  /// Largest contiguous byte range moved per segment.
  ByteCount segment_bytes = 256 * 1024;
  /// Most segments submitted-but-incomplete at once (the pipeline window).
  std::uint32_t max_inflight = 4;
};

/// What one flow did, accumulated into iod stats / iod.flow.* metrics.
struct FlowStats {
  std::uint64_t segments = 0;       // segments the runs were cut into
  std::uint64_t peak_inflight = 0;  // widest the window actually got
  std::uint64_t stall_us = 0;       // time blocked on a full window
};

/// Pipeline store reads of `runs` into `scratch` (run-ordered, at least
/// plan.total_bytes long). Returns the first segment read error, if any.
Status FlowRead(AsyncStore& store, FileHandle handle,
                std::span<const ScheduledRun> runs,
                std::span<std::byte> scratch, const FlowConfig& config,
                FlowStats& stats);

/// Pipeline journaled store writes of `runs` out of run-ordered `scratch`.
/// Each segment is one write intent; a crash mid-flow leaves a prefix of
/// segments durable, each internally replay-or-rollback consistent
/// (coarser single-intent atomicity is the synchronous path's; see
/// docs/async-flows.md).
Status FlowWrite(AsyncStore& store, FileHandle handle,
                 std::span<const ScheduledRun> runs,
                 std::span<const std::byte> scratch, const FlowConfig& config,
                 FlowStats& stats);

}  // namespace pvfs
