// POSIX-style stream adapter over the PVFS client (paper §2: PVFS "allows
// existing binaries to operate on PVFS files" through a Unix-like
// interface). Maintains a file pointer with read/write/seek semantics on
// top of the positional Client API.
//
// Also implements PVFS's *partition* interface (Ligon & Ross, the paper's
// reference [6]): a strided view (offset, gsize, stride) set once per open
// file, after which plain read()/write() see only the partition's bytes —
// the mechanism applications used for cyclic distributions before list
// I/O existed. Partitioned transfers go through list I/O underneath.
#pragma once

#include <optional>
#include <string>

#include "pvfs/client.hpp"

namespace pvfs {

/// Strided file partition: visible bytes are groups of `gsize` every
/// `stride` bytes, starting at `offset` (stride >= gsize > 0).
struct Partition {
  FileOffset offset = 0;
  ByteCount gsize = 0;
  ByteCount stride = 0;

  friend bool operator==(const Partition&, const Partition&) = default;
};

class PvfsStream {
 public:
  enum class Whence { kSet, kCurrent, kEnd };

  /// Open an existing file for streaming access.
  static Result<PvfsStream> Open(Client* client, const std::string& name);
  /// Create (and open) a new file. A bare `Striping` converts implicitly
  /// (simple stripe, no replication).
  static Result<PvfsStream> Create(Client* client, const std::string& name,
                                   const CreateOptions& options);

  PvfsStream(PvfsStream&& other) noexcept;
  PvfsStream& operator=(PvfsStream&& other) noexcept;
  PvfsStream(const PvfsStream&) = delete;
  PvfsStream& operator=(const PvfsStream&) = delete;
  ~PvfsStream();

  /// Read up to out.size() bytes at the current position; returns bytes
  /// read (short only at end of file) and advances the pointer.
  Result<ByteCount> Read(std::span<std::byte> out);

  /// Write all bytes at the current position; advances the pointer.
  Status Write(std::span<const std::byte> data);

  /// lseek. kEnd is relative to the manager-recorded size combined with
  /// any bytes this stream has written.
  Result<FileOffset> Seek(std::int64_t offset, Whence whence);

  FileOffset Tell() const { return position_; }

  /// Sets a strided partition; the file pointer resets to partition byte
  /// zero and all subsequent reads/writes/seeks operate in partition
  /// coordinates. EOF is the last partition byte mapped below the
  /// best-known file size.
  Status SetPartition(const Partition& partition);
  /// Back to the plain byte view (pointer resets to zero).
  void ClearPartition();
  std::optional<Partition> partition() const { return partition_; }

  /// Flushes size metadata; the stream is unusable afterwards.
  Status Close();

 private:
  PvfsStream(Client* client, Client::Fd fd, ByteCount size)
      : client_(client), fd_(fd), size_(size) {}

  /// File regions for partition-view bytes [position_, position_ + n).
  ExtentList MapPartition(ByteCount n) const;
  /// Bytes visible through the partition given the best-known file size.
  ByteCount PartitionVisibleSize() const;

  Client* client_ = nullptr;
  Client::Fd fd_ = -1;
  FileOffset position_ = 0;
  ByteCount size_ = 0;  // best-known logical size
  std::optional<Partition> partition_;
};

}  // namespace pvfs
