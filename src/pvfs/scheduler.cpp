#include "pvfs/scheduler.hpp"

#include <algorithm>
#include <numeric>

namespace pvfs {

RunPlan BuildRunPlan(std::span<const Fragment> fragments) {
  RunPlan plan;
  plan.run_of.assign(fragments.size(), 0);
  if (fragments.empty()) return plan;

  std::vector<std::uint32_t> order(fragments.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return fragments[a].local_offset <
                            fragments[b].local_offset;
                   });

  FileOffset run_end = 0;
  for (std::uint32_t idx : order) {
    const Fragment& f = fragments[idx];
    if (plan.runs.empty() || f.local_offset > run_end) {
      plan.runs.push_back({f.local_offset, f.length, 0});
      run_end = f.local_offset + f.length;
    } else {
      // Touching or overlapping: extend the current run to cover it.
      ScheduledRun& run = plan.runs.back();
      run_end = std::max(run_end, f.local_offset + f.length);
      run.length = run_end - run.offset;
    }
    plan.run_of[idx] = static_cast<std::uint32_t>(plan.runs.size() - 1);
  }
  plan.total_bytes = 0;
  for (ScheduledRun& run : plan.runs) {
    run.buf_offset = plan.total_bytes;
    plan.total_bytes += run.length;
  }
  return plan;
}

}  // namespace pvfs
