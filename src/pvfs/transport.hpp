// Transport: how encoded request bytes reach a daemon and its response
// comes back. The functional system offers two implementations:
//
//   InProcTransport  — direct synchronous dispatch into daemon objects
//                      (single-address-space "cluster"); a per-endpoint
//                      mutex serializes concurrent clients exactly like a
//                      daemon's event loop would.
//   (runtime/)       — a queue-based threaded transport living in
//                      src/runtime, giving real cross-thread concurrency.
//
// The simulator does not use Transport: it consumes planner output and
// charges modeled time instead (src/simcluster).
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"

namespace pvfs {

/// Address of a daemon: the manager or I/O server `server`.
struct Endpoint {
  bool is_manager = false;
  ServerId server = 0;

  static Endpoint ManagerNode() { return {true, 0}; }
  static Endpoint Iod(ServerId s) { return {false, s}; }

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Synchronous RPC: deliver `request` to `dest`, return its encoded
  /// response envelope. Transport-level failures (unknown endpoint) are
  /// returned as error Results; daemon-level errors travel inside the
  /// envelope.
  virtual Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) = 0;

  /// Number of I/O daemons reachable through this transport.
  virtual std::uint32_t server_count() const = 0;
};

/// Direct-dispatch transport over daemon objects owned elsewhere.
class InProcTransport final : public Transport {
 public:
  InProcTransport(Manager* manager, std::vector<IoDaemon*> iods)
      : manager_(manager),
        iods_(std::move(iods)),
        locks_(std::make_unique<std::mutex[]>(iods_.size() + 1)) {}

  Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) override {
    if (dest.is_manager) {
      std::lock_guard lock(locks_[0]);
      return manager_->HandleSealedMessage(request);
    }
    if (dest.server >= iods_.size()) {
      return NotFound("no such I/O server");
    }
    std::lock_guard lock(locks_[dest.server + 1]);
    return iods_[dest.server]->HandleSealedMessage(request);
  }

  std::uint32_t server_count() const override {
    return static_cast<std::uint32_t>(iods_.size());
  }

 private:
  Manager* manager_;
  std::vector<IoDaemon*> iods_;
  std::unique_ptr<std::mutex[]> locks_;
};

}  // namespace pvfs
