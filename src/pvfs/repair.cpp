#include "pvfs/repair.hpp"

#include <map>
#include <unordered_map>

#include "pvfs/distribution.hpp"
#include "pvfs/store.hpp"

namespace pvfs {

namespace {

/// One sealed round trip, mirroring the client's SealedCall: seal the
/// request frame, verify the response trailer, decode the envelope and
/// surface its status.
Result<std::vector<std::byte>> SealedExchange(Transport& transport,
                                              const Endpoint& dest,
                                              std::vector<std::byte> request) {
  PVFS_ASSIGN_OR_RETURN(std::vector<std::byte> raw,
                        transport.Call(dest, SealFrame(std::move(request))));
  PVFS_ASSIGN_OR_RETURN(std::span<const std::byte> payload, OpenFrame(raw));
  PVFS_ASSIGN_OR_RETURN(DecodedResponse resp, DecodeResponse(payload));
  if (!resp.status.ok()) return resp.status;
  return std::move(resp.body);
}

Result<ReplicaSumsResponse> FetchSums(Transport& transport, ServerId global,
                                      FileHandle handle) {
  PVFS_ASSIGN_OR_RETURN(
      std::vector<std::byte> body,
      SealedExchange(transport, Endpoint::Iod(global),
                     ReplicaSumsRequest{handle}.Encode()));
  return ReplicaSumsResponse::Decode(body);
}

/// Copy one chunk: fetch from the healthy source, apply to the suspect.
Status CopyChunk(Transport& transport, ServerId src_global,
                 FileHandle src_handle, ServerId dst_global,
                 FileHandle dst_handle, std::uint64_t chunk_index) {
  const FileOffset offset = chunk_index * LocalStore::kChunkBytes;
  RepairRequest fetch;
  fetch.handle = src_handle;
  fetch.op = RepairOp::kFetch;
  fetch.offset = offset;
  fetch.length = LocalStore::kChunkBytes;
  PVFS_ASSIGN_OR_RETURN(
      std::vector<std::byte> body,
      SealedExchange(transport, Endpoint::Iod(src_global), fetch.Encode()));
  PVFS_ASSIGN_OR_RETURN(RepairResponse fetched, RepairResponse::Decode(body));

  RepairRequest apply;
  apply.handle = dst_handle;
  apply.op = RepairOp::kApply;
  apply.offset = offset;
  apply.payload = std::move(fetched.payload);
  return SealedExchange(transport, Endpoint::Iod(dst_global), apply.Encode())
      .status();
}

/// Restore replica ordinal `ordinal` of `meta` on the restarted daemon by
/// comparing its manifest against the other replicas of the same primary.
Status RepairOneReplica(Transport& transport, const Metadata& meta,
                        ServerId suspect_rel, std::uint32_t ordinal,
                        ServerId suspect_global, RepairReport& report) {
  const Distribution dist(meta.layout());
  const std::uint32_t replicas = dist.EffectiveReplicas();
  const ServerId primary = dist.PrimaryFor(suspect_rel, ordinal);
  const FileHandle suspect_handle = ReplicaHandle(meta.handle, ordinal);

  PVFS_ASSIGN_OR_RETURN(ReplicaSumsResponse suspect,
                        FetchSums(transport, suspect_global, suspect_handle));
  std::unordered_map<std::uint64_t, ChunkSumEntry> have;
  have.reserve(suspect.chunks.size());
  for (const ChunkSumEntry& c : suspect.chunks) have.emplace(c.chunk_index, c);

  // Chunks still needing an authoritative copy, discovered while walking
  // the sources: chunk -> crc the first healthy source vouches for.
  // Sources are consulted in ordinal order; later sources only resolve
  // chunks earlier ones could not (their own copy was corrupt or they were
  // down entirely).
  std::map<std::uint64_t, bool> pending;  // chunk -> repaired
  bool any_source = false;
  for (std::uint32_t j = 0; j < replicas; ++j) {
    if (j == ordinal) continue;
    const ServerId src_rel = dist.ReplicaOf(primary, j);
    const ServerId src_global =
        (meta.striping.base + src_rel) % transport.server_count();
    const FileHandle src_handle = ReplicaHandle(meta.handle, j);
    auto sums = FetchSums(transport, src_global, src_handle);
    if (!sums.ok()) continue;  // source down: try the next replica
    any_source = true;
    for (const ChunkSumEntry& src : sums->chunks) {
      if (!src.valid) continue;  // this source cannot vouch for the chunk
      auto done = pending.find(src.chunk_index);
      if (done != pending.end() && done->second) continue;
      if (done == pending.end()) {
        ++report.chunks_examined;
        auto mine = have.find(src.chunk_index);
        if (mine != have.end() && mine->second.valid &&
            mine->second.crc == src.crc) {
          pending[src.chunk_index] = true;  // intact copy, nothing to do
          continue;
        }
        pending[src.chunk_index] = false;
      }
      Status copied = CopyChunk(transport, src_global, src_handle,
                                suspect_global, suspect_handle,
                                src.chunk_index);
      if (copied.ok()) {
        pending[src.chunk_index] = true;
        ++report.chunks_copied;
      }
    }
  }
  for (const auto& [chunk, repaired] : pending) {
    if (!repaired) ++report.chunks_unrepaired;
  }
  if (!any_source) {
    return Unavailable("no healthy replica reachable for handle " +
                       std::to_string(meta.handle) + " ordinal " +
                       std::to_string(ordinal));
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<Metadata>> FetchAllFileMetadata(Transport& transport) {
  PVFS_ASSIGN_OR_RETURN(
      std::vector<std::byte> body,
      SealedExchange(transport, Endpoint::ManagerNode(),
                     ListNamesRequest{""}.Encode()));
  PVFS_ASSIGN_OR_RETURN(NamesResponse names, NamesResponse::Decode(body));
  std::vector<Metadata> out;
  out.reserve(names.names.size());
  for (const std::string& name : names.names) {
    PVFS_ASSIGN_OR_RETURN(
        std::vector<std::byte> meta_body,
        SealedExchange(transport, Endpoint::ManagerNode(),
                       LookupRequest{name}.Encode()));
    PVFS_ASSIGN_OR_RETURN(MetadataResponse meta,
                          MetadataResponse::Decode(meta_body));
    out.push_back(meta.meta);
  }
  return out;
}

Result<RepairReport> RepairRestartedIod(Transport& transport,
                                        std::span<const Metadata> files,
                                        ServerId restarted_global) {
  RepairReport report;
  Status first_error = Status::Ok();
  for (const Metadata& meta : files) {
    const Distribution dist(meta.layout());
    const std::uint32_t replicas = dist.EffectiveReplicas();
    if (replicas <= 1) continue;  // nothing to copy from
    bool touched = false;
    for (ServerId rel = 0; rel < meta.striping.pcount; ++rel) {
      if ((meta.striping.base + rel) % transport.server_count() !=
          restarted_global) {
        continue;
      }
      touched = true;
      // The restarted daemon holds one replica per ordinal (of pcount
      // distinct primaries); restore each from its surviving peers.
      for (std::uint32_t k = 0; k < replicas; ++k) {
        Status repaired = RepairOneReplica(transport, meta, rel, k,
                                           restarted_global, report);
        if (!repaired.ok() && first_error.ok()) first_error = repaired;
      }
    }
    if (touched) ++report.files_checked;
  }
  if (!first_error.ok()) return first_error;
  return report;
}

Result<RepairReport> RepairRestartedIod(Transport& transport,
                                        ServerId restarted_global) {
  PVFS_ASSIGN_OR_RETURN(std::vector<Metadata> files,
                        FetchAllFileMetadata(transport));
  return RepairRestartedIod(transport, files, restarted_global);
}

}  // namespace pvfs
