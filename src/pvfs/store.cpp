#include "pvfs/store.hpp"

#include <algorithm>
#include <cstring>

#include "common/wire.hpp"

namespace pvfs {

// ---- Journal records -------------------------------------------------------

std::uint32_t LocalStore::RecordCrc(const JournalRecord& rec) {
  WireWriter w;
  w.U64(rec.seq);
  w.U64(rec.handle);
  w.U32(static_cast<std::uint32_t>(rec.pieces.size()));
  for (const auto& [offset, length] : rec.pieces) {
    w.U64(offset);
    w.U64(length);
  }
  std::uint32_t crc = Crc32c(w.data());
  return Crc32c(rec.data, crc);
}

bool LocalStore::RecordIntact(const JournalRecord& rec) {
  ByteCount total = 0;
  for (const auto& [offset, length] : rec.pieces) total += length;
  if (total != rec.data.size()) return false;  // torn append
  return RecordCrc(rec) == rec.crc;
}

LocalStore::JournalRecord LocalStore::MakeRecord(
    FileHandle handle, std::span<const WritePiece> pieces) {
  JournalRecord rec;
  rec.seq = next_seq_++;
  rec.handle = handle;
  rec.pieces.reserve(pieces.size());
  ByteCount total = 0;
  for (const WritePiece& p : pieces) total += p.data.size();
  rec.data.reserve(total);
  for (const WritePiece& p : pieces) {
    rec.pieces.emplace_back(p.offset, p.data.size());
    rec.data.insert(rec.data.end(), p.data.begin(), p.data.end());
  }
  rec.crc = RecordCrc(rec);
  return rec;
}

// ---- Chunk-level plumbing --------------------------------------------------

void LocalStore::ApplyBytes(FileHandle handle, FileOffset offset,
                            std::span<const std::byte> data,
                            std::uint64_t seq) {
  if (data.empty()) return;
  SparseFile& file = files_[handle];
  size_t done = 0;
  while (done < data.size()) {
    FileOffset pos = offset + done;
    std::uint64_t index = pos / kChunkBytes;
    ByteCount within = pos % kChunkBytes;
    size_t take = static_cast<size_t>(
        std::min<ByteCount>(kChunkBytes - within, data.size() - done));
    auto [cit, inserted] = file.chunks.try_emplace(index);
    Chunk& chunk = cit->second;
    if (inserted) {
      chunk.data.assign(kChunkBytes, std::byte{0});
      chunk.first_write_seq = seq;
      allocated_ += kChunkBytes;
    }
    std::memcpy(chunk.data.data() + within, data.data() + done, take);
    chunk.crc = Crc32c(chunk.data);
    done += take;
  }
  file.size = std::max<ByteCount>(file.size, offset + data.size());
}

void LocalStore::ApplyRecord(const JournalRecord& rec) {
  ByteCount cursor = 0;
  for (const auto& [offset, length] : rec.pieces) {
    ApplyBytes(rec.handle, offset,
               std::span{rec.data}.subspan(cursor, length), rec.seq);
    cursor += length;
  }
}

void LocalStore::TrimJournal() {
  while (journal_data_bytes_ > kJournalRetainBytes && journal_.size() > 1 &&
         journal_.front().committed) {
    journal_data_bytes_ -= journal_.front().data.size();
    retained_min_seq_ = journal_.front().seq + 1;
    journal_.pop_front();
  }
}

// ---- Public write paths ----------------------------------------------------

void LocalStore::Write(FileHandle handle, FileOffset offset,
                       std::span<const std::byte> data) {
  WritePiece piece{offset, data};
  WriteV(handle, std::span{&piece, 1});
}

void LocalStore::WriteV(FileHandle handle,
                        std::span<const WritePiece> pieces) {
  std::lock_guard<std::mutex> lock(mu_);
  JournalRecord& rec = journal_.emplace_back(MakeRecord(handle, pieces));
  journal_data_bytes_ += rec.data.size();
  ApplyRecord(rec);
  rec.committed = true;  // commit mark written only after the data landed
  TrimJournal();
}

void LocalStore::WriteVTorn(FileHandle handle,
                            std::span<const WritePiece> pieces,
                            ByteCount keep_bytes, bool torn_journal) {
  std::lock_guard<std::mutex> lock(mu_);
  JournalRecord rec = MakeRecord(handle, pieces);
  if (rec.data.empty()) return;  // nothing to tear
  if (torn_journal) {
    // The crash hit the journal append itself: keep a truncated record
    // whose CRC cannot verify. No chunk was touched.
    rec.data.resize(rec.data.size() - rec.data.size() / 2 - 1);
    journal_data_bytes_ += rec.data.size();
    journal_.push_back(std::move(rec));
    return;
  }
  // The record is durable, but the crash interrupted the chunk writes:
  // only the first keep_bytes of the intent reached storage, and the
  // commit mark was never set.
  journal_data_bytes_ += rec.data.size();
  ByteCount applied = 0;
  ByteCount cursor = 0;
  for (const auto& [offset, length] : rec.pieces) {
    if (applied >= keep_bytes) break;
    ByteCount take = std::min<ByteCount>(length, keep_bytes - applied);
    ApplyBytes(handle, offset, std::span{rec.data}.subspan(cursor, take),
               rec.seq);
    applied += take;
    cursor += length;
  }
  journal_.push_back(std::move(rec));
}

// ---- Recovery and scrub ----------------------------------------------------

bool LocalStore::NeedsRecovery() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const JournalRecord& rec : journal_) {
    if (!rec.committed) return true;
  }
  return false;
}

LocalStore::RecoveryStats LocalStore::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  RecoveryStats stats;
  for (JournalRecord& rec : journal_) {
    if (rec.committed) continue;
    if (RecordIntact(rec)) {
      // The intent survived the crash in full: redo it. Re-applying bytes
      // that already landed is idempotent.
      ApplyRecord(rec);
      rec.committed = true;
      ++stats.replayed;
    }
  }
  // Torn records never touched a chunk, so dropping them rolls the file
  // back to its consistent pre-write state.
  std::erase_if(journal_, [&](const JournalRecord& rec) {
    if (rec.committed) return false;
    journal_data_bytes_ -= rec.data.size();
    ++stats.rolled_back;
    return true;
  });
  integrity_.journal_replays += stats.replayed;
  integrity_.journal_rollbacks += stats.rolled_back;
  TrimJournal();
  return stats;
}

bool LocalStore::RepairChunk(FileHandle handle, std::uint64_t chunk_index) {
  auto fit = files_.find(handle);
  if (fit == files_.end()) return false;
  auto cit = fit->second.chunks.find(chunk_index);
  if (cit == fit->second.chunks.end()) return false;
  Chunk& chunk = cit->second;
  // Reconstructible only if every write since the chunk was allocated is
  // still in the retained journal window.
  if (chunk.first_write_seq < retained_min_seq_) return false;

  const FileOffset chunk_begin = chunk_index * kChunkBytes;
  const FileOffset chunk_end = chunk_begin + kChunkBytes;
  std::fill(chunk.data.begin(), chunk.data.end(), std::byte{0});
  for (const JournalRecord& rec : journal_) {
    if (rec.handle != handle || !rec.committed) continue;
    ByteCount cursor = 0;
    for (const auto& [offset, length] : rec.pieces) {
      FileOffset begin = std::max<FileOffset>(offset, chunk_begin);
      FileOffset end = std::min<FileOffset>(offset + length, chunk_end);
      if (begin < end) {
        std::memcpy(chunk.data.data() + (begin - chunk_begin),
                    rec.data.data() + cursor + (begin - offset),
                    static_cast<size_t>(end - begin));
      }
      cursor += length;
    }
  }
  chunk.crc = Crc32c(chunk.data);
  return true;
}

LocalStore::ScrubStats LocalStore::Scrub() {
  std::lock_guard<std::mutex> lock(mu_);
  ScrubStats stats;
  for (auto& [handle, file] : files_) {
    for (auto& [index, chunk] : file.chunks) {
      ++stats.chunks_scanned;
      if (Crc32c(chunk.data) == chunk.crc) continue;
      ++stats.corrupt_chunks;
      if (RepairChunk(handle, index)) ++stats.repaired_chunks;
    }
  }
  integrity_.scrub_chunks_scanned += stats.chunks_scanned;
  integrity_.scrub_corruptions += stats.corrupt_chunks;
  integrity_.scrub_repairs += stats.repaired_chunks;
  return stats;
}

bool LocalStore::CorruptStoredBit(std::uint64_t selector) {
  std::lock_guard<std::mutex> lock(mu_);
  // Deterministic victim selection: walk files in sorted handle order so
  // equal selectors over equal store states rot the same bit regardless of
  // unordered_map iteration order.
  std::vector<FileHandle> handles;
  handles.reserve(files_.size());
  std::uint64_t chunk_total = 0;
  for (const auto& [handle, file] : files_) {
    if (!file.chunks.empty()) handles.push_back(handle);
    chunk_total += file.chunks.size();
  }
  if (chunk_total == 0) return false;
  std::sort(handles.begin(), handles.end());

  std::uint64_t target = selector % chunk_total;
  for (FileHandle handle : handles) {
    SparseFile& file = files_[handle];
    if (target >= file.chunks.size()) {
      target -= file.chunks.size();
      continue;
    }
    auto cit = file.chunks.begin();
    std::advance(cit, static_cast<std::ptrdiff_t>(target));
    Chunk& chunk = cit->second;
    std::uint64_t bit = (selector / chunk_total) % (kChunkBytes * 8);
    chunk.data[bit / 8] ^= std::byte{static_cast<std::uint8_t>(1u << (bit % 8))};
    return true;  // checksum left stale on purpose: that is the corruption
  }
  return false;
}

// ---- Reads and bookkeeping -------------------------------------------------

Status LocalStore::Read(FileHandle handle, FileOffset offset,
                        std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = files_.find(handle);
  if (fit == files_.end()) {
    std::memset(out.data(), 0, out.size());
    return Status::Ok();
  }
  SparseFile& file = fit->second;
  size_t done = 0;
  while (done < out.size()) {
    FileOffset pos = offset + done;
    std::uint64_t index = pos / kChunkBytes;
    ByteCount within = pos % kChunkBytes;
    size_t take = static_cast<size_t>(
        std::min<ByteCount>(kChunkBytes - within, out.size() - done));
    auto cit = file.chunks.find(index);
    if (cit == file.chunks.end()) {
      std::memset(out.data() + done, 0, take);
    } else {
      Chunk& chunk = cit->second;
      if (Crc32c(chunk.data) != chunk.crc) {
        ++integrity_.read_corruptions;
        if (!RepairChunk(handle, index)) {
          return CorruptionError(
              "stored chunk failed checksum (handle " +
              std::to_string(handle) + ", chunk " + std::to_string(index) +
              ") and its write history is no longer retained");
        }
        ++integrity_.read_repairs;
      }
      std::memcpy(out.data() + done, chunk.data.data() + within, take);
    }
    done += take;
  }
  return Status::Ok();
}

void LocalStore::Remove(FileHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(handle);
  if (it != files_.end()) {
    allocated_ -= it->second.chunks.size() * kChunkBytes;
    files_.erase(it);
  }
  std::erase_if(journal_, [&](const JournalRecord& rec) {
    if (rec.handle != handle) return false;
    journal_data_bytes_ -= rec.data.size();
    return true;
  });
}

ByteCount LocalStore::SizeOf(FileHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(handle);
  return it == files_.end() ? 0 : it->second.size;
}

std::vector<LocalStore::ChunkSum> LocalStore::ChunkSums(
    FileHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ChunkSum> out;
  auto it = files_.find(handle);
  if (it == files_.end()) return out;
  out.reserve(it->second.chunks.size());
  for (const auto& [index, chunk] : it->second.chunks) {
    out.push_back(
        {index, chunk.crc, Crc32c(chunk.data) == chunk.crc});
  }
  return out;
}

}  // namespace pvfs
