#include "pvfs/store.hpp"

#include <algorithm>
#include <cstring>

namespace pvfs {

void LocalStore::Read(FileHandle handle, FileOffset offset,
                      std::span<std::byte> out) {
  auto fit = files_.find(handle);
  if (fit == files_.end()) {
    std::memset(out.data(), 0, out.size());
    return;
  }
  const SparseFile& file = fit->second;
  size_t done = 0;
  while (done < out.size()) {
    FileOffset pos = offset + done;
    std::uint64_t chunk = pos / kChunkBytes;
    ByteCount within = pos % kChunkBytes;
    size_t take = static_cast<size_t>(
        std::min<ByteCount>(kChunkBytes - within, out.size() - done));
    auto cit = file.chunks.find(chunk);
    if (cit == file.chunks.end()) {
      std::memset(out.data() + done, 0, take);
    } else {
      std::memcpy(out.data() + done, cit->second.data() + within, take);
    }
    done += take;
  }
}

void LocalStore::Write(FileHandle handle, FileOffset offset,
                       std::span<const std::byte> data) {
  SparseFile& file = files_[handle];
  size_t done = 0;
  while (done < data.size()) {
    FileOffset pos = offset + done;
    std::uint64_t chunk = pos / kChunkBytes;
    ByteCount within = pos % kChunkBytes;
    size_t take = static_cast<size_t>(
        std::min<ByteCount>(kChunkBytes - within, data.size() - done));
    auto [cit, inserted] = file.chunks.try_emplace(chunk);
    if (inserted) {
      cit->second.assign(kChunkBytes, std::byte{0});
      allocated_ += kChunkBytes;
    }
    std::memcpy(cit->second.data() + within, data.data() + done, take);
    done += take;
  }
  file.size = std::max<ByteCount>(file.size, offset + data.size());
}

void LocalStore::Remove(FileHandle handle) {
  auto it = files_.find(handle);
  if (it == files_.end()) return;
  allocated_ -= it->second.chunks.size() * kChunkBytes;
  files_.erase(it);
}

ByteCount LocalStore::SizeOf(FileHandle handle) const {
  auto it = files_.find(handle);
  return it == files_.end() ? 0 : it->second.size;
}

}  // namespace pvfs
