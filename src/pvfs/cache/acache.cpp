#include "pvfs/cache/acache.hpp"

namespace pvfs::cache {

void AttributeCache::Touch(EntryList::iterator it) {
  entries_.splice(entries_.begin(), entries_, it);
}

void AttributeCache::Erase(EntryList::iterator it, bool count_eviction) {
  by_name_.erase(it->name);
  by_handle_.erase(it->meta.handle);
  entries_.erase(it);
  if (count_eviction) ++counters_.evictions;
}

std::optional<Metadata> AttributeCache::LookupName(const std::string& name,
                                                   Clock::time_point now) {
  auto it = by_name_.find(name);
  if (it == by_name_.end() || !Fresh(*it->second, now)) {
    ++counters_.misses;
    return std::nullopt;
  }
  Touch(it->second);
  ++counters_.hits;
  return it->second->meta;
}

std::optional<Metadata> AttributeCache::LookupHandle(FileHandle handle,
                                                     Clock::time_point now) {
  auto it = by_handle_.find(handle);
  if (it == by_handle_.end() || !Fresh(*it->second, now)) {
    ++counters_.misses;
    return std::nullopt;
  }
  Touch(it->second);
  ++counters_.hits;
  return it->second->meta;
}

void AttributeCache::Insert(const std::string& name, const Metadata& meta,
                            Clock::time_point now) {
  // Refresh in place when the (name, handle) pair is unchanged; count a
  // revalidation when the manager confirmed the generation we already had.
  auto it = by_name_.find(name);
  if (it != by_name_.end() && it->second->meta.handle == meta.handle) {
    if (it->second->meta.epoch == meta.epoch) ++counters_.revalidations;
    it->second->meta = meta;
    it->second->stamp = now;
    Touch(it->second);
    return;
  }
  // A name that now maps to a different handle (remove + recreate seen
  // only from the manager's side) replaces the old entry outright, as does
  // a stale entry for the same handle under another name.
  if (it != by_name_.end()) Erase(it->second, /*count_eviction=*/true);
  auto hit = by_handle_.find(meta.handle);
  if (hit != by_handle_.end()) Erase(hit->second, /*count_eviction=*/true);

  entries_.push_front(Entry{name, meta, now});
  by_name_[name] = entries_.begin();
  by_handle_[meta.handle] = entries_.begin();
  while (entries_.size() > config_.max_entries) {
    Erase(std::prev(entries_.end()), /*count_eviction=*/true);
  }
}

std::optional<std::uint64_t> AttributeCache::CachedEpoch(
    FileHandle handle) const {
  auto it = by_handle_.find(handle);
  if (it == by_handle_.end()) return std::nullopt;
  return it->second->meta.epoch;
}

std::optional<FileHandle> AttributeCache::CachedHandle(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second->meta.handle;
}

void AttributeCache::InvalidateName(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) Erase(it->second, /*count_eviction=*/true);
}

void AttributeCache::InvalidateHandle(FileHandle handle) {
  auto it = by_handle_.find(handle);
  if (it != by_handle_.end()) Erase(it->second, /*count_eviction=*/true);
}

void AttributeCache::Clear() {
  entries_.clear();
  by_name_.clear();
  by_handle_.clear();
}

}  // namespace pvfs::cache
