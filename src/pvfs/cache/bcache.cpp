#include "pvfs/cache/bcache.hpp"

#include <algorithm>
#include <cstring>

namespace pvfs::cache {

BufferCache::PageList::iterator BufferCache::Find(const PageKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return pages_.end();
  pages_.splice(pages_.begin(), pages_, it->second);
  return it->second;
}

Result<BufferCache::PageList::iterator> BufferCache::FetchPage(
    const PageKey& key, const FetchFn& fetch) {
  std::vector<std::byte> data(config_.page_bytes);
  PVFS_RETURN_IF_ERROR(
      fetch(key.index * config_.page_bytes, std::span<std::byte>(data)));
  pages_.push_front(Page{key, std::move(data)});
  index_[key] = pages_.begin();
  cached_bytes_ += config_.page_bytes;
  return pages_.begin();
}

BufferCache::PageList::iterator BufferCache::InsertBlank(const PageKey& key) {
  pages_.push_front(Page{key, std::vector<std::byte>(config_.page_bytes)});
  index_[key] = pages_.begin();
  cached_bytes_ += config_.page_bytes;
  return pages_.begin();
}

Status BufferCache::Read(FileHandle handle, FileOffset offset,
                         std::span<std::byte> out, const FetchFn& fetch) {
  const ByteCount psz = config_.page_bytes;
  ByteCount done = 0;
  while (done < out.size()) {
    const FileOffset pos = offset + done;
    const PageKey key{handle, pos / psz};
    const ByteCount lo = pos % psz;
    const ByteCount n = std::min<ByteCount>(out.size() - done, psz - lo);
    auto it = Find(key);
    if (it != pages_.end()) {
      ++counters_.hits;
      if (it->prefetched) {
        it->prefetched = false;
        ++counters_.readahead_hits;
      }
    } else {
      ++counters_.misses;
      PVFS_ASSIGN_OR_RETURN(it, FetchPage(key, fetch));
    }
    std::memcpy(out.data() + done, it->data.data() + lo, n);
    done += n;
  }
  EnforceResidencyBound();
  return Status::Ok();
}

Status BufferCache::Write(FileHandle handle, FileOffset offset,
                          std::span<const std::byte> in, const FetchFn& fetch,
                          const FlushFn& flush) {
  const ByteCount psz = config_.page_bytes;
  ByteCount done = 0;
  while (done < in.size()) {
    const FileOffset pos = offset + done;
    const PageKey key{handle, pos / psz};
    const ByteCount lo = pos % psz;
    const ByteCount n = std::min<ByteCount>(in.size() - done, psz - lo);
    auto it = Find(key);
    if (it == pages_.end()) {
      ++counters_.misses;
      if (n == psz) {
        // The write covers the whole page: nothing fetched would survive.
        it = InsertBlank(key);
      } else {
        PVFS_ASSIGN_OR_RETURN(it, FetchPage(key, fetch));
      }
    } else {
      ++counters_.hits;
      it->prefetched = false;  // overwritten, no longer a read-ahead win
    }
    std::memcpy(it->data.data() + lo, in.data() + done, n);
    // Grow the page's dirty interval. Two disjoint writes merge across the
    // clean gap between them — the gap holds bytes fetched from the file,
    // so writing them back is a no-op under the single-writer-per-region
    // assumption of close-to-open consistency — and crucially dirty_hi
    // never exceeds the application's own high-water within the page, so
    // write-back cannot extend the file.
    if (!it->dirty()) {
      it->dirty_lo = lo;
      it->dirty_hi = lo + n;
      dirty_bytes_ += n;
    } else {
      const ByteCount new_lo = std::min(it->dirty_lo, lo);
      const ByteCount new_hi = std::max(it->dirty_hi, lo + n);
      dirty_bytes_ += (new_hi - new_lo) - (it->dirty_hi - it->dirty_lo);
      it->dirty_lo = new_lo;
      it->dirty_hi = new_hi;
    }
    done += n;
  }
  PVFS_RETURN_IF_ERROR(EnforceWritebackBound(flush));
  EnforceResidencyBound();
  return Status::Ok();
}

Status BufferCache::Prefetch(FileHandle handle, Extent region,
                             const FetchFn& fetch) {
  if (region.empty()) return Status::Ok();
  const ByteCount psz = config_.page_bytes;
  const std::uint64_t first = region.offset / psz;
  const std::uint64_t last = (region.offset + region.length - 1) / psz;
  for (std::uint64_t i = first; i <= last; ++i) {
    const PageKey key{handle, i};
    // Resident pages keep their recency; prefetch is not a reference.
    if (index_.find(key) != index_.end()) continue;
    PVFS_ASSIGN_OR_RETURN(auto it, FetchPage(key, fetch));
    it->prefetched = true;
    ++counters_.prefetched_pages;
  }
  EnforceResidencyBound();
  return Status::Ok();
}

Status BufferCache::FlushHandle(FileHandle handle, const FlushFn& flush) {
  std::vector<PageList::iterator> dirty;
  for (auto it = pages_.begin(); it != pages_.end(); ++it) {
    if (it->key.handle == handle && it->dirty()) dirty.push_back(it);
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const auto& a, const auto& b) {
              return a->key.index < b->key.index;
            });
  for (auto it : dirty) {
    PVFS_RETURN_IF_ERROR(FlushPage(*it, flush));
  }
  return Status::Ok();
}

void BufferCache::DropHandle(FileHandle handle) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    auto next = std::next(it);
    if (it->key.handle == handle) Evict(it);
    it = next;
  }
  epochs_.erase(handle);
}

void BufferCache::DropCleanPages(FileHandle handle) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    auto next = std::next(it);
    if (it->key.handle == handle && !it->dirty()) Evict(it);
    it = next;
  }
}

void BufferCache::NoteEpoch(FileHandle handle, std::uint64_t epoch) {
  auto [it, inserted] = epochs_.try_emplace(handle, epoch);
  if (!inserted && it->second != epoch) {
    DropCleanPages(handle);
    it->second = epoch;
  }
}

bool BufferCache::HasDirty(FileHandle handle) const {
  return std::any_of(pages_.begin(), pages_.end(), [&](const Page& p) {
    return p.key.handle == handle && p.dirty();
  });
}

Status BufferCache::FlushPage(Page& page, const FlushFn& flush) {
  if (!page.dirty()) return Status::Ok();
  const ByteCount n = page.dirty_hi - page.dirty_lo;
  PVFS_RETURN_IF_ERROR(
      flush(page.key.index * config_.page_bytes + page.dirty_lo,
            std::span<const std::byte>(page.data).subspan(page.dirty_lo, n)));
  counters_.writeback_bytes += n;
  dirty_bytes_ -= n;
  page.dirty_lo = 0;
  page.dirty_hi = 0;
  return Status::Ok();
}

void BufferCache::Evict(PageList::iterator it) {
  dirty_bytes_ -= it->dirty_hi - it->dirty_lo;
  cached_bytes_ -= config_.page_bytes;
  index_.erase(it->key);
  pages_.erase(it);
  ++counters_.evictions;
}

void BufferCache::EnforceResidencyBound() {
  while (cached_bytes_ > config_.max_bytes) {
    auto victim = pages_.end();
    for (auto r = pages_.rbegin(); r != pages_.rend(); ++r) {
      if (!r->dirty()) {
        victim = std::prev(r.base());
        break;
      }
    }
    // Everything resident is dirty: the write-back bound, not this one,
    // is the effective limit until those pages flush.
    if (victim == pages_.end()) break;
    Evict(victim);
  }
}

Status BufferCache::EnforceWritebackBound(const FlushFn& flush) {
  while (dirty_bytes_ > config_.writeback_max_bytes) {
    auto victim = pages_.end();
    for (auto r = pages_.rbegin(); r != pages_.rend(); ++r) {
      if (r->dirty()) {
        victim = std::prev(r.base());
        break;
      }
    }
    if (victim == pages_.end()) break;  // unreachable while dirty_bytes_ > 0
    PVFS_RETURN_IF_ERROR(FlushPage(*victim, flush));
  }
  return Status::Ok();
}

}  // namespace pvfs::cache
