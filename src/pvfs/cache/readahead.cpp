#include "pvfs/cache/readahead.hpp"

namespace pvfs::cache {

std::vector<Extent> PlanReadahead(std::span<const Extent> regions,
                                  const ReadaheadConfig& config) {
  if (!config.enabled) return {};
  // Work over the non-empty regions only; empty ones carry no pattern.
  std::vector<Extent> walk;
  walk.reserve(regions.size());
  for (const Extent& e : regions) {
    if (!e.empty()) walk.push_back(e);
  }
  if (walk.size() < config.min_regions || walk.size() < 2) return {};

  const ByteCount length = walk.front().length;
  const FileOffset stride = walk[1].offset - walk[0].offset;
  if (walk[1].offset <= walk[0].offset) return {};  // descending/overlapping
  if (stride < length) return {};  // self-overlapping pattern: no prediction
  for (size_t i = 1; i < walk.size(); ++i) {
    if (walk[i].length != length) return {};
    if (walk[i].offset - walk[i - 1].offset != stride) return {};
  }

  std::vector<Extent> plan;
  ByteCount planned = 0;
  FileOffset next = walk.back().offset + stride;
  for (std::uint32_t i = 0; i < config.window; ++i) {
    if (planned + length > config.max_bytes) break;
    if (next + length < next) break;  // offset-space overflow
    plan.push_back(Extent{next, length});
    planned += length;
    next += stride;
  }
  return plan;
}

}  // namespace pvfs::cache
