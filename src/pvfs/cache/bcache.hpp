// Client buffer cache (bcache): block-aligned pages with bounded
// write-back, the PVFS2 "user level buffer cache" direction (README_UCACHE
// lineage in ROADMAP). Small noncontiguous accesses are the target: a
// strided read that would cost one list-I/O request per few hundred bytes
// instead fetches whole pages once and serves the rest from memory, and
// small writes coalesce into dirty pages flushed in page-sized runs.
//
// Consistency model (docs/client-caching.md): close-to-open.
//   - Writes land in dirty pages; total dirty bytes are bounded by
//     `writeback_max_bytes` (the oldest dirty pages flush when a write
//     crosses the bound), and Close flushes everything (flush-on-close).
//   - Lock acquisition flushes and drops this client's clean pages
//     (flush-on-lock), so data read under a lock is fetched fresh.
//   - NoteEpoch() implements the open-time check: the manager bumps the
//     metadata epoch on every size flush, so an Open that observes a new
//     epoch drops the clean pages cached under the old one.
//
// Pages are whole or absent: a partial write to an absent page fetches the
// page first (read-modify-write), so `data` is always fully valid and the
// dirty state is one byte interval per page. Write-back writes only the
// dirty interval — never the whole page — so flushing cannot extend the
// file past what the application actually wrote.
//
// Thread safety: externally synchronized (the Client serializes cache
// access under one mutex, held across fetch/flush callbacks; see
// client.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/extent.hpp"
#include "common/status.hpp"
#include "pvfs/config.hpp"

namespace pvfs::cache {

struct BcacheConfig {
  bool enabled = false;
  /// Cache block size; accesses are rounded out to page boundaries.
  ByteCount page_bytes = kDefaultCachePageBytes;
  /// Bound on resident page bytes (clean pages evict LRU past it).
  ByteCount max_bytes = 8ull << 20;
  /// Bound on unflushed dirty bytes; a write that crosses it flushes the
  /// least recently used dirty pages back under the bound.
  ByteCount writeback_max_bytes = 1ull << 20;
};

class BufferCache {
 public:
  /// Fill `out` (one whole page) from the file at `offset`.
  using FetchFn = std::function<Status(FileOffset, std::span<std::byte>)>;
  /// Write `data` back to the file at `offset` (a dirty sub-interval).
  using FlushFn =
      std::function<Status(FileOffset, std::span<const std::byte>)>;

  struct Counters {
    std::uint64_t hits = 0;            // page lookups served from memory
    std::uint64_t misses = 0;          // page lookups that had to fetch
    std::uint64_t evictions = 0;       // pages discarded (LRU + epoch/drops)
    std::uint64_t writeback_bytes = 0; // dirty bytes flushed to servers
    std::uint64_t readahead_hits = 0;  // first hits on prefetched pages
    std::uint64_t prefetched_pages = 0;
  };

  explicit BufferCache(BcacheConfig config) : config_(config) {}

  /// Serve a contiguous read through the cache, fetching absent pages.
  Status Read(FileHandle handle, FileOffset offset, std::span<std::byte> out,
              const FetchFn& fetch);

  /// Apply a contiguous write into dirty pages (read-modify-write for
  /// partial pages); flushes LRU dirty pages if the write-back bound is
  /// crossed.
  Status Write(FileHandle handle, FileOffset offset,
               std::span<const std::byte> in, const FetchFn& fetch,
               const FlushFn& flush);

  /// Bring the pages covering `region` in without serving bytes, tagging
  /// them as prefetched (a later Read hit counts as a readahead hit).
  /// Best-effort: the first fetch error aborts the remainder.
  Status Prefetch(FileHandle handle, Extent region, const FetchFn& fetch);

  /// Flush every dirty page of `handle` in ascending page order.
  Status FlushHandle(FileHandle handle, const FlushFn& flush);

  /// Discard all pages of `handle`, INCLUDING dirty ones (Remove path).
  void DropHandle(FileHandle handle);

  /// Discard the clean pages of `handle`; dirty pages survive (they hold
  /// writes not yet published).
  void DropCleanPages(FileHandle handle);

  /// Open-time epoch check: if `epoch` differs from the one recorded for
  /// the handle, clean pages are dropped (another client closed a write
  /// since we cached them). Records `epoch` either way.
  void NoteEpoch(FileHandle handle, std::uint64_t epoch);

  bool HasDirty(FileHandle handle) const;
  ByteCount cached_bytes() const { return cached_bytes_; }
  ByteCount dirty_bytes() const { return dirty_bytes_; }
  const Counters& counters() const { return counters_; }
  const BcacheConfig& config() const { return config_; }

 private:
  struct PageKey {
    FileHandle handle = 0;
    std::uint64_t index = 0;
    friend bool operator==(const PageKey&, const PageKey&) = default;
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const {
      return std::hash<std::uint64_t>()(k.handle * 0x9E3779B97F4A7C15ull ^
                                        k.index);
    }
  };
  struct Page {
    PageKey key;
    std::vector<std::byte> data;  // always fully valid, page_bytes long
    bool prefetched = false;
    ByteCount dirty_lo = 0;
    ByteCount dirty_hi = 0;  // dirty iff dirty_hi > dirty_lo
    bool dirty() const { return dirty_hi > dirty_lo; }
  };
  using PageList = std::list<Page>;  // front = most recently used

  /// The resident page for `key`, or entries_.end().
  PageList::iterator Find(const PageKey& key);
  /// Fetch `key`'s page into residence (caller checked it is absent).
  Result<PageList::iterator> FetchPage(const PageKey& key,
                                       const FetchFn& fetch);
  /// Insert an all-zero resident page without fetching (full-page write).
  PageList::iterator InsertBlank(const PageKey& key);
  Status FlushPage(Page& page, const FlushFn& flush);
  void Evict(PageList::iterator it);
  /// Drop LRU clean pages until resident bytes fit max_bytes.
  void EnforceResidencyBound();
  /// Flush LRU dirty pages until dirty bytes fit writeback_max_bytes.
  Status EnforceWritebackBound(const FlushFn& flush);

  BcacheConfig config_;
  PageList pages_;
  std::unordered_map<PageKey, PageList::iterator, PageKeyHash> index_;
  std::unordered_map<FileHandle, std::uint64_t> epochs_;
  ByteCount cached_bytes_ = 0;
  ByteCount dirty_bytes_ = 0;
  Counters counters_;
};

}  // namespace pvfs::cache
