// Attribute/config cache (acache): client-side cache of manager metadata —
// handle, striping, replication parameters and last known size — keyed by
// BOTH name and handle, so Open-by-name and Stat-by-descriptor hit the
// same entry. The lineage is PVFS2's acache.c / pint-cached-config.h: the
// manager round trip is the scaling wall for metadata-heavy workloads, and
// striping/replication parameters are immutable after create, so a cached
// entry answers Open and Stat without touching the network.
//
// Freshness model (docs/client-caching.md):
//   - TTL: an entry older than `ttl` stops answering and must be
//     revalidated against the manager (the refreshed reply re-arms it).
//   - Epoch: every manager reply carries the entry's generation
//     (Metadata::epoch, bumped on SetSize). The cache exposes the cached
//     epoch so the buffer cache can decide whether its pages for the
//     handle survived the revalidation (close-to-open consistency).
//   - Explicit invalidation: Create over an existing name, Remove, and a
//     local SetSize/Close all invalidate eagerly — the TTL only bounds
//     staleness caused by OTHER clients.
//   - LRU: at most `max_entries` live entries; inserting past the bound
//     evicts the least recently used.
//
// Thread safety: externally synchronized (the Client wraps calls in its
// own cache mutex). Time is passed in explicitly so tests control it.
#pragma once

#include <chrono>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "pvfs/protocol.hpp"

namespace pvfs::cache {

struct AcacheConfig {
  bool enabled = false;
  /// Entry lifetime; 0 means every lookup misses (revalidate always),
  /// which is the strictest setting short of disabling the cache.
  std::chrono::microseconds ttl{500'000};
  /// LRU bound on live entries.
  std::size_t max_entries = 1024;
};

class AttributeCache {
 public:
  using Clock = std::chrono::steady_clock;

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;       // lookups that found nothing fresh
    std::uint64_t evictions = 0;    // LRU + explicit invalidations
    std::uint64_t revalidations = 0;  // refreshed entries (same epoch kept)
  };

  explicit AttributeCache(AcacheConfig config) : config_(config) {}

  /// Fresh (within TTL) metadata for `name`, bumping recency; counts a
  /// hit or a miss.
  std::optional<Metadata> LookupName(const std::string& name,
                                     Clock::time_point now);
  /// Fresh metadata for `handle`, bumping recency.
  std::optional<Metadata> LookupHandle(FileHandle handle,
                                       Clock::time_point now);

  /// Insert or refresh the entry for (name, meta.handle). A refresh whose
  /// epoch matches the cached one counts as a revalidation (the caller may
  /// keep derived state, e.g. buffer-cache pages).
  void Insert(const std::string& name, const Metadata& meta,
              Clock::time_point now);

  /// Epoch currently cached for `handle`, fresh or stale (nullopt if the
  /// entry is gone entirely). Used for page invalidation decisions.
  std::optional<std::uint64_t> CachedEpoch(FileHandle handle) const;

  /// Handle currently cached for `name`, fresh or stale — a peek, not a
  /// reference: no recency bump, no hit/miss accounting. Used to aim
  /// explicit invalidation at the handle's derived state (data pages).
  std::optional<FileHandle> CachedHandle(const std::string& name) const;

  void InvalidateName(const std::string& name);
  void InvalidateHandle(FileHandle handle);
  void Clear();

  std::size_t size() const { return entries_.size(); }
  const Counters& counters() const { return counters_; }

 private:
  struct Entry {
    std::string name;
    Metadata meta;
    Clock::time_point stamp;  // insertion/refresh time (TTL anchor)
  };
  using EntryList = std::list<Entry>;  // front = most recently used

  bool Fresh(const Entry& e, Clock::time_point now) const {
    return now - e.stamp < config_.ttl;
  }
  void Touch(EntryList::iterator it);
  void Erase(EntryList::iterator it, bool count_eviction);

  AcacheConfig config_;
  EntryList entries_;
  std::unordered_map<std::string, EntryList::iterator> by_name_;
  std::unordered_map<FileHandle, EntryList::iterator> by_handle_;
  Counters counters_;
};

}  // namespace pvfs::cache
