// List-structure-informed read-ahead planning.
//
// A PVFS list access hands the client the COMPLETE access pattern up
// front — the file-region list of a strided read is itself the stride
// descriptor — so unlike a POSIX client, which must infer sequentiality
// from one offset at a time, we can extrapolate the pattern exactly: if
// the regions step by a constant stride with a constant length, the next
// accesses almost certainly continue the walk (the GPU readahead
// prefetcher lineage in PAPERS.md: pattern-aware windows beat fixed ones).
//
// PlanReadahead() returns the predicted continuation as an extent list;
// the buffer cache prefetches those pages and tags them, so a later hit is
// attributable to read-ahead (client.cache.readahead_hits).
#pragma once

#include <span>
#include <vector>

#include "common/extent.hpp"

namespace pvfs::cache {

struct ReadaheadConfig {
  bool enabled = false;
  /// Predicted regions appended past the observed list.
  std::uint32_t window = 8;
  /// Minimum observed regions before a stride is trusted. 1 would turn
  /// every contiguous read into sequential prefetch; 2 requires one
  /// confirmed repetition.
  std::uint32_t min_regions = 2;
  /// Budget on predicted bytes per access (caps window * length).
  ByteCount max_bytes = 1 << 20;
};

/// Predict the continuation of `regions`. Returns an empty list unless the
/// non-empty regions share one length and one positive stride (offset
/// ascending). For a contiguous read (a single region, or stride ==
/// length) sequential prefetch applies once the list reaches min_regions.
std::vector<Extent> PlanReadahead(std::span<const Extent> regions,
                                  const ReadaheadConfig& config);

}  // namespace pvfs::cache
