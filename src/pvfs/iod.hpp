// I/O daemon (iod): serves file data for the stripe units assigned to one
// server. Every request carries striping parameters and a list of logical
// file regions (trailing data); the daemon intersects that list with its
// own stripe units and reads/writes its local store. Responses carry this
// server's bytes in logical-walk order, so the client can reassemble
// without extra metadata.
//
// Thread safety: Serve (and the message handlers above it) may be called
// concurrently — the store is internally locked, recovery is idempotent
// under that lock, and every stat is an atomic — which is what lets the
// TCP transport stop serializing service when ServerConfig::flows is on.
// The manager remains externally synchronized (one message at a time).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "fault/fault.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "pvfs/config.hpp"
#include "pvfs/distribution.hpp"
#include "pvfs/protocol.hpp"
#include "pvfs/scheduler.hpp"
#include "pvfs/store.hpp"
#include "pvfs/store_async.hpp"

namespace pvfs {

class IoDaemon {
 public:
  /// `id` is this daemon's slot in the file system's server table.
  /// `max_list_regions` is the trailing-data limit it enforces
  /// (kMaxListRegions in the paper's configuration).
  explicit IoDaemon(ServerId id,
                    std::uint32_t max_list_regions = kMaxListRegions)
      : IoDaemon(id, ServerConfig{.max_list_regions = max_list_regions}) {}

  /// Full service configuration, including the fragment scheduler knob
  /// (docs/server-scheduling.md). Admission control (`max_queue_depth`)
  /// is enforced by the transport in front of the daemon, not here.
  IoDaemon(ServerId id, const ServerConfig& config)
      : id_(id), config_(config) {
    if (config_.flows) {
      async_store_ = std::make_unique<AsyncStore>(
          store_, AsyncStore::Options{config_.store_workers,
                                      config_.store_seek_us,
                                      config_.store_us_per_mib});
    }
  }

  std::vector<std::byte> HandleMessage(std::span<const std::byte> raw);

  /// Transport entry point: verifies the request frame's CRC32C trailer,
  /// dispatches, and seals the response. A corrupt request is rejected
  /// with a (sealed) kCorruption envelope — typed, never a crash. All
  /// transports call this; HandleMessage remains for direct unit tests.
  std::vector<std::byte> HandleSealedMessage(std::span<const std::byte> raw);

  /// Direct-call service path (also used by HandleMessage).
  Result<IoResponse> Serve(const IoRequest& req);

  /// Replay-or-rollback any write intents left pending by a crash. Runs
  /// automatically at the start of every served request (the first call
  /// after a restart recovers the store before touching data); exposed
  /// for eager recovery on explicit daemon restarts.
  void RecoverStore();

  /// On-demand integrity scrub of the whole store; results accumulate in
  /// stats() and the store's integrity counters.
  LocalStore::ScrubStats Scrub();

  ServerId id() const { return id_; }
  const ServerConfig& config() const { return config_; }
  LocalStore& store() { return store_; }
  const LocalStore& store() const { return store_; }

  /// Arms transient disk read/write error injection (src/fault). The
  /// injected failure is reported BEFORE any byte touches the store, so a
  /// failed request leaves this server's stripe unchanged and an
  /// idempotent resend repairs nothing worse than a clean miss. Pass
  /// nullptr to disarm.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  /// All counters are atomics: with flows on, the transport runs Serve
  /// calls concurrently. Readers load individual fields as before.
  struct Stats {
    std::atomic<std::uint64_t> requests = 0;
    std::atomic<std::uint64_t> regions = 0;  // trailing-data entries received
    std::atomic<std::uint64_t> local_accesses = 0; // coalesced runs (sorted)
    std::atomic<std::uint64_t> store_ops = 0; // contiguous accesses issued
    std::atomic<std::uint64_t> bytes_read = 0;
    std::atomic<std::uint64_t> bytes_written = 0;
    std::atomic<std::uint64_t> injected_errors = 0;  // failed by injection
    std::atomic<std::uint64_t> corruptions_detected = 0;  // frames + CRCs
    std::atomic<std::uint64_t> journal_replays = 0;   // redone on recovery
    std::atomic<std::uint64_t> journal_rollbacks = 0; // torn, discarded
    std::atomic<std::uint64_t> torn_writes = 0;  // injected crashes
    std::atomic<std::uint64_t> scrub_chunks_scanned = 0;
    std::atomic<std::uint64_t> scrub_corruptions = 0;
    std::atomic<std::uint64_t> scrub_repairs = 0;
    std::atomic<std::uint64_t> repair_chunks_scanned = 0;  // manifests served
    std::atomic<std::uint64_t> repair_chunks_copied = 0;   // applies taken
    // Flow pipeline accounting (zero unless ServerConfig::flows).
    std::atomic<std::uint64_t> flow_segments = 0;       // segments executed
    std::atomic<std::uint64_t> flow_inflight_peak = 0;  // widest window seen
    std::atomic<std::uint64_t> flow_stall_us = 0;       // full-window waits
  };
  const Stats& stats() const { return stats_; }
  /// The counters as one JSON object (the kStats response body).
  obs::JsonValue StatsJson() const;
  /// Mirror the counters into a metrics registry as "iod.*" with a
  /// server=<id> label appended to `base`.
  void ExportMetrics(obs::Registry& reg, const obs::Labels& base = {}) const;

 private:
  /// Charge the modeled device interval for `accesses` contiguous store
  /// accesses moving `bytes` in total (no-op at the default zero knobs).
  void ChargeDeviceTime(std::uint64_t accesses, ByteCount bytes) const;

  ServerId id_;
  ServerConfig config_;
  LocalStore store_;
  /// Present iff config_.flows: the store-worker pool every in-flight
  /// request's flow shares.
  std::unique_ptr<AsyncStore> async_store_;
  Stats stats_;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace pvfs
