// Manager daemon: metadata-only server (paper §2). Handles namespace and
// striping metadata; it never touches file data — clients talk to the I/O
// daemons directly for reads and writes, keeping the manager off the data
// path.
//
// Thread safety: externally synchronized. Transports deliver one message
// at a time per daemon (a daemon is a single-threaded event loop, as the
// real mgrd was).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "pvfs/protocol.hpp"

namespace pvfs {

class Manager {
 public:
  /// `server_count` bounds striping pcount/base validation.
  explicit Manager(std::uint32_t server_count)
      : server_count_(server_count) {}

  /// Decode, dispatch and execute one request; returns the encoded
  /// response envelope (errors travel inside the envelope).
  std::vector<std::byte> HandleMessage(std::span<const std::byte> raw);

  /// Transport entry point: verifies the request frame's CRC32C trailer,
  /// dispatches, and seals the response. A corrupt request is rejected
  /// with a (sealed) kCorruption envelope.
  std::vector<std::byte> HandleSealedMessage(std::span<const std::byte> raw);

  // Direct-call API (used by tests and by HandleMessage). Takes the
  // create-time layout aggregate; a bare Striping converts implicitly
  // (simple stripe, no replication).
  Result<Metadata> Create(const std::string& name,
                          const CreateOptions& options);
  Result<Metadata> Lookup(const std::string& name) const;
  Status Remove(const std::string& name);
  Result<Metadata> Stat(FileHandle handle) const;
  Status SetSize(FileHandle handle, ByteCount size);
  /// All names starting with `prefix` (empty = all), sorted.
  std::vector<std::string> ListNames(const std::string& prefix) const;

  // ---- Advisory byte-range locks (extension; see protocol.hpp) --------

  /// Non-blocking try-acquire. Zero-length range means the whole file.
  /// Re-acquiring a range the owner already holds is idempotent. Returns
  /// kResourceExhausted on conflict.
  Status TryLock(FileHandle handle, Extent range, std::uint64_t owner,
                 bool exclusive);
  /// Releases the owner's lock exactly matching `range` (normalized the
  /// same way); kNotFound if absent.
  Status Unlock(FileHandle handle, Extent range, std::uint64_t owner);
  std::size_t LockCount(FileHandle handle) const;

  std::uint32_t server_count() const { return server_count_; }
  std::size_t file_count() const { return by_name_.size(); }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t creates = 0;
    std::uint64_t lookups = 0;
    std::uint64_t corruptions_detected = 0;  // corrupt frames rejected
  };
  const Stats& stats() const { return stats_; }
  /// The counters as one JSON object (the kStats response body).
  obs::JsonValue StatsJson() const;
  /// Mirror the counters into a metrics registry as "manager.*".
  void ExportMetrics(obs::Registry& reg, const obs::Labels& base = {}) const;

 private:
  struct RangeLock {
    Extent range;
    std::uint64_t owner;
    bool exclusive;
  };
  static Extent NormalizeLockRange(Extent range);

  std::uint32_t server_count_;
  FileHandle next_handle_ = 1;
  std::unordered_map<std::string, Metadata> by_name_;
  std::unordered_map<FileHandle, std::string> by_handle_;
  std::unordered_map<FileHandle, std::vector<RangeLock>> locks_;
  Stats stats_;
};

}  // namespace pvfs
