#include "runtime/threaded_cluster.hpp"

namespace pvfs::runtime {

ThreadedCluster::EventLoop::EventLoop(ServiceFn service,
                                      AdmissionController* admission,
                                      ServerId server)
    : service_(std::move(service)),
      admission_(admission),
      server_(server),
      worker_([this](std::stop_token stop) { Loop(stop); }) {}

ThreadedCluster::EventLoop::~EventLoop() {
  worker_.request_stop();
  cv_.notify_all();
}

std::vector<std::byte> ThreadedCluster::EventLoop::Call(
    std::span<const std::byte> request) {
  Job job;
  // Admission happens at enqueue time, on the CLIENT's thread: a full
  // queue answers busy immediately instead of parking the caller, so the
  // retry/backoff loop — not the queue — absorbs the overload.
  if (admission_ != nullptr && !admission_->TryAdmit(job.slot)) {
    return SealedBusyResponse(server_);
  }
  job.request.assign(request.begin(), request.end());
  std::future<std::vector<std::byte>> response = job.response.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return response.get();
}

void ThreadedCluster::EventLoop::Loop(std::stop_token stop) {
  while (true) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (admission_ != nullptr) admission_->BeginService(job.slot);
    std::vector<std::byte> response = service_(job.request);
    // Release the queue slot BEFORE publishing the response: a client
    // that has seen its reply must be able to observe the freed slot
    // (its immediate resend finding the queue still "full" would turn
    // depth-1 configurations into livelock under lock-step retries).
    if (admission_ != nullptr) admission_->Finish(job.slot);
    job.response.set_value(std::move(response));
  }
}

ThreadedCluster::ThreadedCluster(std::uint32_t server_count,
                                 std::uint32_t max_list_regions)
    : ThreadedCluster(server_count,
                      ServerConfig{.max_list_regions = max_list_regions}) {}

ThreadedCluster::ThreadedCluster(std::uint32_t server_count,
                                 const ServerConfig& config,
                                 obs::Registry* registry)
    : manager_(server_count) {
  iods_.reserve(server_count);
  admissions_.reserve(server_count);
  iod_loops_.reserve(server_count);
  for (ServerId s = 0; s < server_count; ++s) {
    iods_.push_back(std::make_unique<IoDaemon>(s, config));
    admissions_.push_back(std::make_unique<AdmissionController>(
        s, config.max_queue_depth, registry));
  }
  manager_loop_ = std::make_unique<EventLoop>(
      [this](std::span<const std::byte> req) {
        return manager_.HandleSealedMessage(req);
      },
      nullptr, 0);
  for (ServerId s = 0; s < server_count; ++s) {
    IoDaemon* iod = iods_[s].get();
    iod_loops_.push_back(std::make_unique<EventLoop>(
        [iod](std::span<const std::byte> req) {
          return iod->HandleSealedMessage(req);
        },
        admissions_[s].get(), s));
  }
  transport_ = std::make_unique<QueueTransport>(this);
}

ThreadedCluster::~ThreadedCluster() = default;

}  // namespace pvfs::runtime
