#include "runtime/threaded_cluster.hpp"

namespace pvfs::runtime {

ThreadedCluster::EventLoop::EventLoop(ServiceFn service)
    : service_(std::move(service)),
      worker_([this](std::stop_token stop) { Loop(stop); }) {}

ThreadedCluster::EventLoop::~EventLoop() {
  worker_.request_stop();
  cv_.notify_all();
}

std::vector<std::byte> ThreadedCluster::EventLoop::Call(
    std::span<const std::byte> request) {
  Job job;
  job.request.assign(request.begin(), request.end());
  std::future<std::vector<std::byte>> response = job.response.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return response.get();
}

void ThreadedCluster::EventLoop::Loop(std::stop_token stop) {
  while (true) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job.response.set_value(service_(job.request));
  }
}

ThreadedCluster::ThreadedCluster(std::uint32_t server_count,
                                 std::uint32_t max_list_regions)
    : manager_(server_count) {
  iods_.reserve(server_count);
  iod_loops_.reserve(server_count);
  for (ServerId s = 0; s < server_count; ++s) {
    iods_.push_back(std::make_unique<IoDaemon>(s, max_list_regions));
  }
  manager_loop_ = std::make_unique<EventLoop>(
      [this](std::span<const std::byte> req) {
        return manager_.HandleSealedMessage(req);
      });
  for (ServerId s = 0; s < server_count; ++s) {
    IoDaemon* iod = iods_[s].get();
    iod_loops_.push_back(std::make_unique<EventLoop>(
        [iod](std::span<const std::byte> req) {
          return iod->HandleSealedMessage(req);
        }));
  }
  transport_ = std::make_unique<QueueTransport>(this);
}

ThreadedCluster::~ThreadedCluster() = default;

}  // namespace pvfs::runtime
