// SPMD execution: run one function body on N ranks, each on its own
// thread, with a cyclic barrier — the subset of MPI semantics the paper's
// methods need (MPI_Barrier for serializing data-sieving writes, per-rank
// identity for workload partitioning).
#pragma once

#include <barrier>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace pvfs::runtime {

class SpmdContext;

/// Runs `body(ctx)` on `nprocs` concurrent ranks and joins them all.
/// The first exception thrown by any rank is rethrown on the caller after
/// all ranks finish or unblock.
void RunSpmd(std::uint32_t nprocs,
             const std::function<void(SpmdContext&)>& body);

/// Per-rank view of the group, passed to each body.
class SpmdContext {
 public:
  Rank rank() const { return rank_; }
  std::uint32_t size() const { return size_; }

  /// Block until every rank has arrived (MPI_Barrier equivalent).
  void Barrier() { barrier_->arrive_and_wait(); }

 private:
  friend void RunSpmd(std::uint32_t,
                      const std::function<void(SpmdContext&)>&);
  SpmdContext(Rank rank, std::uint32_t size, std::barrier<>* barrier)
      : rank_(rank), size_(size), barrier_(barrier) {}

  Rank rank_;
  std::uint32_t size_;
  std::barrier<>* barrier_;
};

inline void RunSpmd(std::uint32_t nprocs,
                    const std::function<void(SpmdContext&)>& body) {
  std::barrier barrier(static_cast<std::ptrdiff_t>(nprocs));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  {
    std::vector<std::jthread> threads;
    threads.reserve(nprocs);
    for (Rank r = 0; r < nprocs; ++r) {
      threads.emplace_back([&, r] {
        SpmdContext ctx(r, nprocs, &barrier);
        try {
          body(ctx);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  }  // jthreads join here

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pvfs::runtime
