// ThreadedCluster: a functional PVFS deployment inside one process with
// real concurrency — the manager and each I/O daemon run as separate
// event-loop threads draining FIFO request queues, and any number of client threads
// issue blocking RPCs against them. This is the closest in-process
// analogue of the paper's deployment (clients + mgr + iods on separate
// nodes), and what the integration tests and examples run on.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "pvfs/admission.hpp"
#include "pvfs/config.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "pvfs/repair.hpp"
#include "pvfs/transport.hpp"

namespace pvfs::runtime {

class ThreadedCluster {
 public:
  explicit ThreadedCluster(std::uint32_t server_count,
                           std::uint32_t max_list_regions = kMaxListRegions);
  /// Full per-iod service configuration: fragment scheduling and bounded
  /// admission queues (config.max_queue_depth > 0 makes a daemon shed
  /// excess load with retryable kBusy). Admission instruments register in
  /// `registry` (default: obs::Registry::Global()).
  ThreadedCluster(std::uint32_t server_count, const ServerConfig& config,
                  obs::Registry* registry = nullptr);
  ~ThreadedCluster();

  ThreadedCluster(const ThreadedCluster&) = delete;
  ThreadedCluster& operator=(const ThreadedCluster&) = delete;

  /// Transport for clients; safe to share across client threads.
  Transport& transport() { return *transport_; }

  Manager& manager() { return manager_; }
  IoDaemon& iod(ServerId s) { return *iods_[s]; }

  /// Re-replicate data for daemon `s` from the surviving replicas (run
  /// after a crash-restart; see pvfs/repair.hpp). Goes through the queue
  /// transport, so repair traffic serializes with in-flight client I/O on
  /// each daemon's event loop exactly as client requests do.
  Result<RepairReport> RepairIod(ServerId s) {
    return RepairRestartedIod(*transport_, s);
  }
  AdmissionController& admission(ServerId s) { return *admissions_[s]; }
  std::uint32_t server_count() const {
    return static_cast<std::uint32_t>(iods_.size());
  }

 private:
  struct Job {
    std::vector<std::byte> request;
    std::promise<std::vector<std::byte>> response;
    AdmissionController::Slot slot;
  };

  /// One daemon's event loop: a queue, a worker thread, and the service
  /// function the worker applies to each request. When an admission
  /// controller is attached, enqueueing past its bound is refused with a
  /// sealed kBusy response instead of growing the queue.
  class EventLoop {
   public:
    using ServiceFn =
        std::function<std::vector<std::byte>(std::span<const std::byte>)>;

    EventLoop(ServiceFn service, AdmissionController* admission,
              ServerId server);

    ~EventLoop();

    std::vector<std::byte> Call(std::span<const std::byte> request);

   private:
    void Loop(std::stop_token stop);

    ServiceFn service_;
    AdmissionController* admission_;
    ServerId server_;
    std::mutex mutex_;
    std::condition_variable_any cv_;
    std::deque<Job> queue_;
    std::jthread worker_;
  };

  class QueueTransport final : public Transport {
   public:
    explicit QueueTransport(ThreadedCluster* cluster) : cluster_(cluster) {}

    Result<std::vector<std::byte>> Call(
        const Endpoint& dest, std::span<const std::byte> request) override {
      if (dest.is_manager) {
        return cluster_->manager_loop_->Call(request);
      }
      if (dest.server >= cluster_->iods_.size()) {
        return NotFound("no such I/O server");
      }
      return cluster_->iod_loops_[dest.server]->Call(request);
    }

    std::uint32_t server_count() const override {
      return cluster_->server_count();
    }

   private:
    ThreadedCluster* cluster_;
  };

  Manager manager_;
  std::vector<std::unique_ptr<IoDaemon>> iods_;
  std::vector<std::unique_ptr<AdmissionController>> admissions_;
  std::unique_ptr<EventLoop> manager_loop_;
  std::vector<std::unique_ptr<EventLoop>> iod_loops_;
  std::unique_ptr<QueueTransport> transport_;
};

}  // namespace pvfs::runtime
