// Two-dimensional block-block access pattern (paper §4.2.1, Fig. 8): a
// global N x N byte array stored row-major in one file is partitioned
// into a sqrt(P) x sqrt(P) grid of tiles, one per process. A process's
// file data is its tile's rows — tile_width-byte runs strided by the array
// row length. Increasing `accesses_per_client` fragments the tile's byte
// stream into more, smaller regions while preserving the aggregate
// (adjacent sub-row pieces stay separate regions, as the benchmark
// issues them as separate accesses).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "io/access_pattern.hpp"

namespace pvfs::workloads {

struct BlockBlockConfig {
  ByteCount total_bytes = kGiB;   // must be a perfect square of bytes
  std::uint32_t clients = 4;      // must be a perfect square
  std::uint64_t accesses_per_client = 1000;

  /// Side of the global byte array (rows == row bytes == side).
  ByteCount Side() const;
  /// Grid dimension q = sqrt(clients).
  std::uint32_t GridDim() const;
};

/// The pattern for rank `rank`; tiles are balanced when side or clients do
/// not divide evenly (earlier rows/cols get the extra bytes).
io::AccessPattern BlockBlockPattern(const BlockBlockConfig& config,
                                    Rank rank);

}  // namespace pvfs::workloads
