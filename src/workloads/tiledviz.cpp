#include "workloads/tiledviz.hpp"

#include <cassert>

namespace pvfs::workloads {

io::AccessPattern TiledVizPattern(const TiledVizConfig& config, Rank rank) {
  assert(rank < config.clients());
  const std::uint32_t tile_row = rank / config.tiles_x;
  const std::uint32_t tile_col = rank % config.tiles_x;

  // Top-left pixel of this tile on the wall; overlaps mean neighbouring
  // tiles re-read the shared bands.
  const std::uint64_t origin_x =
      static_cast<std::uint64_t>(tile_col) * (config.tile_w - config.overlap_x);
  const std::uint64_t origin_y =
      static_cast<std::uint64_t>(tile_row) * (config.tile_h - config.overlap_y);
  const ByteCount bpp = config.bytes_per_pixel;
  const std::uint64_t wall_w = config.WallWidth();

  ExtentList file;
  file.reserve(config.tile_h);
  for (std::uint32_t row = 0; row < config.tile_h; ++row) {
    FileOffset at = ((origin_y + row) * wall_w + origin_x) * bpp;
    file.push_back(Extent{at, static_cast<ByteCount>(config.tile_w) * bpp});
  }
  return io::AccessPattern::ContiguousMemory(std::move(file));
}

}  // namespace pvfs::workloads
