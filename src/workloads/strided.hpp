// Nested-strided access pattern, after the workload characterization
// studies the paper builds on (Nieuwejaar & Kotz et al. found that most
// parallel scientific file accesses are simple or nested strided): an
// innermost block repeated at a stride, that whole group repeated at an
// outer stride, and so on.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "io/access_pattern.hpp"

namespace pvfs::workloads {

struct NestedStridedConfig {
  struct Level {
    std::uint64_t count = 1;  // repetitions at this nesting level
    ByteCount stride = 0;     // bytes between repetition starts
  };

  FileOffset base = 0;
  /// Outermost level first; empty means a single block at `base`.
  std::vector<Level> levels;
  ByteCount block_bytes = 0;  // innermost contiguous run

  std::uint64_t RegionCount() const {
    std::uint64_t n = block_bytes > 0 ? 1 : 0;
    for (const Level& level : levels) n *= level.count;
    return n;
  }
  ByteCount TotalBytes() const { return RegionCount() * block_bytes; }
};

/// The file regions of the pattern, in traversal order (outer levels
/// slowest), with file-adjacent runs coalesced.
ExtentList NestedStridedRegions(const NestedStridedConfig& config);

/// Pattern with contiguous memory.
io::AccessPattern NestedStridedPattern(const NestedStridedConfig& config);

}  // namespace pvfs::workloads
