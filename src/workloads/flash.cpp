#include "workloads/flash.hpp"

#include <cassert>

namespace pvfs::workloads {

ByteCount FlashMemOffset(const FlashConfig& config, std::uint32_t b,
                         std::uint32_t x, std::uint32_t y, std::uint32_t z,
                         std::uint32_t v) {
  const std::uint64_t gx = config.nxb + 2ull * config.nguard;
  const std::uint64_t gy = config.nyb + 2ull * config.nguard;
  const ByteCount elem_bytes = config.nvars * config.var_bytes;
  std::uint64_t element =
      (static_cast<std::uint64_t>(z + config.nguard) * gy +
       (y + config.nguard)) * gx +
      (x + config.nguard);
  return (static_cast<ByteCount>(b) * config.PaddedElements() + element) *
             elem_bytes +
         static_cast<ByteCount>(v) * config.var_bytes;
}

io::AccessPattern FlashCheckpointPattern(const FlashConfig& config,
                                         Rank rank) {
  assert(rank < config.nprocs);
  io::AccessPattern pattern;
  pattern.file.reserve(config.FileRegionsPerProc());
  pattern.memory.reserve(config.MemRegionsPerProc());

  const ByteCount chunk = config.FileChunkBytes();
  for (std::uint32_t v = 0; v < config.nvars; ++v) {
    for (std::uint32_t b = 0; b < config.blocks_per_proc; ++b) {
      FileOffset file_at =
          ((static_cast<FileOffset>(v) * config.blocks_per_proc + b) *
               config.nprocs +
           rank) *
          chunk;
      pattern.file.push_back(Extent{file_at, chunk});
      // Memory side in the same element order the file chunk stores:
      // x fastest, then y, then z.
      for (std::uint32_t z = 0; z < config.nzb; ++z) {
        for (std::uint32_t y = 0; y < config.nyb; ++y) {
          for (std::uint32_t x = 0; x < config.nxb; ++x) {
            pattern.memory.push_back(
                Extent{FlashMemOffset(config, b, x, y, z, v),
                       config.var_bytes});
          }
        }
      }
    }
  }
  return pattern;
}

}  // namespace pvfs::workloads
