// Tiled visualization I/O pattern (paper §4.4.1, Fig. 16): a display wall
// of tiles_x x tiles_y projectors renders one large frame stored row-major
// in a single file; adjacent displays overlap by a fixed number of pixels,
// so each reader pulls tile_h noncontiguous row-runs of tile_w pixels into
// a contiguous frame buffer.
//
// Paper parameters: 3x2 displays at 1024x768x24bpp with 270px horizontal /
// 128px vertical overlap -> a 2532x1408 wall, a 10,695,168-byte frame
// file, and 768 file regions of 3,072 bytes per reader.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "io/access_pattern.hpp"

namespace pvfs::workloads {

struct TiledVizConfig {
  std::uint32_t tiles_x = 3;
  std::uint32_t tiles_y = 2;
  std::uint32_t tile_w = 1024;   // pixels
  std::uint32_t tile_h = 768;    // pixels
  std::uint32_t overlap_x = 270; // pixels shared by horizontal neighbours
  std::uint32_t overlap_y = 128;
  ByteCount bytes_per_pixel = 3; // 24-bit color

  std::uint32_t clients() const { return tiles_x * tiles_y; }
  std::uint32_t WallWidth() const {
    return tiles_x * tile_w - (tiles_x - 1) * overlap_x;
  }
  std::uint32_t WallHeight() const {
    return tiles_y * tile_h - (tiles_y - 1) * overlap_y;
  }
  ByteCount FileBytes() const {
    return static_cast<ByteCount>(WallWidth()) * WallHeight() *
           bytes_per_pixel;
  }
  ByteCount TileBytes() const {
    return static_cast<ByteCount>(tile_w) * tile_h * bytes_per_pixel;
  }
};

/// Pattern of the reader driving tile `rank` (row-major tile numbering);
/// memory is the contiguous tile frame buffer.
io::AccessPattern TiledVizPattern(const TiledVizConfig& config, Rank rank);

}  // namespace pvfs::workloads
