#include "workloads/cyclic.hpp"

#include <cassert>

namespace pvfs::workloads {

io::AccessPattern CyclicPattern(const CyclicConfig& config, Rank rank) {
  assert(rank < config.clients);
  const ByteCount block = config.BlockBytes();
  assert(block > 0 && "more accesses than bytes");

  ExtentList file;
  file.reserve(config.accesses_per_client);
  const ByteCount stride = block * config.clients;
  for (std::uint64_t i = 0; i < config.accesses_per_client; ++i) {
    file.push_back(Extent{i * stride + rank * block, block});
  }
  return io::AccessPattern::ContiguousMemory(std::move(file));
}

}  // namespace pvfs::workloads
