// One-dimensional cyclic access pattern (paper §4.2.1, Fig. 7): a global
// 2-D array stored row-major in one file; each of `clients` processes owns
// an equal share of columns, so its file data is `accesses_per_client`
// blocks of `block` bytes, strided by clients*block — a variable-grained
// interleaved access. Memory is contiguous per process.
#pragma once

#include "common/types.hpp"
#include "io/access_pattern.hpp"

namespace pvfs::workloads {

struct CyclicConfig {
  ByteCount total_bytes = kGiB;  // aggregate across all clients (paper: 1 GB)
  std::uint32_t clients = 8;
  std::uint64_t accesses_per_client = 1000;

  /// Block (access) size; the benchmark varies accesses while holding the
  /// aggregate fixed, so the block shrinks as accesses grow. Zero
  /// accesses describe an empty pattern.
  ByteCount BlockBytes() const {
    ByteCount denom =
        static_cast<ByteCount>(clients) * accesses_per_client;
    return denom == 0 ? 0 : total_bytes / denom;
  }
  /// Aggregate actually covered after rounding block size down.
  ByteCount EffectiveTotal() const {
    return BlockBytes() * clients * accesses_per_client;
  }
  ByteCount BytesPerClient() const {
    return BlockBytes() * accesses_per_client;
  }
};

/// The pattern rank `rank` (< clients) reads or writes.
io::AccessPattern CyclicPattern(const CyclicConfig& config, Rank rank);

}  // namespace pvfs::workloads
