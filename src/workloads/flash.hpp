// FLASH I/O checkpoint pattern (paper §4.3.1, Figs. 13-14): each process
// holds `blocks_per_proc` 3-D AMR blocks; a block is an interior
// nxb x nyb x nzb element grid surrounded by `nguard` guard cells on every
// side, and every element carries `nvars` interleaved 8-byte variables.
//
// The checkpoint writes interior elements only, reorganized on disk as:
//   variable-major, then block, then process:
//     file_offset(v, b, p) = ((v*blocks + b)*nprocs + p) * chunk
//   with chunk = nxb*nyb*nzb*var_bytes (4096 bytes by default).
//
// This makes the access noncontiguous in memory AND file: per process
//   memory regions = blocks * nxb*nyb*nzb * nvars  (983,040) of 8 bytes,
//   file regions   = blocks * nvars               (1,920)  of 4,096 bytes
// — the request-count arithmetic in paper §4.3.1.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "io/access_pattern.hpp"

namespace pvfs::workloads {

struct FlashConfig {
  std::uint32_t nprocs = 1;
  std::uint32_t blocks_per_proc = 80;
  std::uint32_t nxb = 8;
  std::uint32_t nyb = 8;
  std::uint32_t nzb = 8;
  std::uint32_t nguard = 4;
  std::uint32_t nvars = 24;
  ByteCount var_bytes = 8;

  std::uint64_t InteriorElements() const {
    return static_cast<std::uint64_t>(nxb) * nyb * nzb;
  }
  std::uint64_t PaddedElements() const {
    std::uint64_t gx = nxb + 2ull * nguard;
    std::uint64_t gy = nyb + 2ull * nguard;
    std::uint64_t gz = nzb + 2ull * nguard;
    return gx * gy * gz;
  }
  /// Bytes of one (variable, block, process) chunk in the file.
  ByteCount FileChunkBytes() const { return InteriorElements() * var_bytes; }
  /// Checkpoint bytes contributed per process (7.5 MB at defaults).
  ByteCount BytesPerProc() const {
    return static_cast<ByteCount>(blocks_per_proc) * nvars * FileChunkBytes();
  }
  ByteCount FileBytes() const { return BytesPerProc() * nprocs; }
  /// In-memory buffer bytes per process (guard cells included).
  ByteCount MemBytesPerProc() const {
    return static_cast<ByteCount>(blocks_per_proc) * PaddedElements() *
           nvars * var_bytes;
  }
  std::uint64_t MemRegionsPerProc() const {
    return static_cast<std::uint64_t>(blocks_per_proc) * InteriorElements() *
           nvars;
  }
  std::uint64_t FileRegionsPerProc() const {
    return static_cast<std::uint64_t>(blocks_per_proc) * nvars;
  }
};

/// Checkpoint access pattern of rank `rank`: memory regions walk the file
/// order (variable-major), so each region is one element's variable
/// (var_bytes long) at its padded in-block position.
io::AccessPattern FlashCheckpointPattern(const FlashConfig& config,
                                         Rank rank);

/// Memory offset of variable `v` of interior element (x, y, z) of block
/// `b` within the process buffer (x fastest, guard cells padded).
ByteCount FlashMemOffset(const FlashConfig& config, std::uint32_t b,
                         std::uint32_t x, std::uint32_t y, std::uint32_t z,
                         std::uint32_t v);

}  // namespace pvfs::workloads
