#include "workloads/blockblock.hpp"

#include <cassert>
#include <cmath>

namespace pvfs::workloads {

namespace {

std::uint64_t IntSqrt(std::uint64_t n) {
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n)));
  while (r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

/// Balanced 1-D partition: element range of part `i` of `parts` over `n`.
struct Range {
  std::uint64_t begin;
  std::uint64_t end;
};
Range PartitionRange(std::uint64_t n, std::uint32_t parts, std::uint32_t i) {
  std::uint64_t base = n / parts;
  std::uint64_t extra = n % parts;
  std::uint64_t begin = i * base + std::min<std::uint64_t>(i, extra);
  std::uint64_t len = base + (i < extra ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace

ByteCount BlockBlockConfig::Side() const {
  ByteCount side = IntSqrt(total_bytes);
  assert(side * side == total_bytes && "total_bytes must be a square");
  return side;
}

std::uint32_t BlockBlockConfig::GridDim() const {
  auto q = static_cast<std::uint32_t>(IntSqrt(clients));
  assert(q * q == clients && "clients must be a perfect square");
  return q;
}

io::AccessPattern BlockBlockPattern(const BlockBlockConfig& config,
                                    Rank rank) {
  assert(rank < config.clients);
  const ByteCount side = config.Side();
  const std::uint32_t q = config.GridDim();
  const std::uint32_t tile_row = rank / q;
  const std::uint32_t tile_col = rank % q;

  Range rows = PartitionRange(side, q, tile_row);
  Range cols = PartitionRange(side, q, tile_col);
  const ByteCount row_bytes = cols.end - cols.begin;
  const ByteCount tile_bytes = (rows.end - rows.begin) * row_bytes;

  // Fragment size targeted by the access count (the benchmark's knob);
  // never larger than a row (rows are the natural contiguity limit) and
  // at least one byte.
  ByteCount frag = tile_bytes / config.accesses_per_client;
  if (frag == 0) frag = 1;
  if (frag > row_bytes) frag = row_bytes;

  ExtentList file;
  file.reserve((tile_bytes + frag - 1) / frag);
  for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
    FileOffset row_start = r * side + cols.begin;
    for (ByteCount done = 0; done < row_bytes;) {
      ByteCount take = std::min<ByteCount>(frag, row_bytes - done);
      file.push_back(Extent{row_start + done, take});
      done += take;
    }
  }
  return io::AccessPattern::ContiguousMemory(std::move(file));
}

}  // namespace pvfs::workloads
