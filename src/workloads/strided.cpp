#include "workloads/strided.hpp"

namespace pvfs::workloads {

namespace {

void Emit(const NestedStridedConfig& config, size_t level, FileOffset at,
          ExtentList& out) {
  if (level == config.levels.size()) {
    if (config.block_bytes == 0) return;
    if (!out.empty() && out.back().end() == at) {
      out.back().length += config.block_bytes;
    } else {
      out.push_back(Extent{at, config.block_bytes});
    }
    return;
  }
  const NestedStridedConfig::Level& l = config.levels[level];
  for (std::uint64_t i = 0; i < l.count; ++i) {
    Emit(config, level + 1, at + i * l.stride, out);
  }
}

}  // namespace

ExtentList NestedStridedRegions(const NestedStridedConfig& config) {
  ExtentList out;
  out.reserve(config.RegionCount());
  Emit(config, 0, config.base, out);
  return out;
}

io::AccessPattern NestedStridedPattern(const NestedStridedConfig& config) {
  return io::AccessPattern::ContiguousMemory(NestedStridedRegions(config));
}

}  // namespace pvfs::workloads
