// Byte-buffer helpers used throughout tests and the functional file system:
// deterministic content generation and verification so data-movement bugs
// surface as specific mismatched offsets.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/extent.hpp"
#include "common/types.hpp"

namespace pvfs {

using ByteBuffer = std::vector<std::byte>;

/// Deterministic byte for (seed, position): lets a reader verify any region
/// of a generated file without materializing the whole file.
std::byte PatternByte(std::uint64_t seed, FileOffset position);

/// Fill buf[i] = PatternByte(seed, base + i).
void FillPattern(std::span<std::byte> buf, std::uint64_t seed,
                 FileOffset base);

/// First position (relative to buf start) where buf deviates from the
/// pattern, or nullopt if it matches everywhere.
std::optional<size_t> FindPatternMismatch(std::span<const std::byte> buf,
                                          std::uint64_t seed, FileOffset base);

/// Gather: copy the listed regions of `src` into a packed buffer, in order.
ByteBuffer GatherExtents(std::span<const std::byte> src,
                         std::span<const Extent> extents);

/// Scatter: distribute a packed buffer into the listed regions of `dst`,
/// in order. Requires TotalBytes(extents) == packed.size() and all regions
/// inside dst.
void ScatterExtents(std::span<const std::byte> packed,
                    std::span<const Extent> extents, std::span<std::byte> dst);

}  // namespace pvfs
