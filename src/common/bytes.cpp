#include "common/bytes.hpp"

#include <cassert>
#include <cstring>

namespace pvfs {

std::byte PatternByte(std::uint64_t seed, FileOffset position) {
  std::uint64_t z = seed ^ (position * 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return std::byte{static_cast<std::uint8_t>(z >> 56)};
}

void FillPattern(std::span<std::byte> buf, std::uint64_t seed,
                 FileOffset base) {
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = PatternByte(seed, base + i);
  }
}

std::optional<size_t> FindPatternMismatch(std::span<const std::byte> buf,
                                          std::uint64_t seed,
                                          FileOffset base) {
  for (size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != PatternByte(seed, base + i)) return i;
  }
  return std::nullopt;
}

ByteBuffer GatherExtents(std::span<const std::byte> src,
                         std::span<const Extent> extents) {
  ByteBuffer out;
  out.reserve(TotalBytes(extents));
  for (const Extent& e : extents) {
    assert(e.end() <= src.size());
    out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(e.offset),
               src.begin() + static_cast<std::ptrdiff_t>(e.end()));
  }
  return out;
}

void ScatterExtents(std::span<const std::byte> packed,
                    std::span<const Extent> extents, std::span<std::byte> dst) {
  assert(TotalBytes(extents) == packed.size());
  size_t pos = 0;
  for (const Extent& e : extents) {
    assert(e.end() <= dst.size());
    std::memcpy(dst.data() + e.offset, packed.data() + pos, e.length);
    pos += e.length;
  }
}

}  // namespace pvfs
