// Extent algebra: contiguous byte regions and ordered lists of them.
//
// Extent lists describe noncontiguous accesses on both the memory side and
// the file side of an operation (paper Fig. 3). Order is semantically
// meaningful: the i-th byte of the concatenated memory regions corresponds
// to the i-th byte of the concatenated file regions. Helpers that would
// destroy that correspondence (sorting, merging across the sequence) are
// provided separately from order-preserving ones.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace pvfs {

/// A contiguous byte region [offset, offset + length).
struct Extent {
  FileOffset offset = 0;
  ByteCount length = 0;

  FileOffset end() const { return offset + length; }
  bool empty() const { return length == 0; }

  bool contains(FileOffset pos) const {
    return pos >= offset && pos < end();
  }
  bool overlaps(const Extent& other) const {
    return offset < other.end() && other.offset < end();
  }

  friend bool operator==(const Extent&, const Extent&) = default;
};

/// Ordered list of extents; may contain adjacent or even overlapping
/// regions depending on the producer.
using ExtentList = std::vector<Extent>;

/// Sum of region lengths.
ByteCount TotalBytes(std::span<const Extent> extents);

/// True if extents are sorted by offset and pairwise disjoint.
bool IsSortedDisjoint(std::span<const Extent> extents);

/// True if extents are sorted and neither overlap nor touch.
bool IsSortedStrictlyDisjoint(std::span<const Extent> extents);

/// Smallest extent covering every input region; nullopt for an empty list
/// (zero-length regions are ignored).
std::optional<Extent> BoundingExtent(std::span<const Extent> extents);

/// Order-preserving cleanup: drop zero-length regions and merge runs that
/// are exactly adjacent in sequence (a.end() == b.offset). The byte-stream
/// correspondence of the list is unchanged.
ExtentList CoalesceAdjacent(std::span<const Extent> extents);

/// Canonical form for set-like use: sort by offset and merge overlapping or
/// touching regions. Destroys sequence semantics; use only where the list
/// denotes a byte *set* (e.g. sieving windows, cache bookkeeping).
ExtentList NormalizeSet(ExtentList extents);

/// Intersection of two sorted-disjoint extent sets.
ExtentList IntersectSets(std::span<const Extent> a, std::span<const Extent> b);

/// Clip `extents` (order-preserving) to the window, dropping parts outside.
ExtentList ClipToWindow(std::span<const Extent> extents, const Extent& window);

/// The sub-stream [skip, skip + length) of an ordered extent list's byte
/// stream, as an extent list (order-preserving; clamps at stream end).
ExtentList SliceStream(std::span<const Extent> extents, ByteCount skip,
                       ByteCount length);

/// One matched piece of a noncontiguous transfer: `length` bytes at
/// `mem_offset` in the user buffer correspond to `file_offset` in the file.
struct Segment {
  ByteCount mem_offset = 0;
  FileOffset file_offset = 0;
  ByteCount length = 0;

  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Walk a memory extent list and a file extent list in parallel (both taken
/// in sequence order) and emit maximal segments where both sides are
/// contiguous — the flattening step every noncontiguous method starts from
/// (equivalent to ROMIO's datatype flattening walk).
///
/// Fails with kInvalidArgument if the two lists describe different byte
/// totals.
Result<std::vector<Segment>> MatchSegments(std::span<const Extent> memory,
                                           std::span<const Extent> file);

/// Debug rendering, e.g. "[0,4096) [8192,12288)".
std::string ToString(std::span<const Extent> extents);

}  // namespace pvfs
