// Minimal leveled logger. Disabled below kWarn by default so benchmarks and
// tests stay quiet; tools flip the level for debugging.
#pragma once

#include <sstream>
#include <string>

namespace pvfs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define PVFS_LOG(level)                                  \
  if (static_cast<int>(::pvfs::LogLevel::level) <        \
      static_cast<int>(::pvfs::GetLogLevel())) {         \
  } else                                                 \
    ::pvfs::detail::LogLine(::pvfs::LogLevel::level)

}  // namespace pvfs
