#include "common/status.hpp"

namespace pvfs {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kCorruption: return "CORRUPTION";
    case ErrorCode::kBusy: return "BUSY";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out{ErrorCodeName(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pvfs
