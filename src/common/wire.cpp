#include "common/wire.hpp"

namespace pvfs {

Result<std::uint8_t> WireReader::U8() { return ReadLe<std::uint8_t>(); }
Result<std::uint16_t> WireReader::U16() { return ReadLe<std::uint16_t>(); }
Result<std::uint32_t> WireReader::U32() { return ReadLe<std::uint32_t>(); }
Result<std::uint64_t> WireReader::U64() { return ReadLe<std::uint64_t>(); }

Result<std::int64_t> WireReader::I64() {
  PVFS_ASSIGN_OR_RETURN(std::uint64_t raw, ReadLe<std::uint64_t>());
  return static_cast<std::int64_t>(raw);
}

Result<std::vector<std::byte>> WireReader::Bytes() {
  PVFS_ASSIGN_OR_RETURN(std::uint32_t n, U32());
  return Raw(n);
}

Result<std::string> WireReader::String() {
  PVFS_ASSIGN_OR_RETURN(std::vector<std::byte> raw, Bytes());
  std::string s(raw.size(), '\0');
  std::memcpy(s.data(), raw.data(), raw.size());
  return s;
}

Result<std::vector<std::byte>> WireReader::Raw(size_t n) {
  if (remaining() < n) {
    return ProtocolError("wire: truncated payload");
  }
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace pvfs
