#include "common/wire.hpp"

#include <array>

#include "common/request_id.hpp"

namespace pvfs {

namespace {

/// Reflected CRC32C lookup table, built once at static initialization.
constexpr std::array<std::uint32_t, 256> MakeCrc32cTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32cTable = MakeCrc32cTable();

}  // namespace

std::uint32_t Crc32c(std::span<const std::byte> data, std::uint32_t crc) {
  crc = ~crc;
  for (std::byte b : data) {
    crc = kCrc32cTable[(crc ^ std::to_integer<std::uint32_t>(b)) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}

std::vector<std::byte> SealFrame(std::vector<std::byte> frame) {
  return SealFrameWithId(std::move(frame), obs::CurrentRequestId());
}

std::vector<std::byte> SealFrameWithId(std::vector<std::byte> frame,
                                       std::uint64_t request_id) {
  for (size_t i = 0; i < kFrameIdBytes; ++i) {
    frame.push_back(
        std::byte{static_cast<std::uint8_t>(request_id >> (8 * i))});
  }
  std::uint32_t crc = Crc32c(frame);
  for (size_t i = 0; i < kFrameCrcBytes; ++i) {
    frame.push_back(std::byte{static_cast<std::uint8_t>(crc >> (8 * i))});
  }
  return frame;
}

Result<OpenedFrame> OpenFrameWithId(std::span<const std::byte> frame) {
  if (frame.size() < kFrameTrailerBytes) {
    return CorruptionError("frame shorter than its trailer");
  }
  std::span<const std::byte> sealed =
      frame.first(frame.size() - kFrameCrcBytes);
  std::uint32_t expect = 0;
  for (size_t i = 0; i < kFrameCrcBytes; ++i) {
    expect |= std::to_integer<std::uint32_t>(frame[sealed.size() + i])
              << (8 * i);
  }
  if (Crc32c(sealed) != expect) {
    return CorruptionError("frame CRC32C mismatch");
  }
  OpenedFrame out;
  out.payload = sealed.first(sealed.size() - kFrameIdBytes);
  for (size_t i = 0; i < kFrameIdBytes; ++i) {
    out.request_id |=
        static_cast<std::uint64_t>(
            std::to_integer<std::uint8_t>(sealed[out.payload.size() + i]))
        << (8 * i);
  }
  return out;
}

Result<std::span<const std::byte>> OpenFrame(
    std::span<const std::byte> frame) {
  PVFS_ASSIGN_OR_RETURN(OpenedFrame opened, OpenFrameWithId(frame));
  return opened.payload;
}

Result<std::uint8_t> WireReader::U8() { return ReadLe<std::uint8_t>(); }
Result<std::uint16_t> WireReader::U16() { return ReadLe<std::uint16_t>(); }
Result<std::uint32_t> WireReader::U32() { return ReadLe<std::uint32_t>(); }
Result<std::uint64_t> WireReader::U64() { return ReadLe<std::uint64_t>(); }

Result<std::int64_t> WireReader::I64() {
  PVFS_ASSIGN_OR_RETURN(std::uint64_t raw, ReadLe<std::uint64_t>());
  return static_cast<std::int64_t>(raw);
}

Result<std::vector<std::byte>> WireReader::Bytes() {
  PVFS_ASSIGN_OR_RETURN(std::uint32_t n, U32());
  // Validate the prefix against the bytes actually present BEFORE any
  // allocation happens: a hostile/corrupt length (e.g. 0xFFFFFFFF) must
  // yield a typed decode error, never a multi-GB allocation attempt.
  if (n > remaining()) {
    return ProtocolError("wire: length prefix exceeds remaining bytes");
  }
  return Raw(n);
}

Result<std::string> WireReader::String() {
  PVFS_ASSIGN_OR_RETURN(std::vector<std::byte> raw, Bytes());
  std::string s(raw.size(), '\0');
  std::memcpy(s.data(), raw.data(), raw.size());
  return s;
}

Result<std::vector<std::byte>> WireReader::Raw(size_t n) {
  if (remaining() < n) {
    return ProtocolError("wire: truncated payload");
  }
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace pvfs
