// Fundamental scalar types shared across the pvfs-listio code base.
#pragma once

#include <cstdint>
#include <cstddef>

namespace pvfs {

/// Byte offset within a logical or physical file.
using FileOffset = std::uint64_t;

/// Byte count for file and memory regions.
using ByteCount = std::uint64_t;

/// Opaque file handle assigned by the manager at create/open time.
using FileHandle = std::uint64_t;

/// Index of an I/O server (0-based position in the manager's server table).
using ServerId = std::uint32_t;

/// Rank of a client process within a compute-side process group.
using Rank = std::uint32_t;

/// Simulated time in nanoseconds (the DES clock unit).
using SimTimeNs = std::uint64_t;

inline constexpr SimTimeNs kNsPerSec = 1'000'000'000ull;
inline constexpr SimTimeNs kNsPerMs = 1'000'000ull;
inline constexpr SimTimeNs kNsPerUs = 1'000ull;

/// Convert seconds (double) to the integer nanosecond clock, rounding.
constexpr SimTimeNs SecondsToNs(double s) {
  return static_cast<SimTimeNs>(s * static_cast<double>(kNsPerSec) + 0.5);
}

/// Convert the integer nanosecond clock back to seconds for reporting.
constexpr double NsToSeconds(SimTimeNs ns) {
  return static_cast<double>(ns) / static_cast<double>(kNsPerSec);
}

inline constexpr ByteCount kKiB = 1024ull;
inline constexpr ByteCount kMiB = 1024ull * 1024ull;
inline constexpr ByteCount kGiB = 1024ull * 1024ull * 1024ull;

}  // namespace pvfs
