#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pvfs {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace detail {
void Emit(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}
}  // namespace detail

}  // namespace pvfs
