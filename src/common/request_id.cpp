#include "common/request_id.hpp"

#include <atomic>

namespace pvfs::obs {

namespace {

std::atomic<std::uint64_t> g_next_request_id{1};
thread_local std::uint64_t t_current_request_id = 0;

}  // namespace

std::uint64_t NextRequestId() {
  return g_next_request_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t CurrentRequestId() { return t_current_request_id; }

void SetCurrentRequestId(std::uint64_t id) { t_current_request_id = id; }

}  // namespace pvfs::obs
