// Request-id context: the causality token the observability layer threads
// through the wire framing (src/common/wire) so spans recorded on the
// client, the manager and the I/O daemons for one logical exchange can be
// stitched together afterwards.
//
// The id travels inside the sealed frame (behind the CRC32C trailer, see
// wire.hpp), never inside the message encodings, so the paper's wire-size
// arithmetic (IoRequest::WireBytes, the 64-region Ethernet-frame fit) is
// untouched. Propagation is by thread-local ambient context: a client
// allocates an id per call and seals it into the request; a daemon opening
// the frame installs the id for the duration of its handler, so every span
// (and the sealed response) carries it automatically.
//
// This lives in pvfs_common (not src/obs) because the wire layer consumes
// it; the span layer in src/obs builds on top.
#pragma once

#include <cstdint>

namespace pvfs::obs {

/// A fresh, process-unique request id (never 0; 0 means "no id").
std::uint64_t NextRequestId();

/// The ambient request id of the calling thread (0 when none is set).
std::uint64_t CurrentRequestId();

/// Install `id` as the calling thread's ambient request id.
void SetCurrentRequestId(std::uint64_t id);

/// Scoped install/restore of the ambient request id.
class RequestIdScope {
 public:
  explicit RequestIdScope(std::uint64_t id)
      : saved_(CurrentRequestId()) {
    SetCurrentRequestId(id);
  }
  ~RequestIdScope() { SetCurrentRequestId(saved_); }
  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace pvfs::obs
