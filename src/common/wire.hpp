// Little-endian wire serialization for the PVFS request protocol.
//
// PVFS 1.x exchanged fixed C structs over TCP; we keep an explicit
// byte-level encoding so the protocol has a defined wire size — the
// 64-region list-I/O limit exists precisely so request + trailing data fit
// one 1500-byte Ethernet frame (paper §3.3), and tests assert that from
// these encoders.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace pvfs {

// ---- CRC32C integrity framing ----------------------------------------------
//
// Every protocol frame (request and response envelope, including trailing
// data payloads) travels sealed: the encoded message, an 8-byte
// little-endian observability request id, then a 4-byte little-endian
// CRC32C of everything before it. Daemons and clients verify the trailer
// before decoding; a mismatch is a typed kCorruption error, the retryable
// signal the client's backoff loop already understands. Both the checksum
// and the request id live at the framing layer, not in the message
// encodings, so the paper's wire-size arithmetic (IoRequest::WireBytes,
// the 64-region Ethernet-frame fit) and the simulator's 2002-era
// unchecksummed wire model are unchanged. The request id stitches
// client -> manager/iod causality for span tracing (src/obs/span.hpp);
// it is 0 when the sender had no ambient id.

/// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected) of `data`, seeded
/// with `crc` for incremental use (pass the previous return value).
std::uint32_t Crc32c(std::span<const std::byte> data, std::uint32_t crc = 0);

/// Size of the CRC portion of the per-frame trailer.
inline constexpr size_t kFrameCrcBytes = 4;
/// Size of the request-id portion of the per-frame trailer.
inline constexpr size_t kFrameIdBytes = 8;
/// Total framing overhead per sealed frame.
inline constexpr size_t kFrameTrailerBytes = kFrameIdBytes + kFrameCrcBytes;

/// Append the request-id + CRC32C trailer to an encoded frame, stamping
/// the calling thread's ambient request id (obs::CurrentRequestId()).
std::vector<std::byte> SealFrame(std::vector<std::byte> frame);

/// As SealFrame, but with an explicit request id.
std::vector<std::byte> SealFrameWithId(std::vector<std::byte> frame,
                                       std::uint64_t request_id);

/// Verify and strip a sealed frame's trailer. Returns a view of the
/// payload (borrowing `frame`'s storage) or kCorruption if the frame is
/// shorter than the trailer or the checksum mismatches.
Result<std::span<const std::byte>> OpenFrame(std::span<const std::byte> frame);

/// A verified frame: the payload view plus the request id the sender
/// sealed in.
struct OpenedFrame {
  std::span<const std::byte> payload;
  std::uint64_t request_id = 0;
};

/// As OpenFrame, but also returns the sealed-in request id.
Result<OpenedFrame> OpenFrameWithId(std::span<const std::byte> frame);

/// Append-only little-endian encoder.
class WireWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(std::byte{v}); }
  void U16(std::uint16_t v) { AppendLe(v); }
  void U32(std::uint32_t v) { AppendLe(v); }
  void U64(std::uint64_t v) { AppendLe(v); }
  void I64(std::int64_t v) { AppendLe(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u32) byte string.
  void Bytes(std::span<const std::byte> data) {
    U32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void String(std::string_view s) {
    Bytes(std::as_bytes(std::span{s.data(), s.size()}));
  }

  /// Raw append with no length prefix (for trailing data payloads).
  void Raw(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  std::span<const std::byte> data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::vector<std::byte> Take() { return std::move(buf_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
    }
  }

  std::vector<std::byte> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer.
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  Result<std::uint8_t> U8();
  Result<std::uint16_t> U16();
  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  Result<std::int64_t> I64();
  Result<std::vector<std::byte>> Bytes();
  Result<std::string> String();
  /// Consume exactly n raw bytes (no length prefix).
  Result<std::vector<std::byte>> Raw(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return remaining() == 0; }

 private:
  template <typename T>
  Result<T> ReadLe() {
    if (remaining() < sizeof(T)) {
      return ProtocolError("wire: truncated message");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(std::to_integer<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace pvfs
