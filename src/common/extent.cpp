#include "common/extent.hpp"

#include <algorithm>

namespace pvfs {

ByteCount TotalBytes(std::span<const Extent> extents) {
  ByteCount total = 0;
  for (const Extent& e : extents) total += e.length;
  return total;
}

bool IsSortedDisjoint(std::span<const Extent> extents) {
  for (size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].offset < extents[i - 1].end()) return false;
  }
  return true;
}

bool IsSortedStrictlyDisjoint(std::span<const Extent> extents) {
  for (size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].offset <= extents[i - 1].end()) return false;
  }
  return true;
}

std::optional<Extent> BoundingExtent(std::span<const Extent> extents) {
  std::optional<Extent> bound;
  for (const Extent& e : extents) {
    if (e.empty()) continue;
    if (!bound) {
      bound = e;
      continue;
    }
    FileOffset lo = std::min(bound->offset, e.offset);
    FileOffset hi = std::max(bound->end(), e.end());
    bound = Extent{lo, hi - lo};
  }
  return bound;
}

ExtentList CoalesceAdjacent(std::span<const Extent> extents) {
  ExtentList out;
  out.reserve(extents.size());
  for (const Extent& e : extents) {
    if (e.empty()) continue;
    if (!out.empty() && out.back().end() == e.offset) {
      out.back().length += e.length;
    } else {
      out.push_back(e);
    }
  }
  return out;
}

ExtentList NormalizeSet(ExtentList extents) {
  std::erase_if(extents, [](const Extent& e) { return e.empty(); });
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) {
              return a.offset < b.offset ||
                     (a.offset == b.offset && a.length < b.length);
            });
  ExtentList out;
  out.reserve(extents.size());
  for (const Extent& e : extents) {
    if (!out.empty() && e.offset <= out.back().end()) {
      out.back().length =
          std::max(out.back().end(), e.end()) - out.back().offset;
    } else {
      out.push_back(e);
    }
  }
  return out;
}

ExtentList IntersectSets(std::span<const Extent> a, std::span<const Extent> b) {
  ExtentList out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    FileOffset lo = std::max(a[i].offset, b[j].offset);
    FileOffset hi = std::min(a[i].end(), b[j].end());
    if (lo < hi) out.push_back(Extent{lo, hi - lo});
    if (a[i].end() < b[j].end()) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

ExtentList ClipToWindow(std::span<const Extent> extents, const Extent& window) {
  ExtentList out;
  for (const Extent& e : extents) {
    FileOffset lo = std::max(e.offset, window.offset);
    FileOffset hi = std::min(e.end(), window.end());
    if (lo < hi) out.push_back(Extent{lo, hi - lo});
  }
  return out;
}

ExtentList SliceStream(std::span<const Extent> extents, ByteCount skip,
                       ByteCount length) {
  ExtentList out;
  ByteCount pos = 0;  // stream position of the current extent's start
  for (const Extent& e : extents) {
    if (length == 0) break;
    ByteCount stream_end = pos + e.length;
    if (stream_end > skip) {
      ByteCount into = skip > pos ? skip - pos : 0;
      ByteCount take = std::min<ByteCount>(e.length - into, length);
      out.push_back(Extent{e.offset + into, take});
      skip += take;
      length -= take;
    }
    pos = stream_end;
  }
  return out;
}

Result<std::vector<Segment>> MatchSegments(std::span<const Extent> memory,
                                           std::span<const Extent> file) {
  if (TotalBytes(memory) != TotalBytes(file)) {
    return InvalidArgument("memory and file extent lists describe different "
                           "byte totals");
  }
  std::vector<Segment> segments;
  size_t mi = 0;
  size_t fi = 0;
  ByteCount mem_used = 0;  // bytes consumed from memory[mi]
  ByteCount file_used = 0; // bytes consumed from file[fi]
  while (mi < memory.size() && fi < file.size()) {
    if (memory[mi].length == mem_used) {
      ++mi;
      mem_used = 0;
      continue;
    }
    if (file[fi].length == file_used) {
      ++fi;
      file_used = 0;
      continue;
    }
    ByteCount len = std::min(memory[mi].length - mem_used,
                             file[fi].length - file_used);
    Segment seg{memory[mi].offset + mem_used, file[fi].offset + file_used,
                len};
    // Grow the previous segment instead when both sides continue
    // contiguously; keeps the segment list minimal.
    if (!segments.empty()) {
      Segment& prev = segments.back();
      if (prev.mem_offset + prev.length == seg.mem_offset &&
          prev.file_offset + prev.length == seg.file_offset) {
        prev.length += len;
        mem_used += len;
        file_used += len;
        continue;
      }
    }
    segments.push_back(seg);
    mem_used += len;
    file_used += len;
  }
  return segments;
}

std::string ToString(std::span<const Extent> extents) {
  std::string out;
  for (const Extent& e : extents) {
    if (!out.empty()) out += ' ';
    out += '[';
    out += std::to_string(e.offset);
    out += ',';
    out += std::to_string(e.end());
    out += ')';
  }
  return out;
}

}  // namespace pvfs
