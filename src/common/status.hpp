// Error handling primitives: Status for fallible void operations and
// Result<T> for fallible value-returning operations. Modeled on
// absl::Status / std::expected, kept dependency-free.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace pvfs {

/// Error taxonomy for the file system and its substrates.
enum class ErrorCode : int {
  kOk = 0,
  kInvalidArgument,   // malformed request, bad extents, size mismatch
  kNotFound,          // no such file / handle
  kAlreadyExists,     // create over an existing name
  kOutOfRange,        // access beyond device or configured limits
  kProtocol,          // wire decode failure / unexpected message
  kResourceExhausted, // queue or capacity limits exceeded
  kFailedPrecondition,// operation on closed file, wrong state
  kInternal,          // invariant violation inside the library
  kUnimplemented,
  kUnavailable,       // endpoint unreachable / daemon down (transient)
  kDeadlineExceeded,  // per-request timeout or retry budget exhausted
  kCorruption,        // checksum mismatch: frame or stored chunk damaged
  kBusy,              // admission queue full: retry after backoff
};

/// Human-readable name of an ErrorCode ("kOk" -> "OK", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// Status: either OK or an error code plus a diagnostic message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status ProtocolError(std::string msg) {
  return {ErrorCode::kProtocol, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status DeadlineExceeded(std::string msg) {
  return {ErrorCode::kDeadlineExceeded, std::move(msg)};
}
inline Status CorruptionError(std::string msg) {
  return {ErrorCode::kCorruption, std::move(msg)};
}
inline Status Busy(std::string msg) {
  return {ErrorCode::kBusy, std::move(msg)};
}

/// True for error codes a retry of an idempotent request may clear:
/// transient unavailability, timeouts, and garbled (droppable) responses.
/// A corrupt frame is equivalent to a lost frame — resending an idempotent
/// request over a clean link clears it — so kCorruption is retryable too.
/// kBusy is the admission controller's typed shed signal: the server is up
/// but its bounded queue is full, and the client's decorrelated-jitter
/// backoff is what spreads the resends out (docs/server-scheduling.md).
inline bool IsRetryable(ErrorCode code) {
  return code == ErrorCode::kUnavailable ||
         code == ErrorCode::kDeadlineExceeded ||
         code == ErrorCode::kProtocol ||
         code == ErrorCode::kCorruption ||
         code == ErrorCode::kBusy;
}

/// Result<T>: a value or a non-OK Status. Accessing value() on an error
/// result is a programming error (asserted in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(implicit)
    assert(!std::get<Status>(data_).ok() &&
           "Result<T> must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagate a non-OK Status from an expression (absl-style).
#define PVFS_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::pvfs::Status pvfs_status_ = (expr);         \
    if (!pvfs_status_.ok()) return pvfs_status_;  \
  } while (0)

/// Evaluate a Result expression, assign its value or propagate its error.
#define PVFS_CONCAT_INNER_(a, b) a##b
#define PVFS_CONCAT_(a, b) PVFS_CONCAT_INNER_(a, b)
#define PVFS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()
#define PVFS_ASSIGN_OR_RETURN(lhs, expr) \
  PVFS_ASSIGN_OR_RETURN_IMPL_(PVFS_CONCAT_(pvfs_result_, __LINE__), lhs, expr)

}  // namespace pvfs
