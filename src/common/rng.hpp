// Deterministic pseudo-random generation for tests, property sweeps and
// workload synthesis. SplitMix64 is tiny, fast and statistically sound for
// this use; determinism across platforms matters more than period here.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pvfs {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t Uniform(std::uint64_t lo, std::uint64_t hi) {
    return lo + Next() % (hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace pvfs
