// List I/O (paper §3.3): the native noncontiguous interface — the client
// library packs up to kMaxListRegions file regions per request (trailing
// data) and the I/O daemons service them directly, cutting request count
// by that factor relative to multiple I/O.
#pragma once

#include "io/method.hpp"

namespace pvfs::io {

class ListIo final : public NoncontigMethod {
 public:
  Status Read(Client& client, Client::Fd fd, const AccessPattern& pattern,
              std::span<std::byte> buffer) override;
  Status Write(Client& client, Client::Fd fd, const AccessPattern& pattern,
               std::span<const std::byte> buffer) override;

  MethodType type() const override { return MethodType::kList; }
};

}  // namespace pvfs::io
