#include "io/hybrid_io.hpp"

#include <algorithm>
#include <cstring>

namespace pvfs::io {

ExtentList HybridIo::CoalesceWithGaps(std::span<const Extent> regions,
                                      ByteCount gap_threshold) {
  ExtentList out;
  for (const Extent& e : regions) {
    if (e.empty()) continue;
    if (!out.empty() && e.offset >= out.back().offset &&
        e.offset - out.back().end() <= gap_threshold &&
        e.offset >= out.back().end()) {
      out.back().length = e.end() - out.back().offset;
    } else {
      out.push_back(e);
    }
  }
  return out;
}

namespace {

/// Staging-buffer position of file offset `pos`, given the coalesced
/// super-regions and their byte prefix sums. Requires pos to lie inside a
/// super-region.
struct SuperIndex {
  ExtentList supers;
  std::vector<ByteCount> prefix;  // staging offset of each super's start

  explicit SuperIndex(ExtentList s) : supers(std::move(s)) {
    prefix.reserve(supers.size());
    ByteCount acc = 0;
    for (const Extent& e : supers) {
      prefix.push_back(acc);
      acc += e.length;
    }
  }

  ByteCount StagingOffset(FileOffset pos) const {
    // Binary search: last super whose offset <= pos.
    auto it = std::upper_bound(
        supers.begin(), supers.end(), pos,
        [](FileOffset p, const Extent& e) { return p < e.offset; });
    size_t idx = static_cast<size_t>(it - supers.begin()) - 1;
    return prefix[idx] + (pos - supers[idx].offset);
  }
};

}  // namespace

Status HybridIo::Read(Client& client, Client::Fd fd,
                      const AccessPattern& pattern,
                      std::span<std::byte> buffer) {
  PVFS_RETURN_IF_ERROR(pattern.Validate(buffer.size()));
  if (!IsSortedDisjoint(pattern.file)) {
    // Gap coalescing needs monotone regions; fall back to plain list I/O.
    return client.ReadList(fd, pattern.memory, buffer, pattern.file);
  }
  SuperIndex index(
      CoalesceWithGaps(pattern.file, options_.hybrid_gap_threshold));
  std::vector<std::byte> staging(TotalBytes(index.supers));
  const Extent staging_mem[] = {{0, staging.size()}};
  PVFS_RETURN_IF_ERROR(
      client.ReadList(fd, staging_mem, staging, index.supers));

  PVFS_ASSIGN_OR_RETURN(std::vector<Segment> segments, pattern.Segments());
  for (const Segment& seg : segments) {
    ByteCount at = index.StagingOffset(seg.file_offset);
    std::memcpy(buffer.data() + seg.mem_offset, staging.data() + at,
                seg.length);
  }
  return Status::Ok();
}

Status HybridIo::Write(Client& client, Client::Fd fd,
                       const AccessPattern& pattern,
                       std::span<const std::byte> buffer) {
  PVFS_RETURN_IF_ERROR(pattern.Validate(buffer.size()));
  if (!IsSortedDisjoint(pattern.file)) {
    return client.WriteList(fd, pattern.memory, buffer, pattern.file);
  }
  SuperIndex index(
      CoalesceWithGaps(pattern.file, options_.hybrid_gap_threshold));

  // If coalescing introduced no gap bytes, this is plain list I/O and
  // needs no read-modify-write (and hence no serialization).
  bool has_gaps = TotalBytes(index.supers) != pattern.total_bytes();
  if (!has_gaps) {
    return client.WriteList(fd, pattern.memory, buffer, pattern.file);
  }

  WriteSerializer* serializer =
      options_.serializer ? options_.serializer : &fallback_serializer_;
  return serializer->RunExclusive([&]() -> Status {
    std::vector<std::byte> staging(TotalBytes(index.supers));
    const Extent staging_mem[] = {{0, staging.size()}};
    // Read-modify-write over exactly the super-regions (never whole
    // bounding windows — the hybrid advantage).
    PVFS_RETURN_IF_ERROR(
        client.ReadList(fd, staging_mem, staging, index.supers));
    auto segments = pattern.Segments();
    if (!segments.ok()) return segments.status();
    for (const Segment& seg : *segments) {
      ByteCount at = index.StagingOffset(seg.file_offset);
      std::memcpy(staging.data() + at, buffer.data() + seg.mem_offset,
                  seg.length);
    }
    return client.WriteList(fd, staging_mem, staging, index.supers);
  });
}

}  // namespace pvfs::io
