// The noncontiguous access method interface and the serializer hook the
// data-sieving write path needs (paper §3.2/§4.3.1: PVFS has no file
// locks, so read-modify-write across clients must be serialized; the paper
// used an MPI_Barrier for-loop, we inject a WriteSerializer).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>

#include "common/status.hpp"
#include "io/access_pattern.hpp"
#include "pvfs/client.hpp"

namespace pvfs::io {

enum class MethodType {
  kMultiple,     // one contiguous request per matched segment (§3.1)
  kDataSieving,  // 32 MB windows, client-side scatter/gather, RMW (§3.2)
  kList,         // native list I/O (§3.3, the contribution)
  kHybrid,       // §5 future work: sieve nearby regions inside list ops
};

std::string_view MethodName(MethodType type);

/// Grants mutual exclusion for read-modify-write windows.
class WriteSerializer {
 public:
  virtual ~WriteSerializer() = default;
  /// Run `fn` exclusively with respect to all other RunExclusive calls on
  /// the same serializer.
  virtual Status RunExclusive(const std::function<Status()>& fn) = 0;
};

/// No-op serializer for single-client use.
class NullSerializer final : public WriteSerializer {
 public:
  Status RunExclusive(const std::function<Status()>& fn) override {
    return fn();
  }
};

/// Mutex-backed serializer shared by concurrent client threads.
class MutexSerializer final : public WriteSerializer {
 public:
  Status RunExclusive(const std::function<Status()>& fn) override {
    std::lock_guard lock(mutex_);
    return fn();
  }

 private:
  std::mutex mutex_;
};

/// Serializer built on the manager's advisory byte-range locks (the
/// extension closing the paper's "no file locking mechanism in PVFS" gap):
/// holds an exclusive whole-file lock for the critical section. Works
/// across processes and transports, unlike MutexSerializer.
class RangeLockSerializer final : public WriteSerializer {
 public:
  RangeLockSerializer(Client* client, Client::Fd fd)
      : client_(client), fd_(fd) {}

  Status RunExclusive(const std::function<Status()>& fn) override {
    PVFS_RETURN_IF_ERROR(client_->LockRange(fd_, Extent{0, 0}));
    Status status = fn();
    Status unlock = client_->UnlockRange(fd_, Extent{0, 0});
    return status.ok() ? unlock : status;
  }

 private:
  Client* client_;
  Client::Fd fd_;
};

struct MethodOptions {
  ByteCount sieve_buffer_bytes = kDefaultSieveBufferBytes;
  /// Hybrid: regions whose file gap is <= this many bytes are coalesced
  /// into one sieved super-region.
  ByteCount hybrid_gap_threshold = 4096;
  /// Required by sieving/hybrid writes when multiple clients share a file.
  WriteSerializer* serializer = nullptr;
};

class NoncontigMethod {
 public:
  virtual ~NoncontigMethod() = default;

  virtual Status Read(Client& client, Client::Fd fd,
                      const AccessPattern& pattern,
                      std::span<std::byte> buffer) = 0;
  virtual Status Write(Client& client, Client::Fd fd,
                       const AccessPattern& pattern,
                       std::span<const std::byte> buffer) = 0;

  virtual MethodType type() const = 0;
  std::string_view name() const { return MethodName(type()); }
};

/// Factory over the four methods.
std::unique_ptr<NoncontigMethod> MakeMethod(MethodType type,
                                            MethodOptions options = {});

}  // namespace pvfs::io
