// AccessPattern: a noncontiguous access description — ordered memory
// regions over a caller buffer paired with ordered logical file regions of
// equal byte total (paper Fig. 3: noncontiguity in memory, file, or both).
#pragma once

#include <span>

#include "common/extent.hpp"
#include "common/status.hpp"

namespace pvfs::io {

struct AccessPattern {
  ExtentList memory;  // offsets into the user buffer
  ExtentList file;    // logical file offsets

  ByteCount total_bytes() const { return TotalBytes(file); }

  /// Structural checks: equal totals, regions within `buffer_size`,
  /// no overflowing file regions.
  Status Validate(size_t buffer_size) const;

  /// The matched (mem, file, len) segments — one per contiguous run on
  /// both sides; this is the granularity multiple I/O must issue at.
  Result<std::vector<Segment>> Segments() const {
    return MatchSegments(memory, file);
  }

  /// Convenience: fully contiguous memory [0, total) against the given
  /// file regions (e.g. the tiled-visualization pattern).
  static AccessPattern ContiguousMemory(ExtentList file_regions);
};

}  // namespace pvfs::io
