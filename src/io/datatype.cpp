#include "io/datatype.hpp"

#include <algorithm>
#include <cassert>

namespace pvfs::io {

struct Datatype::Node {
  enum class Kind { kBytes, kHVector, kHIndexed, kStruct, kResized };

  Kind kind = Kind::kBytes;

  // kBytes
  ByteCount bytes = 0;
  // kHVector
  std::uint64_t count = 0;
  std::uint64_t blocklen = 0;
  std::int64_t stride_bytes = 0;
  std::shared_ptr<const Node> child;
  // kHIndexed
  std::vector<HIndexedBlock> blocks;
  // kStruct
  std::vector<DatatypeField> fields;
  // kResized
  std::int64_t forced_lb = 0;
  ByteCount forced_extent = 0;

  // Cached derived quantities.
  ByteCount size = 0;
  std::int64_t lb = 0;
  std::int64_t ub = 0;
  std::uint64_t regions = 0;

  ByteCount Extent() const { return static_cast<ByteCount>(ub - lb); }
};

namespace {

void EmitCoalesced(ExtentList& out, FileOffset offset, ByteCount length) {
  if (length == 0) return;
  if (!out.empty() && out.back().end() == offset) {
    out.back().length += length;
  } else {
    out.push_back(Extent{offset, length});
  }
}

}  // namespace

// ---- Constructors ---------------------------------------------------------

Datatype Datatype::Bytes(ByteCount n) {
  auto node = std::make_shared<Datatype::Node>();
  node->kind = Node::Kind::kBytes;
  node->bytes = n;
  node->size = n;
  node->lb = 0;
  node->ub = static_cast<std::int64_t>(n);
  node->regions = n > 0 ? 1 : 0;
  return Datatype(std::move(node));
}

Datatype Datatype::HVector(std::uint64_t count, std::uint64_t blocklen,
                           std::int64_t stride_bytes, const Datatype& t) {
  auto node = std::make_shared<Datatype::Node>();
  node->kind = Node::Kind::kHVector;
  node->count = count;
  node->blocklen = blocklen;
  node->stride_bytes = stride_bytes;
  node->child = t.node_;
  node->size = count * blocklen * t.size();
  node->regions = count * blocklen * t.region_count();
  if (count == 0 || blocklen == 0) {
    node->lb = node->ub = 0;
  } else {
    std::int64_t child_ext = static_cast<std::int64_t>(t.extent());
    std::int64_t first = 0;
    std::int64_t last = static_cast<std::int64_t>(count - 1) * stride_bytes;
    node->lb = std::min(first, last) + t.lower_bound();
    node->ub = std::max(first, last) +
               static_cast<std::int64_t>(blocklen - 1) * child_ext +
               t.lower_bound() + static_cast<std::int64_t>(t.extent());
  }
  return Datatype(std::move(node));
}

Datatype Datatype::Vector(std::uint64_t count, std::uint64_t blocklen,
                          std::int64_t stride, const Datatype& t) {
  return HVector(count, blocklen,
                 stride * static_cast<std::int64_t>(t.extent()), t);
}

Datatype Datatype::Contiguous(std::uint64_t count, const Datatype& t) {
  return HVector(count, 1, static_cast<std::int64_t>(t.extent()), t);
}

Datatype Datatype::HIndexed(std::span<const HIndexedBlock> blocks,
                            const Datatype& t) {
  auto node = std::make_shared<Datatype::Node>();
  node->kind = Node::Kind::kHIndexed;
  node->blocks.assign(blocks.begin(), blocks.end());
  node->child = t.node_;
  node->size = 0;
  node->regions = 0;
  bool any = false;
  std::int64_t child_ext = static_cast<std::int64_t>(t.extent());
  for (const HIndexedBlock& b : blocks) {
    node->size += b.blocklen * t.size();
    node->regions += b.blocklen * t.region_count();
    if (b.blocklen == 0) continue;
    std::int64_t lo = b.disp_bytes + t.lower_bound();
    std::int64_t hi = b.disp_bytes +
                      static_cast<std::int64_t>(b.blocklen - 1) * child_ext +
                      t.lower_bound() + static_cast<std::int64_t>(t.extent());
    if (!any) {
      node->lb = lo;
      node->ub = hi;
      any = true;
    } else {
      node->lb = std::min(node->lb, lo);
      node->ub = std::max(node->ub, hi);
    }
  }
  if (!any) node->lb = node->ub = 0;
  return Datatype(std::move(node));
}

Datatype Datatype::Indexed(std::span<const std::uint64_t> blocklens,
                           std::span<const std::int64_t> displs,
                           const Datatype& t) {
  assert(blocklens.size() == displs.size());
  std::vector<HIndexedBlock> blocks(blocklens.size());
  std::int64_t ext = static_cast<std::int64_t>(t.extent());
  for (size_t i = 0; i < blocks.size(); ++i) {
    blocks[i] = {displs[i] * ext, blocklens[i]};
  }
  return HIndexed(blocks, t);
}

Datatype Datatype::StructType(std::vector<DatatypeField> fields) {
  auto node = std::make_shared<Datatype::Node>();
  node->kind = Node::Kind::kStruct;
  node->size = 0;
  node->regions = 0;
  bool any = false;
  for (const DatatypeField& f : fields) {
    node->size += f.count * f.type.size();
    node->regions += f.count * f.type.region_count();
    if (f.count == 0) continue;
    std::int64_t ext = static_cast<std::int64_t>(f.type.extent());
    std::int64_t lo = f.disp_bytes + f.type.lower_bound();
    std::int64_t hi = f.disp_bytes +
                      static_cast<std::int64_t>(f.count - 1) * ext +
                      f.type.lower_bound() + ext;
    if (!any) {
      node->lb = lo;
      node->ub = hi;
      any = true;
    } else {
      node->lb = std::min(node->lb, lo);
      node->ub = std::max(node->ub, hi);
    }
  }
  if (!any) node->lb = node->ub = 0;
  node->fields = std::move(fields);
  return Datatype(std::move(node));
}

Datatype Datatype::Resized(const Datatype& t, std::int64_t lb,
                           ByteCount extent) {
  auto node = std::make_shared<Datatype::Node>();
  node->kind = Node::Kind::kResized;
  node->child = t.node_;
  node->size = t.size();
  node->regions = t.region_count();
  node->forced_lb = lb;
  node->forced_extent = extent;
  node->lb = lb;
  node->ub = lb + static_cast<std::int64_t>(extent);
  return Datatype(std::move(node));
}

Datatype Datatype::Subarray(std::span<const std::uint64_t> sizes,
                            std::span<const std::uint64_t> subsizes,
                            std::span<const std::uint64_t> starts,
                            const Datatype& t) {
  assert(!sizes.empty());
  assert(sizes.size() == subsizes.size() && sizes.size() == starts.size());
  size_t ndims = sizes.size();
  for (size_t d = 0; d < ndims; ++d) {
    assert(starts[d] + subsizes[d] <= sizes[d]);
  }

  // Byte stride of one index step in each dimension (C order: last dim is
  // densest).
  std::vector<std::int64_t> dim_stride(ndims);
  std::int64_t acc = static_cast<std::int64_t>(t.extent());
  for (size_t d = ndims; d-- > 0;) {
    dim_stride[d] = acc;
    acc *= static_cast<std::int64_t>(sizes[d]);
  }
  ByteCount full_extent = static_cast<ByteCount>(acc);

  // Innermost run of subsizes[ndims-1] elements, then wrap outward.
  Datatype cur = Contiguous(subsizes[ndims - 1], t);
  for (size_t d = ndims - 1; d-- > 0;) {
    cur = HVector(subsizes[d], 1, dim_stride[d], cur);
  }
  std::int64_t disp = 0;
  for (size_t d = 0; d < ndims; ++d) {
    disp += static_cast<std::int64_t>(starts[d]) * dim_stride[d];
  }
  const HIndexedBlock block[] = {{disp, 1}};
  return Resized(HIndexed(block, cur), 0, full_extent);
}

// ---- Accessors --------------------------------------------------------------

ByteCount Datatype::size() const { return node_->size; }
ByteCount Datatype::extent() const { return node_->Extent(); }
std::int64_t Datatype::lower_bound() const { return node_->lb; }
std::uint64_t Datatype::region_count() const { return node_->regions; }

// ---- Flatten ----------------------------------------------------------------

void Datatype::EmitBlockRun(const std::shared_ptr<const Node>& child,
                            std::int64_t origin, std::uint64_t blocklen,
                            ExtentList& out) {
  std::int64_t ext = static_cast<std::int64_t>(child->Extent());
  for (std::uint64_t b = 0; b < blocklen; ++b) {
    EmitNode(child.get(), origin + static_cast<std::int64_t>(b) * ext, out);
  }
}

void Datatype::EmitNode(const Node* n, std::int64_t origin, ExtentList& out) {
  using Kind = Node::Kind;
  switch (n->kind) {
    case Kind::kBytes:
      assert(origin >= 0 && "datatype flattens below offset zero");
      EmitCoalesced(out, static_cast<FileOffset>(origin), n->bytes);
      return;
    case Kind::kHVector:
      for (std::uint64_t i = 0; i < n->count; ++i) {
        EmitBlockRun(n->child,
                     origin + static_cast<std::int64_t>(i) * n->stride_bytes,
                     n->blocklen, out);
      }
      return;
    case Kind::kHIndexed:
      for (const HIndexedBlock& b : n->blocks) {
        EmitBlockRun(n->child, origin + b.disp_bytes, b.blocklen, out);
      }
      return;
    case Kind::kStruct:
      for (const DatatypeField& f : n->fields) {
        // Fields tile their own type `count` times at its extent.
        for (std::uint64_t c = 0; c < f.count; ++c) {
          EmitNode(
              f.type.node_.get(),
              origin + f.disp_bytes +
                  static_cast<std::int64_t>(c * f.type.extent()),
              out);
        }
      }
      return;
    case Kind::kResized:
      EmitNode(n->child.get(), origin, out);
      return;
  }
}

ExtentList Datatype::Flatten(FileOffset base, std::uint64_t count) const {
  ExtentList out;
  out.reserve(std::min<std::uint64_t>(node_->regions * count, 1u << 20));
  std::int64_t ext = static_cast<std::int64_t>(extent());
  for (std::uint64_t k = 0; k < count; ++k) {
    EmitNode(node_.get(),
             static_cast<std::int64_t>(base) +
                 static_cast<std::int64_t>(k) * ext,
             out);
  }
  return out;
}

ByteCount Datatype::DescriptionWireBytes() const {
  const Node* n = node_.get();
  using Kind = Node::Kind;
  switch (n->kind) {
    case Kind::kBytes:
      return 1 + 8;
    case Kind::kHVector:
      return 1 + 24 + Datatype(n->child).DescriptionWireBytes();
    case Kind::kHIndexed:
      return 1 + 8 + n->blocks.size() * 16 +
             Datatype(n->child).DescriptionWireBytes();
    case Kind::kStruct: {
      ByteCount total = 1 + 8;
      for (const DatatypeField& f : n->fields) {
        total += 16 + f.type.DescriptionWireBytes();
      }
      return total;
    }
    case Kind::kResized:
      return 1 + 16 + Datatype(n->child).DescriptionWireBytes();
  }
  return 0;
}

}  // namespace pvfs::io
