// Multiple I/O (paper §3.1): the traditional approach — one contiguous
// file-system request per contiguous region pair. Request count equals the
// number of matched segments, so it grows linearly with access-pattern
// fragmentation; this is the baseline list I/O beats by up to two orders
// of magnitude.
#pragma once

#include "io/method.hpp"

namespace pvfs::io {

class MultipleIo final : public NoncontigMethod {
 public:
  Status Read(Client& client, Client::Fd fd, const AccessPattern& pattern,
              std::span<std::byte> buffer) override;
  Status Write(Client& client, Client::Fd fd, const AccessPattern& pattern,
               std::span<const std::byte> buffer) override;

  MethodType type() const override { return MethodType::kMultiple; }
};

}  // namespace pvfs::io
