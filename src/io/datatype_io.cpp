#include "io/datatype_io.hpp"

namespace pvfs::io {

namespace {

/// Trim an ordered extent list to its first `want` bytes.
ExtentList TruncateToBytes(ExtentList regions, ByteCount want) {
  ByteCount acc = 0;
  for (size_t i = 0; i < regions.size(); ++i) {
    if (acc + regions[i].length >= want) {
      regions[i].length = want - acc;
      regions.resize(regions[i].length == 0 ? i : i + 1);
      return regions;
    }
    acc += regions[i].length;
  }
  return regions;
}

}  // namespace

Result<AccessPattern> PatternFromDatatypes(const Datatype& memtype,
                                           std::uint64_t memcount,
                                           const Datatype& filetype,
                                           FileOffset file_disp) {
  ByteCount total = memtype.size() * memcount;
  if (total == 0) return AccessPattern{};
  if (filetype.size() == 0) {
    return InvalidArgument("file type holds no data bytes");
  }
  if (filetype.lower_bound() < 0 || memtype.lower_bound() < 0) {
    return InvalidArgument("datatypes with negative lower bounds cannot "
                           "address a buffer/file from zero");
  }
  std::uint64_t tiles = (total + filetype.size() - 1) / filetype.size();

  AccessPattern pattern;
  pattern.memory = memtype.Flatten(0, memcount);
  pattern.file = TruncateToBytes(filetype.Flatten(file_disp, tiles), total);
  return pattern;
}

Status ReadTyped(Client& client, Client::Fd fd, const Datatype& memtype,
                 std::uint64_t memcount, std::span<std::byte> buffer,
                 const Datatype& filetype, FileOffset file_disp,
                 NoncontigMethod& method) {
  PVFS_ASSIGN_OR_RETURN(
      AccessPattern pattern,
      PatternFromDatatypes(memtype, memcount, filetype, file_disp));
  return method.Read(client, fd, pattern, buffer);
}

Status WriteTyped(Client& client, Client::Fd fd, const Datatype& memtype,
                  std::uint64_t memcount, std::span<const std::byte> buffer,
                  const Datatype& filetype, FileOffset file_disp,
                  NoncontigMethod& method) {
  PVFS_ASSIGN_OR_RETURN(
      AccessPattern pattern,
      PatternFromDatatypes(memtype, memcount, filetype, file_disp));
  return method.Write(client, fd, pattern, buffer);
}

}  // namespace pvfs::io
