// Data sieving I/O (paper §3.2, after Thakur et al.'s ROMIO technique):
// read a large contiguous window covering many noncontiguous regions into
// a client-side buffer (32 MB default) in one request, then move the
// wanted bytes in memory. Writes are read-modify-write on each window and
// — because PVFS has no file locking — must run serialized across clients
// (the paper used an MPI_Barrier loop; callers inject a WriteSerializer).
//
// Windows tile the bounding extent of the file regions. This matches
// ROMIO's behaviour; it is why sieving reads "useless" bytes when the
// wanted data is sparse, the effect the paper's cyclic benchmark shows
// doubling sieving time as client count doubles.
#pragma once

#include "io/method.hpp"

namespace pvfs::io {

class DataSievingIo final : public NoncontigMethod {
 public:
  explicit DataSievingIo(MethodOptions options) : options_(options) {}

  Status Read(Client& client, Client::Fd fd, const AccessPattern& pattern,
              std::span<std::byte> buffer) override;
  Status Write(Client& client, Client::Fd fd, const AccessPattern& pattern,
               std::span<const std::byte> buffer) override;

  MethodType type() const override { return MethodType::kDataSieving; }

 private:
  Status RunWindows(Client& client, Client::Fd fd,
                    const AccessPattern& pattern, std::span<std::byte> buffer,
                    std::span<const std::byte> const_buffer, bool is_write);

  MethodOptions options_;
  NullSerializer fallback_serializer_;
};

}  // namespace pvfs::io
