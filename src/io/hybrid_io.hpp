// Hybrid list + data-sieving I/O — the paper's §5 future-work proposal:
// "if two noncontiguous regions are close to each other, a data sieving
// operation may take place for just those particular regions."
//
// File regions whose gaps are at most `hybrid_gap_threshold` bytes are
// coalesced into sieved super-regions; the super-region list then goes
// through native list I/O. Dense clusters collapse into few regions
// (sieving's win) while far-apart clusters never force a huge window
// (sieving's loss), at the cost of transferring the small gaps and of
// read-modify-write on writes (serialized, like sieving).
#pragma once

#include "io/method.hpp"

namespace pvfs::io {

class HybridIo final : public NoncontigMethod {
 public:
  explicit HybridIo(MethodOptions options) : options_(options) {}

  Status Read(Client& client, Client::Fd fd, const AccessPattern& pattern,
              std::span<std::byte> buffer) override;
  Status Write(Client& client, Client::Fd fd, const AccessPattern& pattern,
               std::span<const std::byte> buffer) override;

  MethodType type() const override { return MethodType::kHybrid; }

  /// Coalesce sorted-disjoint regions whose inter-region gap is at most
  /// `gap_threshold` bytes. Exposed for tests and the ablation bench.
  static ExtentList CoalesceWithGaps(std::span<const Extent> regions,
                                     ByteCount gap_threshold);

 private:
  MethodOptions options_;
  NullSerializer fallback_serializer_;
};

}  // namespace pvfs::io
