#include "io/access_pattern.hpp"

namespace pvfs::io {

Status AccessPattern::Validate(size_t buffer_size) const {
  if (TotalBytes(memory) != TotalBytes(file)) {
    return InvalidArgument("pattern memory/file byte totals differ");
  }
  for (const Extent& m : memory) {
    if (m.end() > buffer_size) {
      return InvalidArgument("pattern memory region outside buffer");
    }
  }
  for (const Extent& f : file) {
    if (f.offset + f.length < f.offset) {
      return InvalidArgument("pattern file region overflows");
    }
  }
  return Status::Ok();
}

AccessPattern AccessPattern::ContiguousMemory(ExtentList file_regions) {
  AccessPattern p;
  p.file = std::move(file_regions);
  p.memory = {Extent{0, TotalBytes(p.file)}};
  return p;
}

}  // namespace pvfs::io
