#include "io/list_io.hpp"

namespace pvfs::io {

Status ListIo::Read(Client& client, Client::Fd fd,
                    const AccessPattern& pattern,
                    std::span<std::byte> buffer) {
  return client.ReadList(fd, pattern.memory, buffer, pattern.file);
}

Status ListIo::Write(Client& client, Client::Fd fd,
                     const AccessPattern& pattern,
                     std::span<const std::byte> buffer) {
  return client.WriteList(fd, pattern.memory, buffer, pattern.file);
}

}  // namespace pvfs::io
