#include "io/multiple_io.hpp"

namespace pvfs::io {

Status MultipleIo::Read(Client& client, Client::Fd fd,
                        const AccessPattern& pattern,
                        std::span<std::byte> buffer) {
  PVFS_RETURN_IF_ERROR(pattern.Validate(buffer.size()));
  PVFS_ASSIGN_OR_RETURN(std::vector<Segment> segments, pattern.Segments());
  for (const Segment& seg : segments) {
    PVFS_RETURN_IF_ERROR(
        client.Read(fd, seg.file_offset,
                    buffer.subspan(seg.mem_offset, seg.length)));
  }
  return Status::Ok();
}

Status MultipleIo::Write(Client& client, Client::Fd fd,
                         const AccessPattern& pattern,
                         std::span<const std::byte> buffer) {
  PVFS_RETURN_IF_ERROR(pattern.Validate(buffer.size()));
  PVFS_ASSIGN_OR_RETURN(std::vector<Segment> segments, pattern.Segments());
  for (const Segment& seg : segments) {
    PVFS_RETURN_IF_ERROR(
        client.Write(fd, seg.file_offset,
                     buffer.subspan(seg.mem_offset, seg.length)));
  }
  return Status::Ok();
}

}  // namespace pvfs::io
