#include "io/method.hpp"

#include "io/data_sieving.hpp"
#include "io/hybrid_io.hpp"
#include "io/list_io.hpp"
#include "io/multiple_io.hpp"

namespace pvfs::io {

std::string_view MethodName(MethodType type) {
  switch (type) {
    case MethodType::kMultiple: return "multiple";
    case MethodType::kDataSieving: return "data-sieving";
    case MethodType::kList: return "list";
    case MethodType::kHybrid: return "hybrid";
  }
  return "?";
}

std::unique_ptr<NoncontigMethod> MakeMethod(MethodType type,
                                            MethodOptions options) {
  switch (type) {
    case MethodType::kMultiple:
      return std::make_unique<MultipleIo>();
    case MethodType::kDataSieving:
      return std::make_unique<DataSievingIo>(options);
    case MethodType::kList:
      return std::make_unique<ListIo>();
    case MethodType::kHybrid:
      return std::make_unique<HybridIo>(options);
  }
  return nullptr;
}

}  // namespace pvfs::io
