// Datatype-described I/O: build an AccessPattern from MPI-style datatypes
// (memory type tiled over the user buffer, file type tiled from a
// displacement — MPI-IO file-view semantics) and run it through any
// noncontiguous method. This realizes the paper's §5 proposal: the access
// description stays O(1) in the number of regions; flattening happens
// below the interface.
#pragma once

#include "io/datatype.hpp"
#include "io/method.hpp"

namespace pvfs::io {

/// Pattern for `memcount` instances of `memtype` in the buffer (from
/// offset 0) against `filetype` tiled from byte `file_disp`; the file side
/// is truncated to exactly the memory byte total, as MPI-IO does when the
/// access ends mid-tile.
Result<AccessPattern> PatternFromDatatypes(const Datatype& memtype,
                                           std::uint64_t memcount,
                                           const Datatype& filetype,
                                           FileOffset file_disp);

/// Typed read/write: flatten and delegate.
Status ReadTyped(Client& client, Client::Fd fd, const Datatype& memtype,
                 std::uint64_t memcount, std::span<std::byte> buffer,
                 const Datatype& filetype, FileOffset file_disp,
                 NoncontigMethod& method);

Status WriteTyped(Client& client, Client::Fd fd, const Datatype& memtype,
                  std::uint64_t memcount, std::span<const std::byte> buffer,
                  const Datatype& filetype, FileOffset file_disp,
                  NoncontigMethod& method);

}  // namespace pvfs::io
