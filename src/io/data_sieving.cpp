#include "io/data_sieving.hpp"

#include <algorithm>
#include <cstring>

namespace pvfs::io {

Status DataSievingIo::RunWindows(Client& client, Client::Fd fd,
                                 const AccessPattern& pattern,
                                 std::span<std::byte> buffer,
                                 std::span<const std::byte> const_buffer,
                                 bool is_write) {
  PVFS_ASSIGN_OR_RETURN(std::vector<Segment> segments, pattern.Segments());
  std::optional<Extent> bound = BoundingExtent(pattern.file);
  if (!bound) return Status::Ok();  // empty access

  const ByteCount window_bytes = std::max<ByteCount>(1, options_.sieve_buffer_bytes);
  std::vector<std::byte> sieve;

  for (FileOffset ws = bound->offset; ws < bound->end();) {
    Extent window{ws, std::min<ByteCount>(window_bytes, bound->end() - ws)};
    ws += window.length;

    // Skip windows containing none of the wanted bytes (can happen with
    // clustered patterns far apart); cheap linear check.
    bool wanted = false;
    for (const Segment& seg : segments) {
      if (seg.file_offset < window.end() &&
          window.offset < seg.file_offset + seg.length) {
        wanted = true;
        break;
      }
    }
    if (!wanted) continue;

    sieve.resize(window.length);
    // Read the whole window — for writes this is the "read" half of
    // read-modify-write.
    PVFS_RETURN_IF_ERROR(client.Read(fd, window.offset, sieve));

    for (const Segment& seg : segments) {
      FileOffset lo = std::max(seg.file_offset, window.offset);
      FileOffset hi = std::min(seg.file_offset + seg.length, window.end());
      if (lo >= hi) continue;
      ByteCount len = hi - lo;
      ByteCount mem_at = seg.mem_offset + (lo - seg.file_offset);
      ByteCount sieve_at = lo - window.offset;
      if (is_write) {
        std::memcpy(sieve.data() + sieve_at, const_buffer.data() + mem_at,
                    len);
      } else {
        std::memcpy(buffer.data() + mem_at, sieve.data() + sieve_at, len);
      }
    }

    if (is_write) {
      PVFS_RETURN_IF_ERROR(client.Write(fd, window.offset, sieve));
    }
  }
  return Status::Ok();
}

Status DataSievingIo::Read(Client& client, Client::Fd fd,
                           const AccessPattern& pattern,
                           std::span<std::byte> buffer) {
  PVFS_RETURN_IF_ERROR(pattern.Validate(buffer.size()));
  return RunWindows(client, fd, pattern, buffer, {}, /*is_write=*/false);
}

Status DataSievingIo::Write(Client& client, Client::Fd fd,
                            const AccessPattern& pattern,
                            std::span<const std::byte> buffer) {
  PVFS_RETURN_IF_ERROR(pattern.Validate(buffer.size()));
  WriteSerializer* serializer =
      options_.serializer ? options_.serializer : &fallback_serializer_;
  return serializer->RunExclusive([&]() -> Status {
    return RunWindows(client, fd, pattern, {}, buffer, /*is_write=*/true);
  });
}

}  // namespace pvfs::io
