// MPI-style derived datatypes and their flattening to extent lists — the
// paper's §5 closing proposal: "Support for I/O requests that use an
// approach similar to MPI datatypes ... would describe these patterns with
// vector datatypes", replacing O(regions) offset/length pairs with a
// constant-size description.
//
// A Datatype is an immutable tree (cheaply copyable via shared nodes):
//
//   Bytes(n)                      n contiguous bytes (the base type)
//   Contiguous(count, t)          count copies of t, back to back
//   Vector(count, blocklen, stride, t)
//                                 count blocks of blocklen t's, stride
//                                 given in t-extents (MPI_Type_vector)
//   HVector(count, blocklen, stride_bytes, t)
//   Indexed(blocklens, displs, t) displacements in t-extents
//   HIndexed(blocks, t)           displacements in bytes
//   StructType(fields)            typed fields at byte displacements
//   Resized(t, lb, extent)        override lower bound / extent
//   Subarray(sizes, subsizes, starts, t)
//                                 C-order subarray of an ndims array of t
//
// size()  = bytes of actual data; extent() = span covered incl. holes.
// Flatten(base, count) materializes the type tiled `count` times starting
// at byte `base`, as a coalesced extent list in traversal order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/extent.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace pvfs::io {

struct DatatypeField;  // defined after Datatype (holds one by value)

class Datatype {
 public:
  /// The base type: `n` contiguous bytes.
  static Datatype Bytes(ByteCount n);
  static Datatype Contiguous(std::uint64_t count, const Datatype& t);
  static Datatype Vector(std::uint64_t count, std::uint64_t blocklen,
                         std::int64_t stride, const Datatype& t);
  static Datatype HVector(std::uint64_t count, std::uint64_t blocklen,
                          std::int64_t stride_bytes, const Datatype& t);
  static Datatype Indexed(std::span<const std::uint64_t> blocklens,
                          std::span<const std::int64_t> displs,
                          const Datatype& t);
  struct HIndexedBlock {
    std::int64_t disp_bytes = 0;
    std::uint64_t blocklen = 1;
  };
  static Datatype HIndexed(std::span<const HIndexedBlock> blocks,
                           const Datatype& t);
  static Datatype StructType(std::vector<DatatypeField> fields);
  static Datatype Resized(const Datatype& t, std::int64_t lb,
                          ByteCount extent);
  /// C-order (row-major) subarray; all spans must share length ndims >= 1.
  static Datatype Subarray(std::span<const std::uint64_t> sizes,
                           std::span<const std::uint64_t> subsizes,
                           std::span<const std::uint64_t> starts,
                           const Datatype& t);

  /// Bytes of data the type describes (holes excluded).
  ByteCount size() const;
  /// Extent: upper bound minus lower bound, holes included.
  ByteCount extent() const;
  /// Lower bound relative to the type's origin (can be negative only via
  /// Resized; construction keeps natural types non-negative).
  std::int64_t lower_bound() const;
  /// Number of leaf regions one instance flattens to (before tiling
  /// coalescing) — the region count a list-I/O request would need.
  std::uint64_t region_count() const;

  /// Materialize `count` tiled instances starting at `base` as a coalesced
  /// extent list in traversal order.
  ExtentList Flatten(FileOffset base, std::uint64_t count = 1) const;

  /// Wire size of a serialized description of this type (for the
  /// datatype-request ablation: constant, independent of region count).
  ByteCount DescriptionWireBytes() const;

 private:
  struct Node;
  explicit Datatype(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  static void EmitNode(const Node* n, std::int64_t origin, ExtentList& out);
  static void EmitBlockRun(const std::shared_ptr<const Node>& child,
                           std::int64_t origin, std::uint64_t blocklen,
                           ExtentList& out);

  std::shared_ptr<const Node> node_;
};

/// One field of a StructType: `count` instances of `type` at byte
/// displacement `disp_bytes` from the struct origin.
struct DatatypeField {
  std::int64_t disp_bytes = 0;
  std::uint64_t count = 1;
  Datatype type;
};

}  // namespace pvfs::io
