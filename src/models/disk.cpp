#include "models/disk.hpp"

#include <algorithm>
#include <cmath>

namespace pvfs::models {

SimTimeNs DiskModel::PositioningCost(FileOffset offset) const {
  if (offset == head_) return 0;  // sequential continuation

  // Distance-dependent seek: track-to-track for neighbours, then a
  // square-root curve toward the full stroke (the classic Ruemmler/Wilkes
  // shape), plus average rotational latency of half a revolution.
  ByteCount distance =
      offset > head_ ? offset - head_ : head_ - offset;
  double tracks =
      static_cast<double>(distance) / static_cast<double>(params_.track_bytes);
  double total_tracks = static_cast<double>(params_.capacity) /
                        static_cast<double>(params_.track_bytes);
  double frac = std::min(1.0, tracks / total_tracks);

  if (tracks <= 1.0) {
    // Same-cylinder reposition: head settling only, no average rotational
    // penalty — near-sequential streams (read-ahead window hops, short
    // strided runs) stay cheap, as they do on a real drive.
    return SecondsToNs(params_.track_to_track_ms / 1000.0);
  }
  double seek_ms = params_.track_to_track_ms +
                   (params_.full_stroke_ms - params_.track_to_track_ms) *
                       std::sqrt(frac);
  seek_ms = std::min(seek_ms, params_.full_stroke_ms);
  double rotation_ms = params_.RotationMs() / 2.0;
  return SecondsToNs((seek_ms + rotation_ms) / 1000.0);
}

SimTimeNs DiskModel::Access(FileOffset offset, ByteCount length,
                            bool is_write) {
  SimTimeNs positioning = PositioningCost(offset);
  if (positioning == 0) {
    ++sequential_hits_;
  } else {
    ++seeks_;
  }
  double transfer_s = static_cast<double>(length) /
                      (params_.media_transfer_mbps * 1.0e6);
  head_ = offset + length;
  SimTimeNs recovery = 0;
  if (fault_ != nullptr && fault_->OnDiskAccess(fault_server_, is_write)) {
    // Recovered media error: recalibrate (full stroke) and wait one
    // revolution for the sector to come around again.
    ++recovered_errors_;
    recovery =
        SecondsToNs((params_.full_stroke_ms + params_.RotationMs()) / 1000.0);
  }
  return positioning + SecondsToNs(transfer_s) + recovery;
}

}  // namespace pvfs::models
