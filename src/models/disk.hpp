// Mechanical disk timing model, parameterized to a Quantum Atlas IV-class
// SCSI drive (the Chiba City node disk, paper §4.1): seek curve +
// rotational latency + media transfer. The model is deterministic: it
// tracks head position and rotation phase so sequential streams pay no
// positioning cost while scattered small accesses pay ~10 ms each — the
// regime that drives the paper's multiple-I/O write results.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "fault/fault.hpp"

namespace pvfs::models {

struct DiskParams {
  // Quantum Atlas IV 9 GB (10k rpm class drives were its siblings; the
  // Atlas IV spins at 7200 rpm).
  double rpm = 7200.0;
  double avg_seek_ms = 8.5;
  double track_to_track_ms = 1.0;
  double full_stroke_ms = 17.0;
  double media_transfer_mbps = 25.0;  // MB/s sustained media rate
  ByteCount capacity = 9ull * 1000 * 1000 * 1000;
  ByteCount track_bytes = 256 * 1024;  // bytes per cylinder position

  double RotationMs() const { return 60.0 * 1000.0 / rpm; }
};

class DiskModel {
 public:
  explicit DiskModel(DiskParams params = {}) : params_(params) {}

  const DiskParams& params() const { return params_; }

  /// Service time for a read or write of `length` bytes at `offset`.
  /// Advances head state; call in the order operations hit the platter.
  SimTimeNs Access(FileOffset offset, ByteCount length, bool is_write);

  /// Positioning-only cost of moving the head to `offset` given current
  /// state (exposed for tests and for the cache model's flush planning).
  SimTimeNs PositioningCost(FileOffset offset) const;

  FileOffset head_position() const { return head_; }
  std::uint64_t seeks() const { return seeks_; }
  std::uint64_t sequential_hits() const { return sequential_hits_; }
  std::uint64_t recovered_errors() const { return recovered_errors_; }

  /// Arms transient media-error injection (src/fault): an access hit by an
  /// injected error pays a recalibration penalty — a full-stroke seek plus
  /// one revolution — before the drive's internal retry succeeds, as real
  /// drives do on recovered errors. `server` attributes events in the
  /// fault log. Pass nullptr to disarm (the default: zero overhead).
  void set_fault_injector(fault::FaultInjector* injector, ServerId server) {
    fault_ = injector;
    fault_server_ = server;
  }

 private:
  DiskParams params_;
  FileOffset head_ = 0;
  std::uint64_t seeks_ = 0;
  std::uint64_t sequential_hits_ = 0;
  std::uint64_t recovered_errors_ = 0;
  fault::FaultInjector* fault_ = nullptr;
  ServerId fault_server_ = 0;
};

}  // namespace pvfs::models
