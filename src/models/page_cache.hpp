// Linux-2.4-style buffer/page cache timing model sitting in front of a
// DiskModel (paper §2: "PVFS is built on the local file system, which
// allows the Linux buffer cache to reduce the cost of individual local
// disk operations on the I/O servers").
//
// Behaviour modeled:
//   * 4 KiB pages, LRU replacement, bounded capacity;
//   * sequential read-ahead: a read that continues the previous stream
//     fetches a configurable window ahead of it;
//   * write-back: writes dirty pages at memory speed; dirty pages are
//     flushed (in ascending offset order, coalesced into runs) when the
//     dirty ratio passes a threshold or on Sync();
//   * optional write-through mode for per-request-durable servers.
//
// All methods return the simulated service duration; callers hold the disk
// resource for that long.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.hpp"
#include "models/disk.hpp"

namespace pvfs::models {

struct CacheParams {
  ByteCount page_size = 4096;
  ByteCount capacity_bytes = 256 * kMiB;  // of the node's 512 MB RAM
  std::uint32_t readahead_pages = 32;     // 128 KiB window
  double dirty_flush_ratio = 0.4;         // bdflush-style threshold
  bool write_through = false;
  double mem_copy_mbps = 200.0;           // PIII-era memcpy bandwidth
};

class PageCache {
 public:
  PageCache(CacheParams params, DiskModel* disk)
      : params_(params), disk_(disk) {}

  /// Service a read; misses (plus read-ahead) go to disk in coalesced runs.
  SimTimeNs Read(FileOffset offset, ByteCount length);

  /// Service a write; write-back dirties pages, write-through also pays the
  /// disk. May trigger a threshold flush.
  SimTimeNs Write(FileOffset offset, ByteCount length);

  /// Flush every dirty page to disk in ascending order.
  SimTimeNs Sync();

  struct Stats {
    std::uint64_t page_hits = 0;
    std::uint64_t page_misses = 0;
    std::uint64_t readahead_pages = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writeback_pages = 0;
    std::uint64_t threshold_flushes = 0;
  };
  const Stats& stats() const { return stats_; }

  std::uint64_t resident_pages() const { return pages_.size(); }
  std::uint64_t dirty_pages() const { return dirty_count_; }

 private:
  using PageIndex = std::uint64_t;
  struct PageState {
    std::list<PageIndex>::iterator lru_pos;
    bool dirty = false;
  };

  std::uint64_t CapacityPages() const {
    return params_.capacity_bytes / params_.page_size;
  }
  SimTimeNs MemCopyCost(ByteCount bytes) const {
    return SecondsToNs(static_cast<double>(bytes) /
                       (params_.mem_copy_mbps * 1.0e6));
  }

  /// Insert or touch a page; returns eviction disk time if a dirty page
  /// had to be written back to make room.
  SimTimeNs TouchPage(PageIndex page, bool dirty);

  /// Write all dirty pages (ascending, coalesced) to disk.
  SimTimeNs FlushDirty();

  CacheParams params_;
  DiskModel* disk_;
  std::list<PageIndex> lru_;  // front = most recent
  std::unordered_map<PageIndex, PageState> pages_;
  std::uint64_t dirty_count_ = 0;
  FileOffset last_read_end_ = static_cast<FileOffset>(-1);
  Stats stats_;
};

}  // namespace pvfs::models
