// Switched fast-Ethernet timing model (Chiba City: 100 Mbit/s Intel
// EtherExpress Pro, full duplex, paper §4.1).
//
// A message of B bytes is segmented into MTU-sized frames; each frame pays
// Ethernet framing overhead (preamble + header + CRC + interframe gap) and
// TCP/IP headers. Endpoint NICs serialize at wire rate; the switch fabric
// is non-blocking. Per-message software cost (syscalls, TCP stack on a
// 500 MHz PIII) is charged at both endpoints — this is exactly the
// request-processing overhead whose elimination motivates list I/O.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pvfs::models {

struct EthernetParams {
  double bandwidth_bps = 100.0e6;     // wire rate
  ByteCount mtu = 1500;               // IP MTU (paper's frame-size argument)
  ByteCount eth_overhead = 38;        // preamble 8 + MAC 18 + IFG 12
  ByteCount ip_tcp_headers = 40;      // IPv4 20 + TCP 20
  SimTimeNs per_message_sw_ns = 60 * kNsPerUs;  // endpoint stack traversal
  SimTimeNs propagation_ns = 5 * kNsPerUs;      // cable + switch latency
};

class EthernetModel {
 public:
  explicit EthernetModel(EthernetParams params = {}) : params_(params) {}

  const EthernetParams& params() const { return params_; }

  /// Payload bytes carried per frame.
  ByteCount FramePayload() const {
    return params_.mtu - params_.ip_tcp_headers;
  }

  /// Number of frames needed for a message payload (minimum 1: even an
  /// empty ack occupies a frame).
  std::uint64_t FrameCount(ByteCount payload_bytes) const {
    ByteCount per = FramePayload();
    return payload_bytes == 0 ? 1 : (payload_bytes + per - 1) / per;
  }

  /// Time the sender NIC is occupied putting the message on the wire.
  SimTimeNs WireTime(ByteCount payload_bytes) const {
    std::uint64_t frames = FrameCount(payload_bytes);
    ByteCount on_wire = payload_bytes +
                        frames * (params_.eth_overhead + params_.ip_tcp_headers);
    return SecondsToNs(static_cast<double>(on_wire) * 8.0 /
                       params_.bandwidth_bps);
  }

  /// Fixed per-message cost outside the wire (stack + propagation).
  SimTimeNs MessageLatency() const {
    return params_.per_message_sw_ns + params_.propagation_ns;
  }

 private:
  EthernetParams params_;
};

/// CPU cost model for an I/O daemon servicing a request on a 500 MHz PIII:
/// a fixed per-request charge (accept, decode, dispatch), a per-region
/// charge (offset/length validation, local file positioning), and a
/// per-byte charge (user/kernel copies beyond those counted by the cache).
struct ServerCpuParams {
  // Request handling (accept, decode, dispatch, respond) dominated 2002
  // PVFS request service; per-region work is comparatively small. These
  // proportions are what make list I/O's 64-regions-per-request pay off.
  SimTimeNs per_request_ns = 500 * kNsPerUs;
  SimTimeNs per_region_ns = 10 * kNsPerUs;
  double copy_mbps = 250.0;
};

class ServerCpuModel {
 public:
  explicit ServerCpuModel(ServerCpuParams params = {}) : params_(params) {}

  const ServerCpuParams& params() const { return params_; }

  SimTimeNs RequestCost(std::uint64_t regions, ByteCount bytes) const {
    return params_.per_request_ns + regions * params_.per_region_ns +
           SecondsToNs(static_cast<double>(bytes) /
                       (params_.copy_mbps * 1.0e6));
  }

 private:
  ServerCpuParams params_;
};

}  // namespace pvfs::models
