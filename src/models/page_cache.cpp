#include "models/page_cache.hpp"

#include <algorithm>
#include <vector>

namespace pvfs::models {

SimTimeNs PageCache::TouchPage(PageIndex page, bool dirty) {
  SimTimeNs evict_time = 0;
  auto it = pages_.find(page);
  if (it != pages_.end()) {
    lru_.erase(it->second.lru_pos);
    lru_.push_front(page);
    it->second.lru_pos = lru_.begin();
    if (dirty && !it->second.dirty) {
      it->second.dirty = true;
      ++dirty_count_;
    }
    return 0;
  }
  // Make room first.
  while (pages_.size() >= CapacityPages() && !lru_.empty()) {
    PageIndex victim = lru_.back();
    lru_.pop_back();
    auto vit = pages_.find(victim);
    if (vit->second.dirty) {
      evict_time += disk_->Access(victim * params_.page_size,
                                  params_.page_size, /*is_write=*/true);
      --dirty_count_;
      ++stats_.writeback_pages;
    }
    pages_.erase(vit);
    ++stats_.evictions;
  }
  lru_.push_front(page);
  pages_.emplace(page, PageState{lru_.begin(), dirty});
  if (dirty) ++dirty_count_;
  return evict_time;
}

SimTimeNs PageCache::Read(FileOffset offset, ByteCount length) {
  if (length == 0) return 0;
  PageIndex first = offset / params_.page_size;
  PageIndex last = (offset + length - 1) / params_.page_size;

  // Near-sequential streams trigger read-ahead beyond the requested
  // range: like Linux's readahead window, a read landing within one
  // window of the previous stream position counts as a continuation.
  ByteCount window = params_.readahead_pages * params_.page_size;
  bool sequential = params_.readahead_pages > 0 &&
                    last_read_end_ != static_cast<FileOffset>(-1) &&
                    offset >= last_read_end_ &&
                    offset - last_read_end_ <= window;
  PageIndex fetch_last = last;
  if (sequential) {
    fetch_last = last + params_.readahead_pages;
  }
  last_read_end_ = offset + length;

  SimTimeNs total = MemCopyCost(length);

  // Coalesce missing pages into runs and fetch each run in one disk access.
  PageIndex run_start = 0;
  ByteCount run_pages = 0;
  auto flush_run = [&] {
    if (run_pages == 0) return;
    total += disk_->Access(run_start * params_.page_size,
                           run_pages * params_.page_size, /*is_write=*/false);
    run_pages = 0;
  };
  for (PageIndex p = first; p <= fetch_last; ++p) {
    bool requested = p <= last;
    if (pages_.contains(p)) {
      if (requested) ++stats_.page_hits;
      flush_run();
      total += TouchPage(p, /*dirty=*/false);
      continue;
    }
    if (requested) {
      ++stats_.page_misses;
    } else {
      ++stats_.readahead_pages;
    }
    if (run_pages == 0) run_start = p;
    // Runs must be contiguous; p increments by one so extending is safe.
    ++run_pages;
    total += TouchPage(p, /*dirty=*/false);
  }
  flush_run();
  return total;
}

SimTimeNs PageCache::Write(FileOffset offset, ByteCount length) {
  if (length == 0) return 0;
  PageIndex first = offset / params_.page_size;
  PageIndex last = (offset + length - 1) / params_.page_size;

  SimTimeNs total = MemCopyCost(length);

  // A write that only partially covers its first/last page must read the
  // page in first (read-modify-write at page granularity) unless resident.
  if (offset % params_.page_size != 0 && !pages_.contains(first)) {
    total += disk_->Access(first * params_.page_size, params_.page_size,
                           /*is_write=*/false);
    ++stats_.page_misses;
  }
  if ((offset + length) % params_.page_size != 0 && last != first &&
      !pages_.contains(last)) {
    total += disk_->Access(last * params_.page_size, params_.page_size,
                           /*is_write=*/false);
    ++stats_.page_misses;
  }

  for (PageIndex p = first; p <= last; ++p) {
    total += TouchPage(p, /*dirty=*/true);
  }

  if (params_.write_through) {
    total += disk_->Access(offset, length, /*is_write=*/true);
    // Pages are now clean.
    for (PageIndex p = first; p <= last; ++p) {
      auto it = pages_.find(p);
      if (it != pages_.end() && it->second.dirty) {
        it->second.dirty = false;
        --dirty_count_;
      }
    }
    return total;
  }

  double dirty_ratio = static_cast<double>(dirty_count_) /
                       static_cast<double>(CapacityPages());
  if (dirty_ratio > params_.dirty_flush_ratio) {
    ++stats_.threshold_flushes;
    total += FlushDirty();
  }
  return total;
}

SimTimeNs PageCache::FlushDirty() {
  std::vector<PageIndex> dirty;
  dirty.reserve(dirty_count_);
  for (auto& [page, state] : pages_) {
    if (state.dirty) dirty.push_back(page);
  }
  std::sort(dirty.begin(), dirty.end());

  SimTimeNs total = 0;
  size_t i = 0;
  while (i < dirty.size()) {
    size_t j = i;
    while (j + 1 < dirty.size() && dirty[j + 1] == dirty[j] + 1) ++j;
    ByteCount run_pages = j - i + 1;
    total += disk_->Access(dirty[i] * params_.page_size,
                           run_pages * params_.page_size, /*is_write=*/true);
    stats_.writeback_pages += run_pages;
    i = j + 1;
  }
  for (PageIndex p : dirty) {
    pages_[p].dirty = false;
  }
  dirty_count_ = 0;
  return total;
}

SimTimeNs PageCache::Sync() { return FlushDirty(); }

}  // namespace pvfs::models
