#include "trace/trace.hpp"

#include <charconv>
#include <optional>
#include <sstream>

#include "common/bytes.hpp"
#include "fault/fault_transport.hpp"
#include "runtime/spmd.hpp"
#include "workloads/cyclic.hpp"
#include "workloads/flash.hpp"
#include "workloads/tiledviz.hpp"

namespace pvfs::trace {

ByteCount Trace::TotalBytes() const {
  ByteCount total = 0;
  for (const TraceOp& op : ops) total += ::pvfs::TotalBytes(op.regions);
  return total;
}

std::vector<TraceOp> Trace::OpsOf(Rank rank) const {
  std::vector<TraceOp> out;
  for (const TraceOp& op : ops) {
    if (op.rank == rank) out.push_back(op);
  }
  return out;
}

std::string Serialize(const Trace& trace) {
  std::ostringstream out;
  out << "ranks " << trace.ranks << "\n";
  for (const TraceOp& op : trace.ops) {
    out << op.rank << ' ' << (op.op == IoOp::kRead ? 'R' : 'W') << ' ';
    for (size_t i = 0; i < op.regions.size(); ++i) {
      if (i > 0) out << ',';
      out << op.regions[i].offset << ':' << op.regions[i].length;
    }
    out << "\n";
  }
  return out.str();
}

namespace {

Result<std::uint64_t> ParseUint(std::string_view token) {
  std::uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return InvalidArgument("trace: bad integer '" + std::string(token) + "'");
  }
  return value;
}

/// Splits on a delimiter, skipping empty pieces.
std::vector<std::string_view> Split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(delim, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

Result<Trace> Parse(std::string_view text) {
  Trace trace;
  bool saw_ranks = false;
  for (std::string_view line : Split(text, '\n')) {
    // Strip comments and surrounding whitespace.
    if (size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;

    std::vector<std::string_view> fields = Split(line, ' ');
    if (fields.size() == 2 && fields[0] == "ranks") {
      PVFS_ASSIGN_OR_RETURN(std::uint64_t n, ParseUint(fields[1]));
      if (n == 0) return InvalidArgument("trace: zero ranks");
      trace.ranks = static_cast<std::uint32_t>(n);
      saw_ranks = true;
      continue;
    }
    if (fields.size() != 3) {
      return InvalidArgument("trace: malformed line '" + std::string(line) +
                             "'");
    }
    if (!saw_ranks) return InvalidArgument("trace: 'ranks N' must come first");

    TraceOp op;
    PVFS_ASSIGN_OR_RETURN(std::uint64_t rank, ParseUint(fields[0]));
    if (rank >= trace.ranks) return InvalidArgument("trace: rank out of range");
    op.rank = static_cast<Rank>(rank);
    if (fields[1] == "R") {
      op.op = IoOp::kRead;
    } else if (fields[1] == "W") {
      op.op = IoOp::kWrite;
    } else {
      return InvalidArgument("trace: op must be R or W");
    }
    for (std::string_view piece : Split(fields[2], ',')) {
      std::vector<std::string_view> parts = Split(piece, ':');
      if (parts.size() != 2) {
        return InvalidArgument("trace: region must be offset:length");
      }
      Extent e;
      PVFS_ASSIGN_OR_RETURN(e.offset, ParseUint(parts[0]));
      PVFS_ASSIGN_OR_RETURN(e.length, ParseUint(parts[1]));
      op.regions.push_back(e);
    }
    if (op.regions.empty()) {
      return InvalidArgument("trace: operation with no regions");
    }
    trace.ops.push_back(std::move(op));
  }
  if (!saw_ranks) return InvalidArgument("trace: missing 'ranks N' header");
  return trace;
}

Trace CyclicTrace(ByteCount total_bytes, std::uint32_t clients,
                  std::uint64_t accesses_per_client, IoOp op) {
  workloads::CyclicConfig config{total_bytes, clients, accesses_per_client};
  Trace trace;
  trace.ranks = clients;
  for (Rank r = 0; r < clients; ++r) {
    TraceOp top;
    top.rank = r;
    top.op = op;
    top.regions = workloads::CyclicPattern(config, r).file;
    trace.ops.push_back(std::move(top));
  }
  return trace;
}

Trace FlashTrace(std::uint32_t nprocs) {
  workloads::FlashConfig config;
  config.nprocs = nprocs;
  Trace trace;
  trace.ranks = nprocs;
  for (Rank r = 0; r < nprocs; ++r) {
    TraceOp top;
    top.rank = r;
    top.op = IoOp::kWrite;
    top.regions = workloads::FlashCheckpointPattern(config, r).file;
    trace.ops.push_back(std::move(top));
  }
  return trace;
}

Trace TiledVizTrace() {
  workloads::TiledVizConfig config;
  Trace trace;
  trace.ranks = config.clients();
  for (Rank r = 0; r < config.clients(); ++r) {
    TraceOp top;
    top.rank = r;
    top.op = IoOp::kRead;
    top.regions = workloads::TiledVizPattern(config, r).file;
    trace.ops.push_back(std::move(top));
  }
  return trace;
}

Result<ReplayResult> Replay(Transport& transport, const Trace& trace,
                            const ReplayOptions& options) {
  if (trace.ranks == 0) return InvalidArgument("empty trace");

  // Chaos replay: route every rank through the fault-injecting decorator
  // and give clients the caller's retry policy. With no injector the
  // original transport is used directly — zero overhead.
  std::optional<fault::FaultInjectingTransport> faulty;
  Transport& wire =
      options.injector != nullptr
          ? static_cast<Transport&>(faulty.emplace(&transport, options.injector))
          : transport;
  Client::Options client_options;
  client_options.retry = options.retry;

  {
    Client setup(&wire, client_options);
    auto fd = setup.Create(options.file_name, options.striping);
    if (fd.ok()) {
      (void)setup.Close(*fd);
    } else if (fd.status().code() != ErrorCode::kAlreadyExists) {
      return fd.status();
    }
  }

  io::MutexSerializer serializer;
  io::MethodOptions method_options;
  method_options.serializer = &serializer;

  std::mutex result_mutex;
  ReplayResult result;
  Status first_error = Status::Ok();

  runtime::RunSpmd(trace.ranks, [&](runtime::SpmdContext& ctx) {
    Client client(&wire, client_options);
    auto fd = client.Open(options.file_name);
    if (!fd.ok()) {
      std::lock_guard lock(result_mutex);
      if (first_error.ok()) first_error = fd.status();
      return;
    }
    auto method = io::MakeMethod(options.method, method_options);
    for (const TraceOp& top : trace.OpsOf(ctx.rank())) {
      io::AccessPattern pattern =
          io::AccessPattern::ContiguousMemory(top.regions);
      ByteBuffer buffer(pattern.total_bytes());
      Status status;
      if (top.op == IoOp::kWrite) {
        FillPattern(buffer, options.seed + ctx.rank(), 0);
        status = method->Write(client, *fd, pattern, buffer);
      } else {
        status = method->Read(client, *fd, pattern, buffer);
      }
      if (!status.ok()) {
        std::lock_guard lock(result_mutex);
        if (first_error.ok()) first_error = status;
        return;
      }
    }
    (void)client.Close(*fd);
    std::lock_guard lock(result_mutex);
    result.fs_requests += client.stats().fs_requests;
    result.messages += client.stats().messages;
    result.bytes_read += client.stats().bytes_read;
    result.bytes_written += client.stats().bytes_written;
    result.retries += client.retry_counters().retries;
    result.corruptions_detected += client.retry_counters().corruptions;
  });

  if (!first_error.ok()) return first_error;
  if (options.injector != nullptr) {
    result.faults = options.injector->counters();
  }
  return result;
}

simcluster::SimWorkload ToSimWorkload(const Trace& trace, IoOp op_filter) {
  simcluster::SimWorkload workload;
  workload.file_regions = [trace, op_filter](Rank r) {
    ExtentList regions;
    for (const TraceOp& op : trace.ops) {
      if (op.rank != r || op.op != op_filter) continue;
      regions.insert(regions.end(), op.regions.begin(), op.regions.end());
    }
    return std::make_unique<simcluster::VectorStream>(std::move(regions));
  };
  return workload;
}

}  // namespace pvfs::trace
