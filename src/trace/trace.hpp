// I/O trace capture and replay. The characterization studies the paper
// builds on (Nieuwejaar/Kotz, Crandall et al., Smirni et al.) all worked
// from application I/O traces; this module gives the library the same
// workflow: serialize per-rank noncontiguous accesses to a simple text
// format, replay them against the functional file system with any access
// method, or feed them to the simulator for timing studies.
//
// Text format (line-oriented, '#' comments):
//
//   ranks <N>
//   <rank> R|W <offset>:<length>[,<offset>:<length>...]
//
// Each line is one operation: an ordered noncontiguous file access by one
// rank (memory side contiguous). Operations replay in file order per
// rank; ranks run concurrently.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/extent.hpp"
#include "common/status.hpp"
#include "fault/fault.hpp"
#include "io/method.hpp"
#include "pvfs/transport.hpp"
#include "simcluster/sim_run.hpp"

namespace pvfs::trace {

struct TraceOp {
  Rank rank = 0;
  IoOp op = IoOp::kRead;
  ExtentList regions;

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

struct Trace {
  std::uint32_t ranks = 0;
  std::vector<TraceOp> ops;

  ByteCount TotalBytes() const;
  std::vector<TraceOp> OpsOf(Rank rank) const;

  friend bool operator==(const Trace&, const Trace&) = default;
};

std::string Serialize(const Trace& trace);
Result<Trace> Parse(std::string_view text);

/// Convenience builders from the paper's workload generators.
Trace CyclicTrace(ByteCount total_bytes, std::uint32_t clients,
                  std::uint64_t accesses_per_client, IoOp op);
Trace FlashTrace(std::uint32_t nprocs);  // checkpoint write
Trace TiledVizTrace();                   // frame read

struct ReplayOptions {
  io::MethodType method = io::MethodType::kList;
  Striping striping{0, 8, 16384};
  std::string file_name = "/trace/replay";
  /// Seed for synthetic write payloads; reads verify nothing (the replay
  /// measures movement, not content).
  std::uint64_t seed = 1;
  /// When set, every rank's data-path calls run through a
  /// FaultInjectingTransport over this injector, and the replay's client
  /// retry policy below applies — chaos replay of a recorded workload.
  fault::FaultInjector* injector = nullptr;
  Client::RetryPolicy retry{};
};

struct ReplayResult {
  std::uint64_t fs_requests = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t retries = 0;          // exchanges resent under faults
  std::uint64_t corruptions_detected = 0;  // checksum failures clients saw
  sim::FaultCounters faults;          // injected-fault tally (zero if none)
};

/// Replays the trace against a functional cluster: one thread per rank,
/// each executing its operations in order through the chosen method.
/// Creates the target file if missing.
Result<ReplayResult> Replay(Transport& transport, const Trace& trace,
                            const ReplayOptions& options = {});

/// The trace as a simulated workload (per-rank streams over its regions,
/// concatenated in op order). All ops of a trace must share one IoOp
/// direction for simulation; `op_filter` selects which direction to keep.
simcluster::SimWorkload ToSimWorkload(const Trace& trace, IoOp op_filter);

}  // namespace pvfs::trace
