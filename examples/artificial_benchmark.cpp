// The paper's artificial benchmark (§4.2), run *functionally*: concurrent
// client threads move real bytes through the threaded cluster using each
// noncontiguous method, for both access patterns. Wall-clock numbers are
// host-dependent (everything is in-memory); the interesting output is the
// request/message accounting, which matches the simulated figures.
//
//   $ ./example_artificial_benchmark [clients] [accesses_per_client]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/bytes.hpp"
#include "io/method.hpp"
#include "runtime/spmd.hpp"
#include "runtime/threaded_cluster.hpp"
#include "workloads/blockblock.hpp"
#include "workloads/cyclic.hpp"

using namespace pvfs;

namespace {

struct RunStats {
  double wall_ms = 0;
  std::uint64_t requests = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes_moved = 0;
};

template <typename PatternFn>
RunStats RunCase(std::uint32_t clients, io::MethodType method, IoOp op,
                 const PatternFn& pattern_for) {
  runtime::ThreadedCluster cluster(8);
  {
    Client setup(&cluster.transport());
    auto fd = setup.Create("bench", Striping{0, 8, 16384});
    if (!fd.ok()) std::abort();
  }
  io::MutexSerializer serializer;
  RunStats stats;
  std::mutex stats_mutex;

  auto t0 = std::chrono::steady_clock::now();
  runtime::RunSpmd(clients, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto fd = client.Open("bench");
    if (!fd.ok()) throw std::runtime_error("open failed");
    io::AccessPattern pattern = pattern_for(ctx.rank());
    ByteBuffer buffer(pattern.total_bytes());
    FillPattern(buffer, ctx.rank(), 0);
    io::MethodOptions options;
    options.serializer = &serializer;
    auto io_method = io::MakeMethod(method, options);
    Status status = op == IoOp::kWrite
                        ? io_method->Write(client, *fd, pattern, buffer)
                        : io_method->Read(client, *fd, pattern, buffer);
    if (!status.ok()) throw std::runtime_error(status.ToString());
    std::lock_guard lock(stats_mutex);
    stats.requests += client.stats().fs_requests;
    stats.messages += client.stats().messages;
    stats.bytes_moved +=
        client.stats().bytes_read + client.stats().bytes_written;
  });
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t clients = argc > 1
                              ? static_cast<std::uint32_t>(
                                    std::strtoul(argv[1], nullptr, 10))
                              : 4;
  std::uint64_t accesses =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;
  const ByteCount aggregate = 64 * kMiB;

  std::printf("artificial benchmark: %u clients, %llu accesses/client, "
              "%llu MiB aggregate (functional, real bytes)\n\n",
              clients, static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(aggregate / kMiB));

  workloads::CyclicConfig cyclic{aggregate, clients, accesses};
  workloads::BlockBlockConfig bb{aggregate, clients, accesses};
  bool square = bb.GridDim() * bb.GridDim() == clients;

  std::printf("%-14s %-8s %-6s %10s %10s %10s %12s\n", "pattern", "method",
              "op", "wall ms", "requests", "messages", "MB moved");
  for (IoOp op : {IoOp::kWrite, IoOp::kRead}) {
    for (io::MethodType method :
         {io::MethodType::kMultiple, io::MethodType::kDataSieving,
          io::MethodType::kList, io::MethodType::kHybrid}) {
      auto stats = RunCase(clients, method, op, [&](Rank r) {
        return workloads::CyclicPattern(cyclic, r);
      });
      std::printf("%-14s %-8.8s %-6s %10.1f %10llu %10llu %12.1f\n",
                  "cyclic", io::MethodName(method).data(),
                  op == IoOp::kWrite ? "write" : "read", stats.wall_ms,
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.messages),
                  static_cast<double>(stats.bytes_moved) / 1e6);
    }
    if (square) {
      for (io::MethodType method :
           {io::MethodType::kMultiple, io::MethodType::kList}) {
        auto stats = RunCase(clients, method, op, [&](Rank r) {
          return workloads::BlockBlockPattern(bb, r);
        });
        std::printf("%-14s %-8.8s %-6s %10.1f %10llu %10llu %12.1f\n",
                    "block-block", io::MethodName(method).data(),
                    op == IoOp::kWrite ? "write" : "read", stats.wall_ms,
                    static_cast<unsigned long long>(stats.requests),
                    static_cast<unsigned long long>(stats.messages),
                    static_cast<double>(stats.bytes_moved) / 1e6);
      }
    }
  }
  std::printf("\nnote: virtual-time versions of these tables are the\n"
              "bench_fig09..12 binaries; this example demonstrates the\n"
              "same code paths moving real data.\n");
  return 0;
}
