// Datatype-described I/O example (paper §5 future work): access the
// columns of a matrix stored row-major in PVFS using an MPI-style vector
// datatype — the access description stays O(1) no matter how many rows
// the matrix has; flattening happens inside the library.
//
//   $ ./example_datatype_columns
#include <cstdio>

#include "common/bytes.hpp"
#include "io/datatype_io.hpp"
#include "io/list_io.hpp"
#include "runtime/threaded_cluster.hpp"

using namespace pvfs;

int main() {
  constexpr std::uint64_t kRows = 2048;
  constexpr std::uint64_t kCols = 1024;  // bytes per row
  constexpr std::uint64_t kColWidth = 16;

  runtime::ThreadedCluster cluster(8);
  Client client(&cluster.transport());
  auto fd = client.Create("/demo/table", Striping{0, 8, 16384});
  if (!fd.ok()) return 1;

  // Store the matrix.
  ByteBuffer matrix(kRows * kCols);
  FillPattern(matrix, 11, 0);
  if (!client.Write(*fd, 0, matrix).ok()) return 1;

  // File view: a kColWidth-byte slice of every row, starting at byte 256.
  // One vector datatype describes all 2048 regions: count=kRows blocks of
  // one kColWidth-byte element, strided a row apart.
  io::Datatype column = io::Datatype::Vector(
      kRows, 1, static_cast<std::int64_t>(kCols / kColWidth),
      io::Datatype::Bytes(kColWidth));
  io::Datatype memtype = io::Datatype::Bytes(kRows * kColWidth);

  std::printf("column datatype: %llu regions, %llu-byte description "
              "(vs %llu bytes as an offset/length list)\n",
              static_cast<unsigned long long>(column.region_count()),
              static_cast<unsigned long long>(column.DescriptionWireBytes()),
              static_cast<unsigned long long>(column.region_count() * 16));

  ByteBuffer slice(kRows * kColWidth);
  io::ListIo list;
  client.ResetStats();
  Status status =
      ReadTyped(client, *fd, memtype, 1, slice, column, /*disp=*/256, list);
  if (!status.ok()) {
    std::fprintf(stderr, "typed read failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  for (std::uint64_t r = 0; r < kRows; ++r) {
    for (std::uint64_t i = 0; i < kColWidth; ++i) {
      if (slice[r * kColWidth + i] != matrix[r * kCols + 256 + i]) {
        std::fprintf(stderr, "mismatch at row %llu\n",
                     static_cast<unsigned long long>(r));
        return 1;
      }
    }
  }

  std::printf("read %llu column bytes via %llu list requests; verified.\n",
              static_cast<unsigned long long>(slice.size()),
              static_cast<unsigned long long>(client.stats().fs_requests));

  // The same access as a 2-D subarray type (every API surface flattens to
  // the same extents).
  const std::uint64_t sizes[] = {kRows, kCols};
  const std::uint64_t subsizes[] = {kRows, kColWidth};
  const std::uint64_t starts[] = {0, 256};
  io::Datatype subarray =
      io::Datatype::Subarray(sizes, subsizes, starts, io::Datatype::Bytes(1));
  ByteBuffer slice2(kRows * kColWidth);
  if (!ReadTyped(client, *fd, memtype, 1, slice2, subarray, 0, list).ok()) {
    return 1;
  }
  std::printf("subarray datatype read agrees: %s\n",
              slice2 == slice ? "yes" : "NO");
  return slice2 == slice ? 0 : 1;
}
