// Quickstart: bring up an in-process PVFS cluster (manager + 8 I/O
// daemons, each on its own event-loop thread), store a striped file, and
// read a noncontiguous column pattern back with the paper's list-I/O
// interface.
//
//   $ ./example_quickstart
#include <cstdio>

#include "common/bytes.hpp"
#include "pvfs/client.hpp"
#include "runtime/threaded_cluster.hpp"

using namespace pvfs;

int main() {
  // A "cluster": 8 I/O daemons plus the metadata manager (paper Fig. 1).
  runtime::ThreadedCluster cluster(/*server_count=*/8);
  Client client(&cluster.transport());

  // Create a file striped over all 8 servers, 16 KiB stripe units
  // (paper Fig. 2 and the §4.1 testbed default).
  auto fd = client.Create("/demo/matrix", Striping{0, 8, 16384});
  if (!fd.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 fd.status().ToString().c_str());
    return 1;
  }

  // Store a 1024x1024-byte row-major matrix contiguously.
  constexpr ByteCount kSide = 1024;
  ByteBuffer matrix(kSide * kSide);
  FillPattern(matrix, /*seed=*/7, 0);
  if (Status s = client.Write(*fd, 0, matrix); !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Noncontiguous read: one 64-byte column slice from each of 256 rows —
  // 256 file regions. The client library packs them into
  // ceil(256/64) = 4 list-I/O requests (paper §3.3).
  ExtentList file_regions;
  for (FileOffset row = 0; row < 256; ++row) {
    file_regions.push_back(Extent{row * kSide + 512, 64});
  }
  ByteBuffer column(256 * 64);
  ExtentList mem_regions{{0, column.size()}};

  client.ResetStats();
  if (Status s = client.ReadList(*fd, mem_regions, column, file_regions);
      !s.ok()) {
    std::fprintf(stderr, "read_list failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Verify against the original matrix.
  for (size_t r = 0; r < 256; ++r) {
    for (size_t i = 0; i < 64; ++i) {
      if (column[r * 64 + i] != matrix[r * kSide + 512 + i]) {
        std::fprintf(stderr, "data mismatch at row %zu\n", r);
        return 1;
      }
    }
  }

  const ClientStats& stats = client.stats();
  std::printf("read %zu noncontiguous regions (%zu bytes) correctly\n",
              file_regions.size(), column.size());
  std::printf("list I/O used %llu requests (%llu server messages) instead "
              "of %zu\n",
              static_cast<unsigned long long>(stats.fs_requests),
              static_cast<unsigned long long>(stats.messages),
              file_regions.size());

  (void)client.Close(*fd);
  (void)client.Remove("/demo/matrix");
  std::printf("done.\n");
  return 0;
}
