// FLASH checkpoint example (paper §4.3): four SPMD ranks concurrently
// write a (scaled-down) FLASH checkpoint — noncontiguous in memory AND
// file — through each noncontiguous method, verifying the resulting file
// image and comparing request counts.
//
//   $ ./example_flash_checkpoint
#include <cstdio>

#include "common/bytes.hpp"
#include "io/method.hpp"
#include "runtime/spmd.hpp"
#include "runtime/threaded_cluster.hpp"
#include "workloads/flash.hpp"

using namespace pvfs;

namespace {

/// Scaled-down FLASH configuration so the example runs in milliseconds:
/// 8 blocks of 4x4x4 elements, 6 variables, 2 guard cells.
workloads::FlashConfig ExampleConfig(std::uint32_t nprocs) {
  workloads::FlashConfig config;
  config.nprocs = nprocs;
  config.blocks_per_proc = 8;
  config.nxb = config.nyb = config.nzb = 4;
  config.nguard = 2;
  config.nvars = 6;
  return config;
}

}  // namespace

int main() {
  constexpr std::uint32_t kProcs = 4;
  workloads::FlashConfig config = ExampleConfig(kProcs);
  std::printf("FLASH checkpoint: %u procs x %llu bytes "
              "(%llu memory regions, %llu file regions per proc)\n",
              kProcs,
              static_cast<unsigned long long>(config.BytesPerProc()),
              static_cast<unsigned long long>(config.MemRegionsPerProc()),
              static_cast<unsigned long long>(config.FileRegionsPerProc()));

  for (io::MethodType method :
       {io::MethodType::kMultiple, io::MethodType::kDataSieving,
        io::MethodType::kList, io::MethodType::kHybrid}) {
    runtime::ThreadedCluster cluster(8);
    {
      Client setup(&cluster.transport());
      auto fd = setup.Create("/flash/checkpoint", Striping{0, 8, 16384});
      if (!fd.ok()) return 1;
    }

    io::MutexSerializer serializer;  // sieving/hybrid writes need RMW order
    std::uint64_t total_requests = 0;
    std::mutex stats_mutex;

    runtime::RunSpmd(kProcs, [&](runtime::SpmdContext& ctx) {
      Client client(&cluster.transport());
      auto fd = client.Open("/flash/checkpoint");
      if (!fd.ok()) throw std::runtime_error("open failed");

      // Each rank fills its padded block buffer; interior elements carry
      // a rank-seeded pattern keyed by checkpoint position.
      auto pattern = workloads::FlashCheckpointPattern(config, ctx.rank());
      ByteBuffer buffer(config.MemBytesPerProc());
      ByteCount stream_pos = 0;
      for (const Extent& m : pattern.memory) {
        FillPattern(std::span{buffer}.subspan(m.offset, m.length),
                    1000 + ctx.rank(), stream_pos);
        stream_pos += m.length;
      }

      io::MethodOptions options;
      options.serializer = &serializer;
      auto io_method = io::MakeMethod(method, options);
      Status status = io_method->Write(client, *fd, pattern, buffer);
      if (!status.ok()) throw std::runtime_error(status.ToString());

      std::lock_guard lock(stats_mutex);
      total_requests += client.stats().fs_requests;
    });

    // Verify the checkpoint image: every (var, block, proc) chunk holds
    // that proc's stream bytes.
    Client reader(&cluster.transport());
    auto fd = reader.Open("/flash/checkpoint");
    bool ok = true;
    for (Rank p = 0; p < kProcs && ok; ++p) {
      auto pattern = workloads::FlashCheckpointPattern(config, p);
      ByteCount stream_pos = 0;
      for (const Extent& f : pattern.file) {
        ByteBuffer chunk(f.length);
        if (!reader.Read(*fd, f.offset, chunk).ok() ||
            FindPatternMismatch(chunk, 1000 + p, stream_pos).has_value()) {
          ok = false;
          break;
        }
        stream_pos += f.length;
      }
    }

    std::printf("  %-13s requests=%-8llu verify=%s\n",
                io::MethodName(method).data(),
                static_cast<unsigned long long>(total_requests),
                ok ? "OK" : "FAILED");
    if (!ok) return 1;
  }
  std::printf("all methods produced identical checkpoints.\n");
  return 0;
}
