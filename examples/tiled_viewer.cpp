// Tiled visualization example (paper §4.4): a frame file rendered once,
// then six concurrent "display" clients each pull their overlapping tile
// with every noncontiguous method, verifying pixels and reporting the
// request counts behind Figure 17.
//
//   $ ./example_tiled_viewer
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/bytes.hpp"
#include "io/method.hpp"
#include "runtime/spmd.hpp"
#include "runtime/threaded_cluster.hpp"
#include "workloads/tiledviz.hpp"

using namespace pvfs;

namespace {

/// Deterministic "render": pixel (x, y) gets a gradient-ish RGB value.
void RenderFrame(const workloads::TiledVizConfig& config, ByteBuffer& frame) {
  const std::uint64_t width = config.WallWidth();
  frame.resize(config.FileBytes());
  for (std::uint64_t y = 0; y < config.WallHeight(); ++y) {
    for (std::uint64_t x = 0; x < width; ++x) {
      size_t at = (y * width + x) * 3;
      frame[at + 0] = static_cast<std::byte>(x & 0xFF);
      frame[at + 1] = static_cast<std::byte>(y & 0xFF);
      frame[at + 2] = static_cast<std::byte>((x ^ y) & 0xFF);
    }
  }
}

}  // namespace

int main() {
  workloads::TiledVizConfig config;  // the paper's 3x2 / 1024x768 wall
  std::printf("wall %ux%u px, frame file %.1f MB, %u display clients\n",
              config.WallWidth(), config.WallHeight(),
              static_cast<double>(config.FileBytes()) / 1e6,
              config.clients());

  runtime::ThreadedCluster cluster(8);
  ByteBuffer frame;
  RenderFrame(config, frame);
  {
    Client render(&cluster.transport());
    auto fd = render.Create("/viz/frame", Striping{0, 8, 16384});
    if (!fd.ok() || !render.Write(*fd, 0, frame).ok()) return 1;
    (void)render.Close(*fd);
  }

  for (io::MethodType method :
       {io::MethodType::kMultiple, io::MethodType::kDataSieving,
        io::MethodType::kList, io::MethodType::kHybrid}) {
    std::uint64_t requests = 0;
    std::uint64_t bytes_read = 0;
    std::mutex stats_mutex;
    auto t0 = std::chrono::steady_clock::now();

    runtime::RunSpmd(config.clients(), [&](runtime::SpmdContext& ctx) {
      Client client(&cluster.transport());
      auto fd = client.Open("/viz/frame");
      if (!fd.ok()) throw std::runtime_error("open failed");

      auto pattern = workloads::TiledVizPattern(config, ctx.rank());
      ByteBuffer tile(config.TileBytes());
      auto io_method = io::MakeMethod(method);
      Status status = io_method->Read(client, *fd, pattern, tile);
      if (!status.ok()) throw std::runtime_error(status.ToString());

      // Verify every pixel of the tile against the rendered frame.
      ByteCount stream_pos = 0;
      for (const Extent& f : pattern.file) {
        for (ByteCount i = 0; i < f.length; ++i) {
          if (tile[stream_pos + i] != frame[f.offset + i]) {
            throw std::runtime_error("pixel mismatch");
          }
        }
        stream_pos += f.length;
      }

      std::lock_guard lock(stats_mutex);
      requests += client.stats().fs_requests;
      bytes_read += client.stats().bytes_read;
    });

    auto wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    std::printf("  %-13s requests=%-5llu bytes moved=%7.1f MB  "
                "(%.0f ms wall, all pixels verified)\n",
                io::MethodName(method).data(),
                static_cast<unsigned long long>(requests),
                static_cast<double>(bytes_read) / 1e6, wall_ms);
  }
  std::printf("note: 768 rows/tile -> multiple=768 req/client, "
              "list=12 (the paper's Fig. 17 arithmetic).\n");
  return 0;
}
