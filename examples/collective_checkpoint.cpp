// Collective checkpoint example: the cyclic interleave of the paper's
// artificial benchmark, written through the mini-ROMIO MPI-IO layer —
// first independently (list I/O under the hood), then collectively
// (two-phase: ranks exchange pieces so each aggregator issues one large
// contiguous write).
//
//   $ ./example_collective_checkpoint
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/bytes.hpp"
#include "mpiio/file.hpp"
#include "runtime/spmd.hpp"
#include "runtime/threaded_cluster.hpp"

using namespace pvfs;

namespace {

struct RunStats {
  double wall_ms = 0;
  std::uint64_t client_messages = 0;
  std::uint64_t aggregator_ops = 0;
};

RunStats RunOnce(bool collective, std::uint32_t ranks, ByteCount block,
                 int blocks_per_rank) {
  runtime::ThreadedCluster cluster(8);
  mpiio::Group group(ranks);
  RunStats stats;
  std::mutex stats_mutex;

  auto t0 = std::chrono::steady_clock::now();
  runtime::RunSpmd(ranks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto file = mpiio::MpiFile::Open(&client, &group, ctx.rank(),
                                     "/ckpt/state", Striping{0, 8, 16384});
    if (!file.ok()) throw std::runtime_error("open failed");
    mpiio::CollectiveHints hints;
    hints.cb_enable = collective;
    file->set_hints(hints);

    // View: this rank's slots of the cyclic interleave.
    auto filetype = io::Datatype::Resized(io::Datatype::Bytes(block), 0,
                                          block * ranks);
    if (!file->SetView(ctx.rank() * block, filetype).ok()) {
      throw std::runtime_error("set view failed");
    }

    ByteBuffer mine(blocks_per_rank * block);
    FillPattern(mine, ctx.rank(), 0);
    Status status = file->WriteAtAll(0, mine);
    if (!status.ok()) throw std::runtime_error(status.ToString());
    (void)file->Close();

    std::lock_guard lock(stats_mutex);
    stats.client_messages += client.stats().messages;
    stats.aggregator_ops +=
        file->stats().aggregator_writes + file->stats().aggregator_reads;
  });
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return stats;
}

}  // namespace

int main() {
  constexpr std::uint32_t kRanks = 8;
  constexpr ByteCount kBlock = 512;
  constexpr int kBlocksPerRank = 2048;  // 1 MiB per rank, tightly interleaved

  std::printf("checkpointing %u ranks x %d blocks x %llu B (cyclic "
              "interleave)\n",
              kRanks, kBlocksPerRank,
              static_cast<unsigned long long>(kBlock));

  RunStats independent = RunOnce(false, kRanks, kBlock, kBlocksPerRank);
  RunStats collective = RunOnce(true, kRanks, kBlock, kBlocksPerRank);

  std::printf("  independent (list I/O):  %6.0f ms, %llu server messages\n",
              independent.wall_ms,
              static_cast<unsigned long long>(independent.client_messages));
  std::printf("  collective (two-phase):  %6.0f ms, %llu server messages, "
              "%llu aggregator file ops\n",
              collective.wall_ms,
              static_cast<unsigned long long>(collective.client_messages),
              static_cast<unsigned long long>(collective.aggregator_ops));

  std::printf("done.\n");
  return 0;
}
