// Checkpoint/restart example: a toy iterative stencil "solver" over a
// distributed 2-D grid checkpoints its state to PVFS every few steps;
// we kill it mid-run, restart from the last checkpoint (with a DIFFERENT
// rank count), finish the run, and verify the result matches an
// uninterrupted execution bit for bit.
//
//   $ ./example_checkpoint_restart
#include <cstdio>
#include <cstring>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "runtime/spmd.hpp"
#include "runtime/threaded_cluster.hpp"

using namespace pvfs;

namespace {

constexpr std::uint64_t kRows = 96;
constexpr std::uint64_t kCols = 128;
constexpr ByteCount kElem = 8;  // one double per cell

/// One deterministic "solver" step on the whole grid (single array, row
/// major): every interior cell becomes the average of its 4 neighbours.
void Step(std::vector<double>& grid) {
  std::vector<double> next = grid;
  for (std::uint64_t i = 1; i + 1 < kRows; ++i) {
    for (std::uint64_t j = 1; j + 1 < kCols; ++j) {
      next[i * kCols + j] =
          0.25 * (grid[(i - 1) * kCols + j] + grid[(i + 1) * kCols + j] +
                  grid[i * kCols + j - 1] + grid[i * kCols + j + 1]);
    }
  }
  grid.swap(next);
}

std::vector<double> InitialGrid() {
  std::vector<double> grid(kRows * kCols, 0.0);
  for (std::uint64_t j = 0; j < kCols; ++j) grid[j] = 100.0;  // hot edge
  return grid;
}

ckpt::ArraySpec BandSpec(std::uint32_t ranks, Rank r) {
  ckpt::ArraySpec spec;
  spec.elem_size = kElem;
  spec.global_dims = {kRows, kCols};
  std::uint64_t band = kRows / ranks;
  spec.local_offset = {r * band, 0};
  spec.local_dims = {r + 1 == ranks ? kRows - r * band : band, kCols};
  return spec;
}

/// Checkpoint the (replicated, for simplicity) grid: each rank writes its
/// band. Returns the checkpoint tag (iteration).
void Checkpoint(runtime::ThreadedCluster& cluster, std::uint32_t ranks,
                const std::vector<double>& grid, std::uint64_t iter) {
  mpiio::Group group(ranks);
  runtime::RunSpmd(ranks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    ckpt::ArraySpec spec = BandSpec(ranks, ctx.rank());
    auto bytes = std::as_bytes(std::span{grid});
    auto block = bytes.subspan(spec.local_offset[0] * kCols * kElem,
                               spec.LocalBytes());
    Status s = ckpt::WriteCheckpoint(&client, &group, ctx.rank(),
                                     "/solver/state", spec, block, iter);
    if (!s.ok()) throw std::runtime_error(s.ToString());
  });
}

std::vector<double> Restore(runtime::ThreadedCluster& cluster,
                            std::uint32_t ranks, std::uint64_t* iter) {
  std::vector<double> grid(kRows * kCols);
  {
    Client client(&cluster.transport());
    auto info = ckpt::InspectCheckpoint(&client, "/solver/state");
    if (!info.ok()) throw std::runtime_error(info.status().ToString());
    *iter = info->user_tag;
  }
  mpiio::Group group(ranks);
  runtime::RunSpmd(ranks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    ckpt::ArraySpec spec = BandSpec(ranks, ctx.rank());
    auto bytes = std::as_writable_bytes(std::span{grid});
    auto block = bytes.subspan(spec.local_offset[0] * kCols * kElem,
                               spec.LocalBytes());
    Status s = ckpt::ReadCheckpoint(&client, &group, ctx.rank(),
                                    "/solver/state", spec, block);
    if (!s.ok()) throw std::runtime_error(s.ToString());
  });
  return grid;
}

}  // namespace

int main() {
  constexpr int kTotalSteps = 40;
  constexpr int kCrashAt = 23;
  constexpr int kCheckpointEvery = 10;

  // Reference: uninterrupted run.
  std::vector<double> reference = InitialGrid();
  for (int s = 0; s < kTotalSteps; ++s) Step(reference);

  runtime::ThreadedCluster cluster(8);

  // Run with 4 ranks, checkpointing every 10 steps... then "crash".
  std::vector<double> grid = InitialGrid();
  for (int s = 0; s < kCrashAt; ++s) {
    Step(grid);
    if ((s + 1) % kCheckpointEvery == 0) {
      Checkpoint(cluster, /*ranks=*/4, grid, static_cast<std::uint64_t>(s + 1));
      std::printf("checkpointed at step %d (4 ranks)\n", s + 1);
    }
  }
  std::printf("simulated crash at step %d; state lost.\n", kCrashAt);

  // Restart from the last checkpoint with a DIFFERENT rank count.
  std::uint64_t resume_at = 0;
  std::vector<double> restored = Restore(cluster, /*ranks=*/3, &resume_at);
  std::printf("restored checkpoint of step %llu (3 ranks)\n",
              static_cast<unsigned long long>(resume_at));

  for (int s = static_cast<int>(resume_at); s < kTotalSteps; ++s) {
    Step(restored);
  }

  bool identical = std::memcmp(restored.data(), reference.data(),
                               reference.size() * sizeof(double)) == 0;
  std::printf("resumed run matches uninterrupted run: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
