// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary prints the rows of one paper figure: a header naming the
// figure, then one table per subplot (client count), with a column per
// noncontiguous method. Default sweeps are scaled down to keep a full run
// in seconds; pass --full for the paper's 1 GiB / million-access scale.
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "io/method.hpp"
#include "simcluster/sim_run.hpp"
#include "simcluster/workload_streams.hpp"

namespace pvfs::bench {

struct BenchFlags {
  bool full = false;          // paper-scale sweep (slow)
  bool verbose = false;       // per-run counters
  const char* csv = nullptr;  // mirror rows to this CSV file
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) flags.full = true;
    if (std::strcmp(argv[i], "--verbose") == 0) flags.verbose = true;
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      flags.csv = argv[++i];
    }
  }
  return flags;
}

/// Mirrors measurement rows to a CSV file when --csv is given:
///   figure,clients,accesses,method,virtual_seconds,fs_requests
class CsvSink {
 public:
  CsvSink(const BenchFlags& flags, const char* figure) : figure_(figure) {
    if (flags.csv != nullptr) {
      file_ = std::fopen(flags.csv, "w");
      if (file_ != nullptr) {
        std::fprintf(file_,
                     "figure,clients,accesses,method,virtual_seconds,"
                     "fs_requests\n");
      }
    }
  }
  ~CsvSink() {
    if (file_ != nullptr) std::fclose(file_);
  }
  CsvSink(const CsvSink&) = delete;
  CsvSink& operator=(const CsvSink&) = delete;

  void Row(std::uint32_t clients, std::uint64_t accesses,
           std::string_view method, double seconds,
           std::uint64_t requests) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s,%u,%llu,%.*s,%.6f,%llu\n", figure_, clients,
                 static_cast<unsigned long long>(accesses),
                 static_cast<int>(method.size()), method.data(), seconds,
                 static_cast<unsigned long long>(requests));
  }

 private:
  const char* figure_;
  std::FILE* file_ = nullptr;
};

inline void PrintBanner(const char* figure, const char* description,
                        const BenchFlags& flags) {
  std::printf("=== %s ===\n%s\nscale: %s\n\n", figure, description,
              flags.full ? "full (paper: 1 GiB aggregate)" : "reduced");
}

/// Runs one (method, op) cell and returns virtual seconds of the I/O phase.
inline simcluster::SimRunResult RunCell(
    const simcluster::SimClusterConfig& cluster, io::MethodType method,
    IoOp op, const simcluster::SimWorkload& workload,
    simcluster::SimRunOptions options = {}) {
  return simcluster::RunSimWorkload(cluster, method, op, workload, options);
}

inline void PrintRowHeader(const std::vector<io::MethodType>& methods) {
  std::printf("%14s", "accesses");
  for (io::MethodType m : methods) {
    std::printf(" %16s", io::MethodName(m).data());
  }
  std::printf("   (virtual seconds per method)\n");
}

inline void PrintCells(std::uint64_t accesses,
                       const std::vector<double>& seconds) {
  std::printf("%14llu", static_cast<unsigned long long>(accesses));
  for (double s : seconds) std::printf(" %16.3f", s);
  std::printf("\n");
}

}  // namespace pvfs::bench
