// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every binary prints the rows of one paper figure: a header naming the
// figure, then one table per subplot (client count), with a column per
// noncontiguous method. Default sweeps are scaled down to keep a full run
// in seconds; pass --full for the paper's 1 GiB / million-access scale.
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "io/method.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "simcluster/sim_run.hpp"
#include "simcluster/workload_streams.hpp"

namespace pvfs::bench {

struct BenchFlags {
  bool full = false;          // paper-scale sweep (slow)
  bool smoke = false;         // single tiny cell per table (CI smoke run)
  bool verbose = false;       // per-run counters
  bool coalesce = false;      // servers schedule/coalesce fragment runs
  const char* csv = nullptr;  // mirror rows to this CSV file
  const char* json = nullptr; // result JSON path (default BENCH_<name>.json)
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) flags.full = true;
    if (std::strcmp(argv[i], "--smoke") == 0) flags.smoke = true;
    if (std::strcmp(argv[i], "--verbose") == 0) flags.verbose = true;
    if (std::strcmp(argv[i], "--coalesce") == 0) flags.coalesce = true;
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      flags.csv = argv[++i];
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      flags.json = argv[++i];
    }
  }
  return flags;
}

/// Truncate a sweep to its first (smallest) element under --smoke.
template <typename T>
inline std::vector<T> SmokeSweep(const BenchFlags& flags,
                                 std::vector<T> sweep) {
  if (flags.smoke && sweep.size() > 1) sweep.resize(1);
  return sweep;
}

/// Mirrors measurement rows to a CSV file when --csv is given:
///   figure,clients,accesses,method,virtual_seconds,fs_requests
class CsvSink {
 public:
  CsvSink(const BenchFlags& flags, const char* figure) : figure_(figure) {
    if (flags.csv != nullptr) {
      file_ = std::fopen(flags.csv, "w");
      if (file_ != nullptr) {
        std::fprintf(file_,
                     "figure,clients,accesses,method,virtual_seconds,"
                     "fs_requests\n");
      }
    }
  }
  ~CsvSink() {
    if (file_ != nullptr) std::fclose(file_);
  }
  CsvSink(const CsvSink&) = delete;
  CsvSink& operator=(const CsvSink&) = delete;

  void Row(std::uint32_t clients, std::uint64_t accesses,
           std::string_view method, double seconds,
           std::uint64_t requests) {
    if (file_ == nullptr) return;
    std::fprintf(file_, "%s,%u,%llu,%.*s,%.6f,%llu\n", figure_, clients,
                 static_cast<unsigned long long>(accesses),
                 static_cast<int>(method.size()), method.data(), seconds,
                 static_cast<unsigned long long>(requests));
  }

 private:
  const char* figure_;
  std::FILE* file_ = nullptr;
};

inline void PrintBanner(const char* figure, const char* description,
                        const BenchFlags& flags) {
  std::printf("=== %s ===\n%s\nscale: %s\n\n", figure, description,
              flags.full    ? "full (paper: 1 GiB aggregate)"
              : flags.smoke ? "smoke"
                            : "reduced");
}

/// Structured result sink: every bench binary writes BENCH_<name>.json
/// (schema "pvfs-bench-v1", validated by tools/bench_json_check) holding
/// one cell per (clients, accesses, method, op) run — virtual elapsed
/// time, request counters, fault counters and latency percentiles — plus
/// an embedded metrics-registry snapshot aggregated across the cells.
class BenchJson {
 public:
  BenchJson(const BenchFlags& flags, const char* name,
            const char* description)
      : name_(name),
        path_(flags.json != nullptr ? flags.json
                                    : std::string("BENCH_") + name + ".json"),
        cells_(obs::JsonValue::Array()) {
    root_ = obs::JsonValue::Object();
    root_.Set("schema", obs::JsonValue("pvfs-bench-v1"));
    root_.Set("name", obs::JsonValue(name));
    root_.Set("description", obs::JsonValue(description));
    root_.Set("scale", obs::JsonValue(flags.full    ? "full"
                                      : flags.smoke ? "smoke"
                                                    : "reduced"));
  }
  ~BenchJson() { Write(); }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Record one simulated run cell.
  void Cell(std::uint32_t clients, std::uint64_t accesses,
            std::string_view method, std::string_view op,
            const simcluster::SimRunResult& run) {
    obs::JsonValue cell = obs::JsonValue::Object();
    cell.Set("clients", obs::JsonValue(clients));
    cell.Set("accesses", obs::JsonValue(accesses));
    cell.Set("method", obs::JsonValue(method));
    cell.Set("op", obs::JsonValue(op));
    cell.Set("io_seconds", obs::JsonValue(run.io_seconds));
    cell.Set("total_seconds", obs::JsonValue(run.total_seconds));
    cell.Set("fs_requests", obs::JsonValue(run.counters.fs_requests));
    cell.Set("messages", obs::JsonValue(run.counters.messages));
    cell.Set("regions_sent", obs::JsonValue(run.counters.regions_sent));
    cell.Set("bytes_to_servers",
             obs::JsonValue(run.counters.bytes_to_servers));
    cell.Set("bytes_from_servers",
             obs::JsonValue(run.counters.bytes_from_servers));
    // Server-side disk runs: with --coalesce (sorted-merge scheduling)
    // strictly fewer than the per-entry default on cyclic workloads.
    cell.Set("local_accesses", obs::JsonValue(run.counters.disk_runs));
    cell.Set("events", obs::JsonValue(run.events));
    // Latency percentiles: NaN (no samples) dumps as null by design.
    obs::JsonValue latency = obs::JsonValue::Object();
    latency.Set("count", obs::JsonValue(run.request_latency_samples));
    latency.Set("mean",
                run.request_latency_samples
                    ? obs::JsonValue(run.mean_request_latency_s)
                    : obs::JsonValue::Null());
    latency.Set("max", run.request_latency_samples
                           ? obs::JsonValue(run.max_request_latency_s)
                           : obs::JsonValue::Null());
    latency.Set("p50", obs::JsonValue(run.p50_request_latency_s));
    latency.Set("p95", obs::JsonValue(run.p95_request_latency_s));
    latency.Set("p99", obs::JsonValue(run.p99_request_latency_s));
    cell.Set("latency", std::move(latency));
    cell.Set("faults", obs::FaultCountersJson(run.faults));
    cells_.Append(std::move(cell));

    // Aggregate the same quantities into the registry, labelled by
    // method/op, so the embedded snapshot gives per-method totals.
    obs::Labels labels{{"method", std::string(method)},
                       {"op", std::string(op)}};
    registry_.Counter("bench.cells", labels).Increment();
    registry_.Counter("bench.fs_requests", labels)
        .Increment(run.counters.fs_requests);
    registry_.Counter("bench.messages", labels)
        .Increment(run.counters.messages);
    registry_.Histogram("bench.io_seconds", labels)
        .Observe(run.io_seconds);
    obs::ExportFaultCounters(registry_, run.faults, labels);
  }

  /// Record a free-form row (closed-form benches with no sim run).
  void Row(obs::JsonValue row) { cells_.Append(std::move(row)); }

  obs::Registry& registry() { return registry_; }

 private:
  void Write() {
    root_.Set("cells", std::move(cells_));
    root_.Set("metrics", registry_.Snapshot());
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    std::string text = root_.Dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("results: %s\n", path_.c_str());
  }

  const char* name_;
  std::string path_;
  obs::JsonValue root_;
  obs::JsonValue cells_;
  obs::Registry registry_;
};

/// Runs one (method, op) cell and returns virtual seconds of the I/O phase.
inline simcluster::SimRunResult RunCell(
    const simcluster::SimClusterConfig& cluster, io::MethodType method,
    IoOp op, const simcluster::SimWorkload& workload,
    simcluster::SimRunOptions options = {}) {
  return simcluster::RunSimWorkload(cluster, method, op, workload, options);
}

inline void PrintRowHeader(const std::vector<io::MethodType>& methods) {
  std::printf("%14s", "accesses");
  for (io::MethodType m : methods) {
    std::printf(" %16s", io::MethodName(m).data());
  }
  std::printf("   (virtual seconds per method)\n");
}

inline void PrintCells(std::uint64_t accesses,
                       const std::vector<double>& seconds) {
  std::printf("%14llu", static_cast<unsigned long long>(accesses));
  for (double s : seconds) std::printf(" %16.3f", s);
  std::printf("\n");
}

}  // namespace pvfs::bench
