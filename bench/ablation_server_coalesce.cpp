// Ablation: per-entry vs coalescing I/O daemons. 2002 PVFS iods processed
// each trailing-data entry individually — the mechanism behind Fig. 11's
// list-I/O upturn at ~150 B/access (a tile's tiny adjacent entries
// concentrate per-entry work on few servers). A daemon that coalesces
// locally-adjacent entries before touching storage removes the upturn.
#include "bench_util.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Ablation: server-side entry coalescing (Fig. 11 mechanism)",
              "block-block list-I/O read, 9 clients; per-entry vs coalescing "
              "I/O daemons",
              flags);

  const ByteCount aggregate = flags.full ? kGiB : 256 * kMiB;
  const std::vector<std::uint64_t> sweeps = SmokeSweep(
      flags,
      flags.full
          ? std::vector<std::uint64_t>{125000, 250000, 500000, 800000,
                                       1000000}
          : std::vector<std::uint64_t>{12500, 25000, 50000, 100000, 200000});

  BenchJson json(flags, "ablation_server_coalesce",
                 "Per-entry vs coalescing I/O daemons on block-block reads");

  std::printf("%12s %14s %16s %16s\n", "accesses", "bytes/access",
              "per-entry iod s", "coalescing iod s");
  for (std::uint64_t accesses : sweeps) {
    workloads::BlockBlockConfig config{aggregate, 9, accesses};
    SimWorkload workload;
    workload.file_regions = [config](Rank r) {
      return std::make_unique<BlockBlockStream>(config, r);
    };

    SimClusterConfig per_entry = ChibaCityConfig(9);
    SimClusterConfig coalescing = ChibaCityConfig(9);
    coalescing.server_coalesces_entries = true;

    auto a = RunCell(per_entry, io::MethodType::kList, IoOp::kRead, workload);
    auto b =
        RunCell(coalescing, io::MethodType::kList, IoOp::kRead, workload);
    json.Cell(9, accesses, "per-entry", "read", a);
    json.Cell(9, accesses, "coalescing", "read", b);
    std::printf("%12llu %14llu %16.3f %16.3f\n",
                static_cast<unsigned long long>(accesses),
                static_cast<unsigned long long>(aggregate / 9 / accesses),
                a.io_seconds, b.io_seconds);
  }
  std::printf("\nexpectation: the per-entry daemon's time turns upward as "
              "accesses shrink below ~150 B; the coalescing daemon stays "
              "flat (adjacent entries collapse into row-sized accesses).\n");
  return 0;
}
