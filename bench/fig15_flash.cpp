// Figure 15: FLASH I/O checkpoint write, 2-32 clients, log-scale time per
// method {multiple, data sieving, list}.
//
// Expected shape (paper §4.3.2): data sieving wins (few large serialized
// RMW windows), list I/O sits roughly two orders of magnitude above it,
// and multiple I/O a bit over one order above list. Multiple and list stay
// nearly flat in client count; sieving grows with clients (serialized
// access + a growing useless-data fraction).
//
// The extra "list/file-chunked" column is this library's native list
// client (trailing data limits file regions only): the paper's §4.3.1
// arithmetic (80*24/64 = 30 requests/proc) describes THIS variant, while
// its measured times correspond to the ROMIO-style implementation that
// also capped memory entries at 64 (983,040/64 = 15,360 requests/proc).
#include "bench_util.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Figure 15: FLASH I/O checkpoint write",
              "80 blocks x 8^3 elements x 24 vars x 8 B = 7.5 MB/proc; "
              "file is variable-major",
              flags);

  const std::vector<std::uint32_t> client_counts = SmokeSweep(
      flags, flags.full ? std::vector<std::uint32_t>{2, 4, 8, 16, 32}
                        : std::vector<std::uint32_t>{2, 4, 8});

  std::printf("%8s %14s %14s %14s %18s   (virtual seconds)\n", "clients",
              "multiple", "data-sieving", "list", "list/file-chunked");
  CsvSink csv(flags, "fig15");
  BenchJson json(flags, "fig15",
                 "FLASH I/O checkpoint write: time per method vs clients");

  for (std::uint32_t clients : client_counts) {
    workloads::FlashConfig config;
    config.nprocs = clients;

    SimWorkload workload;
    workload.file_regions = [config](Rank r) {
      return std::make_unique<FlashFileStream>(config, r);
    };
    workload.segments = [config](Rank r) {
      // Memory regions are uniform 8-byte variables, so matched segments
      // split every file chunk at var_bytes granularity.
      return std::make_unique<UniformSplitStream>(
          std::make_unique<FlashFileStream>(config, r), config.var_bytes);
    };

    SimClusterConfig cluster = ChibaCityConfig(clients);

    auto multiple = RunCell(cluster, io::MethodType::kMultiple, IoOp::kWrite,
                            workload);
    auto sieving = RunCell(cluster, io::MethodType::kDataSieving,
                           IoOp::kWrite, workload);
    auto list = RunCell(cluster, io::MethodType::kList, IoOp::kWrite,
                        workload);
    SimRunOptions native;
    native.list_uses_segments = false;
    auto list_native = RunCell(cluster, io::MethodType::kList, IoOp::kWrite,
                               workload, native);

    std::printf("%8u %14.1f %14.1f %14.1f %18.1f\n", clients,
                multiple.io_seconds, sieving.io_seconds, list.io_seconds,
                list_native.io_seconds);
    csv.Row(clients, 0, "multiple", multiple.io_seconds,
            multiple.counters.fs_requests);
    csv.Row(clients, 0, "data-sieving", sieving.io_seconds,
            sieving.counters.fs_requests);
    csv.Row(clients, 0, "list", list.io_seconds, list.counters.fs_requests);
    csv.Row(clients, 0, "list-file-chunked", list_native.io_seconds,
            list_native.counters.fs_requests);
    json.Cell(clients, 0, "multiple", "write", multiple);
    json.Cell(clients, 0, "data-sieving", "write", sieving);
    json.Cell(clients, 0, "list", "write", list);
    json.Cell(clients, 0, "list-file-chunked", "write", list_native);
    if (flags.verbose) {
      std::printf("  requests/proc: multiple=%llu list=%llu native=%llu\n",
                  static_cast<unsigned long long>(
                      multiple.counters.fs_requests / clients),
                  static_cast<unsigned long long>(
                      list.counters.fs_requests / clients),
                  static_cast<unsigned long long>(
                      list_native.counters.fs_requests / clients));
    }
  }
  return 0;
}
