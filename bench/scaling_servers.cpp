// Extension bench: aggregate bandwidth vs number of I/O servers — the
// scaling experiment of the PVFS papers this work builds on (references
// [2] and [6]): contiguous reads should scale with server count until the
// client-side network saturates; fragmented list reads scale less cleanly
// (per-request costs don't shrink with more servers).
#include "bench_util.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Scaling: aggregate bandwidth vs I/O servers",
              "4 clients; contiguous whole-share reads and fragmented "
              "(4 KiB) list reads",
              flags);

  const ByteCount aggregate = flags.full ? kGiB : 128 * kMiB;
  constexpr std::uint32_t kClients = 4;

  BenchJson json(flags, "scaling_servers",
                 "Aggregate bandwidth vs I/O server count");

  std::printf("%10s %18s %18s\n", "servers", "contig MB/s", "list-4K MB/s");
  const std::vector<std::uint32_t> server_counts =
      SmokeSweep(flags, std::vector<std::uint32_t>{1u, 2u, 4u, 8u});
  for (std::uint32_t servers : server_counts) {
    SimClusterConfig cluster = ChibaCityConfig(kClients);
    cluster.servers = servers;
    cluster.striping = Striping{0, servers, 16384};

    // Contiguous: each client reads one quarter of the file in one call.
    SimWorkload contig;
    contig.file_regions = [aggregate](Rank r) {
      ByteCount share = aggregate / kClients;
      return std::make_unique<VectorStream>(
          ExtentList{{r * share, share}});
    };
    auto c = RunCell(cluster, io::MethodType::kList, IoOp::kRead, contig);

    // Fragmented: the cyclic pattern at 4 KiB granularity.
    workloads::CyclicConfig config{aggregate, kClients,
                                   aggregate / kClients / 4096};
    SimWorkload fragmented;
    fragmented.file_regions = [config](Rank r) {
      return std::make_unique<CyclicStream>(config, r);
    };
    auto f = RunCell(cluster, io::MethodType::kList, IoOp::kRead,
                     fragmented);
    json.Cell(kClients, servers, "contiguous", "read", c);
    json.Cell(kClients, servers, "list-4k", "read", f);

    auto mbps = [aggregate](double seconds) {
      return static_cast<double>(aggregate) / 1e6 / seconds;
    };
    std::printf("%10u %18.1f %18.1f\n", servers, mbps(c.io_seconds),
                mbps(f.io_seconds));
  }
  std::printf("\nexpectation: contiguous bandwidth grows with servers until "
              "the four client NICs (~4 x 12.5 MB/s) saturate; fragmented "
              "reads flatten earlier (per-request overhead).\n");
  return 0;
}
