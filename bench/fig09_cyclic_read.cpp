// Figure 9: one-dimensional cyclic READ, 8/16/32 clients, time vs number
// of accesses, methods {multiple, data sieving, list}.
//
// Expected shape (paper §4.2.2): multiple and list scale linearly with the
// access count with list far below multiple; data sieving is flat across
// accesses and roughly doubles when the client count doubles.
#include "bench_util.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Figure 9: 1-D cyclic read",
              "1 GiB aggregate split over N clients; x = accesses/client",
              flags);

  const ByteCount aggregate = flags.full ? kGiB : 256 * kMiB;
  const std::vector<std::uint64_t> sweeps = SmokeSweep(
      flags,
      flags.full ? std::vector<std::uint64_t>{125000, 250000, 500000, 1000000}
                 : std::vector<std::uint64_t>{12500, 25000, 50000, 100000});
  const std::vector<io::MethodType> methods = {io::MethodType::kMultiple,
                                               io::MethodType::kDataSieving,
                                               io::MethodType::kList};
  CsvSink csv(flags, "fig09");
  BenchJson json(flags, "fig09",
                 "1-D cyclic read: time vs accesses per method");

  const std::vector<std::uint32_t> client_counts =
      SmokeSweep(flags, std::vector<std::uint32_t>{8u, 16u, 32u});
  for (std::uint32_t clients : client_counts) {
    std::printf("-- %u clients --\n", clients);
    PrintRowHeader(methods);
    for (std::uint64_t accesses : sweeps) {
      workloads::CyclicConfig config{aggregate, clients, accesses};
      SimWorkload workload;
      workload.file_regions = [config](Rank r) {
        return std::make_unique<CyclicStream>(config, r);
      };
      std::vector<double> seconds;
      for (io::MethodType method : methods) {
        SimClusterConfig cluster = ChibaCityConfig(clients);
        cluster.server_coalesces_entries = flags.coalesce;
        auto run = RunCell(cluster, method, IoOp::kRead, workload);
        seconds.push_back(run.io_seconds);
        csv.Row(clients, accesses, io::MethodName(method), run.io_seconds,
                run.counters.fs_requests);
        json.Cell(clients, accesses, io::MethodName(method), "read", run);
        if (flags.verbose) {
          std::printf("    [%s] requests=%llu messages=%llu\n",
                      io::MethodName(method).data(),
                      static_cast<unsigned long long>(
                          run.counters.fs_requests),
                      static_cast<unsigned long long>(run.counters.messages));
        }
      }
      PrintCells(accesses, seconds);
    }
    std::printf("\n");
  }
  return 0;
}
