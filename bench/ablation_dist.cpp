// Distribution-layout ablation: the same two paper workloads replayed
// under each of the four file layouts (docs/distributions.md), with real
// byte movement over an in-process cluster so the numbers are true
// message and access counts, not simulator estimates.
//
// Workloads (both write the file with the pattern and read it back):
//   flash       FLASH checkpoint chunks (paper Figs. 13-15): each rank's
//               (variable, block) chunks land at variable-major offsets
//               `((v*blocks+b)*nprocs+rank)*chunk`. Chunks span
//               chunk/ssize = 4 stripe units, so layouts that keep
//               consecutive units on one server coalesce a whole chunk
//               into one access.
//   tiledviz    Tiled visualization rows (paper Figs. 16-17): each
//               client reads its tile's rows — short segments strided by
//               the wall row — so layouts that keep a band of the file
//               on few servers shrink the per-op server fan-out.
//
// Layout cells per workload:
//   simple      classic round-robin striping (the fig09-17 default)
//   twod-2x4    2-D stripe: 2 groups of 4 servers, depth 4
//   block       one contiguous extent of file_bytes/pcount per server
//   gcyclic-4   group-cyclic: 4 consecutive units per server per visit
//
// The run doubles as an acceptance check (exit 1 on violation): readback
// must be bit-identical to the written pattern in every cell, and at
// least one non-simple cell must beat simple striping on iod messages
// or on the busiest server's coalesced access count — the bar CI's
// dist-smoke job enforces. (Expected: gcyclic-4 wins flash outright —
// each 4-unit chunk becomes one access on one server — and block wins
// tiledviz on per-op server fan-out.)
//
//   --smoke   quarter-scale workloads (CI)
//   default   flash 16 MiB, tiledviz 3 MiB
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "pvfs/client.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "pvfs/transport.hpp"
#include "simcluster/workload_streams.hpp"
#include "workloads/flash.hpp"
#include "workloads/tiledviz.hpp"

using namespace pvfs;
using namespace pvfs::bench;

namespace {

constexpr std::uint32_t kServers = 8;
constexpr ByteCount kStripeSize = 8192;
constexpr std::uint64_t kFillSeed = 1902;

/// One self-contained in-process deployment per cell, so cells never see
/// each other's server-side state.
struct MiniCluster {
  explicit MiniCluster(std::uint32_t servers) : manager(servers) {
    std::vector<IoDaemon*> ptrs;
    iods.reserve(servers);
    for (ServerId s = 0; s < servers; ++s) {
      iods.push_back(std::make_unique<IoDaemon>(s, ServerConfig{}));
      ptrs.push_back(iods.back().get());
    }
    transport = std::make_unique<InProcTransport>(&manager, std::move(ptrs));
  }
  Manager manager;
  std::vector<std::unique_ptr<IoDaemon>> iods;
  std::unique_ptr<InProcTransport> transport;
};

struct LayoutCell {
  const char* name;
  DistributionSpec spec;  // block_extent filled per workload for kBlock
};

struct CellResult {
  std::uint64_t ops = 0;            // list ops issued (write + read)
  std::uint64_t client_messages = 0;
  double messages_per_op = 0;
  std::uint64_t requests_max = 0;   // busiest server, raw requests
  std::uint64_t accesses_total = 0; // coalesced local runs, all servers
  std::uint64_t accesses_max = 0;   // busiest server, coalesced runs
  std::uint64_t store_ops = 0;
  std::uint64_t bytes_moved = 0;    // server-side bytes read + written
  bool verified = false;
};

ExtentList Collect(simcluster::RegionStream& stream) {
  ExtentList regions;
  while (auto e = stream.Next()) regions.push_back(*e);
  return regions;
}

/// Packed buffer whose bytes are the position-keyed pattern for the
/// listed file regions — what a correct WriteList must store and a
/// correct ReadList must return.
ByteBuffer PatternPacked(const ExtentList& regions) {
  ByteBuffer out(TotalBytes(regions));
  size_t at = 0;
  for (const Extent& e : regions) {
    FillPattern(std::span(out).subspan(at, e.length), kFillSeed, e.offset);
    at += e.length;
  }
  return out;
}

/// Replays one workload (each rank's region list written, then read
/// back) under the given layout and returns the measured counters.
CellResult RunCell(const std::vector<ExtentList>& rank_regions,
                   const DistributionSpec& spec) {
  MiniCluster cluster(kServers);
  Client client(cluster.transport.get());
  CellResult result;

  auto fd = client.Create("abl", {Striping{0, kServers, kStripeSize}, spec});
  if (!fd.ok()) return result;

  client.ResetStats();
  bool all_match = true;
  for (const ExtentList& regions : rank_regions) {
    const ByteBuffer golden = PatternPacked(regions);
    const std::vector<Extent> mem = {Extent{0, golden.size()}};
    if (!client.WriteList(*fd, mem, golden, regions).ok()) return result;
    ++result.ops;
  }
  for (const ExtentList& regions : rank_regions) {
    const ByteBuffer golden = PatternPacked(regions);
    ByteBuffer got(golden.size());
    const std::vector<Extent> mem = {Extent{0, got.size()}};
    if (!client.ReadList(*fd, mem, got, regions).ok()) return result;
    all_match = all_match && got == golden;
    ++result.ops;
  }

  result.client_messages = client.stats().messages;
  result.messages_per_op =
      static_cast<double>(result.client_messages) / result.ops;
  for (const auto& iod : cluster.iods) {
    const IoDaemon::Stats& s = iod->stats();
    result.requests_max = std::max(result.requests_max, s.requests.load());
    result.accesses_total += s.local_accesses.load();
    result.accesses_max =
        std::max(result.accesses_max, s.local_accesses.load());
    result.store_ops += s.store_ops.load();
    result.bytes_moved += s.bytes_read.load() + s.bytes_written.load();
  }
  result.verified = all_match && client.Close(*fd).ok();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("dist_ablation",
              "flash + tiledviz replayed under simple / twod / block / "
              "gcyclic layouts",
              flags);

  // FLASH: chunk = 16^3 elements * 8 B = 32 KiB = 4 stripe units.
  workloads::FlashConfig flash;
  flash.nxb = flash.nyb = flash.nzb = 16;
  flash.var_bytes = 8;
  flash.nprocs = flags.smoke ? 4 : 8;
  flash.blocks_per_proc = flags.smoke ? 4 : 8;
  flash.nvars = flags.smoke ? 4 : 8;

  workloads::TiledVizConfig viz;  // 2x2 tiles, no overlap: a clean quarter each
  viz.tiles_x = 2;
  viz.tiles_y = 2;
  viz.tile_w = flags.smoke ? 256 : 1024;
  viz.tile_h = flags.smoke ? 64 : 256;
  viz.overlap_x = 0;
  viz.overlap_y = 0;

  struct Workload {
    const char* name;
    std::vector<ExtentList> rank_regions;
    ByteCount file_bytes = 0;
  };
  std::vector<Workload> workloads_list;
  {
    Workload w{"flash"};
    for (Rank r = 0; r < flash.nprocs; ++r) {
      simcluster::FlashFileStream stream(flash, r);
      w.rank_regions.push_back(Collect(stream));
      w.file_bytes = std::max<ByteCount>(w.file_bytes, flash.FileBytes());
    }
    workloads_list.push_back(std::move(w));
  }
  {
    Workload w{"tiledviz"};
    const ByteCount wall_bytes = static_cast<ByteCount>(viz.WallWidth()) *
                                 viz.WallHeight() * viz.bytes_per_pixel;
    for (Rank r = 0; r < viz.clients(); ++r) {
      simcluster::TiledVizStream stream(viz, r);
      w.rank_regions.push_back(Collect(stream));
    }
    w.file_bytes = wall_bytes;
    workloads_list.push_back(std::move(w));
  }

  BenchJson json(flags, "dist_ablation",
                 "distribution-layout ablation: iod messages and coalesced "
                 "accesses per layout for flash and tiledviz");

  std::printf("%10s %12s %8s %12s %12s %12s %12s %12s\n", "workload",
              "layout", "ops", "msgs/op", "req max", "accesses", "acc max",
              "MiB moved");
  int failures = 0;
  std::uint64_t layout_wins = 0;
  for (const Workload& w : workloads_list) {
    const std::vector<LayoutCell> cells = {
        {"simple", DistributionSpec::Simple()},
        {"twod-2x4", DistributionSpec::TwoD(2, 4)},
        {"block", DistributionSpec::Block(
                      (w.file_bytes + kServers - 1) / kServers)},
        {"gcyclic-4", DistributionSpec::GroupCyclic(4)},
    };
    CellResult simple;
    for (const LayoutCell& cell : cells) {
      CellResult r = RunCell(w.rank_regions, cell.spec);
      if (cell.spec.IsSimple()) simple = r;
      std::printf("%10s %12s %8llu %12.2f %12llu %12llu %12llu %12.1f%s\n",
                  w.name, cell.name,
                  static_cast<unsigned long long>(r.ops), r.messages_per_op,
                  static_cast<unsigned long long>(r.requests_max),
                  static_cast<unsigned long long>(r.accesses_total),
                  static_cast<unsigned long long>(r.accesses_max),
                  static_cast<double>(r.bytes_moved) / (1 << 20),
                  r.verified ? "" : "   READBACK MISMATCH");
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: %s/%s readback mismatch\n", w.name,
                     cell.name);
        ++failures;
      }
      if (!cell.spec.IsSimple() &&
          (r.client_messages < simple.client_messages ||
           r.accesses_max < simple.accesses_max)) {
        ++layout_wins;
      }

      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("method", obs::JsonValue(cell.name));
      row.Set("workload", obs::JsonValue(w.name));
      row.Set("layout", obs::JsonValue(cell.name));
      row.Set("servers", obs::JsonValue(std::uint64_t{kServers}));
      row.Set("stripe_bytes", obs::JsonValue(std::uint64_t{kStripeSize}));
      row.Set("file_bytes", obs::JsonValue(w.file_bytes));
      row.Set("ops", obs::JsonValue(r.ops));
      row.Set("client_messages", obs::JsonValue(r.client_messages));
      row.Set("messages_per_op", obs::JsonValue(r.messages_per_op));
      row.Set("requests_max", obs::JsonValue(r.requests_max));
      row.Set("accesses_total", obs::JsonValue(r.accesses_total));
      row.Set("accesses_max", obs::JsonValue(r.accesses_max));
      row.Set("store_ops", obs::JsonValue(r.store_ops));
      row.Set("bytes_moved", obs::JsonValue(r.bytes_moved));
      row.Set("verified", obs::JsonValue(r.verified));
      json.Row(std::move(row));
    }
  }

  // Acceptance: bit-identical readback everywhere, and at least one
  // non-simple cell beat simple striping on messages or busiest-server
  // accesses.
  if (layout_wins == 0) {
    std::fprintf(stderr,
                 "FAIL: no non-simple layout beat simple striping on iod "
                 "messages or busiest-server accesses\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("\nacceptance: readback verified in every cell, %llu "
                "layout cells beat simple striping\n",
                static_cast<unsigned long long>(layout_wins));
  }
  return failures == 0 ? 0 : 1;
}
