// Ablation (paper §5 closing proposal): datatype-described requests.
// "Support for I/O requests that use an approach similar to MPI datatypes
// ... would eliminate the linear relationship between the number of
// contiguous regions and the number of I/O requests."
//
// Compares list I/O (16 wire bytes per region, 64 regions per request)
// against datatype requests (one constant-size vector description per
// operation) on the cyclic workload across fragmentation levels.
#include "bench_util.hpp"
#include "io/datatype.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Ablation: datatype requests (paper §5)",
              "cyclic read, 8 clients; list requests grow linearly with "
              "accesses, datatype requests stay at one per client",
              flags);

  const ByteCount aggregate = flags.full ? kGiB : 128 * kMiB;
  const std::vector<std::uint64_t> sweeps = SmokeSweep(
      flags, flags.full ? std::vector<std::uint64_t>{50000, 200000, 1000000}
                        : std::vector<std::uint64_t>{5000, 20000, 80000});

  BenchJson json(flags, "ablation_datatype",
                 "List I/O vs one datatype-described request per operation");

  std::printf("%12s %12s %12s %14s %14s\n", "accesses", "list s",
              "datatype s", "list reqs", "dtype descr B");
  for (std::uint64_t accesses : sweeps) {
    workloads::CyclicConfig config{aggregate, 8, accesses};
    SimWorkload workload;
    workload.file_regions = [config](Rank r) {
      return std::make_unique<CyclicStream>(config, r);
    };

    auto list = RunCell(ChibaCityConfig(8), io::MethodType::kList,
                        IoOp::kRead, workload);

    // The whole cyclic pattern is one vector datatype: count=accesses,
    // blocklen=block, stride=clients*block.
    io::Datatype vec = io::Datatype::HVector(
        accesses, 1,
        static_cast<std::int64_t>(config.BlockBytes() * config.clients),
        io::Datatype::Bytes(config.BlockBytes()));

    SimClusterConfig dtype_cluster = ChibaCityConfig(8);
    dtype_cluster.max_list_regions = 0xFFFFFFFFu;  // one request, all regions
    dtype_cluster.request_description_bytes = vec.DescriptionWireBytes();
    auto dtype = RunCell(dtype_cluster, io::MethodType::kList, IoOp::kRead,
                         workload);
    json.Cell(8, accesses, "list", "read", list);
    json.Cell(8, accesses, "datatype", "read", dtype);

    std::printf("%12llu %12.3f %12.3f %14llu %14llu\n",
                static_cast<unsigned long long>(accesses), list.io_seconds,
                dtype.io_seconds,
                static_cast<unsigned long long>(list.counters.fs_requests),
                static_cast<unsigned long long>(vec.DescriptionWireBytes()));
  }
  std::printf(
      "\nnote: servers still pay per-fragment CPU/storage costs in both "
      "modes; the win is request count and trailing-data wire bytes.\n");
  return 0;
}
