// Ablation (paper §5 future work): hybrid list+sieving. Sweeps the gap
// threshold on clustered and uniform patterns and sweeps the data-sieving
// buffer size — the design knobs DESIGN.md calls out.
//
// Expected: on clustered patterns a modest gap threshold collapses request
// counts and beats plain list I/O; on uniform widely-spaced patterns
// hybrid degenerates to list I/O (threshold below the stride) or to
// sieving-like useless transfer (threshold above it).
#include "bench_util.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

namespace {

/// Clustered pattern: `clusters` groups of `per_cluster` 64-byte pieces
/// with 16-byte intra-cluster gaps and 64 KiB inter-cluster gaps.
ExtentList Clustered(int clusters, int per_cluster) {
  ExtentList out;
  FileOffset pos = 0;
  for (int c = 0; c < clusters; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      out.push_back(Extent{pos, 64});
      pos += 80;
    }
    pos += 64 * 1024;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Ablation: hybrid list+sieving (paper §5)",
              "gap-threshold sweep on clustered vs uniform patterns; "
              "sieve-buffer sweep on the cyclic workload",
              flags);

  SimClusterConfig cluster = ChibaCityConfig(4);
  BenchJson json(flags, "ablation_hybrid",
                 "Hybrid list+sieving gap-threshold and buffer sweeps");

  std::printf("-- clustered reads (800 clusters x 8 x 64 B, 16 B gaps) --\n");
  std::printf("%16s %12s %12s\n", "gap threshold", "seconds", "requests");
  ExtentList clustered = Clustered(800, 8);
  SimWorkload wl;
  wl.file_regions = [&clustered](Rank) {
    return std::make_unique<VectorStream>(clustered);
  };
  auto list_run = RunCell(cluster, io::MethodType::kList, IoOp::kRead, wl);
  std::printf("%16s %12.3f %12llu\n", "plain list", list_run.io_seconds,
              static_cast<unsigned long long>(list_run.counters.fs_requests));
  json.Cell(4, 0, "list", "read", list_run);
  for (ByteCount gap : {0ull, 16ull, 256ull, 4096ull, 1ull << 20}) {
    SimRunOptions options;
    options.hybrid_gap_threshold = gap;
    auto run = RunCell(cluster, io::MethodType::kHybrid, IoOp::kRead, wl,
                       options);
    std::printf("%16llu %12.3f %12llu\n",
                static_cast<unsigned long long>(gap), run.io_seconds,
                static_cast<unsigned long long>(run.counters.fs_requests));
    json.Cell(4, gap, "hybrid-clustered", "read", run);
  }

  std::printf("\n-- uniform cyclic reads (4 clients, 20k accesses) --\n");
  std::printf("%16s %12s %12s\n", "gap threshold", "seconds", "requests");
  workloads::CyclicConfig cyclic{64 * kMiB, 4, 20000};
  SimWorkload uniform;
  uniform.file_regions = [cyclic](Rank r) {
    return std::make_unique<CyclicStream>(cyclic, r);
  };
  auto ulist = RunCell(cluster, io::MethodType::kList, IoOp::kRead, uniform);
  std::printf("%16s %12.3f %12llu\n", "plain list", ulist.io_seconds,
              static_cast<unsigned long long>(ulist.counters.fs_requests));
  json.Cell(4, 20000, "list", "read", ulist);
  for (ByteCount gap : {0ull, 4096ull, 65536ull}) {
    SimRunOptions options;
    options.hybrid_gap_threshold = gap;
    auto run = RunCell(cluster, io::MethodType::kHybrid, IoOp::kRead,
                       uniform, options);
    std::printf("%16llu %12.3f %12llu\n",
                static_cast<unsigned long long>(gap), run.io_seconds,
                static_cast<unsigned long long>(run.counters.fs_requests));
    json.Cell(4, gap, "hybrid-uniform", "read", run);
  }

  std::printf("\n-- sieve-buffer sweep (cyclic read, 4 clients) --\n");
  std::printf("%16s %12s %12s\n", "buffer", "seconds", "requests");
  for (ByteCount buffer : {1 * kMiB, 4 * kMiB, 16 * kMiB, 32 * kMiB}) {
    SimRunOptions options;
    options.sieve_buffer_bytes = buffer;
    auto run = RunCell(cluster, io::MethodType::kDataSieving, IoOp::kRead,
                       uniform, options);
    std::printf("%13lluMiB %12.3f %12llu\n",
                static_cast<unsigned long long>(buffer / kMiB),
                run.io_seconds,
                static_cast<unsigned long long>(run.counters.fs_requests));
    json.Cell(4, buffer, "sieving-buffer", "read", run);
  }
  return 0;
}
