// Streaming pipeline bench: the async I/O pipeline (nonblocking client
// ops + iod flows) against the synchronous baseline, over real TCP
// sockets with a modeled storage device.
//
// Two cells on identical strided list-I/O work and an identical device
// model (store_seek_us + store_us_per_mib, charged per contiguous store
// access on both paths):
//   sync-baseline    flows off, blocking Write/ReadList, classic
//                    transport: every op serializes network, service and
//                    device time end to end.
//   pipelined-flows  flows on, multiplexed transport, nonblocking
//                    Read/WriteListAsync with a bounded in-flight window:
//                    the daemons run Serve concurrently and stream each
//                    request through AsyncStore in bounded segments, so
//                    device intervals overlap across and within requests.
//
// Acceptance (exit nonzero on violation, so the CI smoke run doubles as
// a regression gate): both cells read back bit-identical, and pipelined
// throughput >= 1.3x the sync baseline measured in the same run.
//
//   --smoke   12 ops x 6 regions x 16 KiB (CI)
//   default   24 ops x 8 regions x 32 KiB
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "common/extent.hpp"
#include "net/mux_transport.hpp"
#include "net/socket_transport.hpp"
#include "pvfs/client.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::net;

namespace {

constexpr std::uint64_t kFillSeed = 77;
const Striping kStriping{0, 4, 16384};

struct Shape {
  std::uint32_t ops;          // list operations per phase (write, then read)
  std::uint32_t regions;      // strided file regions per operation
  ByteCount region_bytes;     // bytes per region
  std::uint32_t window;       // async ops in flight at once (pipelined cell)

  ByteCount op_bytes() const {
    return static_cast<ByteCount>(regions) * region_bytes;
  }
  ByteCount total_bytes() const {
    return static_cast<ByteCount>(ops) * op_bytes();
  }
};

/// The modeled device both cells pay per contiguous store access. Large
/// enough to dominate loopback TCP noise, so the measured ratio reflects
/// pipeline overlap, not socket jitter.
ServerConfig DeviceModel(bool flows) {
  ServerConfig config;
  config.schedule_fragments = true;  // both cells run the coalesced plan
  config.store_seek_us = 1'000;
  config.store_us_per_mib = 8'000;
  config.flows = flows;
  if (flows) {
    config.flow_segment_bytes = 16 * 1024;  // several segments per request
    config.flow_inflight = 4;
    config.store_workers = 8;
    config.transport_workers = 8;
  }
  return config;
}

/// Strided file regions for op `op`: op-interleaved so consecutive ops
/// land on different stripes (every op still fans out to all servers).
std::vector<Extent> OpRegions(const Shape& shape, std::uint32_t op) {
  std::vector<Extent> regions;
  regions.reserve(shape.regions);
  const ByteCount stride =
      shape.region_bytes * 3 + 4096;  // noncontiguous in the file
  const ByteCount base = static_cast<ByteCount>(op) * shape.regions * stride;
  for (std::uint32_t r = 0; r < shape.regions; ++r) {
    regions.push_back(Extent{base + r * stride, shape.region_bytes});
  }
  return regions;
}

struct CellResult {
  double seconds = 0;
  bool verified = false;
  std::uint64_t flow_segments = 0;
  std::uint64_t flow_stall_us = 0;
  std::uint64_t mux_reconnects = 0;
};

/// One full cell: create, write all ops, read them back, compare.
CellResult RunStreamingCell(SocketCluster& cluster, Client& client,
                            const Shape& shape, bool pipelined,
                            const ByteBuffer& golden) {
  CellResult result;
  const Extent mem{0, shape.op_bytes()};
  auto fd = client.Create("stream", kStriping, {});
  if (!fd.ok()) return result;

  ByteBuffer readback(golden.size());
  const auto start = std::chrono::steady_clock::now();
  for (int phase = 0; phase < 2; ++phase) {
    const bool writing = phase == 0;
    bool ok = true;
    if (!pipelined) {
      for (std::uint32_t op = 0; op < shape.ops; ++op) {
        const std::vector<Extent> file = OpRegions(shape, op);
        const Extent mem_one[] = {mem};
        const ByteCount pos = static_cast<ByteCount>(op) * shape.op_bytes();
        Status status =
            writing
                ? client.WriteList(
                      *fd, mem_one,
                      std::span<const std::byte>(golden).subspan(
                          pos, shape.op_bytes()),
                      file)
                : client.ReadList(*fd, mem_one,
                                  std::span<std::byte>(readback).subspan(
                                      pos, shape.op_bytes()),
                                  file);
        ok = ok && status.ok();
      }
    } else {
      // Bounded nonblocking window: keep `shape.window` list ops in
      // flight; region/extent storage must outlive Wait, so it is kept
      // per slot.
      std::vector<Client::Operation> inflight(shape.window);
      std::vector<std::vector<Extent>> files(shape.window);
      std::vector<Extent> mems(shape.window, mem);
      for (std::uint32_t op = 0; op < shape.ops; ++op) {
        const std::uint32_t slot = op % shape.window;
        if (inflight[slot].valid()) ok = ok && inflight[slot].Wait().ok();
        files[slot] = OpRegions(shape, op);
        const ByteCount pos = static_cast<ByteCount>(op) * shape.op_bytes();
        inflight[slot] =
            writing
                ? client.WriteListAsync(
                      *fd, std::span<const Extent>(&mems[slot], 1),
                      std::span<const std::byte>(golden).subspan(
                          pos, shape.op_bytes()),
                      files[slot])
                : client.ReadListAsync(*fd,
                                       std::span<const Extent>(&mems[slot], 1),
                                       std::span<std::byte>(readback).subspan(
                                           pos, shape.op_bytes()),
                                       files[slot]);
      }
      for (Client::Operation& op : inflight) {
        if (op.valid()) ok = ok && op.Wait().ok();
      }
    }
    if (!ok) return result;
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.verified = readback == golden;
  for (std::uint32_t s = 0; s < kStriping.pcount; ++s) {
    result.flow_segments += cluster.iod(s).stats().flow_segments;
    result.flow_stall_us += cluster.iod(s).stats().flow_stall_us;
  }
  return result;
}

obs::JsonValue CellJson(const char* method, const CellResult& r,
                        const Shape& shape) {
  obs::JsonValue cell = obs::JsonValue::Object();
  cell.Set("method", obs::JsonValue(method));
  cell.Set("ops", obs::JsonValue(static_cast<std::uint64_t>(shape.ops * 2)));
  cell.Set("bytes",
           obs::JsonValue(static_cast<std::uint64_t>(shape.total_bytes() * 2)));
  cell.Set("seconds", obs::JsonValue(r.seconds));
  cell.Set("mb_per_second",
           obs::JsonValue(r.seconds > 0
                              ? static_cast<double>(shape.total_bytes()) * 2 /
                                    1.0e6 / r.seconds
                              : 0.0));
  cell.Set("verified", obs::JsonValue(r.verified));
  cell.Set("flow_segments", obs::JsonValue(r.flow_segments));
  cell.Set("flow_stall_us", obs::JsonValue(r.flow_stall_us));
  cell.Set("mux_reconnects", obs::JsonValue(r.mux_reconnects));
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  Shape shape = flags.smoke ? Shape{12, 6, 16 * 1024, 6}
                            : Shape{24, 8, 32 * 1024, 6};
  PrintBanner("streaming_pipeline",
              "async client ops + iod flows vs the synchronous baseline",
              flags);
  BenchJson json(flags, "streaming_pipeline",
                 "pipelined (flows + async ops) vs sync list I/O over TCP "
                 "with a modeled storage device");

  ByteBuffer golden(shape.total_bytes());
  FillPattern(golden, kFillSeed, 0);
  bool ok = true;
  double sync_mbs = 0, piped_mbs = 0;

  // ---- sync baseline: flows off, blocking ops ---------------------------
  {
    auto cluster = SocketCluster::Start(kStriping.pcount, DeviceModel(false), 0);
    if (!cluster.ok()) return 1;
    auto transport = (*cluster)->Connect(std::chrono::milliseconds{2000});
    Client client(transport.get(), Client::Options{});
    CellResult r =
        RunStreamingCell(**cluster, client, shape, /*pipelined=*/false,
                         golden);
    sync_mbs = r.seconds > 0
                   ? static_cast<double>(shape.total_bytes()) * 2 / 1.0e6 /
                         r.seconds
                   : 0;
    std::printf("sync-baseline:   %.3fs %.1f MB/s verified=%d\n", r.seconds,
                sync_mbs, r.verified);
    ok = ok && r.verified && r.seconds > 0;
    json.Row(CellJson("sync-baseline", r, shape));
  }

  // ---- pipelined: flows on, mux transport, async ops --------------------
  {
    auto cluster = SocketCluster::Start(kStriping.pcount, DeviceModel(true), 0);
    if (!cluster.ok()) return 1;
    ClientConfig net_config;
    net_config.multiplex = true;
    net_config.call_timeout = std::chrono::milliseconds{2000};
    auto transport = (*cluster)->Connect(net_config);
    Client::Options options;
    options.async_workers = shape.window;
    // Part of the async pipeline: one op's per-server exchanges proceed
    // concurrently (the 2002 client's socket-per-iod fan-out), so every
    // daemon sees work from every in-flight op at once.
    options.parallel_fanout = true;
    Client client(transport.get(), options);
    CellResult r = RunStreamingCell(**cluster, client, shape,
                                    /*pipelined=*/true, golden);
    if (auto* mux = dynamic_cast<MuxSocketTransport*>(transport.get())) {
      r.mux_reconnects = mux->stats().reconnects;
    }
    piped_mbs = r.seconds > 0
                    ? static_cast<double>(shape.total_bytes()) * 2 / 1.0e6 /
                          r.seconds
                    : 0;
    std::printf("pipelined-flows: %.3fs %.1f MB/s verified=%d segments=%llu "
                "stall_us=%llu\n",
                r.seconds, piped_mbs, r.verified,
                static_cast<unsigned long long>(r.flow_segments),
                static_cast<unsigned long long>(r.flow_stall_us));
    ok = ok && r.verified && r.flow_segments > 0;
    json.Row(CellJson("pipelined-flows", r, shape));
  }

  const double speedup = sync_mbs > 0 ? piped_mbs / sync_mbs : 0;
  std::printf("speedup: %.2fx (acceptance: >= 1.30x)\n", speedup);
  obs::JsonValue summary = obs::JsonValue::Object();
  summary.Set("method", obs::JsonValue("speedup"));
  summary.Set("pipelined_over_sync", obs::JsonValue(speedup));
  summary.Set("threshold", obs::JsonValue(1.3));
  json.Row(std::move(summary));
  ok = ok && speedup >= 1.3;

  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
