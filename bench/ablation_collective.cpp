// Extension bench: two-phase collective I/O (paper reference [11], built
// in src/mpiio and modeled in src/simcluster) vs the paper's methods on
// the interleaved write workloads where collectives shine: ranks trade
// exchange traffic over the compute network for a handful of large
// contiguous file requests.
#include "bench_util.hpp"
#include "simcluster/sim_collective.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Ablation: two-phase collective I/O",
              "cyclic write (tight interleave) and FLASH checkpoint write",
              flags);

  BenchJson json(flags, "ablation_collective",
                 "Two-phase collective I/O vs list and sieving");

  std::printf("-- cyclic write, 8 clients --\n");
  std::printf("%12s %12s %12s %14s %16s\n", "accesses", "list s", "2-phase s",
              "2ph file reqs", "exchange MB");
  const std::vector<std::uint64_t> sweeps = SmokeSweep(
      flags, flags.full ? std::vector<std::uint64_t>{100000, 400000, 1000000}
                        : std::vector<std::uint64_t>{10000, 40000, 100000});
  for (std::uint64_t accesses : sweeps) {
    workloads::CyclicConfig config{flags.full ? kGiB : 128 * kMiB, 8,
                                   accesses};
    SimWorkload workload;
    workload.file_regions = [config](Rank r) {
      return std::make_unique<CyclicStream>(config, r);
    };
    auto list = RunCell(ChibaCityConfig(8), io::MethodType::kList,
                        IoOp::kWrite, workload);
    auto collective =
        RunSimCollective(ChibaCityConfig(8), IoOp::kWrite, workload);
    json.Cell(8, accesses, "list", "write", list);
    json.Cell(8, accesses, "two-phase", "write", collective);
    std::printf("%12llu %12.3f %12.3f %14llu %16.1f\n",
                static_cast<unsigned long long>(accesses), list.io_seconds,
                collective.io_seconds,
                static_cast<unsigned long long>(
                    collective.counters.fs_requests),
                static_cast<double>(collective.counters.exchange_bytes) /
                    1e6);
  }

  std::printf("\n-- FLASH checkpoint write --\n");
  std::printf("%12s %12s %12s %12s\n", "clients", "list s", "sieving s",
              "2-phase s");
  const std::vector<std::uint32_t> client_counts = SmokeSweep(
      flags, flags.full ? std::vector<std::uint32_t>{2, 4, 8, 16, 32}
                        : std::vector<std::uint32_t>{2, 4, 8});
  for (std::uint32_t clients : client_counts) {
    workloads::FlashConfig config;
    config.nprocs = clients;
    SimWorkload workload;
    workload.file_regions = [config](Rank r) {
      return std::make_unique<FlashFileStream>(config, r);
    };
    workload.segments = [config](Rank r) {
      return std::make_unique<UniformSplitStream>(
          std::make_unique<FlashFileStream>(config, r), config.var_bytes);
    };
    auto list = RunCell(ChibaCityConfig(clients), io::MethodType::kList,
                        IoOp::kWrite, workload);
    auto sieving = RunCell(ChibaCityConfig(clients),
                           io::MethodType::kDataSieving, IoOp::kWrite,
                           workload);
    auto collective =
        RunSimCollective(ChibaCityConfig(clients), IoOp::kWrite, workload);
    json.Cell(clients, 0, "flash-list", "write", list);
    json.Cell(clients, 0, "flash-sieving", "write", sieving);
    json.Cell(clients, 0, "flash-two-phase", "write", collective);
    std::printf("%12u %12.1f %12.1f %12.1f\n", clients, list.io_seconds,
                sieving.io_seconds, collective.io_seconds);
  }
  std::printf(
      "\nexpectation: two-phase turns interleaved writes into one "
      "contiguous stream per aggregator — beating even data sieving "
      "(no serialized RMW) at the cost of exchange traffic.\n");
  return 0;
}
