// Ablation: stripe-unit size. The paper uses PVFS's 16,384-byte default
// (§4.1); this sweep shows how the choice interacts with the access
// methods — small stripes spread tiny accesses over more servers (more
// fan-out per list request), large stripes concentrate them (fewer
// messages, less parallelism).
#include "bench_util.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Ablation: stripe size (paper §4.1 default 16 KiB)",
              "cyclic read/write, 8 clients, 50k accesses/client",
              flags);

  workloads::CyclicConfig config{flags.full ? kGiB : 128 * kMiB, 8,
                                 flags.full ? 500000ull : 50000ull};
  SimWorkload workload;
  workload.file_regions = [config](Rank r) {
    return std::make_unique<CyclicStream>(config, r);
  };

  BenchJson json(flags, "ablation_stripe",
                 "Stripe-unit size sweep on the cyclic workload");

  std::printf("%10s %12s %12s %12s %14s\n", "stripe", "list rd s",
              "list wr s", "multi rd s", "msgs/list req");
  const std::vector<ByteCount> stripes = SmokeSweep(
      flags, std::vector<ByteCount>{4096ull, 16384ull, 65536ull, 262144ull});
  for (ByteCount stripe : stripes) {
    SimClusterConfig cluster = ChibaCityConfig(8);
    cluster.striping.ssize = stripe;
    auto list_rd =
        RunCell(cluster, io::MethodType::kList, IoOp::kRead, workload);
    auto list_wr =
        RunCell(cluster, io::MethodType::kList, IoOp::kWrite, workload);
    auto multi_rd =
        RunCell(cluster, io::MethodType::kMultiple, IoOp::kRead, workload);
    json.Cell(8, stripe, "list", "read", list_rd);
    json.Cell(8, stripe, "list", "write", list_wr);
    json.Cell(8, stripe, "multiple", "read", multi_rd);
    std::printf("%9lluK %12.3f %12.3f %12.3f %14.2f%s\n",
                static_cast<unsigned long long>(stripe / 1024),
                list_rd.io_seconds, list_wr.io_seconds, multi_rd.io_seconds,
                static_cast<double>(list_rd.counters.messages) /
                    static_cast<double>(list_rd.counters.fs_requests),
                stripe == 16384 ? "   <- paper default" : "");
  }
  return 0;
}
