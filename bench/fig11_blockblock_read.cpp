// Figure 11: two-dimensional block-block READ, 4/9/16 clients, time vs
// number of accesses, methods {multiple, data sieving, list}.
//
// Expected shape (paper §4.2.2): multiple linear, sieving near-constant
// (and cheaper than in the cyclic case — tiles keep wanted data closer);
// list linear for 4 clients but turning sharply upward for 9/16 clients
// once accesses shrink below ~150 bytes (each client concentrates its
// per-entry server work on the few servers holding its tile's stripes).
#include "bench_util.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Figure 11: block-block read",
              "1 GiB array in a sqrt(N) x sqrt(N) tile grid; x = "
              "accesses/client",
              flags);

  const ByteCount aggregate = flags.full ? kGiB : 256 * kMiB;
  const std::vector<std::uint64_t> sweeps = SmokeSweep(
      flags,
      flags.full
          ? std::vector<std::uint64_t>{125000, 250000, 500000, 800000,
                                       1000000}
          : std::vector<std::uint64_t>{12500, 25000, 50000, 100000, 200000});
  const std::vector<io::MethodType> methods = {io::MethodType::kMultiple,
                                               io::MethodType::kDataSieving,
                                               io::MethodType::kList};
  CsvSink csv(flags, "fig11");
  BenchJson json(flags, "fig11",
                 "2-D block-block read: time vs accesses per method");

  const std::vector<std::uint32_t> client_counts =
      SmokeSweep(flags, std::vector<std::uint32_t>{4u, 9u, 16u});
  for (std::uint32_t clients : client_counts) {
    std::printf("-- %u clients --\n", clients);
    PrintRowHeader(methods);
    for (std::uint64_t accesses : sweeps) {
      workloads::BlockBlockConfig config{aggregate, clients, accesses};
      SimWorkload workload;
      workload.file_regions = [config](Rank r) {
        return std::make_unique<BlockBlockStream>(config, r);
      };
      std::vector<double> seconds;
      for (io::MethodType method : methods) {
        SimClusterConfig cluster = ChibaCityConfig(clients);
        cluster.server_coalesces_entries = flags.coalesce;
        auto run = RunCell(cluster, method, IoOp::kRead, workload);
        seconds.push_back(run.io_seconds);
        csv.Row(clients, accesses, io::MethodName(method), run.io_seconds,
                run.counters.fs_requests);
        json.Cell(clients, accesses, io::MethodName(method), "read", run);
      }
      PrintCells(accesses, seconds);
      std::printf("%14s bytes/access ~ %llu\n", "",
                  static_cast<unsigned long long>(
                      aggregate / clients / accesses));
    }
    std::printf("\n");
  }
  return 0;
}
