// Figure 12: two-dimensional block-block WRITE, 4/9/16 clients, log-scale
// time vs number of accesses, methods {multiple, list}.
//
// Expected shape (paper §4.2.2): "the block-block write results perform
// similar to the one-dimensional cyclic write results" — both methods grow
// with access count, maintaining the ~two-orders-of-magnitude gap.
#include "bench_util.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Figure 12: block-block write",
              "1 GiB array in a sqrt(N) x sqrt(N) tile grid; x = "
              "accesses/client",
              flags);

  const ByteCount aggregate = flags.full ? kGiB : 256 * kMiB;
  const std::vector<std::uint64_t> sweeps = SmokeSweep(
      flags,
      flags.full ? std::vector<std::uint64_t>{125000, 250000, 500000, 1000000}
                 : std::vector<std::uint64_t>{12500, 25000, 50000, 100000});
  const std::vector<io::MethodType> methods = {io::MethodType::kMultiple,
                                               io::MethodType::kList};
  CsvSink csv(flags, "fig12");
  BenchJson json(flags, "fig12",
                 "2-D block-block write: time vs accesses per method");

  const std::vector<std::uint32_t> client_counts =
      SmokeSweep(flags, std::vector<std::uint32_t>{4u, 9u, 16u});
  for (std::uint32_t clients : client_counts) {
    std::printf("-- %u clients --\n", clients);
    PrintRowHeader(methods);
    for (std::uint64_t accesses : sweeps) {
      workloads::BlockBlockConfig config{aggregate, clients, accesses};
      SimWorkload workload;
      workload.file_regions = [config](Rank r) {
        return std::make_unique<BlockBlockStream>(config, r);
      };
      std::vector<double> seconds;
      for (io::MethodType method : methods) {
        SimClusterConfig cluster = ChibaCityConfig(clients);
        cluster.server_coalesces_entries = flags.coalesce;
        auto run = RunCell(cluster, method, IoOp::kWrite, workload);
        seconds.push_back(run.io_seconds);
        csv.Row(clients, accesses, io::MethodName(method), run.io_seconds,
                run.counters.fs_requests);
        json.Cell(clients, accesses, io::MethodName(method), "write", run);
      }
      PrintCells(accesses, seconds);
      std::printf("%14s multiple/list ratio: %.1fx\n", "",
                  seconds[0] / seconds[1]);
    }
    std::printf("\n");
  }
  return 0;
}
