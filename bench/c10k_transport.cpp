// C10K transport bench: thousands of simulated clients multiplexed onto
// one event-driven iod server. Every client is a tiny nonblocking state
// machine (send a sealed read request, reassemble the reply frame, next
// request) driven by one epoll loop on the client side — so a single
// process exercises the server's accept storm, per-connection frame
// reassembly, admission shedding and completion-order writes at a
// connection count no thread-per-connection design could sustain.
//
//   --smoke   64 clients x 4 requests (CI)
//   default 2000 clients x 5 requests
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/wire.hpp"
#include "net/framing.hpp"
#include "net/mux_transport.hpp"
#include "net/socket_transport.hpp"
#include "pvfs/admission.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/protocol.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::net;

namespace {

constexpr FileHandle kHandle = 1;
constexpr Striping kStriping{0, 1, 1 << 20};  // one iod owns everything
constexpr ByteCount kFileBytes = 64 * 1024;
constexpr ByteCount kReadBytes = 1024;

/// Raise RLIMIT_NOFILE toward its hard cap so thousands of sockets fit.
void RaiseFdLimit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

std::uint64_t RssMib() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0, resident = 0;
  int n = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return resident * static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE)) /
         (1024 * 1024);
}

/// A sealed read request for this client's slice, stamped with `id`.
std::vector<std::byte> SealedRead(std::uint64_t index, std::uint64_t id) {
  IoRequest io;
  io.handle = kHandle;
  io.striping = kStriping;
  io.server_index = 0;
  io.op = IoOp::kRead;
  io.regions = {{(index % (kFileBytes / kReadBytes)) * kReadBytes,
                 kReadBytes}};
  return SealFrameWithId(io.Encode(), id);
}

enum class Reply { kOk, kBusy, kError };

/// Classify a sealed reply: correct payload, an admission shed (the
/// client should retry), or anything else.
Reply ClassifyReply(std::span<const std::byte> sealed, std::uint64_t id) {
  auto opened = OpenFrameWithId(sealed);
  if (!opened.ok() || opened->request_id != id) return Reply::kError;
  auto resp = DecodeResponse(opened->payload);
  if (!resp.ok()) return Reply::kError;
  if (resp->status.code() == ErrorCode::kBusy) return Reply::kBusy;
  if (!resp->status.ok()) return Reply::kError;
  auto io = IoResponse::Decode(resp->body);
  return io.ok() && io->payload.size() == kReadBytes ? Reply::kOk
                                                     : Reply::kError;
}

bool ReplyOk(std::span<const std::byte> sealed, std::uint64_t id) {
  return ClassifyReply(sealed, id) == Reply::kOk;
}

/// One simulated client: a nonblocking connection plus just enough state
/// to pipeline `remaining` one-at-a-time requests through it.
struct SimClient {
  int fd = -1;
  FrameDecoder decoder;
  std::vector<std::byte> out;  // unsent request bytes
  std::size_t out_off = 0;
  int remaining = 0;
  std::uint64_t index = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t expect_id = 0;
};

struct FanoutResult {
  std::uint64_t requests = 0;   // completed (non-shed) replies
  std::uint64_t sheds = 0;      // kBusy replies, retried by the client
  std::uint64_t errors = 0;
  double seconds = 0;
  std::int64_t open_connections_peak = 0;
};

std::uint64_t ClientRequestId(std::uint64_t index, std::uint64_t seq) {
  return (index + 1) * 1'000'000 + seq + 1;
}

void QueueNextRequest(SimClient& c) {
  c.expect_id = ClientRequestId(c.index, c.next_seq);
  auto framed = EncodeFrame(SealedRead(c.index, c.expect_id));
  c.out.insert(c.out.end(), framed.begin(), framed.end());
  ++c.next_seq;
}

/// Re-send the in-flight request after an admission shed (fresh id so a
/// duplicate late reply can never be confused with the retry).
void QueueRetry(SimClient& c) { QueueNextRequest(c); }

/// Drive all clients through their requests with one epoll loop; returns
/// false when the run deadlocks (deadline) instead of completing.
bool DriveFanout(std::vector<SimClient>& clients, SocketServer& server,
                 FanoutResult& result) {
  int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return false;
  auto interest = [&](SimClient& c, bool add) {
    epoll_event ev{};
    ev.events = EPOLLIN | (c.out_off < c.out.size() ? EPOLLOUT : 0u);
    ev.data.u64 = c.index;
    ::epoll_ctl(ep, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, c.fd, &ev);
  };
  std::uint64_t live = 0;
  for (SimClient& c : clients) {
    QueueNextRequest(c);
    interest(c, /*add=*/true);
    ++live;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::seconds(120);
  std::vector<epoll_event> events(512);
  std::byte buf[16384];
  auto finish = [&](SimClient& c, bool error) {
    if (error) ++result.errors;
    ::epoll_ctl(ep, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
    --live;
  };
  while (live > 0 && std::chrono::steady_clock::now() < deadline) {
    int n = ::epoll_wait(ep, events.data(), static_cast<int>(events.size()),
                         1000);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    result.open_connections_peak =
        std::max(result.open_connections_peak, server.open_connections());
    for (int i = 0; i < n; ++i) {
      SimClient& c = clients[events[i].data.u64];
      if (c.fd < 0) continue;
      if (events[i].events & EPOLLOUT) {
        while (c.out_off < c.out.size()) {
          ssize_t sent = ::send(c.fd, c.out.data() + c.out_off,
                                c.out.size() - c.out_off, MSG_NOSIGNAL);
          if (sent < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            finish(c, /*error=*/true);
            break;
          }
          c.out_off += static_cast<std::size_t>(sent);
        }
        if (c.fd < 0) continue;
        if (c.out_off == c.out.size()) {
          c.out.clear();
          c.out_off = 0;
          interest(c, /*add=*/false);
        }
      }
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) == 0) continue;
      ssize_t got = ::recv(c.fd, buf, sizeof buf, 0);
      if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
        finish(c, /*error=*/true);
        continue;
      }
      if (got < 0) continue;
      if (!c.decoder.Feed({buf, static_cast<std::size_t>(got)}).ok()) {
        finish(c, /*error=*/true);
        continue;
      }
      while (auto frame = c.decoder.Next()) {
        Reply verdict = ClassifyReply(*frame, c.expect_id);
        if (verdict == Reply::kBusy) {
          // Shed by admission control: retry, as a real client's busy
          // backoff loop would. The connection stays up throughout.
          ++result.sheds;
          QueueRetry(c);
          interest(c, /*add=*/false);
          continue;
        }
        ++result.requests;
        if (verdict == Reply::kError) ++result.errors;
        if (--c.remaining <= 0) {
          finish(c, /*error=*/false);
          break;
        }
        QueueNextRequest(c);
        interest(c, /*add=*/false);
      }
    }
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  for (SimClient& c : clients) {
    if (c.fd >= 0) {
      ++result.errors;
      ::close(c.fd);
      c.fd = -1;
    }
  }
  ::close(ep);
  return live == 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  RaiseFdLimit();
  const std::uint64_t kClients = flags.smoke ? 64 : 2000;
  const int kRequestsPerClient = flags.smoke ? 4 : 5;
  const int kMuxThreads = flags.smoke ? 4 : 8;
  const int kMuxCallsPerThread = flags.smoke ? 64 : 256;

  BenchJson json(flags, "c10k_transport",
                 "Event-driven transport: thousands of concurrent clients "
                 "against one epoll iod server");

  // One iod behind the event-driven server, with a bounded admission
  // queue sized for the offered load (one outstanding request per client):
  // steady state is admitted, anything pathological sheds with kBusy and
  // the simulated clients retry.
  IoDaemon iod(0);
  AdmissionController admission(0, /*max_depth=*/4096, &json.registry());
  SocketServer::Options options;
  options.worker_threads = 2;
  options.correlate_responses = true;
  options.registry = &json.registry();
  options.metric_labels = {{"server", "0"}};
  auto server = SocketServer::Start(
      0,
      [&iod](std::span<const std::byte> req) {
        return iod.HandleSealedMessage(req);
      },
      &admission, 0, options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().message().c_str());
    return 1;
  }
  const SocketAddress addr{"127.0.0.1", (*server)->port()};

  {
    // Seed the file through one ordinary connection.
    IoRequest seed;
    seed.handle = kHandle;
    seed.striping = kStriping;
    seed.op = IoOp::kWrite;
    seed.regions = {{0, kFileBytes}};
    seed.payload.assign(kFileBytes, std::byte{0x5a});
    auto fd = ConnectSocket(addr, std::chrono::milliseconds(5000), true);
    if (!fd.ok() ||
        !SendFrame(*fd, SealFrameWithId(seed.Encode(), 1)).ok() ||
        !RecvFrame(*fd).ok()) {
      std::fprintf(stderr, "seed write failed\n");
      return 1;
    }
    ::close(*fd);
  }

  // ---- Cell 1: epoll fan-out ---------------------------------------------
  std::printf("=== C10K event transport: %llu clients x %d requests ===\n",
              static_cast<unsigned long long>(kClients), kRequestsPerClient);
  std::vector<SimClient> clients(kClients);
  std::uint64_t connect_failures = 0;
  for (std::uint64_t i = 0; i < kClients; ++i) {
    clients[i].index = i;
    clients[i].remaining = kRequestsPerClient;
    auto fd = ConnectSocket(addr, std::chrono::milliseconds(0), false);
    if (!fd.ok()) {
      ++connect_failures;
      clients[i].remaining = 0;
      continue;
    }
    ::fcntl(*fd, F_SETFL, ::fcntl(*fd, F_GETFL, 0) | O_NONBLOCK);
    clients[i].fd = *fd;
  }
  // Every surviving connection is open at once before any request flows —
  // the concurrency claim the bench exists to prove.
  for (int spin = 0;
       spin < 5000 &&
       (*server)->open_connections() <
           static_cast<std::int64_t>(kClients - connect_failures);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::int64_t concurrent = (*server)->open_connections();

  FanoutResult fanout;
  std::vector<SimClient> active;
  active.reserve(clients.size());
  for (SimClient& c : clients) {
    if (c.fd >= 0) active.push_back(std::move(c));
  }
  for (std::uint64_t i = 0; i < active.size(); ++i) active[i].index = i;
  bool completed = DriveFanout(active, **server, fanout);
  fanout.open_connections_peak =
      std::max(fanout.open_connections_peak, concurrent);

  const double rps =
      fanout.seconds > 0 ? static_cast<double>(fanout.requests) / fanout.seconds
                         : 0;
  std::printf(
      "  concurrent=%lld requests=%llu sheds=%llu errors=%llu "
      "connect_failures=%llu\n"
      "  seconds=%.3f rps=%.0f max_write_buffered=%llu rss_mib=%llu%s\n",
      static_cast<long long>(concurrent),
      static_cast<unsigned long long>(fanout.requests),
      static_cast<unsigned long long>(fanout.sheds),
      static_cast<unsigned long long>(fanout.errors),
      static_cast<unsigned long long>(connect_failures), fanout.seconds, rps,
      static_cast<unsigned long long>((*server)->max_write_buffered()),
      static_cast<unsigned long long>(RssMib()),
      completed ? "" : "  [DEADLINE]");
  {
    obs::JsonValue cell = obs::JsonValue::Object();
    cell.Set("method", obs::JsonValue("epoll-fanout"));
    cell.Set("clients", obs::JsonValue(kClients));
    cell.Set("concurrent_connections",
             obs::JsonValue(static_cast<std::uint64_t>(concurrent)));
    cell.Set("requests", obs::JsonValue(fanout.requests));
    cell.Set("admission_sheds", obs::JsonValue(fanout.sheds));
    cell.Set("errors", obs::JsonValue(fanout.errors));
    cell.Set("connect_failures", obs::JsonValue(connect_failures));
    cell.Set("seconds", obs::JsonValue(fanout.seconds));
    cell.Set("requests_per_second", obs::JsonValue(rps));
    cell.Set("open_connections_peak",
             obs::JsonValue(
                 static_cast<std::uint64_t>(fanout.open_connections_peak)));
    cell.Set("max_write_buffered",
             obs::JsonValue((*server)->max_write_buffered()));
    cell.Set("rss_mib", obs::JsonValue(RssMib()));
    json.Row(std::move(cell));
  }

  // ---- Cell 2: multiplexed client over one shared connection --------------
  ClientConfig mux_config;
  mux_config.multiplex = true;
  mux_config.call_timeout = std::chrono::milliseconds(30000);
  MuxSocketTransport mux(addr, {}, mux_config);
  std::atomic<std::uint64_t> mux_errors{0};
  const auto mux_start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kMuxThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kMuxCallsPerThread; ++i) {
          const std::uint64_t id =
              1'000'000'000ull + static_cast<std::uint64_t>(t) * 1'000'000 + i;
          auto reply = mux.Call(Endpoint::ManagerNode(),
                                SealedRead(static_cast<std::uint64_t>(t), id));
          if (!reply.ok() || !ReplyOk(*reply, id)) ++mux_errors;
        }
      });
    }
  }
  const double mux_seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - mux_start)
                                 .count();
  const std::uint64_t mux_requests =
      static_cast<std::uint64_t>(kMuxThreads) * kMuxCallsPerThread;
  const double mux_rps =
      mux_seconds > 0 ? static_cast<double>(mux_requests) / mux_seconds : 0;
  std::printf(
      "  mux: threads=%d requests=%llu errors=%llu seconds=%.3f rps=%.0f "
      "(one connection)\n",
      kMuxThreads, static_cast<unsigned long long>(mux_requests),
      static_cast<unsigned long long>(mux_errors.load()), mux_seconds,
      mux_rps);
  {
    obs::JsonValue cell = obs::JsonValue::Object();
    cell.Set("method", obs::JsonValue("mux-client"));
    cell.Set("threads", obs::JsonValue(static_cast<std::uint64_t>(kMuxThreads)));
    cell.Set("requests", obs::JsonValue(mux_requests));
    cell.Set("errors", obs::JsonValue(mux_errors.load()));
    cell.Set("seconds", obs::JsonValue(mux_seconds));
    cell.Set("requests_per_second", obs::JsonValue(mux_rps));
    json.Row(std::move(cell));
  }

  const bool ok = completed && fanout.errors == 0 && connect_failures == 0 &&
                  mux_errors.load() == 0;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
