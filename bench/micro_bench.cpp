// google-benchmark microbenchmarks of the hot primitives: striping math,
// extent matching, wire codec, datatype flattening, page-cache service and
// the functional list-I/O path.
#include <benchmark/benchmark.h>

#include "common/bytes.hpp"
#include "common/extent.hpp"
#include "common/wire.hpp"
#include "io/datatype.hpp"
#include "models/page_cache.hpp"
#include "pvfs/client.hpp"
#include "pvfs/distribution.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "pvfs/transport.hpp"

namespace pvfs {
namespace {

void BM_DistributionFragments(benchmark::State& state) {
  Distribution dist(Striping{0, 8, 16384});
  ExtentList regions;
  for (int i = 0; i < state.range(0); ++i) {
    regions.push_back(Extent{static_cast<FileOffset>(i) * 40000, 1000});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Fragments(regions));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DistributionFragments)->Arg(64)->Arg(1024);

void BM_ServerLocalRuns(benchmark::State& state) {
  Distribution dist(Striping{0, 8, 16384});
  ExtentList regions;
  for (int i = 0; i < state.range(0); ++i) {
    regions.push_back(Extent{static_cast<FileOffset>(i) * 40000, 1000});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.ServerLocalRuns(3, regions));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServerLocalRuns)->Arg(64)->Arg(1024);

void BM_MatchSegments(benchmark::State& state) {
  ExtentList mem;
  ExtentList file;
  for (int i = 0; i < state.range(0); ++i) {
    mem.push_back(Extent{static_cast<FileOffset>(i) * 8, 8});
    if (i % 512 == 0) file.push_back(Extent{static_cast<FileOffset>(i) * 100, 0});
    file.back().length += 8;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchSegments(mem, file));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MatchSegments)->Arg(4096)->Arg(65536);

void BM_IoRequestCodec(benchmark::State& state) {
  IoRequest req;
  req.handle = 1;
  req.striping = Striping{0, 8, 16384};
  req.regions.assign(64, Extent{123456, 4096});
  for (auto _ : state) {
    auto raw = req.Encode();
    WireReader r(raw);
    (void)r.U32();
    benchmark::DoNotOptimize(IoRequest::Decode(r));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_IoRequestCodec);

void BM_DatatypeFlatten(benchmark::State& state) {
  io::Datatype vec =
      io::Datatype::Vector(state.range(0), 4, 64, io::Datatype::Bytes(8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec.Flatten(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DatatypeFlatten)->Arg(1024)->Arg(16384);

void BM_PageCacheSequentialRead(benchmark::State& state) {
  models::DiskModel disk;
  models::PageCache cache({}, &disk);
  FileOffset pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Read(pos, 65536));
    pos += 65536;
  }
  state.SetBytesProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_PageCacheSequentialRead);

void BM_ListIoWritePath(benchmark::State& state) {
  Manager manager(8);
  std::vector<std::unique_ptr<IoDaemon>> iods;
  std::vector<IoDaemon*> ptrs;
  for (ServerId s = 0; s < 8; ++s) {
    iods.push_back(std::make_unique<IoDaemon>(s));
    ptrs.push_back(iods.back().get());
  }
  InProcTransport transport(&manager, ptrs);
  Client client(&transport);
  auto fd = client.Create("bench", Striping{0, 8, 16384});

  const int regions = static_cast<int>(state.range(0));
  ExtentList file;
  for (int i = 0; i < regions; ++i) {
    file.push_back(Extent{static_cast<FileOffset>(i) * 9000, 512});
  }
  ByteBuffer buffer(TotalBytes(file));
  FillPattern(buffer, 1, 0);
  ExtentList mem{{0, buffer.size()}};

  for (auto _ : state) {
    benchmark::DoNotOptimize(client.WriteList(*fd, mem, buffer, file));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buffer.size()));
}
BENCHMARK(BM_ListIoWritePath)->Arg(64)->Arg(512);

}  // namespace
}  // namespace pvfs

BENCHMARK_MAIN();
