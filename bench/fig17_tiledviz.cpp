// Figure 17: tiled visualization read with 6 clients — open / read / close
// breakdown per method {multiple, data sieving, list}.
//
// Expected shape (paper §4.4.2): list I/O more than twice as fast as
// either alternative on the read phase; multiple needs 768 requests/tile,
// list needs 12 (768/64); sieving reads ~3x useless data (1/tiles_x of
// the accessed rows is wanted).
#include "bench_util.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Figure 17: tiled visualization read",
              "3x2 displays, 1024x768x24bpp, 270/128 px overlaps, 10.2 MB "
              "frame file, 6 clients",
              flags);

  workloads::TiledVizConfig config;
  SimWorkload workload;
  workload.file_regions = [config](Rank r) {
    return std::make_unique<TiledVizStream>(config, r);
  };

  SimClusterConfig cluster = ChibaCityConfig(config.clients());
  SimRunOptions options;
  options.include_meta = true;

  BenchJson json(flags, "fig17",
                 "Tiled visualization read: open/read/close per method");

  std::printf("%14s %10s %10s %10s %12s   (virtual seconds)\n", "method",
              "open", "read", "close", "requests");
  for (io::MethodType method :
       {io::MethodType::kMultiple, io::MethodType::kDataSieving,
        io::MethodType::kList}) {
    auto run = RunCell(cluster, method, IoOp::kRead, workload, options);
    std::printf("%14s %10.4f %10.4f %10.4f %12llu\n",
                io::MethodName(method).data(), run.open_seconds,
                run.io_seconds, run.close_seconds,
                static_cast<unsigned long long>(run.counters.fs_requests));
    json.Cell(config.clients(), 0, io::MethodName(method), "read", run);
  }
  std::printf(
      "\npaper expectation: multiple=768 req/client, list=%u req/client, "
      "sieving wastes ~%ux the wanted bytes\n",
      (768 + kMaxListRegions - 1) / kMaxListRegions, config.tiles_x);
  return 0;
}
