// Request-count analysis (paper §3.4 and the arithmetic in §4.3.1/§4.4.1):
// closed-form request counts per method for each workload, computed from
// the same planner primitives the client library uses.
#include <cstdio>

#include "bench_util.hpp"
#include "io/method.hpp"
#include "pvfs/client.hpp"
#include "workloads/cyclic.hpp"
#include "workloads/flash.hpp"
#include "workloads/tiledviz.hpp"

using namespace pvfs;
using namespace pvfs::bench;

namespace {

BenchJson* g_json = nullptr;

void EmitCell(const char* workload, const char* method,
              std::uint64_t requests) {
  obs::JsonValue cell = obs::JsonValue::Object();
  cell.Set("workload", obs::JsonValue(workload));
  cell.Set("method", obs::JsonValue(method));
  cell.Set("fs_requests", obs::JsonValue(requests));
  g_json->Row(std::move(cell));
}

void Row(const char* workload, std::uint64_t segments,
         std::uint64_t file_regions) {
  std::uint64_t list = (file_regions + kMaxListRegions - 1) / kMaxListRegions;
  std::uint64_t list_romio = (segments + kMaxListRegions - 1) / kMaxListRegions;
  std::printf("%-34s %14llu %14llu %14llu\n", workload,
              static_cast<unsigned long long>(segments),
              static_cast<unsigned long long>(list_romio),
              static_cast<unsigned long long>(list));
  EmitCell(workload, "multiple", segments);
  EmitCell(workload, "list-2002", list_romio);
  EmitCell(workload, "list-native", list);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  BenchJson json(flags, "requests",
                 "Closed-form request counts per client per method");
  g_json = &json;
  std::printf("=== Request counts per client (paper §3.4 analysis) ===\n");
  std::printf("%-34s %14s %14s %14s\n", "workload", "multiple",
              "list(2002)", "list(native)");

  {
    workloads::FlashConfig flash;
    flash.nprocs = 8;
    Row("FLASH checkpoint (80 blk, 24 var)", flash.MemRegionsPerProc(),
        flash.FileRegionsPerProc());
  }
  {
    workloads::TiledVizConfig tiled;
    auto pattern = workloads::TiledVizPattern(tiled, 0);
    Row("Tiled visualization (3x2 wall)", pattern.file.size(),
        pattern.file.size());
  }
  for (std::uint64_t accesses : {100000ull, 1000000ull}) {
    char label[64];
    std::snprintf(label, sizeof label, "1-D cyclic (8 cl, %lluk accesses)",
                  static_cast<unsigned long long>(accesses / 1000));
    Row(label, accesses, accesses);
  }

  std::printf(
      "\npaper checkpoints: FLASH multiple = 983,040/proc; FLASH "
      "list(native) = 30/proc;\n"
      "tiled multiple = 768, list = 12; data sieving = "
      "ceil(extent_cover / 32 MiB) requests.\n");
  return 0;
}
