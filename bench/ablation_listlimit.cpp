// Ablation (paper §3.3 design choice): the 64-region trailing-data limit
// was chosen so request + trailing data fit one 1500-byte Ethernet frame.
// Sweeping the limit shows the trade-off: more regions per request
// amortize per-request overhead further but push requests past one frame.
#include "bench_util.hpp"
#include "pvfs/protocol.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::simcluster;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("Ablation: list-I/O region limit (paper §3.3)",
              "cyclic read/write, 8 clients, 50k accesses/client; sweep "
              "regions-per-request",
              flags);

  workloads::CyclicConfig config{flags.full ? kGiB : 128 * kMiB, 8,
                                 flags.full ? 500000ull : 50000ull};
  SimWorkload workload;
  workload.file_regions = [config](Rank r) {
    return std::make_unique<CyclicStream>(config, r);
  };

  BenchJson json(flags, "ablation_listlimit",
                 "List-I/O trailing-data region-limit sweep");

  std::printf("%8s %12s %12s %14s %12s\n", "limit", "read s", "write s",
              "wire bytes", "frames");
  const std::vector<std::uint32_t> limits = SmokeSweep(
      flags,
      std::vector<std::uint32_t>{8u, 16u, 32u, 64u, 128u, 256u, 1024u});
  for (std::uint32_t limit : limits) {
    SimClusterConfig cluster = ChibaCityConfig(8);
    cluster.max_list_regions = limit;
    auto read = RunCell(cluster, io::MethodType::kList, IoOp::kRead,
                        workload);
    auto write = RunCell(cluster, io::MethodType::kList, IoOp::kWrite,
                         workload);
    json.Cell(8, limit, "list", "read", read);
    json.Cell(8, limit, "list", "write", write);
    ByteCount wire = IoRequest::WireBytes(limit);
    models::EthernetModel net;
    std::printf("%8u %12.3f %12.3f %14llu %12llu%s\n", limit,
                read.io_seconds, write.io_seconds,
                static_cast<unsigned long long>(wire),
                static_cast<unsigned long long>(net.FrameCount(wire)),
                limit == 64 ? "   <- paper's choice (1 frame)" : "");
  }
  return 0;
}
