// Client cache bench: manager messages and iod messages per operation
// with the caching tier off and on (docs/client-caching.md).
//
// Three cells over an in-process cluster (manager + 4 iods, real byte
// movement — no simulator, so the numbers are true message counts):
//   no-cache        defaults: every Open/Stat is a manager round trip,
//                   every ReadList reaches the iods
//   acache          attribute cache on: repeated Open/Stat of a hot file
//                   is answered client-side within the TTL
//   acache+bcache   both tiers plus read-ahead: repeated strided reads
//                   are served from resident pages
//
// Two phases per cell:
//   metadata        `rounds` iterations of Open+Stat+Close on one file;
//                   reports manager messages per round (paper's metadata
//                   scaling wall — PVFS2's acache motivation)
//   data            `passes` repetitions of the same strided ReadList;
//                   reports iod messages per pass and page hit rates
//
// The run doubles as an acceptance check (exit 1 on violation): readback
// must be bit-identical to the written pattern in every cell, and the
// acache cell must cut metadata-phase manager messages by at least 5x —
// the bar CI's cache-smoke job enforces.
//
//   --smoke   50 metadata rounds, 256 KiB file (CI)
//   default   400 rounds, 1 MiB file
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "pvfs/client.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "pvfs/transport.hpp"

using namespace pvfs;
using namespace pvfs::bench;

namespace {

constexpr std::uint32_t kServers = 4;
const Striping kStriping{0, kServers, 16384};
constexpr std::uint64_t kFillSeed = 77;
constexpr std::uint32_t kReadPasses = 4;
constexpr ByteCount kRegionLength = 4096;
constexpr ByteCount kRegionStride = 16384;

/// One self-contained in-process deployment per cell, so cells never see
/// each other's server-side state.
struct MiniCluster {
  explicit MiniCluster(std::uint32_t servers) : manager(servers) {
    std::vector<IoDaemon*> ptrs;
    iods.reserve(servers);
    for (ServerId s = 0; s < servers; ++s) {
      iods.push_back(std::make_unique<IoDaemon>(s, ServerConfig{}));
      ptrs.push_back(iods.back().get());
    }
    transport = std::make_unique<InProcTransport>(&manager, std::move(ptrs));
  }
  Manager manager;
  std::vector<std::unique_ptr<IoDaemon>> iods;
  std::unique_ptr<InProcTransport> transport;
};

struct CellConfig {
  const char* name;
  bool acache;
  bool bcache;
};

struct CellResult {
  // Metadata phase.
  std::uint64_t rounds = 0;
  std::uint64_t manager_messages = 0;
  double manager_messages_per_op = 0;
  std::uint64_t acache_hits = 0;
  std::uint64_t acache_misses = 0;
  // Data phase.
  std::uint64_t read_passes = 0;
  std::uint64_t iod_messages = 0;
  double iod_messages_per_op = 0;
  std::uint64_t bcache_hits = 0;
  std::uint64_t bcache_misses = 0;
  std::uint64_t readahead_hits = 0;
  bool verified = false;
};

Client::Options CellOptions(const CellConfig& cell) {
  Client::Options options;
  if (cell.acache) {
    options.acache.enabled = true;
    options.acache.ttl = std::chrono::microseconds(60'000'000);
  }
  if (cell.bcache) {
    options.bcache.enabled = true;
    options.bcache.page_bytes = 16384;
    options.bcache.max_bytes = 16u << 20;
    options.bcache.writeback_max_bytes = 4u << 20;
    options.readahead.enabled = true;
  }
  return options;
}

CellResult RunCell(const CellConfig& cell, std::uint32_t rounds,
                   ByteCount file_bytes) {
  MiniCluster cluster(kServers);
  Client client(cluster.transport.get(), CellOptions(cell));
  CellResult result;
  result.rounds = rounds;
  result.read_passes = kReadPasses;

  // Seed the file.
  auto fd = client.Create("hot", kStriping);
  if (!fd.ok()) return result;
  ByteBuffer golden(file_bytes);
  FillPattern(golden, kFillSeed, 0);
  if (!client.Write(*fd, 0, golden).ok()) return result;
  if (!client.Close(*fd).ok()) return result;

  // ---- Metadata phase: repeated Open+Stat+Close of the hot file -------
  client.ResetStats();
  for (std::uint32_t r = 0; r < rounds; ++r) {
    auto f = client.Open("hot");
    if (!f.ok()) return result;
    if (!client.Stat(*f).ok()) return result;
    if (!client.Close(*f).ok()) return result;
  }
  result.manager_messages = client.stats().manager_messages;
  result.manager_messages_per_op =
      static_cast<double>(result.manager_messages) / rounds;
  result.acache_hits = client.cache_counters().acache.hits;
  result.acache_misses = client.cache_counters().acache.misses;

  // ---- Data phase: the same strided walk, `kReadPasses` times, issued
  // as two half-walks per pass so the read-ahead planner's predicted
  // continuation (the second half) is a real access that can hit.
  auto rfd = client.Open("hot");
  if (!rfd.ok()) return result;
  std::vector<Extent> file_regions;
  for (FileOffset off = 0; off + kRegionLength <= file_bytes;
       off += kRegionStride) {
    file_regions.push_back(Extent{off, kRegionLength});
  }
  const size_t half = file_regions.size() / 2;
  const std::vector<Extent> first_half(file_regions.begin(),
                                       file_regions.begin() + half);
  const std::vector<Extent> second_half(file_regions.begin() + half,
                                        file_regions.end());
  ByteBuffer buf_a(TotalBytes(first_half));
  ByteBuffer buf_b(TotalBytes(second_half));
  const std::vector<Extent> mem_a = {Extent{0, buf_a.size()}};
  const std::vector<Extent> mem_b = {Extent{0, buf_b.size()}};
  const ByteBuffer expect_a = GatherExtents(golden, first_half);
  const ByteBuffer expect_b = GatherExtents(golden, second_half);

  client.ResetStats();
  bool all_match = true;
  for (std::uint32_t pass = 0; pass < kReadPasses; ++pass) {
    if (!client.ReadList(*rfd, mem_a, buf_a, first_half).ok()) return result;
    if (!client.ReadList(*rfd, mem_b, buf_b, second_half).ok()) return result;
    all_match = all_match && buf_a == expect_a && buf_b == expect_b;
  }
  result.iod_messages = client.stats().messages;
  result.iod_messages_per_op =
      static_cast<double>(result.iod_messages) / (2.0 * kReadPasses);
  const Client::CacheCounters counters = client.cache_counters();
  result.bcache_hits = counters.bcache.hits;
  result.bcache_misses = counters.bcache.misses;
  result.readahead_hits = counters.bcache.readahead_hits;
  result.verified = all_match && client.Close(*rfd).ok();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintBanner("client_cache",
              "manager/iod messages per op: no-cache vs acache vs "
              "acache+bcache",
              flags);

  const std::uint32_t rounds = flags.smoke ? 50 : 400;
  const ByteCount file_bytes = flags.smoke ? (256u << 10) : (1u << 20);
  const std::vector<CellConfig> cells = {
      {"no-cache", false, false},
      {"acache", true, false},
      {"acache+bcache", true, true},
  };

  BenchJson json(flags, "client_cache",
                 "client caching tier: manager messages per metadata op "
                 "and iod messages per repeated strided read");

  std::printf("%16s %12s %12s %12s %12s %12s\n", "cell", "mgr msgs/op",
              "acache hit%", "iod msgs/op", "bcache hit%", "ra hits");
  std::vector<CellResult> results;
  for (const CellConfig& cell : cells) {
    CellResult r = RunCell(cell, rounds, file_bytes);
    results.push_back(r);
    const double acache_rate =
        r.acache_hits + r.acache_misses
            ? 100.0 * r.acache_hits / (r.acache_hits + r.acache_misses)
            : 0.0;
    const double bcache_rate =
        r.bcache_hits + r.bcache_misses
            ? 100.0 * r.bcache_hits / (r.bcache_hits + r.bcache_misses)
            : 0.0;
    std::printf("%16s %12.3f %11.1f%% %12.3f %11.1f%% %12llu%s\n", cell.name,
                r.manager_messages_per_op, acache_rate,
                r.iod_messages_per_op, bcache_rate,
                static_cast<unsigned long long>(r.readahead_hits),
                r.verified ? "" : "   READBACK MISMATCH");

    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("method", obs::JsonValue(cell.name));
    row.Set("op", obs::JsonValue("open-stat-close+strided-read"));
    row.Set("rounds", obs::JsonValue(r.rounds));
    row.Set("manager_messages", obs::JsonValue(r.manager_messages));
    row.Set("manager_messages_per_op",
            obs::JsonValue(r.manager_messages_per_op));
    row.Set("acache_hits", obs::JsonValue(r.acache_hits));
    row.Set("acache_misses", obs::JsonValue(r.acache_misses));
    row.Set("acache_hit_rate", obs::JsonValue(acache_rate / 100.0));
    row.Set("read_passes", obs::JsonValue(r.read_passes));
    row.Set("iod_messages", obs::JsonValue(r.iod_messages));
    row.Set("iod_messages_per_op", obs::JsonValue(r.iod_messages_per_op));
    row.Set("bcache_hits", obs::JsonValue(r.bcache_hits));
    row.Set("bcache_misses", obs::JsonValue(r.bcache_misses));
    row.Set("bcache_hit_rate", obs::JsonValue(bcache_rate / 100.0));
    row.Set("readahead_hits", obs::JsonValue(r.readahead_hits));
    row.Set("verified", obs::JsonValue(r.verified));
    json.Row(std::move(row));
  }

  // Acceptance: bit-identical readback everywhere, and the attribute
  // cache cuts metadata-phase manager traffic by at least 5x.
  int failures = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].verified) {
      std::fprintf(stderr, "FAIL: cell %s readback mismatch\n",
                   cells[i].name);
      ++failures;
    }
  }
  const double uncached = results[0].manager_messages_per_op;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].manager_messages_per_op * 5.0 > uncached) {
      std::fprintf(stderr,
                   "FAIL: cell %s manager msgs/op %.3f not 5x below "
                   "no-cache %.3f\n",
                   cells[i].name, results[i].manager_messages_per_op,
                   uncached);
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("\nacceptance: readback verified, acache >= 5x fewer "
                "manager messages/op\n");
  }
  return failures == 0 ? 0 : 1;
}
