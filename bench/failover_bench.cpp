// Failover bench: replicated I/O over real TCP sockets under a
// deterministic mid-write iod kill.
//
// Three cells (plus the post-restart repair accounting):
//   baseline-replicas1  unreplicated write+read, the cost floor
//   healthy-replicas2   2-way replicated write+read, all daemons up
//   degraded-replicas2  2-way replicated write with one iod killed at a
//                       fixed operation index mid-write; the job must
//                       finish with zero failures and read back
//                       bit-identical through failover
//
// Methodology (EXPERIMENTS.md "Failover under replication"): fixed fill
// seed, fixed kill point, fixed victim — the run is reproducible op for
// op. Exit status is nonzero if any job fails or contents mismatch, so
// the CI smoke run doubles as an acceptance check.
//
//   --smoke   8 ops of 64 KiB (CI)
//   default   32 ops of 128 KiB
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/bytes.hpp"
#include "net/socket_transport.hpp"
#include "pvfs/client.hpp"
#include "pvfs/repair.hpp"

using namespace pvfs;
using namespace pvfs::bench;
using namespace pvfs::net;

namespace {

constexpr std::uint64_t kFillSeed = 123;  // pattern seed for every image
constexpr ServerId kVictim = 1;           // iod killed in the degraded cell
constexpr std::uint32_t kKillAtOp = 4;    // ops completed before the kill
const Striping kStriping{0, 4, 16384};

Client::Options FailoverOptions() {
  Client::Options options;
  options.retry.max_attempts = 12;
  options.retry.initial_backoff = std::chrono::microseconds{100};
  options.retry.max_backoff = std::chrono::microseconds{5'000};
  return options;
}

struct CellResult {
  double seconds = 0;
  std::uint64_t job_failures = 0;
  std::uint64_t retargets = 0;
  std::uint64_t ejected = 0;
  bool verified = false;
};

/// Write `ops` slices of `golden` through `client`, killing `victim`
/// after `kill_at` ops when `cluster` is non-null, then read the whole
/// file back and compare.
CellResult RunCell(SocketCluster* cluster, Client& client,
                   const std::string& name, ReplicationConfig replication,
                   const ByteBuffer& golden, std::uint32_t ops) {
  CellResult result;
  const ByteCount slice = golden.size() / ops;
  const auto start = std::chrono::steady_clock::now();
  auto fd = client.Create(name, kStriping, replication);
  if (!fd.ok()) {
    ++result.job_failures;
    return result;
  }
  for (std::uint32_t op = 0; op < ops; ++op) {
    if (cluster != nullptr && op == kKillAtOp) {
      (void)cluster->StopIod(kVictim);
    }
    std::span<const std::byte> data(golden);
    Status wrote =
        client.Write(*fd, op * slice, data.subspan(op * slice, slice));
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s: write op %u failed: %s\n", name.c_str(), op,
                   wrote.message().c_str());
      ++result.job_failures;
    }
  }
  ByteBuffer out(golden.size());
  Status read = client.Read(*fd, 0, out);
  if (!read.ok()) {
    std::fprintf(stderr, "%s: readback failed: %s\n", name.c_str(),
                 read.message().c_str());
    ++result.job_failures;
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.verified = read.ok() && out == golden;
  result.retargets = client.failover_counters().retargets;
  result.ejected = client.failover_counters().ejected_replicas;
  return result;
}

obs::JsonValue CellJson(const char* method, const CellResult& r,
                        std::uint32_t ops, ByteCount bytes) {
  obs::JsonValue cell = obs::JsonValue::Object();
  cell.Set("method", obs::JsonValue(method));
  cell.Set("ops", obs::JsonValue(static_cast<std::uint64_t>(ops)));
  cell.Set("bytes", obs::JsonValue(bytes));
  cell.Set("seconds", obs::JsonValue(r.seconds));
  cell.Set("mb_per_second",
           obs::JsonValue(r.seconds > 0
                              ? static_cast<double>(bytes) / 1.0e6 / r.seconds
                              : 0.0));
  cell.Set("job_failures", obs::JsonValue(r.job_failures));
  cell.Set("retargets", obs::JsonValue(r.retargets));
  cell.Set("ejected_replicas", obs::JsonValue(r.ejected));
  cell.Set("verified", obs::JsonValue(r.verified));
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  const std::uint32_t ops = flags.smoke ? 8 : 32;
  const ByteCount slice = flags.smoke ? 64 * 1024 : 128 * 1024;
  const ByteCount bytes = static_cast<ByteCount>(ops) * slice;
  PrintBanner("failover",
              "replicated write/read with a deterministic mid-write iod kill",
              flags);
  BenchJson json(flags, "failover",
                 "2-way replication failover vs healthy vs unreplicated");

  ByteBuffer golden(bytes);
  FillPattern(golden, kFillSeed, 0);
  bool ok = true;

  // ---- baseline: replicas=1 ---------------------------------------------
  {
    auto cluster = SocketCluster::Start(4);
    if (!cluster.ok()) return 1;
    auto transport = (*cluster)->Connect(std::chrono::milliseconds{500});
    Client client(transport.get(), FailoverOptions());
    CellResult r = RunCell(nullptr, client, "f", ReplicationConfig{1}, golden,
                           ops);
    std::printf("baseline-replicas1: %.3fs failures=%llu verified=%d\n",
                r.seconds, static_cast<unsigned long long>(r.job_failures),
                r.verified);
    ok = ok && r.job_failures == 0 && r.verified;
    json.Row(CellJson("baseline-replicas1", r, ops, bytes));
  }

  // ---- healthy: replicas=2 ----------------------------------------------
  {
    auto cluster = SocketCluster::Start(4);
    if (!cluster.ok()) return 1;
    auto transport = (*cluster)->Connect(std::chrono::milliseconds{500});
    Client client(transport.get(), FailoverOptions());
    CellResult r = RunCell(nullptr, client, "f", ReplicationConfig{2}, golden,
                           ops);
    std::printf("healthy-replicas2: %.3fs failures=%llu verified=%d\n",
                r.seconds, static_cast<unsigned long long>(r.job_failures),
                r.verified);
    ok = ok && r.job_failures == 0 && r.verified;
    json.Row(CellJson("healthy-replicas2", r, ops, bytes));
  }

  // ---- degraded: replicas=2, kill one iod mid-write ----------------------
  {
    auto cluster = SocketCluster::Start(4);
    if (!cluster.ok()) return 1;
    auto transport = (*cluster)->Connect(std::chrono::milliseconds{500});
    Client client(transport.get(), FailoverOptions());
    CellResult r = RunCell(cluster->get(), client, "f", ReplicationConfig{2},
                           golden, ops);
    std::printf(
        "degraded-replicas2: %.3fs failures=%llu retargets=%llu verified=%d "
        "(killed iod %u after op %u)\n",
        r.seconds, static_cast<unsigned long long>(r.job_failures),
        static_cast<unsigned long long>(r.retargets), r.verified,
        static_cast<unsigned>(kVictim), kKillAtOp);
    ok = ok && r.job_failures == 0 && r.verified && r.retargets > 0;
    json.Row(CellJson("degraded-replicas2", r, ops, bytes));

    // Restart + automatic scrub: redundancy restored, accounted.
    const auto repair_start = std::chrono::steady_clock::now();
    Status restarted = (*cluster)->RestartIod(kVictim);
    const double repair_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      repair_start)
            .count();
    const std::uint64_t copied =
        (*cluster)->iod(kVictim).stats().repair_chunks_copied;
    std::printf("repair: %.3fs chunks_copied=%llu\n", repair_seconds,
                static_cast<unsigned long long>(copied));
    ok = ok && restarted.ok() && copied > 0;
    obs::JsonValue cell = obs::JsonValue::Object();
    cell.Set("method", obs::JsonValue("repair-after-restart"));
    cell.Set("seconds", obs::JsonValue(repair_seconds));
    cell.Set("chunks_copied", obs::JsonValue(copied));
    json.Row(std::move(cell));
  }

  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
