// Advisory byte-range lock service tests (extension closing the paper's
// "no file locking mechanism in PVFS" gap): manager lock table semantics,
// the client try/blocking API, and lock-serialized data-sieving writes
// over real sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/bytes.hpp"
#include "io/data_sieving.hpp"
#include "net/socket_transport.hpp"
#include "runtime/spmd.hpp"
#include "test_cluster.hpp"

namespace pvfs {
namespace {

using testutil::InProcCluster;

constexpr Striping kDefault{0, 8, 16384};

// ---- Manager lock table -------------------------------------------------------

TEST(ManagerLocks, ExclusiveConflictsOnOverlap) {
  Manager mgr(8);
  auto meta = mgr.Create("f", kDefault);
  ASSERT_TRUE(meta.ok());
  FileHandle h = meta->handle;

  EXPECT_TRUE(mgr.TryLock(h, {0, 100}, 1, true).ok());
  EXPECT_EQ(mgr.TryLock(h, {50, 100}, 2, true).code(),
            ErrorCode::kResourceExhausted);
  EXPECT_TRUE(mgr.TryLock(h, {100, 100}, 2, true).ok());  // disjoint
  EXPECT_EQ(mgr.LockCount(h), 2u);
}

TEST(ManagerLocks, SharedLocksCoexist) {
  Manager mgr(8);
  auto meta = mgr.Create("f", kDefault);
  FileHandle h = meta->handle;
  EXPECT_TRUE(mgr.TryLock(h, {0, 100}, 1, false).ok());
  EXPECT_TRUE(mgr.TryLock(h, {0, 100}, 2, false).ok());
  // But an exclusive request over a shared range conflicts both ways.
  EXPECT_EQ(mgr.TryLock(h, {0, 100}, 3, true).code(),
            ErrorCode::kResourceExhausted);
  EXPECT_TRUE(mgr.Unlock(h, {0, 100}, 1).ok());
  EXPECT_TRUE(mgr.Unlock(h, {0, 100}, 2).ok());
  EXPECT_TRUE(mgr.TryLock(h, {0, 100}, 3, true).ok());
}

TEST(ManagerLocks, WholeFileLockBlocksEverything) {
  Manager mgr(8);
  auto meta = mgr.Create("f", kDefault);
  FileHandle h = meta->handle;
  EXPECT_TRUE(mgr.TryLock(h, {0, 0}, 1, true).ok());  // whole file
  EXPECT_EQ(mgr.TryLock(h, {1 << 30, 1}, 2, true).code(),
            ErrorCode::kResourceExhausted);
  EXPECT_TRUE(mgr.Unlock(h, {0, 0}, 1).ok());
  EXPECT_TRUE(mgr.TryLock(h, {1 << 30, 1}, 2, true).ok());
}

TEST(ManagerLocks, RelockByOwnerIsIdempotent) {
  Manager mgr(8);
  auto meta = mgr.Create("f", kDefault);
  FileHandle h = meta->handle;
  EXPECT_TRUE(mgr.TryLock(h, {0, 100}, 1, true).ok());
  EXPECT_TRUE(mgr.TryLock(h, {0, 100}, 1, true).ok());
  EXPECT_EQ(mgr.LockCount(h), 1u);
  // Owner's own overlapping-but-different range never self-conflicts.
  EXPECT_TRUE(mgr.TryLock(h, {50, 100}, 1, true).ok());
  EXPECT_EQ(mgr.LockCount(h), 2u);
}

TEST(ManagerLocks, UnlockRequiresExactMatch) {
  Manager mgr(8);
  auto meta = mgr.Create("f", kDefault);
  FileHandle h = meta->handle;
  ASSERT_TRUE(mgr.TryLock(h, {0, 100}, 1, true).ok());
  EXPECT_EQ(mgr.Unlock(h, {0, 50}, 1).code(), ErrorCode::kNotFound);
  EXPECT_EQ(mgr.Unlock(h, {0, 100}, 2).code(), ErrorCode::kNotFound);
  EXPECT_TRUE(mgr.Unlock(h, {0, 100}, 1).ok());
  EXPECT_EQ(mgr.Unlock(h, {0, 100}, 1).code(), ErrorCode::kNotFound);
}

TEST(ManagerLocks, RemoveDropsLocks) {
  Manager mgr(8);
  auto meta = mgr.Create("f", kDefault);
  ASSERT_TRUE(mgr.TryLock(meta->handle, {0, 0}, 1, true).ok());
  ASSERT_TRUE(mgr.Remove("f").ok());
  EXPECT_EQ(mgr.LockCount(meta->handle), 0u);
  EXPECT_EQ(mgr.TryLock(meta->handle, {0, 0}, 2, true).code(),
            ErrorCode::kNotFound);
}

// ---- Client lock API ----------------------------------------------------------

TEST(ClientLocks, TryLockOverTransport) {
  InProcCluster cluster;
  Client a = cluster.MakeClient();
  Client b = cluster.MakeClient();
  auto afd = a.Create("f", kDefault);
  auto bfd = b.Open("f");
  ASSERT_TRUE(afd.ok());
  ASSERT_TRUE(bfd.ok());

  EXPECT_TRUE(a.TryLockRange(*afd, {0, 1000}).ok());
  EXPECT_EQ(b.TryLockRange(*bfd, {500, 1000}).code(),
            ErrorCode::kResourceExhausted);
  EXPECT_TRUE(a.UnlockRange(*afd, {0, 1000}).ok());
  EXPECT_TRUE(b.TryLockRange(*bfd, {500, 1000}).ok());
}

TEST(ClientLocks, BlockingLockWaitsForRelease) {
  InProcCluster cluster;
  Client a = cluster.MakeClient();
  auto afd = a.Create("f", kDefault);
  ASSERT_TRUE(a.TryLockRange(*afd, {0, 0}).ok());

  std::atomic<bool> acquired{false};
  std::jthread waiter([&] {
    Client b = cluster.MakeClient();
    auto bfd = b.Open("f");
    ASSERT_TRUE(bfd.ok());
    ASSERT_TRUE(b.LockRange(*bfd, {0, 0}).ok());
    acquired = true;
    ASSERT_TRUE(b.UnlockRange(*bfd, {0, 0}).ok());
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());  // still held by a
  ASSERT_TRUE(a.UnlockRange(*afd, {0, 0}).ok());
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(ClientLocks, BlockingLockGivesUpWithDeadlineExceeded) {
  // The blocking acquire is bounded: against a lock that is never
  // released it must stop backing off after Options::lock_max_attempts
  // and return kDeadlineExceeded instead of spinning forever.
  InProcCluster cluster;
  Client holder = cluster.MakeClient();
  auto hfd = holder.Create("f", kDefault);
  ASSERT_TRUE(hfd.ok());
  ASSERT_TRUE(holder.TryLockRange(*hfd, {0, 0}).ok());

  Client::Options options;
  options.lock_max_attempts = 5;
  options.lock_initial_backoff = std::chrono::microseconds{1};
  options.lock_max_backoff = std::chrono::microseconds{8};
  Client waiter(cluster.transport.get(), options);
  auto wfd = waiter.Open("f");
  ASSERT_TRUE(wfd.ok());
  Status status = waiter.LockRange(*wfd, {0, 0});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded) << status.message();

  // The budget only bounds contention; once the conflict clears the same
  // client acquires normally.
  ASSERT_TRUE(holder.UnlockRange(*hfd, {0, 0}).ok());
  EXPECT_TRUE(waiter.LockRange(*wfd, {0, 0}).ok());
  EXPECT_TRUE(waiter.UnlockRange(*wfd, {0, 0}).ok());
}

// ---- Lock-serialized sieving writes ---------------------------------------------

TEST(ClientLocks, LockSerializedSievingWritesOverSockets) {
  // The full stack: concurrent sieving writers on real TCP connections,
  // serialized by manager byte-range locks instead of an MPI barrier.
  auto cluster = net::SocketCluster::Start(4);
  ASSERT_TRUE(cluster.ok());
  {
    auto transport = (*cluster)->Connect();
    Client setup(transport.get());
    ASSERT_TRUE(setup.Create("sieve", Striping{0, 4, 4096}).ok());
  }

  constexpr std::uint32_t kClients = 4;
  constexpr int kPieces = 24;
  constexpr ByteCount kPiece = 96;

  runtime::RunSpmd(kClients, [&](runtime::SpmdContext& ctx) {
    auto transport = (*cluster)->Connect();
    Client client(transport.get());
    auto fd = client.Open("sieve");
    ASSERT_TRUE(fd.ok());

    io::AccessPattern pattern;
    for (int i = 0; i < kPieces; ++i) {
      pattern.file.push_back(
          Extent{(static_cast<FileOffset>(i) * kClients + ctx.rank()) *
                     kPiece,
                 kPiece});
    }
    pattern.memory = {Extent{0, kPieces * kPiece}};
    ByteBuffer buffer(kPieces * kPiece);
    FillPattern(buffer, 80 + ctx.rank(), 0);

    io::RangeLockSerializer serializer(&client, *fd);
    io::MethodOptions options;
    options.sieve_buffer_bytes = 1024;
    options.serializer = &serializer;
    auto method = io::MakeMethod(io::MethodType::kDataSieving, options);
    ASSERT_TRUE(method->Write(client, *fd, pattern, buffer).ok());
  });

  auto transport = (*cluster)->Connect();
  Client reader(transport.get());
  auto fd = reader.Open("sieve");
  ByteBuffer image(kPieces * kPiece * kClients);
  ASSERT_TRUE(reader.Read(*fd, 0, image).ok());
  for (Rank r = 0; r < kClients; ++r) {
    for (int i = 0; i < kPieces; ++i) {
      for (ByteCount b = 0; b < kPiece; ++b) {
        ASSERT_EQ(image[(i * kClients + r) * kPiece + b],
                  PatternByte(80 + r, i * kPiece + b))
            << "rank " << r << " piece " << i;
      }
    }
  }
}

}  // namespace
}  // namespace pvfs
