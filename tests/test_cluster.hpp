// Shared test fixture: a complete in-process PVFS deployment (manager +
// N I/O daemons + synchronous transport) with real byte movement.
#pragma once

#include <memory>
#include <vector>

#include "pvfs/client.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "pvfs/transport.hpp"

namespace pvfs::testutil {

struct InProcCluster {
  explicit InProcCluster(std::uint32_t servers = 8,
                         std::uint32_t max_list_regions = kMaxListRegions)
      : InProcCluster(servers,
                      ServerConfig{.max_list_regions = max_list_regions}) {}

  InProcCluster(std::uint32_t servers, const ServerConfig& config)
      : manager(servers) {
    iods.reserve(servers);
    std::vector<IoDaemon*> ptrs;
    for (ServerId s = 0; s < servers; ++s) {
      iods.push_back(std::make_unique<IoDaemon>(s, config));
      ptrs.push_back(iods.back().get());
    }
    transport = std::make_unique<InProcTransport>(&manager, std::move(ptrs));
  }

  Client MakeClient(std::uint32_t max_list_regions = kMaxListRegions) {
    return Client(transport.get(), max_list_regions);
  }

  Manager manager;
  std::vector<std::unique_ptr<IoDaemon>> iods;
  std::unique_ptr<InProcTransport> transport;
};

}  // namespace pvfs::testutil
