// Async I/O pipeline tests (docs/async-flows.md): the AsyncStore
// submission/completion contract, flow segmentation equivalence with the
// synchronous store path, the nonblocking client operations
// (ReadListAsync/WriteListAsync with Test/Wait/Cancel), and the
// op_deadline retry budget. Suites are named to join the TSan CI matrix
// (AsyncStore|Flow|AsyncClient|RetryDeadline).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "fault/fault.hpp"
#include "fault/fault_transport.hpp"
#include "pvfs/client.hpp"
#include "pvfs/flow.hpp"
#include "pvfs/store.hpp"
#include "pvfs/store_async.hpp"
#include "test_cluster.hpp"

namespace pvfs {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using testutil::InProcCluster;

constexpr Striping kStriping{0, 4, 16384};
constexpr FileHandle kHandle = 42;

ByteBuffer Pattern(std::size_t n, std::uint64_t seed) {
  ByteBuffer out(n);
  FillPattern(out, seed, 0);
  return out;
}

/// A flows-enabled daemon config with small segments, so even modest
/// requests exercise multi-segment pipelines.
ServerConfig FlowsConfig() {
  ServerConfig config;
  config.schedule_fragments = true;
  config.flows = true;
  config.flow_segment_bytes = 4096;
  config.flow_inflight = 4;
  config.store_workers = 2;
  return config;
}

/// Strided (noncontiguous) file regions for async op `op`.
std::vector<Extent> StridedRegions(std::uint32_t op, std::uint32_t regions,
                                   ByteCount region_bytes) {
  std::vector<Extent> out;
  const ByteCount stride = region_bytes * 3 + 512;
  const ByteCount base = static_cast<ByteCount>(op) * regions * stride;
  for (std::uint32_t r = 0; r < regions; ++r) {
    out.push_back(Extent{base + r * stride, region_bytes});
  }
  return out;
}

// ---- AsyncStore ------------------------------------------------------------

TEST(AsyncStore, WriteThenReadRoundTripWithTokens) {
  LocalStore store;
  AsyncStore async(store, {.workers = 2});
  AsyncStore::CompletionQueue cq;

  ByteBuffer data = Pattern(10'000, 11);
  std::vector<LocalStore::WritePiece> pieces{{0, data}};
  async.SubmitWrite(cq, /*token=*/7, kHandle, pieces);
  AsyncStore::Completion wrote = cq.Wait();
  EXPECT_EQ(wrote.token, 7u);
  EXPECT_TRUE(wrote.status.ok()) << wrote.status.message();
  EXPECT_EQ(wrote.bytes, data.size());

  ByteBuffer back(data.size());
  async.SubmitRead(cq, /*token=*/9, kHandle, 0, back);
  AsyncStore::Completion read = cq.Wait();
  EXPECT_EQ(read.token, 9u);
  EXPECT_TRUE(read.status.ok());
  EXPECT_EQ(read.bytes, back.size());
  EXPECT_EQ(back, data);
  EXPECT_EQ(cq.outstanding(), 0u);
  EXPECT_FALSE(cq.Poll().has_value());
}

TEST(AsyncStore, CompletionsRouteToTheSubmittersQueue) {
  // Two independent pipelines share the worker pool; each must see
  // exactly its own tokens, in whatever order the workers finish.
  LocalStore store;
  AsyncStore async(store, {.workers = 3});
  AsyncStore::CompletionQueue cq_a, cq_b;

  constexpr std::uint32_t kOps = 8;
  std::vector<ByteBuffer> buffers;
  buffers.reserve(kOps * 2);
  for (std::uint32_t i = 0; i < kOps; ++i) {
    buffers.push_back(Pattern(3000 + i, 20 + i));
    std::vector<LocalStore::WritePiece> pieces{
        {static_cast<FileOffset>(i) * 8192, buffers.back()}};
    async.SubmitWrite(cq_a, /*token=*/100 + i, kHandle, pieces);
  }
  for (std::uint32_t i = 0; i < kOps; ++i) {
    buffers.push_back(ByteBuffer(2048));
    async.SubmitRead(cq_b, /*token=*/200 + i, kHandle,
                     static_cast<FileOffset>(i) * 8192, buffers.back());
  }

  std::set<AsyncStore::Token> got_a, got_b;
  for (std::uint32_t i = 0; i < kOps; ++i) {
    AsyncStore::Completion a = cq_a.Wait();
    EXPECT_TRUE(a.status.ok());
    got_a.insert(a.token);
    AsyncStore::Completion b = cq_b.Wait();
    EXPECT_TRUE(b.status.ok());
    got_b.insert(b.token);
  }
  std::set<AsyncStore::Token> want_a, want_b;
  for (std::uint32_t i = 0; i < kOps; ++i) {
    want_a.insert(100 + i);
    want_b.insert(200 + i);
  }
  EXPECT_EQ(got_a, want_a);
  EXPECT_EQ(got_b, want_b);
  EXPECT_EQ(cq_a.outstanding(), 0u);
  EXPECT_EQ(cq_b.outstanding(), 0u);
}

TEST(AsyncStore, DestructorDrainsEveryPendingWrite) {
  LocalStore store;
  AsyncStore::CompletionQueue cq;
  constexpr std::uint32_t kOps = 16;
  std::vector<ByteBuffer> buffers;
  for (std::uint32_t i = 0; i < kOps; ++i) {
    buffers.push_back(Pattern(4096, 40 + i));
  }
  {
    // One slow worker so most submissions are still queued at destruction.
    AsyncStore async(store, {.workers = 1, .seek_us = 200});
    for (std::uint32_t i = 0; i < kOps; ++i) {
      std::vector<LocalStore::WritePiece> pieces{
          {static_cast<FileOffset>(i) * 4096, buffers[i]}};
      async.SubmitWrite(cq, i, kHandle, pieces);
    }
  }  // ~AsyncStore must execute all 16 before returning.
  for (std::uint32_t i = 0; i < kOps; ++i) {
    ByteBuffer back(4096);
    ASSERT_TRUE(
        store.Read(kHandle, static_cast<FileOffset>(i) * 4096, back).ok());
    EXPECT_EQ(back, buffers[i]) << "op " << i;
  }
  // No completion was lost: all 16 are ready to drain without blocking.
  for (std::uint32_t i = 0; i < kOps; ++i) {
    auto done = cq.Poll();
    ASSERT_TRUE(done.has_value()) << "completion " << i;
    EXPECT_TRUE(done->status.ok());
  }
  EXPECT_EQ(cq.outstanding(), 0u);
}

// ---- Flow ------------------------------------------------------------------

TEST(Flow, WriteReadRoundTripMatchesSynchronousStore) {
  LocalStore flow_store, sync_store;
  AsyncStore async(flow_store, {.workers = 2});
  const FlowConfig config{.segment_bytes = 4096, .max_inflight = 4};

  // Three runs; the first two span multiple segments.
  const std::vector<ScheduledRun> runs = {
      {0, 10'000, 0}, {50'000, 7'000, 10'000}, {200'000, 300, 17'000}};
  ByteBuffer scratch = Pattern(17'300, 55);

  FlowStats wstats;
  ASSERT_TRUE(
      FlowWrite(async, kHandle, runs, scratch, config, wstats).ok());
  // ceil(10000/4096) + ceil(7000/4096) + ceil(300/4096) = 3 + 2 + 1.
  EXPECT_EQ(wstats.segments, 6u);
  EXPECT_GE(wstats.peak_inflight, 1u);
  EXPECT_LE(wstats.peak_inflight, config.max_inflight);

  // The synchronous path writes the same bytes through one WriteV.
  std::vector<LocalStore::WritePiece> pieces;
  for (const ScheduledRun& run : runs) {
    pieces.push_back({run.offset,
                      std::span<const std::byte>(scratch).subspan(
                          run.buf_offset, run.length)});
  }
  sync_store.WriteV(kHandle, pieces);

  FlowStats rstats;
  ByteBuffer flow_back(scratch.size());
  ASSERT_TRUE(
      FlowRead(async, kHandle, runs, flow_back, config, rstats).ok());
  EXPECT_EQ(rstats.segments, 6u);
  EXPECT_EQ(flow_back, scratch);

  for (const ScheduledRun& run : runs) {
    ByteBuffer a(run.length), b(run.length);
    ASSERT_TRUE(flow_store.Read(kHandle, run.offset, a).ok());
    ASSERT_TRUE(sync_store.Read(kHandle, run.offset, b).ok());
    EXPECT_EQ(a, b);
  }
}

TEST(Flow, FullWindowStallsAreAccounted) {
  // One slow worker, window of 2, 8 segments: the pipeline must block on
  // a full window and record the wait.
  LocalStore store;
  AsyncStore async(store, {.workers = 1, .seek_us = 2'000});
  const FlowConfig config{.segment_bytes = 1024, .max_inflight = 2};
  const std::vector<ScheduledRun> runs = {{0, 8 * 1024, 0}};
  ByteBuffer scratch = Pattern(8 * 1024, 66);

  FlowStats stats;
  ASSERT_TRUE(FlowWrite(async, kHandle, runs, scratch, config, stats).ok());
  EXPECT_EQ(stats.segments, 8u);
  EXPECT_EQ(stats.peak_inflight, 2u);
  EXPECT_GT(stats.stall_us, 0u);
}

// ---- AsyncClient -----------------------------------------------------------

TEST(AsyncClient, OutOfOrderCompletionsAcrossIodsRoundTrip) {
  InProcCluster cluster(4, FlowsConfig());
  Client::Options options;
  options.async_workers = 4;
  Client client(cluster.transport.get(), options);
  auto fd = client.Create("/async/ooo", kStriping);
  ASSERT_TRUE(fd.ok());

  constexpr std::uint32_t kOps = 8;
  constexpr std::uint32_t kRegions = 6;
  constexpr ByteCount kRegionBytes = 5'000;  // spans stripe boundaries
  const ByteCount op_bytes = kRegions * kRegionBytes;

  std::vector<std::vector<Extent>> files(kOps);
  std::vector<std::vector<Extent>> mems(kOps);
  std::vector<ByteBuffer> golden(kOps);
  std::vector<Client::Operation> ops(kOps);
  for (std::uint32_t op = 0; op < kOps; ++op) {
    files[op] = StridedRegions(op, kRegions, kRegionBytes);
    mems[op] = {Extent{0, op_bytes}};
    golden[op] = Pattern(op_bytes, 70 + op);
    ops[op] = client.WriteListAsync(*fd, mems[op], golden[op], files[op]);
    ASSERT_TRUE(ops[op].valid());
  }
  // Waits in reverse submission order: completion order is unspecified,
  // every handle must resolve regardless.
  for (std::uint32_t op = kOps; op-- > 0;) {
    EXPECT_TRUE(ops[op].Wait().ok()) << "write op " << op;
    EXPECT_TRUE(ops[op].Test());
  }

  std::vector<ByteBuffer> back(kOps);
  for (std::uint32_t op = 0; op < kOps; ++op) {
    back[op] = ByteBuffer(op_bytes);
    ops[op] = client.ReadListAsync(*fd, mems[op], back[op], files[op]);
  }
  for (std::uint32_t op = 0; op < kOps; ++op) {
    EXPECT_TRUE(ops[op].Wait().ok()) << "read op " << op;
    EXPECT_EQ(back[op], golden[op]) << "read op " << op;
  }

  std::uint64_t segments = 0;
  for (const auto& iod : cluster.iods) {
    segments += iod->stats().flow_segments;
  }
  EXPECT_GT(segments, 0u) << "flows-enabled daemons must run the pipeline";
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.operations, kOps * 2);
  EXPECT_EQ(stats.bytes_written, static_cast<std::uint64_t>(op_bytes) * kOps);
}

TEST(AsyncClient, WaitAfterErrorReturnsTypedStatus) {
  InProcCluster cluster(4, FlowsConfig());

  // Submission-time failure (bad descriptor): MPI-style, the handle still
  // comes back and Wait reports the typed error.
  {
    Client client(cluster.transport.get(), Client::Options{});
    ByteBuffer buffer = Pattern(1024, 80);
    const std::vector<Extent> mem = {Extent{0, buffer.size()}};
    const std::vector<Extent> file = {Extent{0, buffer.size()}};
    Client::Operation op = client.WriteListAsync(999, mem, buffer, file);
    ASSERT_TRUE(op.valid());
    EXPECT_TRUE(op.Test());
    Status status = op.Wait();
    EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
    EXPECT_EQ(op.Wait().code(), ErrorCode::kFailedPrecondition)
        << "Wait is idempotent";
  }

  // Transport-level failure: every iod down, no retries — Wait surfaces
  // the underlying kUnavailable, not a generic failure.
  {
    fault::FaultInjector injector(fault::FaultConfig{.seed = 17});
    for (ServerId s = 0; s < 4; ++s) injector.CrashServer(s, 1'000'000);
    fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
    Client client(&chaos, Client::Options{});
    auto fd = client.Create("/async/err", kStriping);
    ASSERT_TRUE(fd.ok());  // manager calls pass through the injector
    ByteBuffer buffer = Pattern(4096, 81);
    const std::vector<Extent> mem = {Extent{0, buffer.size()}};
    const std::vector<Extent> file = {Extent{0, buffer.size()}};
    Client::Operation op = client.WriteListAsync(*fd, mem, buffer, file);
    Status status = op.Wait();
    EXPECT_EQ(status.code(), ErrorCode::kUnavailable) << status.message();
  }
}

TEST(AsyncClient, CancelBeforeDispatchWins) {
  // One async worker, a long-running first operation (16 strided runs,
  // each paying a 2 ms modeled seek): the second operation is still
  // queued when Cancel lands, so it must never execute.
  ServerConfig config = FlowsConfig();
  config.store_seek_us = 2'000;
  InProcCluster cluster(4, config);
  Client::Options options;
  options.async_workers = 1;
  Client client(cluster.transport.get(), options);
  auto fd = client.Create("/async/cancel", kStriping);
  ASSERT_TRUE(fd.ok());

  const std::vector<Extent> slow_file = StridedRegions(0, 16, 2048);
  ByteBuffer slow_data = Pattern(16 * 2048, 90);
  const std::vector<Extent> slow_mem = {Extent{0, slow_data.size()}};
  Client::Operation slow =
      client.WriteListAsync(*fd, slow_mem, slow_data, slow_file);

  const Extent victim{10'000'000, 4096};
  ByteBuffer victim_data = Pattern(victim.length, 91);
  const std::vector<Extent> victim_mem = {Extent{0, victim.length}};
  const std::vector<Extent> victim_file = {victim};
  Client::Operation canceled =
      client.WriteListAsync(*fd, victim_mem, victim_data, victim_file);

  EXPECT_TRUE(canceled.Cancel()) << "op behind a busy worker is queued";
  EXPECT_TRUE(canceled.Test());
  EXPECT_EQ(canceled.Wait().code(), ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(canceled.Cancel()) << "already resolved";
  EXPECT_TRUE(slow.Wait().ok());

  // The canceled write never reached the cluster: its range reads zero.
  ByteBuffer back(victim.length);
  ASSERT_TRUE(
      client.ReadList(*fd, victim_mem, back, victim_file).ok());
  EXPECT_EQ(back, ByteBuffer(victim.length));
}

TEST(AsyncClient, AsyncWritesSurviveFrameDropsAndCrashRestart) {
  // Chaos over the async path: random frame drops plus an explicitly
  // scheduled iod crash (down for 40 calls, then "restarted" when the
  // down ticks run out). Retries are idempotent; every Wait must succeed
  // and the readback must be bit-exact.
  InProcCluster cluster(4, FlowsConfig());
  fault::FaultConfig faults;
  faults.seed = 4242;
  faults.drop_rate = 0.05;
  fault::FaultInjector injector(faults);
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);

  Client::Options options;
  options.async_workers = 4;
  options.retry.max_attempts = 10'000;
  options.retry.initial_backoff = microseconds(1);
  options.retry.max_backoff = microseconds(200);
  Client client(&chaos, options);
  auto fd = client.Create("/async/chaos", kStriping);
  ASSERT_TRUE(fd.ok());

  constexpr std::uint32_t kOps = 8;
  constexpr ByteCount kOpBytes = 6 * 4096;
  std::vector<std::vector<Extent>> files(kOps), mems(kOps);
  std::vector<ByteBuffer> golden(kOps);
  std::vector<Client::Operation> ops(kOps);
  for (std::uint32_t op = 0; op < kOps; ++op) {
    files[op] = StridedRegions(op, 6, 4096);
    mems[op] = {Extent{0, kOpBytes}};
    golden[op] = Pattern(kOpBytes, 95 + op);
    ops[op] = client.WriteListAsync(*fd, mems[op], golden[op], files[op]);
    if (op == kOps / 2) injector.CrashServer(1, 40);  // mid-stream crash
  }
  for (std::uint32_t op = 0; op < kOps; ++op) {
    EXPECT_TRUE(ops[op].Wait().ok()) << "write op " << op;
  }

  for (std::uint32_t op = 0; op < kOps; ++op) {
    ByteBuffer back(kOpBytes);
    ASSERT_TRUE(client.ReadList(*fd, mems[op], back, files[op]).ok())
        << "readback op " << op;
    EXPECT_EQ(back, golden[op]) << "readback op " << op;
  }
  EXPECT_GT(client.retry_counters().retries, 0u)
      << "the schedule injects drops and a crash; recovery must be visible";
}

TEST(AsyncClient, ConcurrentClientsOnFlowsDaemonsStayCoherent) {
  // Four clients hammer the same flows-enabled daemons through the
  // shared in-process transport: Serve runs concurrently (the epoll
  // server stops serializing service when flows are on), so this is the
  // TSan proof obligation for daemon-side pipeline state.
  InProcCluster cluster(4, FlowsConfig());
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        Client client(cluster.transport.get(), Client::Options{});
        auto fd = client.Create("/async/mt" + std::to_string(t), kStriping);
        if (!fd.ok()) {
          ++failures;
          return;
        }
        for (int round = 0; round < 4; ++round) {
          const std::vector<Extent> file =
              StridedRegions(static_cast<std::uint32_t>(round), 5, 3000);
          ByteBuffer data = Pattern(5 * 3000, 300 + t * 10 + round);
          const std::vector<Extent> mem = {Extent{0, data.size()}};
          ByteBuffer back(data.size());
          if (!client.WriteList(*fd, mem, data, file).ok() ||
              !client.ReadList(*fd, mem, back, file).ok() || back != data) {
            ++failures;
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  std::uint64_t segments = 0;
  for (const auto& iod : cluster.iods) {
    segments += iod->stats().flow_segments;
  }
  EXPECT_GT(segments, 0u);
}

// ---- RetryDeadline ---------------------------------------------------------

/// All four iods down for effectively ever; manager untouched.
struct DeadCluster {
  DeadCluster()
      : cluster(4),
        injector(fault::FaultConfig{.seed = 23}),
        chaos(cluster.transport.get(), &injector) {
    for (ServerId s = 0; s < 4; ++s) injector.CrashServer(s, 100'000'000);
  }
  InProcCluster cluster;
  fault::FaultInjector injector;
  fault::FaultInjectingTransport chaos;
};

TEST(RetryDeadline, BudgetBoundsRetryTimeAndNamesTheLastError) {
  DeadCluster dead;
  Client::Options options;
  options.retry.max_attempts = 1'000;  // attempts alone would spin ~forever
  options.retry.initial_backoff = microseconds(300);
  options.retry.max_backoff = microseconds(5'000);
  options.retry.op_deadline = milliseconds(20);
  Client client(&dead.chaos, options);
  auto fd = client.Create("/deadline/budget", kStriping);
  ASSERT_TRUE(fd.ok());

  ByteBuffer data = Pattern(1000, 31);  // one server involved: one budget
  const auto start = std::chrono::steady_clock::now();
  Status status = client.Write(*fd, 0, data);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("op_deadline"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("UNAVAILABLE"), std::string::npos)
      << "must carry the last underlying error: " << status.message();
  EXPECT_LT(elapsed, milliseconds(2'000)) << "budget, not attempt cap, rules";
  EXPECT_GE(client.retry_counters().exhausted, 1u);
  EXPECT_GT(client.retry_counters().retries, 0u);
}

TEST(RetryDeadline, ZeroDeadlinePreservesAttemptCapSemantics) {
  DeadCluster dead;
  Client::Options options;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = microseconds(50);
  options.retry.max_backoff = microseconds(200);
  options.retry.op_deadline = microseconds(0);  // the historical default
  Client client(&dead.chaos, options);
  auto fd = client.Create("/deadline/off", kStriping);
  ASSERT_TRUE(fd.ok());

  ByteBuffer data = Pattern(1000, 32);
  Status status = client.Write(*fd, 0, data);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("failed 4 attempts"), std::string::npos)
      << "attempt cap, not budget, must rule: " << status.message();
  EXPECT_EQ(status.message().find("op_deadline"), std::string::npos)
      << status.message();
  EXPECT_GE(client.retry_counters().retries, 3u);
  EXPECT_GE(client.retry_counters().exhausted, 1u);
}

TEST(RetryDeadline, FinalSleepIsClampedToTheRemainingBudget) {
  // Backoff (300 ms) dwarfs the budget (25 ms): the bugfix clamps the
  // sleep to the remainder instead of sleeping past the deadline.
  DeadCluster dead;
  Client::Options options;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff = milliseconds(300);
  options.retry.max_backoff = milliseconds(1'000);
  options.retry.jitter = false;
  options.retry.op_deadline = milliseconds(25);
  Client client(&dead.chaos, options);
  auto fd = client.Create("/deadline/clamp", kStriping);
  ASSERT_TRUE(fd.ok());

  ByteBuffer data = Pattern(1000, 33);
  const auto start = std::chrono::steady_clock::now();
  Status status = client.Write(*fd, 0, data);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, milliseconds(250))
      << "one un-clamped 300 ms backoff would already bust this";
}

TEST(RetryDeadline, ReplicatedOpsHonorTheBudget) {
  DeadCluster dead;
  Client::Options options;
  options.retry.max_attempts = 100;
  options.retry.initial_backoff = microseconds(200);
  options.retry.max_backoff = microseconds(2'000);
  options.retry.op_deadline = milliseconds(20);
  Client client(&dead.chaos, options);
  auto fd = client.Create("/deadline/replicated", kStriping,
                          ReplicationConfig{2});
  ASSERT_TRUE(fd.ok());

  ByteBuffer data = Pattern(1000, 34);
  const auto start = std::chrono::steady_clock::now();
  Status wrote = client.Write(*fd, 0, data);
  Status read = client.Read(*fd, 0, data);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(wrote.code(), ErrorCode::kDeadlineExceeded) << wrote.message();
  EXPECT_NE(wrote.message().find("op_deadline"), std::string::npos);
  EXPECT_EQ(read.code(), ErrorCode::kDeadlineExceeded) << read.message();
  EXPECT_LT(elapsed, milliseconds(4'000));
}

}  // namespace
}  // namespace pvfs
