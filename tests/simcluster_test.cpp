// Simulation substrate tests: streaming workloads must match the
// materializing generators exactly, and the simulated cluster must
// reproduce the paper's qualitative orderings on scaled-down sweeps.
#include <gtest/gtest.h>

#include "simcluster/sim_run.hpp"
#include "simcluster/workload_streams.hpp"

namespace pvfs::simcluster {
namespace {

template <typename Stream>
ExtentList Drain(Stream& stream) {
  ExtentList out;
  while (auto region = stream.Next()) out.push_back(*region);
  return out;
}

// ---- Streams mirror the materializing generators -----------------------------

TEST(Streams, CyclicMatchesPattern) {
  workloads::CyclicConfig config{1 << 20, 4, 128};
  for (Rank r = 0; r < 4; ++r) {
    CyclicStream stream(config, r);
    EXPECT_EQ(Drain(stream), workloads::CyclicPattern(config, r).file);
    stream.Reset();
    EXPECT_EQ(Drain(stream).size(), 128u);  // Reset works
  }
}

TEST(Streams, BlockBlockMatchesPattern) {
  workloads::BlockBlockConfig config{512 * 512, 4, 300};
  for (Rank r = 0; r < 4; ++r) {
    BlockBlockStream stream(config, r);
    EXPECT_EQ(Drain(stream), workloads::BlockBlockPattern(config, r).file);
  }
}

TEST(Streams, BlockBlockUnevenGeometry) {
  workloads::BlockBlockConfig config{100 * 100, 9, 37};
  for (Rank r = 0; r < 9; ++r) {
    BlockBlockStream stream(config, r);
    EXPECT_EQ(Drain(stream), workloads::BlockBlockPattern(config, r).file)
        << "rank " << r;
  }
}

TEST(Streams, FlashMatchesPattern) {
  workloads::FlashConfig config;
  config.nprocs = 3;
  config.blocks_per_proc = 5;
  config.nvars = 4;
  for (Rank r = 0; r < 3; ++r) {
    FlashFileStream stream(config, r);
    EXPECT_EQ(Drain(stream),
              workloads::FlashCheckpointPattern(config, r).file);
  }
}

TEST(Streams, TiledVizMatchesPattern) {
  workloads::TiledVizConfig config;
  for (Rank r = 0; r < config.clients(); ++r) {
    TiledVizStream stream(config, r);
    EXPECT_EQ(Drain(stream), workloads::TiledVizPattern(config, r).file);
  }
}

TEST(Streams, BoundsMatchBoundingExtent) {
  workloads::CyclicConfig cyc{1 << 20, 8, 64};
  CyclicStream cs(cyc, 3);
  EXPECT_EQ(cs.Bound(),
            BoundingExtent(workloads::CyclicPattern(cyc, 3).file));

  workloads::BlockBlockConfig bb{256 * 256, 4, 99};
  BlockBlockStream bs(bb, 2);
  EXPECT_EQ(bs.Bound(),
            BoundingExtent(workloads::BlockBlockPattern(bb, 2).file));

  workloads::FlashConfig fl;
  fl.nprocs = 2;
  fl.blocks_per_proc = 3;
  FlashFileStream fs(fl, 1);
  EXPECT_EQ(fs.Bound(),
            BoundingExtent(workloads::FlashCheckpointPattern(fl, 1).file));

  workloads::TiledVizConfig tv;
  TiledVizStream ts(tv, 5);
  EXPECT_EQ(ts.Bound(),
            BoundingExtent(workloads::TiledVizPattern(tv, 5).file));
}

TEST(Streams, UniformSplitFragments) {
  auto inner = std::make_unique<VectorStream>(ExtentList{{0, 20}, {100, 8}});
  UniformSplitStream split(std::move(inner), 8);
  ExtentList out = Drain(split);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], (Extent{0, 8}));
  EXPECT_EQ(out[1], (Extent{8, 8}));
  EXPECT_EQ(out[2], (Extent{16, 4}));
  EXPECT_EQ(out[3], (Extent{100, 8}));
}

TEST(Streams, CoalesceMatchesHybridAlgorithm) {
  auto inner = std::make_unique<VectorStream>(
      ExtentList{{0, 10}, {15, 10}, {40, 10}, {51, 5}});
  CoalesceStream coalesce(std::move(inner), 5);
  ExtentList out = Drain(coalesce);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Extent{0, 25}));
  EXPECT_EQ(out[1], (Extent{40, 16}));
}

// ---- Simulated cluster behaviour ----------------------------------------------

SimWorkload CyclicWorkload(const workloads::CyclicConfig& config) {
  SimWorkload wl;
  wl.file_regions = [config](Rank r) {
    return std::make_unique<CyclicStream>(config, r);
  };
  return wl;
}

TEST(SimCluster, RequestCountersMatchClosedForms) {
  workloads::CyclicConfig config{16 * kMiB, 4, 1000};
  SimClusterConfig cluster = ChibaCityConfig(4);
  auto wl = CyclicWorkload(config);

  auto multiple = RunSimWorkload(cluster, io::MethodType::kMultiple,
                                 IoOp::kRead, wl);
  EXPECT_EQ(multiple.counters.fs_requests, 4u * 1000);

  auto list = RunSimWorkload(cluster, io::MethodType::kList, IoOp::kRead, wl);
  EXPECT_EQ(list.counters.fs_requests, 4u * ((1000 + 63) / 64));
}

TEST(SimCluster, ListBeatsMultipleOnFragmentedReads) {
  workloads::CyclicConfig config{16 * kMiB, 8, 2000};
  SimClusterConfig cluster = ChibaCityConfig(8);
  auto wl = CyclicWorkload(config);

  auto multiple = RunSimWorkload(cluster, io::MethodType::kMultiple,
                                 IoOp::kRead, wl);
  auto list = RunSimWorkload(cluster, io::MethodType::kList, IoOp::kRead, wl);
  EXPECT_LT(list.io_seconds, multiple.io_seconds / 2)
      << "list I/O must amortize request overhead";
}

TEST(SimCluster, WriteGapIsAboutTwoOrdersOfMagnitude) {
  // The headline result (Figs. 10/12): multiple-I/O writes sit ~two orders
  // of magnitude above list I/O at high fragmentation.
  workloads::CyclicConfig config{8 * kMiB, 4, 4000};  // 512 B accesses
  SimClusterConfig cluster = ChibaCityConfig(4);
  auto wl = CyclicWorkload(config);

  auto multiple = RunSimWorkload(cluster, io::MethodType::kMultiple,
                                 IoOp::kWrite, wl);
  auto list =
      RunSimWorkload(cluster, io::MethodType::kList, IoOp::kWrite, wl);
  double ratio = multiple.io_seconds / list.io_seconds;
  EXPECT_GT(ratio, 20.0);
  EXPECT_LT(ratio, 500.0);
}

TEST(SimCluster, SievingTimeIndependentOfAccessCount) {
  // Fig. 9's flat sieving curves: same bytes move regardless of how
  // fragmented the pattern is.
  SimClusterConfig cluster = ChibaCityConfig(4);
  SimRunOptions options;
  options.sieve_buffer_bytes = 4 * kMiB;

  workloads::CyclicConfig coarse{16 * kMiB, 4, 100};
  workloads::CyclicConfig fine{16 * kMiB, 4, 10000};
  auto coarse_run = RunSimWorkload(cluster, io::MethodType::kDataSieving,
                                   IoOp::kRead, CyclicWorkload(coarse),
                                   options);
  auto fine_run = RunSimWorkload(cluster, io::MethodType::kDataSieving,
                                 IoOp::kRead, CyclicWorkload(fine), options);
  EXPECT_NEAR(fine_run.io_seconds / coarse_run.io_seconds, 1.0, 0.05);
}

TEST(SimCluster, SievingReadsTheWholeExtentCover) {
  workloads::CyclicConfig config{16 * kMiB, 4, 1000};
  SimClusterConfig cluster = ChibaCityConfig(4);
  SimRunOptions options;
  options.sieve_buffer_bytes = 4 * kMiB;
  auto run = RunSimWorkload(cluster, io::MethodType::kDataSieving,
                            IoOp::kRead, CyclicWorkload(config), options);
  // Every client reads ~the whole 16 MiB cover: 4x more than its share.
  EXPECT_GT(run.counters.bytes_from_servers, 4ull * 15 * kMiB);
}

TEST(SimCluster, MoreClientsDoubleSievingTime) {
  // Fig. 9 narrative: "time nearly doubles with data sieving I/O when the
  // clients double".
  SimRunOptions options;
  options.sieve_buffer_bytes = 4 * kMiB;
  workloads::CyclicConfig c8{16 * kMiB, 8, 1000};
  workloads::CyclicConfig c16{16 * kMiB, 16, 1000};
  auto run8 = RunSimWorkload(ChibaCityConfig(8),
                             io::MethodType::kDataSieving, IoOp::kRead,
                             CyclicWorkload(c8), options);
  auto run16 = RunSimWorkload(ChibaCityConfig(16),
                              io::MethodType::kDataSieving, IoOp::kRead,
                              CyclicWorkload(c16), options);
  // Server-side bytes double; client NICs partially pipeline, so the
  // observed factor sits a little under 2.
  EXPECT_GT(run16.io_seconds / run8.io_seconds, 1.5);
  EXPECT_LT(run16.io_seconds / run8.io_seconds, 2.3);
}

TEST(SimCluster, HybridNeverWorseThanPlainListOnClusteredReads) {
  // Clustered pattern: 16-byte gaps inside clusters; hybrid should need
  // far fewer regions and at most the list time.
  ExtentList clustered;
  FileOffset pos = 0;
  for (int c = 0; c < 200; ++c) {
    for (int i = 0; i < 8; ++i) {
      clustered.push_back(Extent{pos, 64});
      pos += 80;
    }
    pos += 64 * 1024;
  }
  SimWorkload wl;
  wl.file_regions = [&clustered](Rank) {
    return std::make_unique<VectorStream>(clustered);
  };
  SimClusterConfig cluster = ChibaCityConfig(1);
  SimRunOptions options;
  options.hybrid_gap_threshold = 64;
  auto list = RunSimWorkload(cluster, io::MethodType::kList, IoOp::kRead, wl);
  auto hybrid = RunSimWorkload(cluster, io::MethodType::kHybrid, IoOp::kRead,
                               wl, options);
  EXPECT_LT(hybrid.counters.fs_requests, list.counters.fs_requests / 4);
  EXPECT_LT(hybrid.io_seconds, list.io_seconds * 1.05);
}

TEST(SimCluster, MetaPhaseReportsOpenAndClose) {
  workloads::TiledVizConfig config;
  SimWorkload wl;
  wl.file_regions = [config](Rank r) {
    return std::make_unique<TiledVizStream>(config, r);
  };
  SimClusterConfig cluster = ChibaCityConfig(config.clients());
  SimRunOptions options;
  options.include_meta = true;
  auto run = RunSimWorkload(cluster, io::MethodType::kList, IoOp::kRead, wl,
                            options);
  EXPECT_GT(run.open_seconds, 0.0);
  EXPECT_GT(run.close_seconds, 0.0);
  EXPECT_GT(run.io_seconds, run.open_seconds);
  EXPECT_EQ(run.counters.manager_ops, 2u * config.clients());
}

TEST(SimCluster, WriteStallDrivesTheWriteGap) {
  // EXPERIMENTS.md claims the multiple-vs-list write gap is driven by the
  // per-write-message stall (the 2002 Nagle/delayed-ACK pathology).
  // Removing it must collapse the gap substantially.
  workloads::CyclicConfig config{8 * kMiB, 4, 4000};
  auto wl = CyclicWorkload(config);

  auto ratio_with = [&](SimTimeNs stall) {
    SimClusterConfig cluster = ChibaCityConfig(4);
    cluster.write_request_stall_ns = stall;
    auto multiple =
        RunSimWorkload(cluster, io::MethodType::kMultiple, IoOp::kWrite, wl);
    auto list =
        RunSimWorkload(cluster, io::MethodType::kList, IoOp::kWrite, wl);
    return multiple.io_seconds / list.io_seconds;
  };

  double with_stall = ratio_with(40 * kNsPerMs);
  double without_stall = ratio_with(0);
  EXPECT_GT(with_stall, 2.0 * without_stall);
}

TEST(SimCluster, LatencyStatsPopulated) {
  workloads::CyclicConfig config{8 * kMiB, 4, 500};
  auto run = RunSimWorkload(ChibaCityConfig(4), io::MethodType::kList,
                            IoOp::kRead, CyclicWorkload(config));
  EXPECT_GT(run.mean_request_latency_s, 0.0);
  EXPECT_GE(run.max_request_latency_s, run.mean_request_latency_s);
  EXPECT_LT(run.max_request_latency_s, run.io_seconds);
}

TEST(SimCluster, ServerLoadAccountingConsistent) {
  workloads::CyclicConfig config{8 * kMiB, 4, 500};
  auto run = RunSimWorkload(ChibaCityConfig(4), io::MethodType::kList,
                            IoOp::kRead, CyclicWorkload(config));
  ASSERT_EQ(run.server_load.size(), 8u);
  std::uint64_t messages = 0;
  for (const auto& load : run.server_load) {
    messages += load.messages;
    EXPECT_GE(load.cpu_busy_s, 0.0);
    EXPECT_LE(load.cpu_busy_s, run.io_seconds);
  }
  EXPECT_EQ(messages, run.counters.messages);
}

TEST(SimCluster, BlockBlockConcentratesEachRequestOnFewServers) {
  // The paper's §4.2.2 explanation of the list-I/O upturn: a block-block
  // client's request touches only the few servers holding its tile's
  // stripes (losing server parallelism), while a cyclic request fans out
  // over all 8. Aggregate load stays balanced in both cases — the
  // concentration is per request.
  auto fanout = [](const SimRunResult& run) {
    return static_cast<double>(run.counters.messages) /
           static_cast<double>(run.counters.fs_requests);
  };

  // 256 MiB = 16384x16384 bytes: every array row is exactly one stripe
  // unit (at paper scale, 1 GiB gives two), which is what pins a tile's
  // columns onto a server subset. ~150 B fragments put 64-entry batches
  // within a couple of rows — the paper's turning-point regime.
  workloads::CyclicConfig cyc{256 * kMiB, 9, 200000};
  SimWorkload cyclic_wl;
  cyclic_wl.file_regions = [cyc](Rank r) {
    return std::make_unique<CyclicStream>(cyc, r);
  };
  workloads::BlockBlockConfig bb{256 * kMiB, 9, 200000};
  SimWorkload bb_wl;
  bb_wl.file_regions = [bb](Rank r) {
    return std::make_unique<BlockBlockStream>(bb, r);
  };

  auto cyclic_run = RunSimWorkload(ChibaCityConfig(9), io::MethodType::kList,
                                   IoOp::kRead, cyclic_wl);
  auto bb_run = RunSimWorkload(ChibaCityConfig(9), io::MethodType::kList,
                               IoOp::kRead, bb_wl);
  EXPECT_GT(fanout(cyclic_run), 5.0);  // spreads over most servers
  EXPECT_LT(fanout(bb_run), 4.0);      // concentrated on the tile's few

  // Aggregate per-server CPU time stays balanced in both runs.
  for (const auto& run : {cyclic_run, bb_run}) {
    double max_busy = 0;
    double total = 0;
    for (const auto& load : run.server_load) {
      max_busy = std::max(max_busy, load.cpu_busy_s);
      total += load.cpu_busy_s;
    }
    EXPECT_NEAR(max_busy / (total / run.server_load.size()), 1.0, 0.1);
  }
}

TEST(SimCluster, PipelinedLargeReadsOverlapDiskAndWire) {
  // A 4-client contiguous read over 8 servers should approach the client
  // NIC aggregate (~4 x 12.5 MB/s) rather than the serialized
  // disk-then-wire rate.
  const ByteCount aggregate = 64 * kMiB;
  SimWorkload contig;
  contig.file_regions = [aggregate](Rank r) {
    ByteCount share = aggregate / 4;
    return std::make_unique<VectorStream>(ExtentList{{r * share, share}});
  };
  auto run = RunSimWorkload(ChibaCityConfig(4), io::MethodType::kList,
                            IoOp::kRead, contig);
  double mbps = static_cast<double>(aggregate) / 1e6 / run.io_seconds;
  EXPECT_GT(mbps, 35.0);
  EXPECT_LT(mbps, 50.0);  // cannot beat the wire
  // Byte accounting is unchanged by pipelining.
  EXPECT_GE(run.counters.bytes_from_servers, aggregate);
}

TEST(SimCluster, DeterministicAcrossRuns) {
  workloads::CyclicConfig config{8 * kMiB, 4, 500};
  SimClusterConfig cluster = ChibaCityConfig(4);
  auto a = RunSimWorkload(cluster, io::MethodType::kList, IoOp::kRead,
                          CyclicWorkload(config));
  auto b = RunSimWorkload(cluster, io::MethodType::kList, IoOp::kRead,
                          CyclicWorkload(config));
  EXPECT_EQ(a.io_seconds, b.io_seconds);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace pvfs::simcluster
