// Grand-tour integration: every subsystem against one deployment — files
// created through the POSIX adapter, listed through the namespace,
// guarded by range locks, accessed with every noncontiguous method, via
// MPI-IO collectives, checkpointed, traced and replayed — over both the
// threaded in-process cluster and real TCP sockets.
#include <gtest/gtest.h>

#include "ckpt/checkpoint.hpp"
#include "common/bytes.hpp"
#include "io/method.hpp"
#include "mpiio/file.hpp"
#include "net/socket_transport.hpp"
#include "pvfs/posixio.hpp"
#include "runtime/spmd.hpp"
#include "runtime/threaded_cluster.hpp"
#include "trace/trace.hpp"
#include "workloads/cyclic.hpp"
#include "workloads/strided.hpp"

namespace pvfs {
namespace {

TEST(GrandTour, ThreadedClusterEndToEnd) {
  runtime::ThreadedCluster cluster(8);

  // 1. Ingest a "dataset" through the POSIX adapter.
  constexpr ByteCount kDataset = 3 * kMiB + 12345;
  {
    Client client(&cluster.transport());
    auto stream = PvfsStream::Create(&client, "/tour/data",
                                     Striping{0, 8, 16384});
    ASSERT_TRUE(stream.ok());
    ByteBuffer data(kDataset);
    FillPattern(data, 1, 0);
    ASSERT_TRUE(stream->Write(data).ok());
    ASSERT_TRUE(stream->Close().ok());
  }

  // 2. Namespace sees it.
  {
    Client client(&cluster.transport());
    auto names = client.ListFiles("/tour/");
    ASSERT_TRUE(names.ok());
    EXPECT_EQ(*names, (std::vector<std::string>{"/tour/data"}));
  }

  // 3. Four ranks each read a nested-strided slice with a different
  // noncontiguous method; all slices must agree with the pattern.
  runtime::RunSpmd(4, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto fd = client.Open("/tour/data");
    ASSERT_TRUE(fd.ok());

    workloads::NestedStridedConfig config;
    config.base = ctx.rank() * 512;
    config.levels = {{64, 32768}, {4, 4096}};
    config.block_bytes = 256;
    io::AccessPattern pattern = workloads::NestedStridedPattern(config);

    const io::MethodType methods[] = {
        io::MethodType::kMultiple, io::MethodType::kDataSieving,
        io::MethodType::kList, io::MethodType::kHybrid};
    ByteBuffer buffer(pattern.total_bytes());
    auto method = io::MakeMethod(methods[ctx.rank()]);
    ASSERT_TRUE(method->Read(client, *fd, pattern, buffer).ok());

    ByteCount stream_pos = 0;
    for (const Extent& f : pattern.file) {
      EXPECT_FALSE(FindPatternMismatch(
                       std::span{buffer}.subspan(stream_pos, f.length), 1,
                       f.offset)
                       .has_value())
          << "rank " << ctx.rank();
      stream_pos += f.length;
    }
  });

  // 4. Collective checkpoint of a derived array, then restart.
  constexpr std::uint32_t kRanks = 4;
  {
    mpiio::Group group(kRanks);
    runtime::RunSpmd(kRanks, [&](runtime::SpmdContext& ctx) {
      Client client(&cluster.transport());
      ckpt::ArraySpec spec;
      spec.elem_size = 8;
      spec.global_dims = {32, 32};
      spec.local_offset = {ctx.rank() * 8ull, 0};
      spec.local_dims = {8, 32};
      ByteBuffer block(spec.LocalBytes());
      FillPattern(block, 70 + ctx.rank(), 0);
      ASSERT_TRUE(ckpt::WriteCheckpoint(&client, &group, ctx.rank(),
                                        "/tour/ckpt", spec, block, 99)
                      .ok());
      ByteBuffer back(block.size());
      ASSERT_TRUE(ckpt::ReadCheckpoint(&client, &group, ctx.rank(),
                                       "/tour/ckpt", spec, back)
                      .ok());
      EXPECT_EQ(back, block);
    });
  }

  // 5. The namespace now holds both; remove the dataset under a lock.
  {
    Client client(&cluster.transport());
    auto names = client.ListFiles("/tour/");
    ASSERT_TRUE(names.ok());
    EXPECT_EQ(names->size(), 2u);
    auto fd = client.Open("/tour/data");
    ASSERT_TRUE(client.LockRange(*fd, {0, 0}).ok());
    ASSERT_TRUE(client.UnlockRange(*fd, {0, 0}).ok());
    ASSERT_TRUE(client.Close(*fd).ok());
    ASSERT_TRUE(client.Remove("/tour/data").ok());
    EXPECT_EQ(client.ListFiles("/tour/")->size(), 1u);
  }
}

TEST(GrandTour, SocketClusterEndToEnd) {
  auto cluster = net::SocketCluster::Start(4);
  ASSERT_TRUE(cluster.ok());

  // Trace replay over real sockets with list I/O, then verify through a
  // collective read.
  trace::Trace writes = trace::CyclicTrace(1 << 18, 4, 64, IoOp::kWrite);
  struct SocketFactoryTransport final : public Transport {
    explicit SocketFactoryTransport(const net::SocketCluster& c)
        : inner(c.Connect()) {}
    Result<std::vector<std::byte>> Call(
        const Endpoint& dest, std::span<const std::byte> request) override {
      return inner->Call(dest, request);
    }
    std::uint32_t server_count() const override {
      return inner->server_count();
    }
    std::unique_ptr<net::SocketTransport> inner;
  };

  // Replay spawns one thread per rank; SocketTransport serializes per
  // connection, so a single shared transport works but a per-test one is
  // closer to real deployments.
  SocketFactoryTransport transport(**cluster);
  trace::ReplayOptions options;
  options.striping = Striping{0, 4, 16384};
  options.file_name = "/tour/replayed";
  auto result = trace::Replay(transport, writes, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bytes_written, 1u << 18);

  // Every rank's share carries its seed pattern.
  Client reader(&transport);
  auto fd = reader.Open("/tour/replayed");
  ASSERT_TRUE(fd.ok());
  workloads::CyclicConfig config{1 << 18, 4, 64};
  for (Rank r = 0; r < 4; ++r) {
    auto pattern = workloads::CyclicPattern(config, r);
    ByteBuffer share(config.BytesPerClient());
    ASSERT_TRUE(
        reader.ReadList(*fd, pattern.memory, share, pattern.file).ok());
    EXPECT_FALSE(
        FindPatternMismatch(share, options.seed + r, 0).has_value())
        << "rank " << r;
  }
}

}  // namespace
}  // namespace pvfs
