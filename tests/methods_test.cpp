// Equivalence and behaviour tests for the noncontiguous access methods
// (paper §3): every method must move exactly the same bytes; they differ
// only in the requests they issue — which the tests also pin down.
#include <gtest/gtest.h>

#include <thread>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "io/data_sieving.hpp"
#include "io/hybrid_io.hpp"
#include "io/method.hpp"
#include "test_cluster.hpp"

namespace pvfs::io {
namespace {

using pvfs::testutil::InProcCluster;

constexpr Striping kDefault{0, 8, 16384};

/// Small sieve buffer so window logic is exercised by small tests.
MethodOptions SmallOptions() {
  MethodOptions options;
  options.sieve_buffer_bytes = 8192;
  options.hybrid_gap_threshold = 256;
  return options;
}

AccessPattern InterleavedPattern(ByteCount piece, int count, int stride_x,
                                 FileOffset base) {
  AccessPattern p;
  for (int i = 0; i < count; ++i) {
    p.file.push_back(
        Extent{base + static_cast<FileOffset>(i) * piece * stride_x, piece});
  }
  p.memory = {Extent{0, piece * count}};
  return p;
}

AccessPattern BothSidesNoncontiguous() {
  AccessPattern p;
  // 3 memory regions and 4 file regions with equal totals (720 bytes) and
  // misaligned boundaries, crossing a stripe edge.
  p.memory = {{10, 300}, {500, 120}, {1000, 300}};
  p.file = {{16300, 200}, {40000, 100}, {60000, 220}, {90000, 200}};
  return p;
}

AccessPattern RandomSortedPattern(SplitMix64& rng, size_t max_regions) {
  AccessPattern p;
  FileOffset pos = rng.Uniform(0, 4096);
  ByteCount mem_pos = rng.Uniform(0, 64);
  while (p.file.size() < max_regions) {
    ByteCount len = rng.Uniform(1, 3000);
    p.file.push_back(Extent{pos, len});
    pos += len + rng.Uniform(1, 9000);
    p.memory.push_back(Extent{mem_pos, len});
    mem_pos += len + rng.Uniform(0, 50);
  }
  return p;
}

struct Harness {
  Harness() : client(cluster.MakeClient()) {}

  Client::Fd CreateFile(const std::string& name,
                        Striping striping = kDefault) {
    auto fd = client.Create(name, striping);
    EXPECT_TRUE(fd.ok());
    return *fd;
  }

  InProcCluster cluster;
  Client client;
};

class MethodEquivalence : public ::testing::TestWithParam<MethodType> {};

TEST_P(MethodEquivalence, WriteThenContiguousReadMatchesOracle) {
  Harness h;
  auto method = MakeMethod(GetParam(), SmallOptions());
  AccessPattern pattern = BothSidesNoncontiguous();
  auto fd = h.CreateFile("f");

  ByteBuffer buffer(2000);
  FillPattern(buffer, 77, 0);
  ASSERT_TRUE(method->Write(h.client, fd, pattern, buffer).ok());

  // Oracle image of the file.
  ByteCount span = BoundingExtent(pattern.file)->end();
  ByteBuffer oracle(span, std::byte{0});
  auto segments = pattern.Segments();
  ASSERT_TRUE(segments.ok());
  for (const Segment& seg : *segments) {
    std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(seg.mem_offset),
              buffer.begin() +
                  static_cast<std::ptrdiff_t>(seg.mem_offset + seg.length),
              oracle.begin() + static_cast<std::ptrdiff_t>(seg.file_offset));
  }

  ByteBuffer image(span);
  ASSERT_TRUE(h.client.Read(fd, 0, image).ok());
  EXPECT_EQ(image, oracle);
}

TEST_P(MethodEquivalence, ReadSeesContiguouslyWrittenData) {
  Harness h;
  auto method = MakeMethod(GetParam(), SmallOptions());
  AccessPattern pattern = BothSidesNoncontiguous();
  auto fd = h.CreateFile("f");

  // Fill the file span with a known pattern.
  ByteCount span = BoundingExtent(pattern.file)->end();
  ByteBuffer image(span);
  FillPattern(image, 5, 0);
  ASSERT_TRUE(h.client.Write(fd, 0, image).ok());

  ByteBuffer buffer(2000, std::byte{0xAA});
  ASSERT_TRUE(method->Read(h.client, fd, pattern, buffer).ok());

  auto segments = pattern.Segments();
  ASSERT_TRUE(segments.ok());
  for (const Segment& seg : *segments) {
    for (ByteCount i = 0; i < seg.length; ++i) {
      ASSERT_EQ(buffer[seg.mem_offset + i], image[seg.file_offset + i])
          << "segment at file " << seg.file_offset << " + " << i;
    }
  }
  // Bytes outside the memory regions are untouched.
  EXPECT_EQ(buffer[0], std::byte{0xAA});
  EXPECT_EQ(buffer[400], std::byte{0xAA});
}

TEST_P(MethodEquivalence, RandomPatternsRoundTrip) {
  Harness h;
  auto method = MakeMethod(GetParam(), SmallOptions());
  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) + 100);

  for (int round = 0; round < 5; ++round) {
    auto fd = h.CreateFile("f" + std::to_string(round));
    AccessPattern pattern = RandomSortedPattern(rng, 40 + round * 30);
    ByteCount buffer_size = 0;
    for (const Extent& m : pattern.memory) {
      buffer_size = std::max<ByteCount>(buffer_size, m.end());
    }
    ByteBuffer buffer(buffer_size);
    FillPattern(buffer, round, 0);

    ASSERT_TRUE(method->Write(h.client, fd, pattern, buffer).ok());

    ByteBuffer out(buffer_size, std::byte{0});
    ASSERT_TRUE(method->Read(h.client, fd, pattern, out).ok());
    for (const Extent& m : pattern.memory) {
      for (FileOffset i = m.offset; i < m.end(); ++i) {
        ASSERT_EQ(out[i], buffer[i]) << "round " << round << " at " << i;
      }
    }
  }
}

TEST_P(MethodEquivalence, EmptyPatternIsNoop) {
  Harness h;
  auto method = MakeMethod(GetParam(), SmallOptions());
  auto fd = h.CreateFile("f");
  AccessPattern empty;
  ByteBuffer buffer(16);
  EXPECT_TRUE(method->Write(h.client, fd, empty, buffer).ok());
  EXPECT_TRUE(method->Read(h.client, fd, empty, buffer).ok());
}

TEST_P(MethodEquivalence, ValidationFailuresPropagate) {
  Harness h;
  auto method = MakeMethod(GetParam(), SmallOptions());
  auto fd = h.CreateFile("f");
  AccessPattern bad;
  bad.memory = {{0, 10}};
  bad.file = {{0, 20}};
  ByteBuffer buffer(32);
  EXPECT_FALSE(method->Write(h.client, fd, bad, buffer).ok());
  EXPECT_FALSE(method->Read(h.client, fd, bad, buffer).ok());
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodEquivalence,
                         ::testing::Values(MethodType::kMultiple,
                                           MethodType::kDataSieving,
                                           MethodType::kList,
                                           MethodType::kHybrid),
                         [](const auto& info) {
                           std::string name(MethodName(info.param));
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ---- Request-count behaviour (the paper's core claim) ----------------------

TEST(MethodRequests, MultipleIssuesOneRequestPerSegment) {
  Harness h;
  auto fd = h.CreateFile("f");
  AccessPattern pattern = InterleavedPattern(100, 50, 3, 0);
  ByteBuffer buffer(TotalBytes(pattern.memory));
  h.client.ResetStats();
  auto method = MakeMethod(MethodType::kMultiple);
  ASSERT_TRUE(method->Write(h.client, fd, pattern, buffer).ok());
  EXPECT_EQ(h.client.stats().fs_requests, 50u);
}

TEST(MethodRequests, ListBatchesRegionsByLimit) {
  Harness h;
  auto fd = h.CreateFile("f");
  AccessPattern pattern = InterleavedPattern(100, 130, 3, 0);
  ByteBuffer buffer(TotalBytes(pattern.memory));
  h.client.ResetStats();
  auto method = MakeMethod(MethodType::kList);
  ASSERT_TRUE(method->Write(h.client, fd, pattern, buffer).ok());
  EXPECT_EQ(h.client.stats().fs_requests, 3u);  // ceil(130/64)
}

TEST(MethodRequests, SievingReadUsesWindows) {
  Harness h;
  auto fd = h.CreateFile("f");
  // 64 pieces of 100 B spread over ~51 KB; with an 8 KiB sieve buffer the
  // bounding extent needs ceil(51.1K/8K) = 7 window reads.
  AccessPattern pattern = InterleavedPattern(100, 64, 8, 0);
  ByteBuffer buffer(TotalBytes(pattern.memory));
  ByteBuffer image(BoundingExtent(pattern.file)->end());
  ASSERT_TRUE(h.client.Write(fd, 0, image).ok());

  h.client.ResetStats();
  auto method = MakeMethod(MethodType::kDataSieving, SmallOptions());
  ASSERT_TRUE(method->Read(h.client, fd, pattern, buffer).ok());
  ByteCount span = BoundingExtent(pattern.file)->end() -
                   BoundingExtent(pattern.file)->offset;
  ByteCount expected = (span + 8191) / 8192;
  EXPECT_EQ(h.client.stats().fs_requests, expected);
  // Sieving reads far more bytes than the pattern wants.
  EXPECT_GT(h.client.stats().bytes_read, TotalBytes(pattern.file));
}

TEST(MethodRequests, SievingSkipsEmptyWindows) {
  Harness h;
  auto fd = h.CreateFile("f");
  // Two clusters far apart: windows between them contain nothing.
  AccessPattern p;
  p.file = {{0, 100}, {100, 100}, {1000000, 100}, {1000100, 100}};
  p.memory = {{0, 400}};
  ByteBuffer buffer(400);
  h.client.ResetStats();
  auto method = MakeMethod(MethodType::kDataSieving, SmallOptions());
  ASSERT_TRUE(method->Read(h.client, fd, p, buffer).ok());
  // 1000200 bytes span / 8192 = 123 windows, but only 2 contain data.
  EXPECT_EQ(h.client.stats().fs_requests, 2u);
}

TEST(MethodRequests, HybridCollapsesDenseClusters) {
  Harness h;
  auto fd = h.CreateFile("f");
  // 60 regions in dense clusters of 10 (gap 16 B inside, 5000 B between).
  AccessPattern p;
  FileOffset pos = 0;
  for (int cluster = 0; cluster < 6; ++cluster) {
    for (int i = 0; i < 10; ++i) {
      p.file.push_back(Extent{pos, 64});
      pos += 64 + 16;
    }
    pos += 5000;
  }
  p.memory = {{0, TotalBytes(p.file)}};
  ByteBuffer buffer(TotalBytes(p.file));
  h.client.ResetStats();
  auto method = MakeMethod(MethodType::kHybrid, SmallOptions());
  ASSERT_TRUE(method->Read(h.client, fd, p, buffer).ok());
  // 6 super-regions -> one list request; far fewer regions sent than 60.
  EXPECT_EQ(h.client.stats().fs_requests, 1u);
  EXPECT_EQ(h.client.stats().regions_sent % 6, 0u);
  EXPECT_LT(h.client.stats().regions_sent, 60u);
}

// ---- Hybrid coalescing unit behaviour ---------------------------------------

TEST(HybridCoalesce, MergesWithinThreshold) {
  ExtentList in{{0, 10}, {15, 10}, {40, 10}};
  ExtentList out = HybridIo::CoalesceWithGaps(in, 5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Extent{0, 25}));
  EXPECT_EQ(out[1], (Extent{40, 10}));
}

TEST(HybridCoalesce, ZeroThresholdMergesOnlyAdjacent) {
  ExtentList in{{0, 10}, {10, 10}, {21, 10}};
  ExtentList out = HybridIo::CoalesceWithGaps(in, 0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Extent{0, 20}));
}

TEST(HybridCoalesce, HugeThresholdMergesEverything) {
  ExtentList in{{0, 10}, {1000, 10}, {100000, 10}};
  ExtentList out = HybridIo::CoalesceWithGaps(in, 1 << 20);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].end(), 100010u);
}

// ---- Sieving write correctness under concurrency ----------------------------

TEST(SievingWrite, SerializedRmwPreservesNeighbourData) {
  // Two interleaved writers whose sieve windows overlap: without the
  // serializer their read-modify-write cycles would race; with it the
  // final image must contain both writers' bytes.
  Harness h;
  auto fd = h.CreateFile("f");
  MethodOptions options = SmallOptions();
  MutexSerializer serializer;
  options.serializer = &serializer;

  constexpr int kPieces = 64;
  constexpr ByteCount kPiece = 128;
  auto pattern_for = [&](int who) {
    AccessPattern p;
    for (int i = 0; i < kPieces; ++i) {
      p.file.push_back(
          Extent{static_cast<FileOffset>(i) * 2 * kPiece + who * kPiece,
                 kPiece});
    }
    p.memory = {Extent{0, kPieces * kPiece}};
    return p;
  };

  ByteBuffer buf0(kPieces * kPiece);
  ByteBuffer buf1(kPieces * kPiece);
  FillPattern(buf0, 1000, 0);
  FillPattern(buf1, 2000, 0);

  std::jthread w0([&] {
    auto method = MakeMethod(MethodType::kDataSieving, options);
    Client client = h.cluster.MakeClient();
    auto my_fd = client.Open("f");
    ASSERT_TRUE(my_fd.ok());
    ASSERT_TRUE(method->Write(client, *my_fd, pattern_for(0), buf0).ok());
  });
  std::jthread w1([&] {
    auto method = MakeMethod(MethodType::kDataSieving, options);
    Client client = h.cluster.MakeClient();
    auto my_fd = client.Open("f");
    ASSERT_TRUE(my_fd.ok());
    ASSERT_TRUE(method->Write(client, *my_fd, pattern_for(1), buf1).ok());
  });
  w0.join();
  w1.join();

  ByteBuffer image(kPieces * kPiece * 2);
  ASSERT_TRUE(h.client.Read(fd, 0, image).ok());
  for (int i = 0; i < kPieces; ++i) {
    for (ByteCount b = 0; b < kPiece; ++b) {
      ASSERT_EQ(image[i * 2 * kPiece + b], buf0[i * kPiece + b])
          << "writer 0 piece " << i;
      ASSERT_EQ(image[i * 2 * kPiece + kPiece + b], buf1[i * kPiece + b])
          << "writer 1 piece " << i;
    }
  }
}

}  // namespace
}  // namespace pvfs::io
