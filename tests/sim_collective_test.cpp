// Simulated two-phase collective I/O tests.
#include "simcluster/sim_collective.hpp"

#include <gtest/gtest.h>

#include "simcluster/workload_streams.hpp"

namespace pvfs::simcluster {
namespace {

SimWorkload CyclicWorkload(const workloads::CyclicConfig& config) {
  SimWorkload wl;
  wl.file_regions = [config](Rank r) {
    return std::make_unique<CyclicStream>(config, r);
  };
  return wl;
}

TEST(SimCollective, AggregatorsIssueOneWriteEachOnFullCoverage) {
  workloads::CyclicConfig config{16 * kMiB, 4, 1000};
  auto run = RunSimCollective(ChibaCityConfig(4), IoOp::kWrite,
                              CyclicWorkload(config));
  // Full interleaved coverage: no RMW reads, one contiguous write per
  // aggregator.
  EXPECT_EQ(run.counters.fs_requests, 4u);
  EXPECT_GT(run.counters.exchange_bytes, 0u);
}

TEST(SimCollective, PartialCoverageAddsRmwReads)
{
  // Only rank 0's share is written (others' slots are holes): aggregators
  // must read before writing.
  workloads::CyclicConfig config{8 * kMiB, 4, 512};
  SimWorkload wl;
  wl.file_regions = [config](Rank r) {
    if (r == 0) return std::make_unique<CyclicStream>(config, r);
    workloads::CyclicConfig empty = config;
    empty.accesses_per_client = 0;
    return std::make_unique<CyclicStream>(empty, r);
  };
  auto run = RunSimCollective(ChibaCityConfig(4), IoOp::kWrite, wl);
  // 4 domains touched by rank 0's spread pattern -> reads + writes.
  EXPECT_EQ(run.counters.fs_requests, 8u);
}

TEST(SimCollective, FlatInAccessCount) {
  auto t = [](std::uint64_t accesses) {
    workloads::CyclicConfig config{16 * kMiB, 8, accesses};
    return RunSimCollective(ChibaCityConfig(8), IoOp::kWrite,
                            CyclicWorkload(config))
        .io_seconds;
  };
  double coarse = t(1000);
  double fine = t(50000);
  EXPECT_NEAR(fine / coarse, 1.0, 0.05);
}

TEST(SimCollective, BeatsListOnTightInterleavedWrites) {
  workloads::CyclicConfig config{16 * kMiB, 8, 20000};
  auto wl = CyclicWorkload(config);
  auto list = RunSimWorkload(ChibaCityConfig(8), io::MethodType::kList,
                             IoOp::kWrite, wl);
  auto collective = RunSimCollective(ChibaCityConfig(8), IoOp::kWrite, wl);
  EXPECT_LT(collective.io_seconds, list.io_seconds / 2);
}

TEST(SimCollective, ReadDistributesAggregatorData) {
  workloads::CyclicConfig config{16 * kMiB, 4, 2000};
  auto run = RunSimCollective(ChibaCityConfig(4), IoOp::kRead,
                              CyclicWorkload(config));
  EXPECT_EQ(run.counters.fs_requests, 4u);  // one read per aggregator
  // Everyone's data (minus what they aggregate themselves) crosses the
  // compute network.
  EXPECT_GT(run.counters.exchange_bytes, 8 * kMiB);
  EXPECT_GT(run.io_seconds, 0.0);
}

TEST(SimCollective, EmptyWorkloadIsNoop) {
  workloads::CyclicConfig config{16 * kMiB, 4, 1};
  SimWorkload wl;
  wl.file_regions = [config](Rank r) {
    workloads::CyclicConfig empty = config;
    empty.accesses_per_client = 0;
    return std::make_unique<CyclicStream>(empty, r);
  };
  auto run = RunSimCollective(ChibaCityConfig(4), IoOp::kWrite, wl);
  EXPECT_EQ(run.counters.fs_requests, 0u);
}

TEST(SimCollective, Deterministic) {
  workloads::CyclicConfig config{8 * kMiB, 4, 2000};
  auto a = RunSimCollective(ChibaCityConfig(4), IoOp::kWrite,
                            CyclicWorkload(config));
  auto b = RunSimCollective(ChibaCityConfig(4), IoOp::kWrite,
                            CyclicWorkload(config));
  EXPECT_EQ(a.io_seconds, b.io_seconds);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace pvfs::simcluster
