// Chaos and property tests for the deterministic fault-injection layer:
// under any fault seed with bounded drop rates, every noncontiguous access
// method must still complete with byte-identical contents once the client
// retries; crashes mid-write must end in recovery or a typed Status, never
// a hang or a corrupted stripe; and the same seed must reproduce the same
// fault schedule bit for bit.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/bytes.hpp"
#include "fault/fault.hpp"
#include "fault/fault_transport.hpp"
#include "io/method.hpp"
#include "net/socket_transport.hpp"
#include "pvfs/client.hpp"
#include "simcluster/region_stream.hpp"
#include "simcluster/sim_run.hpp"
#include "test_cluster.hpp"
#include "trace/trace.hpp"
#include "workloads/cyclic.hpp"

namespace pvfs {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr ByteCount kFileBytes = 256 * 1024;
const Striping kStriping{0, 8, 16384};

/// Retry discipline used by every chaos client: enough attempts that a
/// sub-30% drop rate exhausts with probability ~0.3^12, tiny backoffs so
/// the suite stays fast.
Client::Options ChaosClientOptions() {
  Client::Options options;
  options.retry.max_attempts = 12;
  options.retry.initial_backoff = microseconds{1};
  options.retry.max_backoff = microseconds{64};
  return options;
}

/// The per-rank noncontiguous patterns of a small cyclic workload that
/// collectively tile [0, kFileBytes).
std::vector<io::AccessPattern> WorkloadPatterns() {
  workloads::CyclicConfig config;
  config.total_bytes = kFileBytes;
  config.clients = 4;
  config.accesses_per_client = 32;
  std::vector<io::AccessPattern> patterns;
  for (Rank r = 0; r < config.clients; ++r) {
    patterns.push_back(workloads::CyclicPattern(config, r));
  }
  return patterns;
}

ByteBuffer GoldenContents() {
  ByteBuffer golden(kFileBytes);
  FillPattern(golden, 99, 0);
  return golden;
}

/// Expected read result for `pattern`: its file regions gathered from the
/// golden image (memory side is contiguous).
ByteBuffer Gather(const ByteBuffer& golden, const io::AccessPattern& pattern) {
  ByteBuffer out;
  out.reserve(pattern.total_bytes());
  for (const Extent& region : pattern.file) {
    out.insert(out.end(), golden.begin() + static_cast<std::ptrdiff_t>(region.offset),
               golden.begin() + static_cast<std::ptrdiff_t>(region.end()));
  }
  return out;
}

ByteBuffer ReadWholeFile(Client& client, const std::string& name) {
  auto fd = client.Open(name);
  EXPECT_TRUE(fd.ok()) << fd.status().message();
  ByteBuffer out(kFileBytes);
  EXPECT_TRUE(client.Read(*fd, 0, out).ok());
  EXPECT_TRUE(client.Close(*fd).ok());
  return out;
}

const io::MethodType kMethods[] = {io::MethodType::kMultiple,
                                   io::MethodType::kDataSieving,
                                   io::MethodType::kList};

// ---- Property: faulty reads are byte-identical --------------------------

// For any fault seed with drop rate < 30% (plus duplicates and delays),
// all three access methods complete through the retry layer and return
// exactly the bytes a fault-free run returns.
TEST(FaultProperty, ReadsCompleteByteIdenticalUnderAnySeed) {
  const ByteBuffer golden = GoldenContents();
  const auto patterns = WorkloadPatterns();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    testutil::InProcCluster cluster;
    {
      Client reliable = cluster.MakeClient();
      auto fd = reliable.Create("f", kStriping);
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(reliable.Write(*fd, 0, golden).ok());
      ASSERT_TRUE(reliable.Close(*fd).ok());
    }
    fault::FaultConfig config;
    config.seed = seed;
    config.drop_rate = 0.25;
    config.duplicate_rate = 0.10;
    config.delay_rate = 0.05;
    config.delay_min_us = 1;
    config.delay_max_us = 50;
    fault::FaultInjector injector(config);
    fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
    Client client(&chaos, ChaosClientOptions());
    auto fd = client.Open("f");
    ASSERT_TRUE(fd.ok()) << fd.status().message();
    for (io::MethodType type : kMethods) {
      auto method = io::MakeMethod(type);
      for (const io::AccessPattern& pattern : patterns) {
        ByteBuffer buffer(pattern.total_bytes());
        Status status = method->Read(client, *fd, pattern, buffer);
        ASSERT_TRUE(status.ok())
            << "seed " << seed << " method " << static_cast<int>(type) << ": "
            << status.message();
        EXPECT_EQ(buffer, Gather(golden, pattern));
      }
    }
    EXPECT_GT(injector.counters().frames_dropped, 0u);
    EXPECT_GT(client.retry_counters().retries, 0u);
    EXPECT_EQ(client.retry_counters().exhausted, 0u);
  }
}

// Same property for writes: a chaotic run must leave exactly the file a
// fault-free run leaves, despite resent and duplicated write frames
// (idempotency of PVFS data requests).
TEST(FaultProperty, WritesCompleteByteIdenticalUnderAnySeed) {
  const auto patterns = WorkloadPatterns();
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    for (io::MethodType type : kMethods) {
      testutil::InProcCluster reference_cluster;
      testutil::InProcCluster chaos_cluster;
      fault::FaultConfig config;
      config.seed = seed;
      config.drop_rate = 0.20;
      config.duplicate_rate = 0.10;
      fault::FaultInjector injector(config);
      fault::FaultInjectingTransport chaos(chaos_cluster.transport.get(),
                                           &injector);
      Client reference(reference_cluster.transport.get());
      Client chaotic(&chaos, ChaosClientOptions());
      for (Client* client : {&reference, &chaotic}) {
        auto fd = client->Create("f", kStriping);
        ASSERT_TRUE(fd.ok());
        auto method = io::MakeMethod(type);
        for (size_t r = 0; r < patterns.size(); ++r) {
          ByteBuffer payload(patterns[r].total_bytes());
          FillPattern(payload, 7 + r, 0);
          Status status = method->Write(*client, *fd, patterns[r], payload);
          ASSERT_TRUE(status.ok())
              << "seed " << seed << " method " << static_cast<int>(type)
              << ": " << status.message();
        }
        ASSERT_TRUE(client->Close(*fd).ok());
      }
      Client check_ref = reference_cluster.MakeClient();
      Client check_chaos = chaos_cluster.MakeClient();
      EXPECT_EQ(ReadWholeFile(check_ref, "f"), ReadWholeFile(check_chaos, "f"))
          << "seed " << seed << " method " << static_cast<int>(type);
    }
  }
}

// ---- Chaos: iod crash mid list-I/O write --------------------------------

// One iod crashes partway through a striped list write. The retrying
// client must ride out the down window and complete; the file must read
// back exactly as written.
TEST(Chaos, IodCrashMidListWriteRecoversAfterRestart) {
  testutil::InProcCluster cluster;
  fault::FaultInjector injector(fault::FaultConfig{});  // explicit crashes only
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client client(&chaos, ChaosClientOptions());

  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(kFileBytes);
  FillPattern(data, 5, 0);
  // Warm the file, then crash server 3 for the next 5 calls it receives
  // and immediately issue a full-stripe noncontiguous rewrite.
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  injector.CrashServer(3, 5);
  const auto patterns = WorkloadPatterns();
  auto method = io::MakeMethod(io::MethodType::kList);
  for (size_t r = 0; r < patterns.size(); ++r) {
    ByteBuffer payload(patterns[r].total_bytes());
    FillPattern(payload, 40 + r, 0);
    ASSERT_TRUE(method->Write(client, *fd, patterns[r], payload).ok());
  }
  ASSERT_TRUE(client.Close(*fd).ok());
  EXPECT_GT(injector.counters().refused_calls, 0u);
  EXPECT_EQ(injector.counters().restarts, 1u);
  EXPECT_GT(client.retry_counters().retries, 0u);

  // Reconstruct the expected image and compare through a clean client.
  ByteBuffer expected = data;
  for (size_t r = 0; r < patterns.size(); ++r) {
    ByteBuffer payload(patterns[r].total_bytes());
    FillPattern(payload, 40 + r, 0);
    size_t taken = 0;
    for (const Extent& region : patterns[r].file) {
      std::copy(payload.begin() + static_cast<std::ptrdiff_t>(taken),
                payload.begin() + static_cast<std::ptrdiff_t>(taken + region.length),
                expected.begin() + static_cast<std::ptrdiff_t>(region.offset));
      taken += region.length;
    }
  }
  Client reliable = cluster.MakeClient();
  EXPECT_EQ(ReadWholeFile(reliable, "f"), expected);
}

// A crash that outlives the retry budget must surface as a typed Status —
// kDeadlineExceeded from the exhausted retry loop — and must not corrupt
// what the surviving servers hold: a clean rewrite fully repairs the file.
TEST(Chaos, CrashOutlivingRetryBudgetReturnsTypedStatus) {
  testutil::InProcCluster cluster;
  fault::FaultInjector injector(fault::FaultConfig{});
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client::Options options = ChaosClientOptions();
  options.retry.max_attempts = 3;
  Client client(&chaos, options);

  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  injector.CrashServer(2, 1'000'000);  // effectively never restarts
  ByteBuffer data(kFileBytes);
  FillPattern(data, 21, 0);
  Status status = client.Write(*fd, 0, data);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded) << status.message();
  EXPECT_GT(client.retry_counters().exhausted, 0u);

  // Fail-fast clients (no retry) see the bare kUnavailable refusal.
  Client fail_fast(&chaos);
  auto ffd = fail_fast.Open("f");
  ASSERT_TRUE(ffd.ok());  // manager is not injected
  Status bare = fail_fast.Write(*ffd, 0, data);
  ASSERT_FALSE(bare.ok());
  EXPECT_EQ(bare.code(), ErrorCode::kUnavailable) << bare.message();

  // The partial write corrupted nothing permanently: a clean rewrite
  // through the raw transport restores the full image.
  Client reliable = cluster.MakeClient();
  auto rfd = reliable.Open("f");
  ASSERT_TRUE(rfd.ok());
  ASSERT_TRUE(reliable.Write(*rfd, 0, data).ok());
  ASSERT_TRUE(reliable.Close(*rfd).ok());
  EXPECT_EQ(ReadWholeFile(reliable, "f"), data);
}

// ---- Disk-error injection ----------------------------------------------

// Transient media errors surfaced by the iods are kUnavailable, retryable,
// and invisible to a retrying client's results.
TEST(DiskFaults, TransientDiskErrorsAreRetriedToCompletion) {
  testutil::InProcCluster cluster;
  fault::FaultConfig config;
  config.seed = 3;
  config.disk_read_error_rate = 0.3;
  config.disk_write_error_rate = 0.3;
  fault::FaultInjector injector(config);
  for (auto& iod : cluster.iods) iod->set_fault_injector(&injector);

  Client client(cluster.transport.get(), ChaosClientOptions());
  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(kFileBytes);
  FillPattern(data, 17, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ByteBuffer out(kFileBytes);
  ASSERT_TRUE(client.Read(*fd, 0, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(client.Close(*fd).ok());

  const sim::FaultCounters counters = injector.counters();
  EXPECT_GT(counters.disk_read_errors + counters.disk_write_errors, 0u);
  std::uint64_t iod_injected = 0;
  for (auto& iod : cluster.iods) iod_injected += iod->stats().injected_errors;
  EXPECT_EQ(iod_injected,
            counters.disk_read_errors + counters.disk_write_errors);
  for (auto& iod : cluster.iods) iod->set_fault_injector(nullptr);
}

// ---- Determinism --------------------------------------------------------

struct ChaosRun {
  std::string events;
  sim::FaultCounters counters;
  ByteBuffer file;
};

ChaosRun RunChaosWorkload(std::uint64_t seed) {
  testutil::InProcCluster cluster;
  fault::FaultConfig config;
  config.seed = seed;
  config.drop_rate = 0.2;
  config.duplicate_rate = 0.1;
  config.delay_rate = 0.1;
  config.delay_min_us = 1;
  config.delay_max_us = 20;
  config.disk_write_error_rate = 0.05;
  config.crash_rate = 0.01;
  config.crash_down_calls = 2;
  fault::FaultInjector injector(config);
  for (auto& iod : cluster.iods) iod->set_fault_injector(&injector);
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client::Options options = ChaosClientOptions();
  options.retry.max_attempts = 25;  // ride out crash windows too
  Client client(&chaos, options);

  auto fd = client.Create("f", kStriping);
  EXPECT_TRUE(fd.ok());
  const auto patterns = WorkloadPatterns();
  auto method = io::MakeMethod(io::MethodType::kList);
  for (size_t r = 0; r < patterns.size(); ++r) {
    ByteBuffer payload(patterns[r].total_bytes());
    FillPattern(payload, r, 0);
    EXPECT_TRUE(method->Write(client, *fd, patterns[r], payload).ok());
  }
  EXPECT_TRUE(client.Close(*fd).ok());

  ChaosRun run;
  run.events = injector.SerializeEvents();
  run.counters = injector.counters();
  for (auto& iod : cluster.iods) iod->set_fault_injector(nullptr);
  Client reliable = cluster.MakeClient();
  run.file = ReadWholeFile(reliable, "f");
  return run;
}

// The acceptance bar: the same fault seed over the same workload produces
// an identical fault schedule (event for event), identical counters, and
// an identical resulting file, run to run.
TEST(FaultDeterminism, SameSeedReproducesScheduleAndBytes) {
  ChaosRun first = RunChaosWorkload(31);
  ChaosRun second = RunChaosWorkload(31);
  EXPECT_GT(first.counters.total(), 0u);
  EXPECT_EQ(first.events, second.events);
  EXPECT_TRUE(first.counters == second.counters);
  EXPECT_EQ(first.file, second.file);

  ChaosRun other = RunChaosWorkload(32);
  EXPECT_NE(first.events, other.events);  // seeds select distinct schedules
  EXPECT_EQ(first.file, other.file);      // but never distinct contents
}

// A default (all-zero) config injects nothing, consumes no randomness,
// and keeps every counter at zero — the benchmark configuration.
TEST(FaultDeterminism, ZeroConfigInjectsNothing) {
  fault::FaultInjector injector(fault::FaultConfig{});
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 1000; ++i) {
    fault::NetFault net = injector.OnNetExchange(i % 8);
    EXPECT_FALSE(net.drop);
    EXPECT_FALSE(net.duplicate);
    EXPECT_EQ(net.delay_us, 0u);
    EXPECT_FALSE(injector.OnDiskAccess(i % 8, i % 2 == 0));
    EXPECT_FALSE(injector.OnServe(i % 8));
    EXPECT_EQ(injector.OnSimLeg(i % 8, 1000, 1000000), 0);
  }
  EXPECT_EQ(injector.counters().total(), 0u);
  EXPECT_TRUE(injector.events().empty());
}

// ---- Socket transport: real crash-and-restart ---------------------------

// Against real TCP daemons: a stopped iod yields typed retryable errors
// (never a hang, thanks to per-request socket timeouts), and the same
// client completes once the daemon is back on its port.
TEST(SocketChaos, StoppedIodFailsTypedThenRecovers) {
  auto cluster = net::SocketCluster::Start(4);
  ASSERT_TRUE(cluster.ok());
  auto transport = (*cluster)->Connect(milliseconds{250});
  Client client(transport.get());

  auto fd = client.Create("f", Striping{0, 4, 16384});
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(4 * 16384);
  FillPattern(data, 3, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());

  ASSERT_TRUE((*cluster)->StopIod(1).ok());
  EXPECT_FALSE((*cluster)->IodRunning(1));
  Status status = client.Write(*fd, 0, data);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsRetryable(status.code())) << status.message();

  ASSERT_TRUE((*cluster)->RestartIod(1).ok());
  EXPECT_TRUE((*cluster)->IodRunning(1));
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ByteBuffer out(data.size());
  ASSERT_TRUE(client.Read(*fd, 0, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(client.Close(*fd).ok());
}

// A retrying client issued against a crashed daemon completes on its own
// once the daemon restarts mid-retry-loop — the full crash-recovery story
// with no client-visible failure.
TEST(SocketChaos, RetryingClientRidesOutRestart) {
  auto cluster = net::SocketCluster::Start(4);
  ASSERT_TRUE(cluster.ok());
  auto transport = (*cluster)->Connect(milliseconds{250});
  Client::Options options;
  options.retry.max_attempts = 40;
  options.retry.initial_backoff = microseconds{1000};
  options.retry.max_backoff = microseconds{20'000};
  Client client(transport.get(), options);

  auto fd = client.Create("f", Striping{0, 4, 16384});
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(4 * 16384);
  FillPattern(data, 9, 0);

  ASSERT_TRUE((*cluster)->StopIod(2).ok());
  std::jthread restarter([&cluster] {
    std::this_thread::sleep_for(milliseconds{50});
    ASSERT_TRUE((*cluster)->RestartIod(2).ok());
  });
  Status status = client.Write(*fd, 0, data);
  restarter.join();
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_GT(client.retry_counters().retries, 0u);
  ByteBuffer out(data.size());
  ASSERT_TRUE(client.Read(*fd, 0, out).ok());
  EXPECT_EQ(out, data);
}

// ---- Simulated cluster: lossy network -----------------------------------

simcluster::SimWorkload SmallSimWorkload() {
  workloads::CyclicConfig config;
  config.total_bytes = 1 * kMiB;
  config.clients = 4;
  config.accesses_per_client = 64;
  simcluster::SimWorkload workload;
  workload.file_regions = [config](Rank r) {
    return std::make_unique<simcluster::VectorStream>(
        workloads::CyclicPattern(config, r).file);
  };
  return workload;
}

// Virtual-time runs: injected loss slows the run, counters are populated,
// and the whole thing is bit-reproducible from the seed.
TEST(SimFaults, LossyNetworkIsSlowerAndDeterministic) {
  simcluster::SimClusterConfig clean = simcluster::ChibaCityConfig(4);
  simcluster::SimWorkload workload = SmallSimWorkload();
  auto baseline = simcluster::RunSimWorkload(clean, io::MethodType::kList,
                                             IoOp::kRead, workload);
  EXPECT_EQ(baseline.faults.total(), 0u);

  simcluster::SimClusterConfig lossy = clean;
  lossy.fault.seed = 17;
  lossy.fault.drop_rate = 0.10;
  lossy.fault.duplicate_rate = 0.05;
  lossy.fault.delay_rate = 0.10;
  auto first = simcluster::RunSimWorkload(lossy, io::MethodType::kList,
                                          IoOp::kRead, workload);
  auto second = simcluster::RunSimWorkload(lossy, io::MethodType::kList,
                                           IoOp::kRead, workload);
  EXPECT_GT(first.faults.total(), 0u);
  EXPECT_GT(first.faults.retransmits, 0u);
  EXPECT_TRUE(first.faults == second.faults);
  EXPECT_EQ(first.io_seconds, second.io_seconds);  // bit-identical virtual time
  EXPECT_GT(first.io_seconds, baseline.io_seconds);
}

// ---- Trace replay under faults ------------------------------------------

// The trace layer's chaos replay: same workload, fault-free vs injected,
// must produce identical file contents, and the replay result must expose
// the injected-fault and retry counters.
TEST(TraceFaults, ChaosReplayMatchesFaultFreeReplay) {
  trace::Trace trace = trace::CyclicTrace(128 * 1024, 4, 16, IoOp::kWrite);

  testutil::InProcCluster clean_cluster;
  trace::ReplayOptions clean_options;
  auto clean = trace::Replay(*clean_cluster.transport, trace, clean_options);
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  EXPECT_EQ(clean->faults.total(), 0u);
  EXPECT_EQ(clean->retries, 0u);

  testutil::InProcCluster chaos_cluster;
  fault::FaultConfig config;
  config.seed = 23;
  config.drop_rate = 0.15;
  config.duplicate_rate = 0.05;
  fault::FaultInjector injector(config);
  trace::ReplayOptions chaos_options;
  chaos_options.injector = &injector;
  chaos_options.retry.max_attempts = 12;
  chaos_options.retry.initial_backoff = microseconds{1};
  chaos_options.retry.max_backoff = microseconds{64};
  auto chaotic = trace::Replay(*chaos_cluster.transport, trace, chaos_options);
  ASSERT_TRUE(chaotic.ok()) << chaotic.status().message();
  EXPECT_GT(chaotic->faults.total(), 0u);
  EXPECT_GT(chaotic->retries, 0u);
  EXPECT_EQ(chaotic->bytes_written, clean->bytes_written);

  Client clean_reader = clean_cluster.MakeClient();
  Client chaos_reader = chaos_cluster.MakeClient();
  auto cfd = clean_reader.Open(clean_options.file_name);
  auto xfd = chaos_reader.Open(chaos_options.file_name);
  ASSERT_TRUE(cfd.ok());
  ASSERT_TRUE(xfd.ok());
  auto cmeta = clean_reader.Stat(*cfd);
  auto xmeta = chaos_reader.Stat(*xfd);
  ASSERT_TRUE(cmeta.ok());
  ASSERT_TRUE(xmeta.ok());
  EXPECT_EQ(cmeta->size, xmeta->size);
  ByteBuffer clean_bytes(cmeta->size);
  ByteBuffer chaos_bytes(xmeta->size);
  ASSERT_TRUE(clean_reader.Read(*cfd, 0, clean_bytes).ok());
  ASSERT_TRUE(chaos_reader.Read(*xfd, 0, chaos_bytes).ok());
  EXPECT_EQ(clean_bytes, chaos_bytes);
}

}  // namespace
}  // namespace pvfs
