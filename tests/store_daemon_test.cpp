// LocalStore, Manager and IoDaemon unit tests.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "pvfs/store.hpp"

namespace pvfs {
namespace {

// ---- LocalStore -------------------------------------------------------------

TEST(LocalStore, ReadBackWritten) {
  LocalStore store;
  ByteBuffer data(1000);
  FillPattern(data, 1, 0);
  store.Write(5, 123, data);
  ByteBuffer out(1000);
  EXPECT_TRUE(store.Read(5, 123, out).ok());
  EXPECT_EQ(out, data);
}

TEST(LocalStore, UnwrittenReadsZero) {
  LocalStore store;
  ByteBuffer out(64, std::byte{0xFF});
  EXPECT_TRUE(store.Read(99, 1 << 20, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(LocalStore, HolesReadZeroBetweenWrites) {
  LocalStore store;
  ByteBuffer a(10, std::byte{1});
  store.Write(1, 0, a);
  store.Write(1, 1000000, a);  // different chunk
  ByteBuffer out(20);
  EXPECT_TRUE(store.Read(1, 500000, out).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(LocalStore, WriteSpanningChunks) {
  LocalStore store;
  ByteBuffer data(3 * LocalStore::kChunkBytes);
  FillPattern(data, 2, 0);
  FileOffset at = LocalStore::kChunkBytes / 2;
  store.Write(7, at, data);
  ByteBuffer out(data.size());
  EXPECT_TRUE(store.Read(7, at, out).ok());
  EXPECT_EQ(out, data);
}

TEST(LocalStore, SizeIsHighWaterMark) {
  LocalStore store;
  ByteBuffer data(100);
  store.Write(1, 500, data);
  EXPECT_EQ(store.SizeOf(1), 600u);
  store.Write(1, 0, data);
  EXPECT_EQ(store.SizeOf(1), 600u);  // unchanged
  EXPECT_EQ(store.SizeOf(2), 0u);
}

TEST(LocalStore, RemoveFreesAndIsIdempotent) {
  LocalStore store;
  ByteBuffer data(LocalStore::kChunkBytes);
  store.Write(1, 0, data);
  EXPECT_GT(store.AllocatedBytes(), 0u);
  store.Remove(1);
  EXPECT_EQ(store.AllocatedBytes(), 0u);
  EXPECT_FALSE(store.Contains(1));
  store.Remove(1);  // no-op
}

TEST(LocalStore, OverwriteUpdatesInPlace) {
  LocalStore store;
  ByteBuffer first(100, std::byte{1});
  ByteBuffer second(50, std::byte{2});
  store.Write(1, 0, first);
  store.Write(1, 25, second);
  ByteBuffer out(100);
  EXPECT_TRUE(store.Read(1, 0, out).ok());
  EXPECT_EQ(out[24], std::byte{1});
  EXPECT_EQ(out[25], std::byte{2});
  EXPECT_EQ(out[74], std::byte{2});
  EXPECT_EQ(out[75], std::byte{1});
}

// ---- LocalStore integrity: checksums, journal, recovery, scrub --------------

TEST(LocalStoreIntegrity, RotIsDetectedAsCorruption) {
  LocalStore store;
  ByteBuffer data(1000);
  FillPattern(data, 3, 0);
  store.Write(1, 0, data);
  // Age the write out of the journal so it cannot be auto-repaired.
  ByteBuffer filler(LocalStore::kChunkBytes);
  for (int i = 0; i < 20; ++i) store.Write(2, 0, filler);

  ASSERT_TRUE(store.CorruptStoredBit(0));
  // Selector 0 rots the first chunk of the lowest handle: our data.
  ByteBuffer out(1000);
  Status read = store.Read(1, 0, out);
  EXPECT_EQ(read.code(), ErrorCode::kCorruption);
  EXPECT_GE(store.integrity().read_corruptions, 1u);
}

TEST(LocalStoreIntegrity, RotWithinJournalWindowIsRepairedOnRead) {
  LocalStore store;
  ByteBuffer data(1000);
  FillPattern(data, 4, 0);
  store.Write(1, 0, data);
  ASSERT_TRUE(store.CorruptStoredBit(0));
  ByteBuffer out(1000);
  ASSERT_TRUE(store.Read(1, 0, out).ok());  // healed from the journal
  EXPECT_EQ(out, data);
  EXPECT_EQ(store.integrity().read_repairs, 1u);
}

TEST(LocalStoreIntegrity, ScrubDetectsAndRepairs) {
  LocalStore store;
  ByteBuffer data(100);
  FillPattern(data, 5, 0);
  store.Write(1, 0, data);
  auto clean = store.Scrub();
  EXPECT_EQ(clean.chunks_scanned, 1u);
  EXPECT_EQ(clean.corrupt_chunks, 0u);

  ASSERT_TRUE(store.CorruptStoredBit(7));
  auto dirty = store.Scrub();
  EXPECT_EQ(dirty.corrupt_chunks, 1u);
  EXPECT_EQ(dirty.repaired_chunks, 1u);
  ByteBuffer out(100);
  ASSERT_TRUE(store.Read(1, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(LocalStoreIntegrity, TornDataWriteReplaysOnRecovery) {
  LocalStore store;
  ByteBuffer a(300), b(300);
  FillPattern(a, 6, 0);
  FillPattern(b, 7, 0);
  LocalStore::WritePiece pieces[] = {{0, a}, {1000, b}};
  // Crash after only 100 of 600 bytes reached the chunks.
  store.WriteVTorn(1, pieces, 100, /*torn_journal=*/false);
  ASSERT_TRUE(store.NeedsRecovery());

  auto rec = store.Recover();
  EXPECT_EQ(rec.replayed, 1u);
  EXPECT_EQ(rec.rolled_back, 0u);
  ByteBuffer out_a(300), out_b(300);
  ASSERT_TRUE(store.Read(1, 0, out_a).ok());
  ASSERT_TRUE(store.Read(1, 1000, out_b).ok());
  EXPECT_EQ(out_a, a);  // the whole intent landed
  EXPECT_EQ(out_b, b);
  EXPECT_FALSE(store.NeedsRecovery());
}

TEST(LocalStoreIntegrity, TornJournalWriteRollsBack) {
  LocalStore store;
  ByteBuffer before(200, std::byte{0xAB});
  store.Write(1, 0, before);
  ByteBuffer update(200, std::byte{0xCD});
  LocalStore::WritePiece pieces[] = {{0, update}};
  // Crash during the journal append itself: no chunk touched.
  store.WriteVTorn(1, pieces, 0, /*torn_journal=*/true);
  ASSERT_TRUE(store.NeedsRecovery());

  auto rec = store.Recover();
  EXPECT_EQ(rec.replayed, 0u);
  EXPECT_EQ(rec.rolled_back, 1u);
  ByteBuffer out(200);
  ASSERT_TRUE(store.Read(1, 0, out).ok());
  EXPECT_EQ(out, before);  // consistent pre-write state
}

TEST(LocalStoreIntegrity, MultiPieceWriteVIsOneIntent) {
  LocalStore store;
  ByteBuffer a(100, std::byte{1}), b(100, std::byte{2});
  LocalStore::WritePiece pieces[] = {{0, a}, {LocalStore::kChunkBytes, b}};
  store.WriteV(1, pieces);
  ByteBuffer out(100);
  ASSERT_TRUE(store.Read(1, LocalStore::kChunkBytes, out).ok());
  EXPECT_EQ(out, b);
  EXPECT_FALSE(store.NeedsRecovery());
}

// ---- Manager ----------------------------------------------------------------

TEST(Manager, CreateAssignsDistinctHandles) {
  Manager mgr(8);
  auto a = mgr.Create("a", Striping{0, 8, 16384});
  auto b = mgr.Create("b", Striping{0, 8, 16384});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->handle, b->handle);
  EXPECT_EQ(mgr.file_count(), 2u);
}

TEST(Manager, CreateValidatesStriping) {
  Manager mgr(8);
  EXPECT_EQ(mgr.Create("a", Striping{0, 0, 16384}).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(mgr.Create("a", Striping{0, 9, 16384}).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(mgr.Create("a", Striping{8, 8, 16384}).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(mgr.Create("a", Striping{0, 8, 0}).status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(mgr.Create("", Striping{0, 8, 16384}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(Manager, DuplicateCreateFails) {
  Manager mgr(8);
  ASSERT_TRUE(mgr.Create("f", Striping{0, 8, 16384}).ok());
  EXPECT_EQ(mgr.Create("f", Striping{0, 8, 16384}).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST(Manager, LookupAndStat) {
  Manager mgr(8);
  auto meta = mgr.Create("f", Striping{1, 4, 8192});
  ASSERT_TRUE(meta.ok());
  auto by_name = mgr.Lookup("f");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->handle, meta->handle);
  EXPECT_EQ(by_name->striping, (Striping{1, 4, 8192}));
  auto by_handle = mgr.Stat(meta->handle);
  ASSERT_TRUE(by_handle.ok());
  EXPECT_EQ(by_handle->handle, meta->handle);
  EXPECT_FALSE(mgr.Lookup("nope").ok());
  EXPECT_FALSE(mgr.Stat(999).ok());
}

TEST(Manager, SetSizeIsMaxMerge) {
  Manager mgr(8);
  auto meta = mgr.Create("f", Striping{0, 8, 16384});
  ASSERT_TRUE(mgr.SetSize(meta->handle, 1000).ok());
  ASSERT_TRUE(mgr.SetSize(meta->handle, 500).ok());  // smaller: ignored
  EXPECT_EQ(mgr.Stat(meta->handle)->size, 1000u);
  EXPECT_FALSE(mgr.SetSize(12345, 1).ok());
}

TEST(Manager, RemoveDropsBothIndexes) {
  Manager mgr(8);
  auto meta = mgr.Create("f", Striping{0, 8, 16384});
  ASSERT_TRUE(mgr.Remove("f").ok());
  EXPECT_FALSE(mgr.Lookup("f").ok());
  EXPECT_FALSE(mgr.Stat(meta->handle).ok());
  EXPECT_FALSE(mgr.Remove("f").ok());
}

TEST(Manager, HandleMessageDispatch) {
  Manager mgr(8);
  auto env = mgr.HandleMessage(CreateRequest{"f", Striping{0, 8, 16384}}.Encode());
  auto resp = DecodeResponse(env);
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp->status.ok());
  auto meta = MetadataResponse::Decode(resp->body);
  ASSERT_TRUE(meta.ok());
  EXPECT_GT(meta->meta.handle, 0u);

  // Errors travel in the envelope, not as transport failures.
  auto env2 = mgr.HandleMessage(LookupRequest{"missing"}.Encode());
  auto resp2 = DecodeResponse(env2);
  ASSERT_TRUE(resp2.ok());
  EXPECT_EQ(resp2->status.code(), ErrorCode::kNotFound);
}

TEST(Manager, HandleMessageRejectsIoTraffic) {
  Manager mgr(8);
  IoRequest io;
  io.striping = Striping{0, 8, 16384};
  auto resp = DecodeResponse(mgr.HandleMessage(io.Encode()));
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->status.ok());
}

// ---- IoDaemon ----------------------------------------------------------------

IoRequest MakeIo(IoOp op, ExtentList regions, ServerId server_index = 0,
                 Striping striping = Striping{0, 8, 16384}) {
  IoRequest req;
  req.handle = 1;
  req.striping = striping;
  req.server_index = server_index;
  req.op = op;
  req.regions = std::move(regions);
  return req;
}

TEST(IoDaemon, WriteThenReadOwnFragments) {
  IoDaemon iod(0);
  // Region [0, 100) lives wholly on relative server 0.
  IoRequest write = MakeIo(IoOp::kWrite, {{0, 100}});
  write.payload.resize(100);
  FillPattern(write.payload, 1, 0);
  auto wr = iod.Serve(write);
  ASSERT_TRUE(wr.ok());
  EXPECT_EQ(wr->bytes, 100u);

  auto rd = iod.Serve(MakeIo(IoOp::kRead, {{0, 100}}));
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd->payload, write.payload);
}

TEST(IoDaemon, ServesOnlyItsServerIndexShare) {
  IoDaemon iod(0);
  // [0, 32768) spans relative servers 0 and 1; server 0's share is 16384.
  auto rd = iod.Serve(MakeIo(IoOp::kRead, {{0, 32768}}, 0));
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd->bytes, 16384u);
  auto rd1 = iod.Serve(MakeIo(IoOp::kRead, {{0, 32768}}, 1));
  ASSERT_TRUE(rd1.ok());
  EXPECT_EQ(rd1->bytes, 16384u);
}

TEST(IoDaemon, RegionLimitEnforced) {
  IoDaemon iod(0, 4);
  ExtentList regions(5, Extent{0, 1});
  auto resp = iod.Serve(MakeIo(IoOp::kRead, regions));
  EXPECT_EQ(resp.status().code(), ErrorCode::kResourceExhausted);
}

TEST(IoDaemon, WritePayloadSizeMismatchRejected) {
  IoDaemon iod(0);
  IoRequest write = MakeIo(IoOp::kWrite, {{0, 100}});
  write.payload.resize(99);
  EXPECT_EQ(iod.Serve(write).status().code(), ErrorCode::kInvalidArgument);
}

TEST(IoDaemon, CountsCoalescedLocalRuns) {
  IoDaemon iod(0);
  // Two logically distant regions that are locally adjacent on server 0:
  // [0,16384) is stripe 0 (local 0..16384); [131072,+16384) is stripe 8
  // (local 16384..32768) -> one coalesced run.
  auto resp =
      iod.Serve(MakeIo(IoOp::kRead, {{0, 16384}, {8 * 16384, 16384}}));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(iod.stats().local_accesses, 1u);
  EXPECT_EQ(iod.stats().regions, 2u);
}

TEST(IoDaemon, HandleMessageRemoveData) {
  IoDaemon iod(0);
  IoRequest write = MakeIo(IoOp::kWrite, {{0, 10}});
  write.payload.resize(10, std::byte{1});
  ASSERT_TRUE(iod.Serve(write).ok());
  EXPECT_TRUE(iod.store().Contains(1));
  auto env = iod.HandleMessage(RemoveDataRequest{1}.Encode());
  EXPECT_TRUE(DecodeResponse(env)->status.ok());
  EXPECT_FALSE(iod.store().Contains(1));
}

TEST(IoDaemon, ReadOfUnwrittenDataIsZeros) {
  IoDaemon iod(0);
  auto rd = iod.Serve(MakeIo(IoOp::kRead, {{100, 50}}));
  ASSERT_TRUE(rd.ok());
  for (std::byte b : rd->payload) EXPECT_EQ(b, std::byte{0});
}

}  // namespace
}  // namespace pvfs
