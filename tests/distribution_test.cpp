#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "pvfs/distribution.hpp"
#include "pvfs/manager.hpp"
#include "pvfs/protocol.hpp"

namespace pvfs {
namespace {

Distribution Dist8() { return Distribution(Striping{0, 8, 16384}); }

TEST(Distribution, StripeRoundRobin) {
  Distribution dist = Dist8();
  EXPECT_EQ(dist.ServerOf(0), 0u);
  EXPECT_EQ(dist.ServerOf(16383), 0u);
  EXPECT_EQ(dist.ServerOf(16384), 1u);
  EXPECT_EQ(dist.ServerOf(7 * 16384), 7u);
  EXPECT_EQ(dist.ServerOf(8 * 16384), 0u);  // wraps
}

TEST(Distribution, LocalOffsetsPackDensely) {
  Distribution dist = Dist8();
  // Server 0 holds stripes 0, 8, 16, ... at local offsets 0, 16K, 32K.
  EXPECT_EQ(dist.LocalOffsetOf(0), 0u);
  EXPECT_EQ(dist.LocalOffsetOf(100), 100u);
  EXPECT_EQ(dist.LocalOffsetOf(8 * 16384), 16384u);
  EXPECT_EQ(dist.LocalOffsetOf(8 * 16384 + 5), 16389u);
  EXPECT_EQ(dist.LocalOffsetOf(16 * 16384), 2 * 16384u);
}

TEST(Distribution, LogicalOffsetInvertsLocal) {
  Distribution dist = Dist8();
  SplitMix64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    FileOffset logical = rng.Uniform(0, 1ull << 40);
    ServerId s = dist.ServerOf(logical);
    FileOffset local = dist.LocalOffsetOf(logical);
    EXPECT_EQ(dist.LogicalOffsetOf(s, local), logical);
  }
}

TEST(Distribution, RoundTripWithOddParams) {
  // Non-power-of-two pcount and stripe size.
  Distribution dist(Striping{0, 5, 1000});
  SplitMix64 rng(22);
  for (int i = 0; i < 2000; ++i) {
    FileOffset logical = rng.Uniform(0, 1ull << 30);
    EXPECT_EQ(dist.LogicalOffsetOf(dist.ServerOf(logical),
                                   dist.LocalOffsetOf(logical)),
              logical);
  }
}

TEST(Distribution, FragmentsSplitAtStripeBoundaries) {
  Distribution dist = Dist8();
  // [16000, 17000) crosses the stripe-0/stripe-1 boundary at 16384.
  auto frags = dist.Fragments(ExtentList{{16000, 1000}});
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[0].server, 0u);
  EXPECT_EQ(frags[0].local_offset, 16000u);
  EXPECT_EQ(frags[0].length, 384u);
  EXPECT_EQ(frags[0].logical_pos, 0u);
  EXPECT_EQ(frags[1].server, 1u);
  EXPECT_EQ(frags[1].local_offset, 0u);
  EXPECT_EQ(frags[1].length, 616u);
  EXPECT_EQ(frags[1].logical_pos, 384u);
}

TEST(Distribution, FragmentsCoverExactBytes) {
  Distribution dist(Striping{0, 3, 4096});
  ExtentList regions{{100, 10000}, {50000, 12345}, {1 << 20, 1}};
  auto frags = dist.Fragments(regions);
  ByteCount total = 0;
  ByteCount expected_stream = 0;
  size_t idx = 0;
  for (const Extent& e : regions) expected_stream += e.length;
  for (const Fragment& f : frags) {
    total += f.length;
    if (idx > 0) {
      EXPECT_GE(f.logical_pos, frags[idx - 1].logical_pos);
    }
    ++idx;
  }
  EXPECT_EQ(total, expected_stream);
}

TEST(Distribution, ContiguousRangeIsOneLocalRunPerServer) {
  // The key PVFS layout property: a logically contiguous range coalesces
  // to exactly one contiguous local run on every involved server.
  Distribution dist = Dist8();
  ExtentList whole{{0, 64 * 16384}};  // 8 full cycles
  for (ServerId s = 0; s < 8; ++s) {
    auto runs = dist.ServerLocalRuns(s, whole);
    ASSERT_EQ(runs.size(), 1u) << "server " << s;
    EXPECT_EQ(runs[0].local_offset, 0u);
    EXPECT_EQ(runs[0].length, 8 * 16384u);
  }
}

TEST(Distribution, ContiguousRangeWithPartialEdges) {
  Distribution dist = Dist8();
  ExtentList range{{5000, 40 * 16384}};
  ByteCount total = 0;
  for (ServerId s = 0; s < 8; ++s) {
    auto runs = dist.ServerLocalRuns(s, range);
    ASSERT_EQ(runs.size(), 1u) << "server " << s;
    total += runs[0].length;
  }
  EXPECT_EQ(total, 40 * 16384u);
}

TEST(Distribution, InvolvedServersSmallRegion) {
  Distribution dist = Dist8();
  EXPECT_EQ(dist.InvolvedServers(ExtentList{{0, 100}}),
            (std::vector<ServerId>{0}));
  EXPECT_EQ(dist.InvolvedServers(ExtentList{{16380, 10}}),
            (std::vector<ServerId>{0, 1}));
}

TEST(Distribution, InvolvedServersWideRegionIsAll) {
  Distribution dist = Dist8();
  auto all = dist.InvolvedServers(ExtentList{{12345, 9 * 16384}});
  EXPECT_EQ(all.size(), 8u);
}

TEST(Distribution, InvolvedServersIgnoresEmptyRegions) {
  Distribution dist = Dist8();
  EXPECT_TRUE(dist.InvolvedServers(ExtentList{{100, 0}}).empty());
}

TEST(Distribution, BytesOnServerSumsToTotal) {
  Distribution dist(Striping{0, 4, 8192});
  ExtentList regions{{0, 100000}, {500000, 77777}};
  ByteCount sum = 0;
  for (ServerId s = 0; s < 4; ++s) {
    sum += dist.BytesOnServer(s, regions);
  }
  EXPECT_EQ(sum, TotalBytes(regions));
}

TEST(Distribution, SingleServerStriping) {
  Distribution dist(Striping{0, 1, 16384});
  EXPECT_EQ(dist.ServerOf(123456789), 0u);
  EXPECT_EQ(dist.LocalOffsetOf(123456789), 123456789u);
  auto runs = dist.ServerLocalRuns(0, ExtentList{{0, 1 << 20}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].length, 1u << 20);
}

TEST(Distribution, ServerLocalRunsPreserveListOrder) {
  Distribution dist = Dist8();
  // Two regions both on server 0 but NOT adjacent locally: no coalescing.
  ExtentList regions{{0, 100}, {8 * 16384, 100}};
  auto runs = dist.ServerLocalRuns(0, regions);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].local_offset, 0u);
  EXPECT_EQ(runs[1].local_offset, 16384u);
}

TEST(Distribution, AdjacentLocalRunsCoalesce) {
  Distribution dist = Dist8();
  // [0,100) and [100,200) on server 0 are locally adjacent.
  ExtentList regions{{0, 100}, {100, 100}};
  auto runs = dist.ServerLocalRuns(0, regions);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].length, 200u);
}

// ---- Replica placement ------------------------------------------------------

TEST(Placement, DefaultIsSingleReplica) {
  Distribution dist = Dist8();
  EXPECT_EQ(dist.replication().replicas, 1u);
  EXPECT_EQ(dist.EffectiveReplicas(), 1u);
  EXPECT_EQ(dist.ReplicaSet(3), (std::vector<ServerId>{3}));
}

TEST(Placement, RotationSetsAreDistinctServers) {
  Distribution dist({Striping{0, 8, 16384}, ReplicationConfig{3}});
  for (ServerId p = 0; p < 8; ++p) {
    std::vector<ServerId> set = dist.ReplicaSet(p);
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[0], p);  // primary leads its own set
    std::set<ServerId> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), set.size()) << "primary " << p;
  }
}

TEST(Placement, ReplicasClampToServerCount) {
  // Asking for more copies than daemons degrades to one copy per daemon
  // instead of placing two replicas on the same disk.
  Distribution dist({Striping{0, 3, 16384}, ReplicationConfig{5}});
  EXPECT_EQ(dist.EffectiveReplicas(), 3u);
  EXPECT_EQ(dist.ReplicaSet(1), (std::vector<ServerId>{1, 2, 0}));
}

TEST(Placement, NonDivisibleServerCount) {
  // pcount=5, replicas=2: rotation wraps cleanly with no server doubled
  // inside a set even though 5 % 2 != 0.
  Distribution dist({Striping{0, 5, 4096}, ReplicationConfig{2}});
  EXPECT_EQ(dist.ReplicaSet(4), (std::vector<ServerId>{4, 0}));
  for (ServerId p = 0; p < 5; ++p) {
    auto set = dist.ReplicaSet(p);
    EXPECT_NE(set[0], set[1]);
  }
}

TEST(Placement, LoadIsBalancedAcrossServers) {
  // Every server appears exactly R times across the pcount replica sets:
  // once as primary, R-1 times as a secondary. No daemon becomes a
  // replication hotspot.
  for (std::uint32_t pcount : {2u, 3u, 5u, 8u, 13u}) {
    for (std::uint32_t replicas = 1; replicas <= pcount; ++replicas) {
      Distribution dist({Striping{0, pcount, 16384},
                         ReplicationConfig{replicas}});
      std::map<ServerId, int> appearances;
      for (ServerId p = 0; p < pcount; ++p) {
        for (ServerId s : dist.ReplicaSet(p)) ++appearances[s];
      }
      for (ServerId s = 0; s < pcount; ++s) {
        EXPECT_EQ(appearances[s], static_cast<int>(replicas))
            << "pcount " << pcount << " replicas " << replicas << " server "
            << s;
      }
    }
  }
}

TEST(Placement, PrimaryForInvertsReplicaOf) {
  Distribution dist({Striping{0, 7, 4096}, ReplicationConfig{3}});
  for (ServerId p = 0; p < 7; ++p) {
    for (std::uint32_t k = 0; k < 3; ++k) {
      EXPECT_EQ(dist.PrimaryFor(dist.ReplicaOf(p, k), k), p);
    }
  }
}

TEST(Placement, StableAcrossIdenticalConfigs) {
  // Placement is a pure function of (striping, replication): two
  // Distribution objects built from equal configs agree everywhere, so a
  // restarted client reaches the same replicas as the one that wrote.
  Striping striping{2, 6, 65536};
  ReplicationConfig replication{3};
  Distribution a({striping, replication});
  Distribution b({striping, replication});
  for (ServerId p = 0; p < 6; ++p) {
    EXPECT_EQ(a.ReplicaSet(p), b.ReplicaSet(p));
  }
}

TEST(Placement, ReplicaHandlesAreDistinctAndRecoverable) {
  SplitMix64 rng(33);
  for (int i = 0; i < 2000; ++i) {
    FileHandle h = rng.Next() & ((1ull << 56) - 1);  // manager handle space
    std::set<FileHandle> seen;
    for (std::uint32_t k = 0; k < 8; ++k) {
      FileHandle derived = ReplicaHandle(h, k);
      EXPECT_TRUE(seen.insert(derived).second);
      // XOR is its own inverse: the ordinal recovers the base handle.
      EXPECT_EQ(ReplicaHandle(derived, k), h);
    }
  }
}

TEST(Placement, FuzzManyConfigs) {
  // Thousands of random (pcount, replicas, base) configs: every set has
  // the right size, distinct members, all in range, primary first, and
  // PrimaryFor inverts membership.
  SplitMix64 rng(44);
  for (int i = 0; i < 4000; ++i) {
    const std::uint32_t pcount =
        static_cast<std::uint32_t>(rng.Uniform(1, 64));
    const std::uint32_t replicas =
        static_cast<std::uint32_t>(rng.Uniform(1, 9));
    const ServerId base = static_cast<ServerId>(rng.Uniform(0, 256));
    Distribution dist({Striping{base, pcount, 4096},
                       ReplicationConfig{replicas}});
    const std::uint32_t effective = dist.EffectiveReplicas();
    ASSERT_EQ(effective, std::min(replicas, pcount));
    const ServerId p = static_cast<ServerId>(rng.Uniform(0, pcount - 1));
    std::vector<ServerId> set = dist.ReplicaSet(p);
    ASSERT_EQ(set.size(), effective);
    ASSERT_EQ(set[0], p);
    std::set<ServerId> unique;
    for (std::uint32_t k = 0; k < effective; ++k) {
      ASSERT_LT(set[k], pcount);
      ASSERT_TRUE(unique.insert(set[k]).second);
      ASSERT_EQ(dist.PrimaryFor(set[k], k), p);
    }
  }
}

TEST(Placement, ZeroReplicasRejectedOnTheWire) {
  // The config struct cannot stop replicas=0 at compile time; the wire
  // decoder does (see protocol_test for the round trips).
  ReplicationConfig zero{0};
  WireWriter writer;
  EncodeReplication(writer, zero);
  std::vector<std::byte> buf = writer.Take();
  WireReader reader(buf);
  auto decoded = DecodeReplication(reader);
  EXPECT_FALSE(decoded.ok());
}

// ---- Pluggable layouts: per-byte oracle property suite --------------------
//
// Every layout must satisfy the same oracles the simple stripe always has:
//   1. LogicalOffsetOf(ServerOf(x), LocalOffsetOf(x)) == x for every byte
//   2. unit ranks are a dense bijection (rank sequences per server are
//      0,1,2,... with no holes; UnitOf inverts the forward map)
//   3. Fragments partitions the walked byte stream exactly
//   4. ServerLocalRuns equals an independent sort+merge of ServerFragments
//   5. InvolvedServers equals the brute-force server set
//   6. a contiguous logical range coalesces to one local run per server

struct LayoutCase {
  const char* name;
  CreateOptions options;
};

std::vector<LayoutCase> OracleLayouts() {
  return {
      {"simple-8", {Striping{0, 8, 16384}}},
      {"simple-odd", {Striping{0, 5, 1000}}},
      {"twod-2x4", {Striping{0, 8, 16384}, DistributionSpec::TwoD(2, 4)}},
      {"twod-4x2", {Striping{0, 8, 16384}, DistributionSpec::TwoD(4, 2)}},
      {"twod-odd", {Striping{0, 6, 1000}, DistributionSpec::TwoD(3, 5)}},
      {"block-64k", {Striping{0, 8, 16384}, DistributionSpec::Block(65536)}},
      {"block-odd", {Striping{0, 5, 4096}, DistributionSpec::Block(12345)}},
      {"gcyclic-8", {Striping{0, 8, 16384}, DistributionSpec::GroupCyclic(8)}},
      {"gcyclic-odd", {Striping{0, 5, 1000}, DistributionSpec::GroupCyclic(7)}},
  };
}

TEST(DistLayouts, SpecsAreValid) {
  for (const LayoutCase& c : OracleLayouts()) {
    EXPECT_TRUE(
        ValidateDistributionSpec(c.options.striping, c.options.dist).ok())
        << c.name;
  }
}

TEST(DistLayouts, PerByteRoundTrip) {
  for (const LayoutCase& c : OracleLayouts()) {
    Distribution dist(c.options);
    SplitMix64 rng(55);
    for (int i = 0; i < 3000; ++i) {
      FileOffset logical = rng.Uniform(0, 1ull << 40);
      ServerId s = dist.ServerOf(logical);
      ASSERT_LT(s, c.options.striping.pcount) << c.name;
      EXPECT_EQ(dist.LogicalOffsetOf(s, dist.LocalOffsetOf(logical)), logical)
          << c.name << " offset " << logical;
    }
  }
}

TEST(DistLayouts, UnitRanksAreDenseBijection) {
  for (const LayoutCase& c : OracleLayouts()) {
    Distribution dist(c.options);
    const std::uint64_t units = 4 * dist.CycleUnits() + 3;
    std::vector<std::uint64_t> next_rank(c.options.striping.pcount, 0);
    for (std::uint64_t g = 0; g < units; ++g) {
      ServerId s = dist.ServerOfUnit(g);
      std::uint64_t l = dist.LocalUnitOf(g);
      // Dense: server s's units appear in logical order with ranks
      // 0,1,2,... — no holes, no repeats.
      EXPECT_EQ(l, next_rank[s]) << c.name << " unit " << g;
      next_rank[s] = l + 1;
      // Bijective: the inverse map recovers the logical unit.
      EXPECT_EQ(dist.UnitOf(s, l), g) << c.name << " unit " << g;
    }
  }
}

TEST(DistLayouts, FragmentsPartitionTheByteStream) {
  for (const LayoutCase& c : OracleLayouts()) {
    Distribution dist(c.options);
    SplitMix64 rng(66);
    for (int round = 0; round < 20; ++round) {
      ExtentList regions;
      FileOffset cursor = rng.Uniform(0, 1 << 20);
      const int n = 1 + static_cast<int>(rng.Uniform(0, 8));
      for (int i = 0; i < n; ++i) {
        ByteCount len = 1 + rng.Uniform(0, 3 * dist.unit());
        regions.push_back(Extent{cursor, len});
        cursor += len + rng.Uniform(0, 2 * dist.unit());
      }
      auto frags = dist.Fragments(regions);
      // Stream positions tile [0, total) exactly, in order.
      ByteCount stream = 0;
      size_t fi = 0;
      for (const Extent& e : regions) {
        FileOffset pos = e.offset;
        ByteCount remaining = e.length;
        while (remaining > 0) {
          ASSERT_LT(fi, frags.size()) << c.name;
          const Fragment& f = frags[fi++];
          EXPECT_EQ(f.logical_pos, stream) << c.name;
          // Each fragment agrees with the per-byte maps at its first byte
          // and stays inside one unit.
          EXPECT_EQ(f.server, dist.ServerOf(pos)) << c.name;
          EXPECT_EQ(f.local_offset, dist.LocalOffsetOf(pos)) << c.name;
          EXPECT_LE(f.length, dist.unit() - pos % dist.unit()) << c.name;
          EXPECT_GT(f.length, 0u) << c.name;
          stream += f.length;
          pos += f.length;
          remaining -= f.length;
        }
      }
      EXPECT_EQ(fi, frags.size()) << c.name;
      EXPECT_EQ(stream, TotalBytes(regions)) << c.name;
    }
  }
}

// Independent oracle for ServerLocalRuns: sort fragments by local offset,
// merge touching/overlapping ones.
std::vector<Extent> SortMergeLocal(std::vector<Fragment> frags) {
  std::stable_sort(frags.begin(), frags.end(),
                   [](const Fragment& a, const Fragment& b) {
                     return a.local_offset < b.local_offset;
                   });
  std::vector<Extent> merged;
  for (const Fragment& f : frags) {
    if (!merged.empty() &&
        f.local_offset <= merged.back().offset + merged.back().length) {
      ByteCount end = std::max(merged.back().offset + merged.back().length,
                               f.local_offset + f.length);
      merged.back().length = end - merged.back().offset;
    } else {
      merged.push_back(Extent{f.local_offset, f.length});
    }
  }
  return merged;
}

TEST(DistLayouts, ServerLocalRunsEqualSortMergeOfServerFragments) {
  for (const LayoutCase& c : OracleLayouts()) {
    Distribution dist(c.options);
    SplitMix64 rng(77);
    for (int round = 0; round < 10; ++round) {
      ExtentList regions;
      FileOffset cursor = rng.Uniform(0, 1 << 18);
      for (int i = 0; i < 6; ++i) {
        ByteCount len = 1 + rng.Uniform(0, 4 * dist.unit());
        regions.push_back(Extent{cursor, len});
        cursor += len + rng.Uniform(0, dist.unit());
      }
      for (ServerId s = 0; s < c.options.striping.pcount; ++s) {
        auto runs = dist.ServerLocalRuns(s, regions);
        auto oracle = SortMergeLocal(dist.ServerFragments(s, regions));
        ASSERT_EQ(runs.size(), oracle.size()) << c.name << " server " << s;
        for (size_t i = 0; i < runs.size(); ++i) {
          EXPECT_EQ(runs[i].local_offset, oracle[i].offset)
              << c.name << " server " << s;
          EXPECT_EQ(runs[i].length, oracle[i].length)
              << c.name << " server " << s;
        }
      }
    }
  }
}

TEST(DistLayouts, InvolvedServersMatchesBruteForce) {
  for (const LayoutCase& c : OracleLayouts()) {
    Distribution dist(c.options);
    SplitMix64 rng(88);
    for (int round = 0; round < 40; ++round) {
      ExtentList regions;
      FileOffset cursor = rng.Uniform(0, 1 << 20);
      const int n = 1 + static_cast<int>(rng.Uniform(0, 3));
      for (int i = 0; i < n; ++i) {
        // Lengths around the pcount..cycle unit range deliberately probe
        // the all-servers fast path (a pcount-unit window does NOT touch
        // every server under the grouped layouts).
        ByteCount len =
            1 + rng.Uniform(0, 2 * dist.CycleUnits() * dist.unit());
        regions.push_back(Extent{cursor, len});
        cursor += len + rng.Uniform(0, dist.unit());
      }
      std::set<ServerId> brute;
      for (const Fragment& f : dist.Fragments(regions)) brute.insert(f.server);
      std::vector<ServerId> expect(brute.begin(), brute.end());
      EXPECT_EQ(dist.InvolvedServers(regions), expect) << c.name;
    }
  }
}

TEST(DistLayouts, ContiguousRangeIsOneLocalRunPerServerEveryLayout) {
  // The coalescing property, layout by layout: dense unit ranks mean any
  // contiguous logical range maps to at most one contiguous local run per
  // server — even across placement-cycle and block-wrap boundaries.
  for (const LayoutCase& c : OracleLayouts()) {
    Distribution dist(c.options);
    const ByteCount cycle_bytes = dist.CycleUnits() * dist.unit();
    SplitMix64 rng(99);
    for (int round = 0; round < 10; ++round) {
      FileOffset start = rng.Uniform(0, 2 * cycle_bytes);
      ByteCount length = 1 + rng.Uniform(0, 3 * cycle_bytes);
      ExtentList range{{start, length}};
      ByteCount total = 0;
      for (ServerId s = 0; s < c.options.striping.pcount; ++s) {
        auto runs = dist.ServerLocalRuns(s, range);
        EXPECT_LE(runs.size(), 1u) << c.name << " server " << s;
        for (const Fragment& r : runs) total += r.length;
      }
      EXPECT_EQ(total, length) << c.name;
    }
  }
}

TEST(DistLayouts, BytesOnServerSumsToTotalEveryLayout) {
  for (const LayoutCase& c : OracleLayouts()) {
    Distribution dist(c.options);
    ExtentList regions{{100, 100000}, {500000, 77777}, {1 << 21, 12345}};
    ByteCount sum = 0;
    for (ServerId s = 0; s < c.options.striping.pcount; ++s) {
      sum += dist.BytesOnServer(s, regions);
    }
    EXPECT_EQ(sum, TotalBytes(regions)) << c.name;
  }
}

TEST(DistLayouts, TwoDKeepsUnitsInsideTheirGroup) {
  // The defining 2-D property: each span of group_size*depth consecutive
  // units stays on one group of servers.
  Distribution dist({Striping{0, 8, 16384}, DistributionSpec::TwoD(2, 4)});
  const std::uint32_t group_size = 4;  // 8 servers / 2 groups
  const std::uint64_t span = group_size * 4;  // * depth
  for (std::uint64_t g = 0; g < 4 * dist.CycleUnits(); ++g) {
    std::uint64_t gi = (g % dist.CycleUnits()) / span;
    ServerId s = dist.ServerOfUnit(g);
    EXPECT_EQ(s / group_size, gi) << "unit " << g;
  }
}

TEST(DistLayouts, GroupCyclicPlacesDepthRunsPerServer) {
  Distribution dist({Striping{0, 4, 4096}, DistributionSpec::GroupCyclic(3)});
  // Units 0,1,2 -> server 0; 3,4,5 -> server 1; ...; 12 wraps to server 0.
  for (std::uint64_t g = 0; g < 24; ++g) {
    EXPECT_EQ(dist.ServerOfUnit(g), (g / 3) % 4) << "unit " << g;
  }
}

TEST(DistLayouts, BlockPlacesWholeExtentsPerServer) {
  const ByteCount kExtent = 1 << 20;
  Distribution dist({Striping{0, 4, 16384}, DistributionSpec::Block(kExtent)});
  EXPECT_EQ(dist.unit(), kExtent);
  // Byte ranges [i*extent, (i+1)*extent) live wholly on server i.
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(dist.ServerOf(i * kExtent), i);
    EXPECT_EQ(dist.ServerOf((i + 1) * kExtent - 1), i);
  }
  // Past the declared span the placement wraps (growable trade): the 5th
  // extent returns to server 0, packed after its first.
  EXPECT_EQ(dist.ServerOf(4 * kExtent), 0u);
  EXPECT_EQ(dist.LocalOffsetOf(4 * kExtent), kExtent);
}

// ---- Manager-side spec validation (kCreate guard) -------------------------

TEST(DistValidation, ManagerRejectsEachMalformedShape) {
  Manager mgr(8);
  const Striping s{0, 8, 16384};
  struct Bad {
    const char* what;
    DistributionSpec spec;
  };
  std::vector<Bad> shapes;
  shapes.push_back({"twod groups not dividing pcount",
                    DistributionSpec::TwoD(3, 4)});
  shapes.push_back({"twod zero groups", DistributionSpec::TwoD(0, 4)});
  shapes.push_back({"twod groups beyond pcount",
                    DistributionSpec::TwoD(16, 1)});
  shapes.push_back({"twod zero depth", DistributionSpec::TwoD(2, 0)});
  shapes.push_back({"block without declared extent",
                    DistributionSpec::Block(0)});
  shapes.push_back({"gcyclic zero depth", DistributionSpec::GroupCyclic(0)});
  DistributionSpec junk_simple;  // simple kind with stray parameters
  junk_simple.groups = 2;
  shapes.push_back({"simple with stray parameters", junk_simple});
  DistributionSpec twod_with_extent = DistributionSpec::TwoD(2, 4);
  twod_with_extent.block_extent = 4096;
  shapes.push_back({"twod with stray block extent", twod_with_extent});
  for (const Bad& bad : shapes) {
    auto meta = mgr.Create(bad.what, CreateOptions{s, bad.spec});
    ASSERT_FALSE(meta.ok()) << bad.what;
    EXPECT_EQ(meta.status().code(), ErrorCode::kInvalidArgument) << bad.what;
  }
}

TEST(DistValidation, ManagerAcceptsAndRecordsValidSpecs) {
  Manager mgr(8);
  const Striping s{0, 8, 16384};
  const DistributionSpec specs[] = {
      DistributionSpec::Simple(),
      DistributionSpec::TwoD(2, 4),
      DistributionSpec::Block(1 << 20),
      DistributionSpec::GroupCyclic(8),
  };
  for (const DistributionSpec& spec : specs) {
    auto meta = mgr.Create(DistKindName(spec.kind), CreateOptions{s, spec});
    ASSERT_TRUE(meta.ok()) << DistKindName(spec.kind);
    EXPECT_EQ(meta->dist, spec) << DistKindName(spec.kind);
    auto stat = mgr.Stat(meta->handle);
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat->dist, spec) << DistKindName(spec.kind);
  }
}

}  // namespace
}  // namespace pvfs
