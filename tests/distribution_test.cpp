#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "pvfs/distribution.hpp"
#include "pvfs/protocol.hpp"

namespace pvfs {
namespace {

Distribution Dist8() { return Distribution(Striping{0, 8, 16384}); }

TEST(Distribution, StripeRoundRobin) {
  Distribution dist = Dist8();
  EXPECT_EQ(dist.ServerOf(0), 0u);
  EXPECT_EQ(dist.ServerOf(16383), 0u);
  EXPECT_EQ(dist.ServerOf(16384), 1u);
  EXPECT_EQ(dist.ServerOf(7 * 16384), 7u);
  EXPECT_EQ(dist.ServerOf(8 * 16384), 0u);  // wraps
}

TEST(Distribution, LocalOffsetsPackDensely) {
  Distribution dist = Dist8();
  // Server 0 holds stripes 0, 8, 16, ... at local offsets 0, 16K, 32K.
  EXPECT_EQ(dist.LocalOffsetOf(0), 0u);
  EXPECT_EQ(dist.LocalOffsetOf(100), 100u);
  EXPECT_EQ(dist.LocalOffsetOf(8 * 16384), 16384u);
  EXPECT_EQ(dist.LocalOffsetOf(8 * 16384 + 5), 16389u);
  EXPECT_EQ(dist.LocalOffsetOf(16 * 16384), 2 * 16384u);
}

TEST(Distribution, LogicalOffsetInvertsLocal) {
  Distribution dist = Dist8();
  SplitMix64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    FileOffset logical = rng.Uniform(0, 1ull << 40);
    ServerId s = dist.ServerOf(logical);
    FileOffset local = dist.LocalOffsetOf(logical);
    EXPECT_EQ(dist.LogicalOffsetOf(s, local), logical);
  }
}

TEST(Distribution, RoundTripWithOddParams) {
  // Non-power-of-two pcount and stripe size.
  Distribution dist(Striping{0, 5, 1000});
  SplitMix64 rng(22);
  for (int i = 0; i < 2000; ++i) {
    FileOffset logical = rng.Uniform(0, 1ull << 30);
    EXPECT_EQ(dist.LogicalOffsetOf(dist.ServerOf(logical),
                                   dist.LocalOffsetOf(logical)),
              logical);
  }
}

TEST(Distribution, FragmentsSplitAtStripeBoundaries) {
  Distribution dist = Dist8();
  // [16000, 17000) crosses the stripe-0/stripe-1 boundary at 16384.
  auto frags = dist.Fragments(ExtentList{{16000, 1000}});
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[0].server, 0u);
  EXPECT_EQ(frags[0].local_offset, 16000u);
  EXPECT_EQ(frags[0].length, 384u);
  EXPECT_EQ(frags[0].logical_pos, 0u);
  EXPECT_EQ(frags[1].server, 1u);
  EXPECT_EQ(frags[1].local_offset, 0u);
  EXPECT_EQ(frags[1].length, 616u);
  EXPECT_EQ(frags[1].logical_pos, 384u);
}

TEST(Distribution, FragmentsCoverExactBytes) {
  Distribution dist(Striping{0, 3, 4096});
  ExtentList regions{{100, 10000}, {50000, 12345}, {1 << 20, 1}};
  auto frags = dist.Fragments(regions);
  ByteCount total = 0;
  ByteCount expected_stream = 0;
  size_t idx = 0;
  for (const Extent& e : regions) expected_stream += e.length;
  for (const Fragment& f : frags) {
    total += f.length;
    if (idx > 0) {
      EXPECT_GE(f.logical_pos, frags[idx - 1].logical_pos);
    }
    ++idx;
  }
  EXPECT_EQ(total, expected_stream);
}

TEST(Distribution, ContiguousRangeIsOneLocalRunPerServer) {
  // The key PVFS layout property: a logically contiguous range coalesces
  // to exactly one contiguous local run on every involved server.
  Distribution dist = Dist8();
  ExtentList whole{{0, 64 * 16384}};  // 8 full cycles
  for (ServerId s = 0; s < 8; ++s) {
    auto runs = dist.ServerLocalRuns(s, whole);
    ASSERT_EQ(runs.size(), 1u) << "server " << s;
    EXPECT_EQ(runs[0].local_offset, 0u);
    EXPECT_EQ(runs[0].length, 8 * 16384u);
  }
}

TEST(Distribution, ContiguousRangeWithPartialEdges) {
  Distribution dist = Dist8();
  ExtentList range{{5000, 40 * 16384}};
  ByteCount total = 0;
  for (ServerId s = 0; s < 8; ++s) {
    auto runs = dist.ServerLocalRuns(s, range);
    ASSERT_EQ(runs.size(), 1u) << "server " << s;
    total += runs[0].length;
  }
  EXPECT_EQ(total, 40 * 16384u);
}

TEST(Distribution, InvolvedServersSmallRegion) {
  Distribution dist = Dist8();
  EXPECT_EQ(dist.InvolvedServers(ExtentList{{0, 100}}),
            (std::vector<ServerId>{0}));
  EXPECT_EQ(dist.InvolvedServers(ExtentList{{16380, 10}}),
            (std::vector<ServerId>{0, 1}));
}

TEST(Distribution, InvolvedServersWideRegionIsAll) {
  Distribution dist = Dist8();
  auto all = dist.InvolvedServers(ExtentList{{12345, 9 * 16384}});
  EXPECT_EQ(all.size(), 8u);
}

TEST(Distribution, InvolvedServersIgnoresEmptyRegions) {
  Distribution dist = Dist8();
  EXPECT_TRUE(dist.InvolvedServers(ExtentList{{100, 0}}).empty());
}

TEST(Distribution, BytesOnServerSumsToTotal) {
  Distribution dist(Striping{0, 4, 8192});
  ExtentList regions{{0, 100000}, {500000, 77777}};
  ByteCount sum = 0;
  for (ServerId s = 0; s < 4; ++s) {
    sum += dist.BytesOnServer(s, regions);
  }
  EXPECT_EQ(sum, TotalBytes(regions));
}

TEST(Distribution, SingleServerStriping) {
  Distribution dist(Striping{0, 1, 16384});
  EXPECT_EQ(dist.ServerOf(123456789), 0u);
  EXPECT_EQ(dist.LocalOffsetOf(123456789), 123456789u);
  auto runs = dist.ServerLocalRuns(0, ExtentList{{0, 1 << 20}});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].length, 1u << 20);
}

TEST(Distribution, ServerLocalRunsPreserveListOrder) {
  Distribution dist = Dist8();
  // Two regions both on server 0 but NOT adjacent locally: no coalescing.
  ExtentList regions{{0, 100}, {8 * 16384, 100}};
  auto runs = dist.ServerLocalRuns(0, regions);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].local_offset, 0u);
  EXPECT_EQ(runs[1].local_offset, 16384u);
}

TEST(Distribution, AdjacentLocalRunsCoalesce) {
  Distribution dist = Dist8();
  // [0,100) and [100,200) on server 0 are locally adjacent.
  ExtentList regions{{0, 100}, {100, 100}};
  auto runs = dist.ServerLocalRuns(0, regions);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].length, 200u);
}

// ---- Replica placement ------------------------------------------------------

TEST(Placement, DefaultIsSingleReplica) {
  Distribution dist = Dist8();
  EXPECT_EQ(dist.replication().replicas, 1u);
  EXPECT_EQ(dist.EffectiveReplicas(), 1u);
  EXPECT_EQ(dist.ReplicaSet(3), (std::vector<ServerId>{3}));
}

TEST(Placement, RotationSetsAreDistinctServers) {
  Distribution dist(Striping{0, 8, 16384}, ReplicationConfig{3});
  for (ServerId p = 0; p < 8; ++p) {
    std::vector<ServerId> set = dist.ReplicaSet(p);
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[0], p);  // primary leads its own set
    std::set<ServerId> unique(set.begin(), set.end());
    EXPECT_EQ(unique.size(), set.size()) << "primary " << p;
  }
}

TEST(Placement, ReplicasClampToServerCount) {
  // Asking for more copies than daemons degrades to one copy per daemon
  // instead of placing two replicas on the same disk.
  Distribution dist(Striping{0, 3, 16384}, ReplicationConfig{5});
  EXPECT_EQ(dist.EffectiveReplicas(), 3u);
  EXPECT_EQ(dist.ReplicaSet(1), (std::vector<ServerId>{1, 2, 0}));
}

TEST(Placement, NonDivisibleServerCount) {
  // pcount=5, replicas=2: rotation wraps cleanly with no server doubled
  // inside a set even though 5 % 2 != 0.
  Distribution dist(Striping{0, 5, 4096}, ReplicationConfig{2});
  EXPECT_EQ(dist.ReplicaSet(4), (std::vector<ServerId>{4, 0}));
  for (ServerId p = 0; p < 5; ++p) {
    auto set = dist.ReplicaSet(p);
    EXPECT_NE(set[0], set[1]);
  }
}

TEST(Placement, LoadIsBalancedAcrossServers) {
  // Every server appears exactly R times across the pcount replica sets:
  // once as primary, R-1 times as a secondary. No daemon becomes a
  // replication hotspot.
  for (std::uint32_t pcount : {2u, 3u, 5u, 8u, 13u}) {
    for (std::uint32_t replicas = 1; replicas <= pcount; ++replicas) {
      Distribution dist(Striping{0, pcount, 16384},
                        ReplicationConfig{replicas});
      std::map<ServerId, int> appearances;
      for (ServerId p = 0; p < pcount; ++p) {
        for (ServerId s : dist.ReplicaSet(p)) ++appearances[s];
      }
      for (ServerId s = 0; s < pcount; ++s) {
        EXPECT_EQ(appearances[s], static_cast<int>(replicas))
            << "pcount " << pcount << " replicas " << replicas << " server "
            << s;
      }
    }
  }
}

TEST(Placement, PrimaryForInvertsReplicaOf) {
  Distribution dist(Striping{0, 7, 4096}, ReplicationConfig{3});
  for (ServerId p = 0; p < 7; ++p) {
    for (std::uint32_t k = 0; k < 3; ++k) {
      EXPECT_EQ(dist.PrimaryFor(dist.ReplicaOf(p, k), k), p);
    }
  }
}

TEST(Placement, StableAcrossIdenticalConfigs) {
  // Placement is a pure function of (striping, replication): two
  // Distribution objects built from equal configs agree everywhere, so a
  // restarted client reaches the same replicas as the one that wrote.
  Striping striping{2, 6, 65536};
  ReplicationConfig replication{3};
  Distribution a(striping, replication);
  Distribution b(striping, replication);
  for (ServerId p = 0; p < 6; ++p) {
    EXPECT_EQ(a.ReplicaSet(p), b.ReplicaSet(p));
  }
}

TEST(Placement, ReplicaHandlesAreDistinctAndRecoverable) {
  SplitMix64 rng(33);
  for (int i = 0; i < 2000; ++i) {
    FileHandle h = rng.Next() & ((1ull << 56) - 1);  // manager handle space
    std::set<FileHandle> seen;
    for (std::uint32_t k = 0; k < 8; ++k) {
      FileHandle derived = ReplicaHandle(h, k);
      EXPECT_TRUE(seen.insert(derived).second);
      // XOR is its own inverse: the ordinal recovers the base handle.
      EXPECT_EQ(ReplicaHandle(derived, k), h);
    }
  }
}

TEST(Placement, FuzzManyConfigs) {
  // Thousands of random (pcount, replicas, base) configs: every set has
  // the right size, distinct members, all in range, primary first, and
  // PrimaryFor inverts membership.
  SplitMix64 rng(44);
  for (int i = 0; i < 4000; ++i) {
    const std::uint32_t pcount =
        static_cast<std::uint32_t>(rng.Uniform(1, 64));
    const std::uint32_t replicas =
        static_cast<std::uint32_t>(rng.Uniform(1, 9));
    const ServerId base = static_cast<ServerId>(rng.Uniform(0, 256));
    Distribution dist(Striping{base, pcount, 4096},
                      ReplicationConfig{replicas});
    const std::uint32_t effective = dist.EffectiveReplicas();
    ASSERT_EQ(effective, std::min(replicas, pcount));
    const ServerId p = static_cast<ServerId>(rng.Uniform(0, pcount - 1));
    std::vector<ServerId> set = dist.ReplicaSet(p);
    ASSERT_EQ(set.size(), effective);
    ASSERT_EQ(set[0], p);
    std::set<ServerId> unique;
    for (std::uint32_t k = 0; k < effective; ++k) {
      ASSERT_LT(set[k], pcount);
      ASSERT_TRUE(unique.insert(set[k]).second);
      ASSERT_EQ(dist.PrimaryFor(set[k], k), p);
    }
  }
}

TEST(Placement, ZeroReplicasRejectedOnTheWire) {
  // The config struct cannot stop replicas=0 at compile time; the wire
  // decoder does (see protocol_test for the round trips).
  ReplicationConfig zero{0};
  WireWriter writer;
  EncodeReplication(writer, zero);
  std::vector<std::byte> buf = writer.Take();
  WireReader reader(buf);
  auto decoded = DecodeReplication(reader);
  EXPECT_FALSE(decoded.ok());
}

}  // namespace
}  // namespace pvfs
