// Server-side fragment scheduling and admission control
// (docs/server-scheduling.md):
//
//   * BuildRunPlan: sorted-merge run construction, scatter/gather maps.
//   * IoDaemon: `local_accesses` counts offset-sorted runs (the cyclic
//     over-count regression), scheduled execution moves identical bytes.
//   * Sim/executed agreement: Distribution::ServerLocalRuns and the iod
//     plan count the same runs.
//   * Client determinism: WriteChunk fans out in ascending server order;
//     serial and parallel fan-out contact the same servers on failure.
//   * AdmissionController: bounded depth, busy shedding, typed kBusy
//     feeding the client retry loop; threaded-cluster chaos under load
//     (run under TSan by the tsan preset / CI job).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/wire.hpp"
#include "net/socket_transport.hpp"
#include "pvfs/admission.hpp"
#include "pvfs/client.hpp"
#include "pvfs/scheduler.hpp"
#include "runtime/threaded_cluster.hpp"
#include "test_cluster.hpp"

namespace pvfs {
namespace {

using testutil::InProcCluster;

// ---- BuildRunPlan ----------------------------------------------------------

Fragment Frag(FileOffset local, ByteCount length, ByteCount pos = 0) {
  return Fragment{0, local, length, pos};
}

TEST(RunPlan, EmptyFragments) {
  RunPlan plan = BuildRunPlan({});
  EXPECT_TRUE(plan.runs.empty());
  EXPECT_TRUE(plan.run_of.empty());
  EXPECT_EQ(plan.total_bytes, 0u);
}

TEST(RunPlan, AdjacentFragmentsMergeIntoOneRun) {
  std::vector<Fragment> frags{Frag(0, 4), Frag(4, 4), Frag(8, 4)};
  RunPlan plan = BuildRunPlan(frags);
  ASSERT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.runs[0].offset, 0u);
  EXPECT_EQ(plan.runs[0].length, 12u);
  EXPECT_EQ(plan.total_bytes, 12u);
  EXPECT_EQ(plan.run_of, (std::vector<std::uint32_t>{0, 0, 0}));
}

TEST(RunPlan, DisjointFragmentsStayDistinctAndSorted) {
  std::vector<Fragment> frags{Frag(100, 4), Frag(0, 4)};
  RunPlan plan = BuildRunPlan(frags);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].offset, 0u);
  EXPECT_EQ(plan.runs[1].offset, 100u);
  EXPECT_EQ(plan.runs[0].buf_offset, 0u);
  EXPECT_EQ(plan.runs[1].buf_offset, 4u);
  // run_of indexes the ORIGINAL order: fragment 0 (offset 100) is run 1.
  EXPECT_EQ(plan.run_of, (std::vector<std::uint32_t>{1, 0}));
}

TEST(RunPlan, CyclicLogicalWalkCollapsesToOneRun) {
  // The logical walk revisits lower local offsets (0, 4, 2, 6): in
  // logical order that is 4 "runs", sorted it is one contiguous [0, 8).
  std::vector<Fragment> frags{Frag(0, 2), Frag(4, 2), Frag(2, 2),
                              Frag(6, 2)};
  RunPlan plan = BuildRunPlan(frags);
  ASSERT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.runs[0].offset, 0u);
  EXPECT_EQ(plan.runs[0].length, 8u);
}

TEST(RunPlan, OverlappingFragmentsExtendTheRun) {
  std::vector<Fragment> frags{Frag(0, 8), Frag(4, 8), Frag(20, 2)};
  RunPlan plan = BuildRunPlan(frags);
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].offset, 0u);
  EXPECT_EQ(plan.runs[0].length, 12u);  // [0,8) u [4,12)
  EXPECT_EQ(plan.runs[1].offset, 20u);
  EXPECT_EQ(plan.total_bytes, 14u);
}

TEST(RunPlan, RandomFragmentsCoverEveryByteOfEveryFragment) {
  SplitMix64 rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Fragment> frags;
    std::uint64_t n = rng.Uniform(1, 20);
    for (std::uint64_t i = 0; i < n; ++i) {
      frags.push_back(Frag(rng.Uniform(0, 256), rng.Uniform(1, 32)));
    }
    RunPlan plan = BuildRunPlan(frags);
    ASSERT_EQ(plan.run_of.size(), frags.size());
    ByteCount sum = 0;
    FileOffset prev_end = 0;
    for (std::size_t r = 0; r < plan.runs.size(); ++r) {
      if (r > 0) {
        // Strictly separated and ascending: merged plans never touch.
        EXPECT_GT(plan.runs[r].offset, prev_end);
      }
      EXPECT_EQ(plan.runs[r].buf_offset, sum);
      sum += plan.runs[r].length;
      prev_end = plan.runs[r].offset + plan.runs[r].length;
    }
    EXPECT_EQ(plan.total_bytes, sum);
    for (std::size_t i = 0; i < frags.size(); ++i) {
      const ScheduledRun& run = plan.runs.at(plan.run_of[i]);
      EXPECT_GE(frags[i].local_offset, run.offset);
      EXPECT_LE(frags[i].local_offset + frags[i].length,
                run.offset + run.length);
    }
  }
}

// ---- IoDaemon accounting and scheduled execution ---------------------------

// Cyclic pattern whose logical walk revisits lower local offsets on each
// server: striping {pcount 2, ssize 4}, regions hitting stripes 0,2,1,3
// of server 0 out of order.
const Striping kTinyStriping{0, 2, 4};
const ExtentList kCyclicRegions{{0, 2}, {8, 2}, {2, 2}, {10, 2}};

IoRequest CyclicRequest(IoOp op) {
  IoRequest req;
  req.handle = 7;
  req.striping = kTinyStriping;
  req.server_index = 0;
  req.op = op;
  req.regions = kCyclicRegions;
  return req;
}

TEST(IoDaemonScheduling, LocalAccessesCountOffsetSortedRuns) {
  // All four fragments of server 0 sit at local offsets 0,4,2,6 — one
  // contiguous [0,8) once sorted. The logical-order count (the old bug)
  // would report 4.
  IoDaemon iod(0);
  IoRequest req = CyclicRequest(IoOp::kWrite);
  req.payload.resize(8);
  ASSERT_TRUE(iod.Serve(req).ok());
  EXPECT_EQ(iod.stats().local_accesses, 1u);
  // The unscheduled daemon still EXECUTES one store op per fragment.
  EXPECT_EQ(iod.stats().store_ops, 4u);

  auto read = iod.Serve(CyclicRequest(IoOp::kRead));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(iod.stats().local_accesses, 2u);
  EXPECT_EQ(iod.stats().store_ops, 8u);
}

TEST(IoDaemonScheduling, SimRunsAgreeWithExecutedAccounting) {
  Distribution dist(kTinyStriping);
  std::vector<Fragment> sim_runs = dist.ServerLocalRuns(0, kCyclicRegions);
  IoDaemon iod(0);
  IoRequest req = CyclicRequest(IoOp::kWrite);
  req.payload.resize(8);
  ASSERT_TRUE(iod.Serve(req).ok());
  EXPECT_EQ(iod.stats().local_accesses, sim_runs.size());
  ASSERT_EQ(sim_runs.size(), 1u);
  EXPECT_EQ(sim_runs[0].local_offset, 0u);
  EXPECT_EQ(sim_runs[0].length, 8u);
}

TEST(IoDaemonScheduling, ScheduledDaemonIssuesOneStoreOpPerRun) {
  ServerConfig config;
  config.schedule_fragments = true;
  IoDaemon iod(0, config);
  IoRequest req = CyclicRequest(IoOp::kWrite);
  req.payload.resize(8);
  FillPattern(req.payload, 3, 0);
  ASSERT_TRUE(iod.Serve(req).ok());
  EXPECT_EQ(iod.stats().local_accesses, 1u);
  EXPECT_EQ(iod.stats().store_ops, 1u);

  auto read = iod.Serve(CyclicRequest(IoOp::kRead));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(iod.stats().store_ops, 2u);
}

TEST(IoDaemonScheduling, ScheduledAndUnscheduledMoveIdenticalBytes) {
  // Random list requests against a scheduled and an unscheduled daemon:
  // write payloads and read-back payloads must be byte-identical — the
  // scatter/gather must keep the wire layout of the unscheduled path.
  SplitMix64 rng(7);
  ServerConfig scheduled_config;
  scheduled_config.schedule_fragments = true;
  IoDaemon plain(0);
  IoDaemon scheduled(0, scheduled_config);

  for (int iter = 0; iter < 100; ++iter) {
    Striping striping{0, static_cast<std::uint32_t>(rng.Uniform(1, 4)),
                      1u << rng.Uniform(2, 6)};
    Distribution dist(striping);
    ExtentList regions;
    std::uint64_t n = rng.Uniform(1, 10);
    for (std::uint64_t i = 0; i < n; ++i) {
      regions.push_back(
          Extent{rng.Uniform(0, 512), rng.Uniform(1, 64)});
    }
    ByteCount mine = dist.BytesOnServer(0, regions);
    if (mine == 0) continue;

    IoRequest write;
    write.handle = 10 + iter;
    write.striping = striping;
    write.server_index = 0;
    write.op = IoOp::kWrite;
    write.regions = regions;
    write.payload.resize(mine);
    FillPattern(write.payload, 1000 + iter, 0);

    ASSERT_TRUE(plain.Serve(write).ok());
    ASSERT_TRUE(scheduled.Serve(write).ok());

    IoRequest read = write;
    read.op = IoOp::kRead;
    read.payload.clear();
    auto a = plain.Serve(read);
    auto b = scheduled.Serve(read);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->payload, b->payload) << "iter " << iter;
  }
  // The scheduler never issues MORE store accesses than per-fragment
  // execution, and the accounting metric is identical on both daemons.
  EXPECT_EQ(plain.stats().local_accesses, scheduled.stats().local_accesses);
  EXPECT_LE(scheduled.stats().store_ops, plain.stats().store_ops);
}

TEST(IoDaemonScheduling, EndToEndListIoMatchesAcrossSchedulingModes) {
  // Full client -> cluster round trips, cyclic pattern: a scheduled
  // cluster must return byte-identical data to an unscheduled one.
  ServerConfig scheduled_config;
  scheduled_config.schedule_fragments = true;
  InProcCluster plain(4);
  InProcCluster scheduled(4, scheduled_config);

  for (InProcCluster* cluster : {&plain, &scheduled}) {
    Client client = cluster->MakeClient();
    auto fd = client.Create("f", Striping{0, 4, 64});
    ASSERT_TRUE(fd.ok());
    // 96 small adjacent records: every 64-region chunk tiles [0, 1024),
    // so each server's 16 fragments per chunk collapse to one local run.
    ExtentList file;
    for (std::uint64_t i = 0; i < 96; ++i) file.push_back({i * 16, 16});
    ByteBuffer buffer(96 * 16);
    FillPattern(buffer, 42, 0);
    ExtentList mem{{0, buffer.size()}};
    ASSERT_TRUE(client.WriteList(*fd, mem, buffer, file).ok());

    ByteBuffer back(buffer.size(), std::byte{0});
    ASSERT_TRUE(client.ReadList(*fd, mem, back, file).ok());
    EXPECT_EQ(back, buffer);
  }
  // Same logical traffic on both clusters; the scheduled one executed
  // fewer (or equal) contiguous store accesses, and both account the
  // same coalesced run count.
  std::uint64_t plain_ops = 0, sched_ops = 0, plain_runs = 0,
                sched_runs = 0;
  for (ServerId s = 0; s < 4; ++s) {
    plain_ops += plain.iods[s]->stats().store_ops;
    sched_ops += scheduled.iods[s]->stats().store_ops;
    plain_runs += plain.iods[s]->stats().local_accesses;
    sched_runs += scheduled.iods[s]->stats().local_accesses;
  }
  EXPECT_EQ(plain_runs, sched_runs);
  EXPECT_LT(sched_ops, plain_ops);
}

// ---- Client fan-out determinism --------------------------------------------

/// Transport wrapper recording the iod contact order and optionally
/// failing specific servers with a transport-level error.
class RecordingTransport final : public Transport {
 public:
  explicit RecordingTransport(Transport* inner) : inner_(inner) {}

  Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) override {
    if (!dest.is_manager) {
      std::lock_guard lock(mutex_);
      contacted_.push_back(dest.server);
      if (fail_server_ && *fail_server_ == dest.server) {
        return Unavailable("injected transport failure");
      }
    }
    return inner_->Call(dest, request);
  }

  std::uint32_t server_count() const override {
    return inner_->server_count();
  }

  void FailServer(ServerId s) { fail_server_ = s; }
  std::vector<ServerId> contacted() {
    std::lock_guard lock(mutex_);
    return contacted_;
  }
  void Reset() {
    std::lock_guard lock(mutex_);
    contacted_.clear();
  }

 private:
  Transport* inner_;
  std::mutex mutex_;
  std::vector<ServerId> contacted_;
  std::optional<ServerId> fail_server_;
};

TEST(ClientDeterminism, WriteFanoutContactsServersInAscendingOrder) {
  InProcCluster cluster(8);
  RecordingTransport recorder(cluster.transport.get());
  Client client(&recorder, kMaxListRegions);
  auto fd = client.Create("f", Striping{0, 8, 16});
  ASSERT_TRUE(fd.ok());
  recorder.Reset();

  // One chunk spanning all 8 servers.
  ByteBuffer buffer(8 * 16);
  FillPattern(buffer, 5, 0);
  ASSERT_TRUE(client.Write(*fd, 0, buffer).ok());

  std::vector<ServerId> order = recorder.contacted();
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i) << "serial write fan-out must be sorted by "
                              "server id, independent of hash order";
  }
}

TEST(ClientDeterminism, SerialAndParallelFanoutContactAllServersOnFailure) {
  // With server 2 failing, BOTH fan-out modes must still contact every
  // involved server (identical partial-write footprint) and surface the
  // same first error.
  for (bool parallel : {false, true}) {
    InProcCluster cluster(4);
    RecordingTransport recorder(cluster.transport.get());
    Client::Options options;
    options.parallel_fanout = parallel;
    Client client(&recorder, options);
    auto fd = client.Create("f", Striping{0, 4, 16});
    ASSERT_TRUE(fd.ok());
    recorder.FailServer(2);
    recorder.Reset();

    ByteBuffer buffer(4 * 16);
    FillPattern(buffer, 9, 0);
    Status write = client.Write(*fd, 0, buffer);
    EXPECT_EQ(write.code(), ErrorCode::kUnavailable)
        << "parallel=" << parallel;

    std::vector<ServerId> order = recorder.contacted();
    std::sort(order.begin(), order.end());
    EXPECT_EQ(order, (std::vector<ServerId>{0, 1, 2, 3}))
        << "parallel=" << parallel
        << ": every server must be contacted even after a failure";

    // The three healthy servers hold their stripes in both modes.
    for (ServerId s : {0u, 1u, 3u}) {
      EXPECT_EQ(cluster.iods[s]->stats().bytes_written, 16u)
          << "parallel=" << parallel << " server " << s;
    }
  }
}

// ---- Admission control -----------------------------------------------------

TEST(Admission, BoundedDepthShedsAndRecovers) {
  obs::Registry registry;
  AdmissionController admission(3, 2, &registry);
  AdmissionController::Slot a, b, c;
  EXPECT_TRUE(admission.TryAdmit(a));
  EXPECT_TRUE(admission.TryAdmit(b));
  EXPECT_EQ(admission.depth(), 2);
  EXPECT_FALSE(admission.TryAdmit(c));  // full
  EXPECT_EQ(admission.rejected(), 1u);
  EXPECT_EQ(admission.depth(), 2);

  admission.BeginService(a);
  admission.Finish(a);
  EXPECT_EQ(admission.depth(), 1);
  EXPECT_TRUE(admission.TryAdmit(c));  // slot freed
  EXPECT_EQ(admission.admitted(), 3u);

  // Instruments live in the provided registry, labelled by server.
  EXPECT_EQ(registry
                .Gauge("iod.admission.queue_depth", {{"server", "3"}})
                .value(),
            2);
}

TEST(Admission, UnboundedDepthNeverSheds) {
  obs::Registry registry;
  AdmissionController admission(0, 0, &registry);
  std::vector<AdmissionController::Slot> slots(64);
  for (auto& slot : slots) EXPECT_TRUE(admission.TryAdmit(slot));
  EXPECT_EQ(admission.rejected(), 0u);
  EXPECT_EQ(admission.depth(), 64);
}

TEST(Admission, SealedBusyResponseDecodesAsRetryableBusy) {
  std::vector<std::byte> frame = SealedBusyResponse(5);
  auto payload = OpenFrame(frame);
  ASSERT_TRUE(payload.ok());
  auto resp = DecodeResponse(*payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status.code(), ErrorCode::kBusy);
  EXPECT_TRUE(IsRetryable(resp->status.code()));
  EXPECT_NE(resp->status.message().find("iod 5"), std::string::npos);
}

/// Transport that answers the first `busy_count` iod calls with a sealed
/// busy frame, then delegates — a deterministic overloaded server.
class BusyThenOkTransport final : public Transport {
 public:
  BusyThenOkTransport(Transport* inner, int busy_count)
      : inner_(inner), remaining_(busy_count) {}

  Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) override {
    if (!dest.is_manager &&
        remaining_.fetch_sub(1, std::memory_order_relaxed) > 0) {
      return SealedBusyResponse(dest.server);
    }
    return inner_->Call(dest, request);
  }

  std::uint32_t server_count() const override {
    return inner_->server_count();
  }

 private:
  Transport* inner_;
  std::atomic<int> remaining_;
};

TEST(Admission, ClientRetriesThroughBusyAndCountsIt) {
  InProcCluster cluster(2);
  BusyThenOkTransport transport(cluster.transport.get(), 3);
  Client::Options options;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff = std::chrono::microseconds(1);
  options.retry.max_backoff = std::chrono::microseconds(50);
  Client client(&transport, options);
  auto fd = client.Create("f", Striping{0, 2, 32});
  ASSERT_TRUE(fd.ok());

  ByteBuffer buffer(64);
  FillPattern(buffer, 11, 0);
  ASSERT_TRUE(client.Write(*fd, 0, buffer).ok());
  ByteBuffer back(64, std::byte{0});
  ASSERT_TRUE(client.Read(*fd, 0, back).ok());
  EXPECT_EQ(back, buffer);

  Client::RetryCounters retry = client.retry_counters();
  EXPECT_EQ(retry.busy_rejections, 3u);
  EXPECT_GE(retry.retries, 3u);
  EXPECT_EQ(retry.exhausted, 0u);
}

TEST(Admission, FailFastClientSurfacesBusy) {
  InProcCluster cluster(2);
  BusyThenOkTransport transport(cluster.transport.get(), 1);
  Client client(&transport, kMaxListRegions);  // max_attempts = 1
  auto fd = client.Create("f", Striping{0, 2, 32});
  ASSERT_TRUE(fd.ok());
  ByteBuffer buffer(16);
  EXPECT_EQ(client.Write(*fd, 0, buffer).code(), ErrorCode::kBusy);
}

// ---- Bounded queues on the real transports ---------------------------------

TEST(Admission, SocketServerShedsWhileServiceIsBlocked) {
  // A SocketServer whose service blocks until released: the first
  // connection occupies the single admission slot, so a second
  // connection's request is answered busy — deterministically.
  obs::Registry registry;
  AdmissionController admission(0, 1, &registry);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> in_service{0};

  auto server_result = net::SocketServer::Start(
      0,
      [&](std::span<const std::byte>) {
        in_service.fetch_add(1);
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return release; });
        return SealFrame(EncodeResponse(Status::Ok(), {}));
      },
      &admission, 0);
  ASSERT_TRUE(server_result.ok());
  auto& server = *server_result;

  net::SocketAddress address{"127.0.0.1", server->port()};
  net::SocketTransport first({"127.0.0.1", 0}, {address});
  net::SocketTransport second({"127.0.0.1", 0}, {address});

  std::vector<std::byte> ping = SealFrame(EncodeResponse(Status::Ok(), {}));
  std::thread blocked([&] {
    auto result = first.Call(Endpoint::Iod(0), ping);
    EXPECT_TRUE(result.ok());
  });
  // Wait until the first request is inside the service function (slot
  // held), then the second request must come back busy.
  while (in_service.load() == 0) std::this_thread::yield();

  auto shed = second.Call(Endpoint::Iod(0), ping);
  ASSERT_TRUE(shed.ok());
  auto payload = OpenFrame(*shed);
  ASSERT_TRUE(payload.ok());
  auto resp = DecodeResponse(*payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status.code(), ErrorCode::kBusy);
  EXPECT_EQ(admission.rejected(), 1u);

  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  blocked.join();
  EXPECT_EQ(admission.admitted(), 1u);

  // With the slot free again, the shed client's resend succeeds.
  auto retried = second.Call(Endpoint::Iod(0), ping);
  ASSERT_TRUE(retried.ok());
  auto retried_payload = OpenFrame(*retried);
  ASSERT_TRUE(retried_payload.ok());
  EXPECT_TRUE(DecodeResponse(*retried_payload)->status.ok());
}

TEST(AdmissionChaos, ThreadedClusterBoundedQueueUnderLoad) {
  // The tentpole's concurrency stress (and the TSan target): a bounded
  // per-iod queue, many client threads, every operation retrying through
  // busy/backoff — all data must land intact and every shed must be
  // accounted.
  constexpr std::uint32_t kServers = 2;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 12;
  constexpr ByteCount kBytesPerOp = 4096;

  ServerConfig config;
  config.max_queue_depth = 1;
  config.schedule_fragments = true;
  obs::Registry registry;
  runtime::ThreadedCluster cluster(kServers, config, &registry);

  Client::Options options;
  options.parallel_fanout = true;
  options.retry.max_attempts = 10'000;  // never exhaust: shed != fail
  options.retry.initial_backoff = std::chrono::microseconds(1);
  options.retry.max_backoff = std::chrono::microseconds(100);

  Client setup(&cluster.transport(), options);
  auto fd = setup.Create("chaos", Striping{0, kServers, 512});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(setup.Close(*fd).ok());

  std::atomic<int> failures{0};
  std::barrier sync(kThreads);
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Client::Options per_thread = options;
        per_thread.retry.jitter_seed = 100 + t;
        Client client(&cluster.transport(), per_thread);
        auto my_fd = client.Open("chaos");
        if (!my_fd.ok()) {
          ++failures;
          return;
        }
        sync.arrive_and_wait();  // maximum collision pressure
        ByteBuffer data(kBytesPerOp);
        ByteBuffer back(kBytesPerOp);
        for (int op = 0; op < kOpsPerThread; ++op) {
          FileOffset at = static_cast<FileOffset>(t) * kOpsPerThread *
                              kBytesPerOp +
                          static_cast<FileOffset>(op) * kBytesPerOp;
          FillPattern(data, 1000 + t * kOpsPerThread + op, at);
          if (!client.Write(*my_fd, at, data).ok() ||
              !client.Read(*my_fd, at, back).ok() || back != data) {
            ++failures;
            return;
          }
        }
      });
    }
  }
  ASSERT_EQ(failures.load(), 0);

  // Every thread's bytes are readable afterwards.
  Client verify(&cluster.transport(), options);
  auto vfd = verify.Open("chaos");
  ASSERT_TRUE(vfd.ok());
  ByteBuffer back(kBytesPerOp);
  for (int t = 0; t < kThreads; ++t) {
    for (int op = 0; op < kOpsPerThread; ++op) {
      FileOffset at = static_cast<FileOffset>(t) * kOpsPerThread *
                          kBytesPerOp +
                      static_cast<FileOffset>(op) * kBytesPerOp;
      ASSERT_TRUE(verify.Read(*vfd, at, back).ok());
      EXPECT_FALSE(
          FindPatternMismatch(back, 1000 + t * kOpsPerThread + op, at)
              .has_value())
          << "thread " << t << " op " << op;
    }
  }

  // With depth 1 and 8 threads fanning out in parallel, shedding is
  // effectively certain; every shed must appear in BOTH the server's
  // rejected counter and some client's busy counter (they saw the same
  // frames), and depth gauges must return to zero.
  std::uint64_t rejected = 0;
  for (ServerId s = 0; s < kServers; ++s) {
    rejected += cluster.admission(s).rejected();
    EXPECT_EQ(cluster.admission(s).depth(), 0)
        << "server " << s << " queue not drained";
  }
  EXPECT_GT(rejected, 0u) << "bounded queue never shed under 8-thread load";
}

}  // namespace
}  // namespace pvfs
