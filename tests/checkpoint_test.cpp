// Distributed-array checkpoint/restart tests.
#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "runtime/spmd.hpp"
#include "runtime/threaded_cluster.hpp"

namespace pvfs::ckpt {
namespace {

/// Element (i, j) of the reference 2-D array, as a deterministic byte
/// sequence of `elem` bytes.
void FillElement(std::span<std::byte> out, std::uint64_t i, std::uint64_t j,
                 std::uint64_t cols) {
  FillPattern(out, /*seed=*/424242, (i * cols + j) * out.size());
}

TEST(ArraySpec, Validation) {
  ArraySpec spec;
  spec.elem_size = 8;
  spec.global_dims = {16, 16};
  spec.local_offset = {0, 0};
  spec.local_dims = {8, 16};
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_EQ(spec.GlobalElements(), 256u);
  EXPECT_EQ(spec.LocalElements(), 128u);
  EXPECT_EQ(spec.LocalBytes(), 1024u);

  ArraySpec bad = spec;
  bad.local_dims = {9, 16};
  bad.local_offset = {8, 0};
  EXPECT_FALSE(bad.Validate().ok());  // 8 + 9 > 16
  bad = spec;
  bad.elem_size = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = spec;
  bad.local_offset = {0};
  EXPECT_FALSE(bad.Validate().ok());  // dimension count mismatch
}

TEST(BlockFiletype, SelectsTheBlock) {
  ArraySpec spec;
  spec.elem_size = 2;
  spec.global_dims = {4, 6};
  spec.local_offset = {1, 2};
  spec.local_dims = {2, 3};
  io::Datatype type = BlockFiletype(spec);
  EXPECT_EQ(type.size(), 12u);          // 6 elements x 2 bytes
  EXPECT_EQ(type.extent(), 48u);        // whole array
  ExtentList flat = type.Flatten(0);
  ASSERT_EQ(flat.size(), 2u);           // one run per row
  EXPECT_EQ(flat[0], (Extent{(1 * 6 + 2) * 2, 6}));
  EXPECT_EQ(flat[1], (Extent{(2 * 6 + 2) * 2, 6}));
}

struct Grid2D {
  std::uint64_t rows;
  std::uint64_t cols;
  ByteCount elem;

  /// Row-band decomposition over `ranks`.
  ArraySpec BandSpec(std::uint32_t ranks, Rank r) const {
    ArraySpec spec;
    spec.elem_size = elem;
    spec.global_dims = {rows, cols};
    std::uint64_t band = rows / ranks;
    spec.local_offset = {r * band, 0};
    spec.local_dims = {r + 1 == ranks ? rows - r * band : band, cols};
    return spec;
  }

  /// Column-band decomposition over `ranks`.
  ArraySpec ColumnSpec(std::uint32_t ranks, Rank r) const {
    ArraySpec spec;
    spec.elem_size = elem;
    spec.global_dims = {rows, cols};
    std::uint64_t band = cols / ranks;
    spec.local_offset = {0, r * band};
    spec.local_dims = {rows, r + 1 == ranks ? cols - r * band : band};
    return spec;
  }

  ByteBuffer MakeBlock(const ArraySpec& spec) const {
    ByteBuffer data(spec.LocalBytes());
    size_t at = 0;
    for (std::uint64_t i = 0; i < spec.local_dims[0]; ++i) {
      for (std::uint64_t j = 0; j < spec.local_dims[1]; ++j) {
        FillElement(std::span{data}.subspan(at, elem),
                    spec.local_offset[0] + i, spec.local_offset[1] + j,
                    cols);
        at += elem;
      }
    }
    return data;
  }
};

TEST(Checkpoint, RoundTripSameDecomposition) {
  runtime::ThreadedCluster cluster(8);
  constexpr std::uint32_t kRanks = 4;
  mpiio::Group group(kRanks);
  Grid2D grid{64, 48, 8};

  runtime::RunSpmd(kRanks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    ArraySpec spec = grid.BandSpec(kRanks, ctx.rank());
    ByteBuffer mine = grid.MakeBlock(spec);
    ASSERT_TRUE(WriteCheckpoint(&client, &group, ctx.rank(), "/ckpt/a",
                                spec, mine, /*user_tag=*/7)
                    .ok());
    ByteBuffer restored(mine.size());
    ASSERT_TRUE(ReadCheckpoint(&client, &group, ctx.rank(), "/ckpt/a", spec,
                               restored)
                    .ok());
    EXPECT_EQ(restored, mine);
  });
}

TEST(Checkpoint, RestartUnderDifferentDecomposition) {
  // Written as 4 row bands, restored as 2 column bands: the canonical
  // file layout makes re-decomposition free.
  runtime::ThreadedCluster cluster(8);
  Grid2D grid{32, 40, 4};

  {
    mpiio::Group group(4);
    runtime::RunSpmd(4, [&](runtime::SpmdContext& ctx) {
      Client client(&cluster.transport());
      ArraySpec spec = grid.BandSpec(4, ctx.rank());
      ByteBuffer mine = grid.MakeBlock(spec);
      ASSERT_TRUE(WriteCheckpoint(&client, &group, ctx.rank(), "/ckpt/b",
                                  spec, mine)
                      .ok());
    });
  }
  {
    mpiio::Group group(2);
    runtime::RunSpmd(2, [&](runtime::SpmdContext& ctx) {
      Client client(&cluster.transport());
      ArraySpec spec = grid.ColumnSpec(2, ctx.rank());
      ByteBuffer expect = grid.MakeBlock(spec);
      ByteBuffer restored(expect.size());
      ASSERT_TRUE(ReadCheckpoint(&client, &group, ctx.rank(), "/ckpt/b",
                                 spec, restored)
                      .ok());
      EXPECT_EQ(restored, expect);
    });
  }
}

TEST(Checkpoint, InspectReadsHeader) {
  runtime::ThreadedCluster cluster(8);
  mpiio::Group group(1);
  Grid2D grid{8, 8, 8};
  Client client(&cluster.transport());
  ArraySpec spec = grid.BandSpec(1, 0);
  ByteBuffer data = grid.MakeBlock(spec);
  ASSERT_TRUE(
      WriteCheckpoint(&client, &group, 0, "/ckpt/c", spec, data, 12345)
          .ok());

  auto info = InspectCheckpoint(&client, "/ckpt/c");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->elem_size, 8u);
  EXPECT_EQ(info->global_dims, (std::vector<std::uint64_t>{8, 8}));
  EXPECT_EQ(info->user_tag, 12345u);
  EXPECT_EQ(info->version, kVersion);
}

TEST(Checkpoint, GeometryMismatchRejected) {
  runtime::ThreadedCluster cluster(8);
  mpiio::Group group(1);
  Grid2D grid{8, 8, 8};
  Client client(&cluster.transport());
  ArraySpec spec = grid.BandSpec(1, 0);
  ByteBuffer data = grid.MakeBlock(spec);
  ASSERT_TRUE(
      WriteCheckpoint(&client, &group, 0, "/ckpt/d", spec, data).ok());

  ArraySpec wrong = spec;
  wrong.global_dims = {8, 16};
  wrong.local_dims = {8, 16};
  ByteBuffer out(wrong.LocalBytes());
  EXPECT_EQ(
      ReadCheckpoint(&client, &group, 0, "/ckpt/d", wrong, out).code(),
      ErrorCode::kFailedPrecondition);

  ArraySpec wrong_elem = spec;
  wrong_elem.elem_size = 4;
  ByteBuffer out2(wrong_elem.LocalBytes());
  EXPECT_EQ(ReadCheckpoint(&client, &group, 0, "/ckpt/d", wrong_elem, out2)
                .code(),
            ErrorCode::kFailedPrecondition);
}

TEST(Checkpoint, CorruptHeaderRejected) {
  runtime::ThreadedCluster cluster(8);
  mpiio::Group group(1);
  Grid2D grid{8, 8, 8};
  Client client(&cluster.transport());
  ArraySpec spec = grid.BandSpec(1, 0);
  ByteBuffer data = grid.MakeBlock(spec);
  ASSERT_TRUE(
      WriteCheckpoint(&client, &group, 0, "/ckpt/e", spec, data).ok());

  // Stomp the magic.
  auto fd = client.Open("/ckpt/e");
  ByteBuffer junk(4, std::byte{0xFF});
  ASSERT_TRUE(client.Write(*fd, 0, junk).ok());
  EXPECT_FALSE(InspectCheckpoint(&client, "/ckpt/e").ok());
  ByteBuffer out(spec.LocalBytes());
  EXPECT_FALSE(ReadCheckpoint(&client, &group, 0, "/ckpt/e", spec, out).ok());
}

TEST(Checkpoint, SizeMismatchesRejected) {
  runtime::ThreadedCluster cluster(8);
  mpiio::Group group(1);
  Grid2D grid{8, 8, 8};
  Client client(&cluster.transport());
  ArraySpec spec = grid.BandSpec(1, 0);
  ByteBuffer tiny(10);
  EXPECT_EQ(WriteCheckpoint(&client, &group, 0, "/ckpt/f", spec, tiny)
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(Checkpoint, ThreeDimensionalBlocks) {
  runtime::ThreadedCluster cluster(8);
  constexpr std::uint32_t kRanks = 2;
  mpiio::Group group(kRanks);

  runtime::RunSpmd(kRanks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    ArraySpec spec;
    spec.elem_size = 8;
    spec.global_dims = {4, 6, 10};
    spec.local_offset = {ctx.rank() * 2ull, 0, 0};
    spec.local_dims = {2, 6, 10};
    ByteBuffer mine(spec.LocalBytes());
    FillPattern(mine, 900 + ctx.rank(), 0);
    ASSERT_TRUE(WriteCheckpoint(&client, &group, ctx.rank(), "/ckpt/3d",
                                spec, mine)
                    .ok());
    ByteBuffer restored(mine.size());
    ASSERT_TRUE(ReadCheckpoint(&client, &group, ctx.rank(), "/ckpt/3d",
                               spec, restored)
                    .ok());
    EXPECT_EQ(restored, mine);
  });
}

}  // namespace
}  // namespace pvfs::ckpt
